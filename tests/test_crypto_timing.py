"""Encryption-cost models: affine behaviour, scaling, live measurement."""

import pytest

from repro.crypto.timing import (
    CIPHERS,
    CipherCost,
    make_cipher,
    measure_cipher_cost,
    reference_cipher_cost,
)


class TestCipherCost:
    def test_affine_time(self):
        cost = CipherCost("AES128", setup_s=1e-5, per_byte_s=1e-8)
        assert cost.time_for(1000) == pytest.approx(1e-5 + 1e-5)

    def test_zero_bytes_cost_nothing(self):
        cost = CipherCost("AES128", setup_s=1e-5, per_byte_s=1e-8)
        assert cost.time_for(0) == 0.0

    def test_negative_bytes_rejected(self):
        cost = CipherCost("AES128", setup_s=1e-5, per_byte_s=1e-8)
        with pytest.raises(ValueError):
            cost.time_for(-1)

    def test_sigma_proportional_to_mean(self):
        cost = CipherCost("AES128", 1e-5, 1e-8, jitter_fraction=0.1)
        assert cost.sigma_for(1000) == pytest.approx(0.1 * cost.time_for(1000))

    def test_scaled_divides_times(self):
        cost = CipherCost("AES128", 2e-5, 4e-8)
        faster = cost.scaled(2.0)
        assert faster.setup_s == pytest.approx(1e-5)
        assert faster.per_byte_s == pytest.approx(2e-8)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CipherCost("AES128", 1e-5, 1e-8).scaled(0.0)


class TestReferenceCosts:
    def test_ordering_matches_cipher_complexity(self):
        aes128 = reference_cipher_cost("AES128")
        aes256 = reference_cipher_cost("AES256")
        des3 = reference_cipher_cost("3DES")
        assert aes128.per_byte_s < aes256.per_byte_s < des3.per_byte_s

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            reference_cipher_cost("ROT13")

    def test_speed_factor_applied(self):
        slow = reference_cipher_cost("AES128", speed_factor=1.0)
        fast = reference_cipher_cost("AES128", speed_factor=2.0)
        assert fast.per_byte_s == pytest.approx(slow.per_byte_s / 2.0)


class TestMakeCipher:
    @pytest.mark.parametrize("name", sorted(CIPHERS))
    def test_instantiates_each(self, name):
        key_size, _ = CIPHERS[name]
        cipher = make_cipher(name, bytes(key_size))
        block = bytes(cipher.block_size)
        assert len(cipher.encrypt_block(block)) == cipher.block_size

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            make_cipher("AES128", bytes(10))

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_cipher("DES5", bytes(8))


class TestMeasurement:
    def test_live_measurement_positive_and_ordered(self):
        aes = measure_cipher_cost("AES128", sizes=(64, 256), repeats=1)
        assert aes.per_byte_s > 0
        assert aes.time_for(256) > aes.time_for(64)

    def test_3des_slower_than_aes_live(self):
        aes = measure_cipher_cost("AES128", sizes=(64, 256), repeats=1)
        des3 = measure_cipher_cost("3DES", sizes=(64, 256), repeats=1)
        assert des3.per_byte_s > aes.per_byte_s
