"""Encryption-cost models: affine behaviour, scaling, live measurement."""

import pytest

from repro.crypto.timing import (
    CIPHERS,
    CipherCost,
    make_cipher,
    make_fast_cipher,
    measure_cipher_cost,
    reference_cipher_cost,
)


class TestCipherCost:
    def test_affine_time(self):
        cost = CipherCost("AES128", setup_s=1e-5, per_byte_s=1e-8)
        assert cost.time_for(1000) == pytest.approx(1e-5 + 1e-5)

    def test_zero_bytes_cost_nothing(self):
        cost = CipherCost("AES128", setup_s=1e-5, per_byte_s=1e-8)
        assert cost.time_for(0) == 0.0

    def test_negative_bytes_rejected(self):
        cost = CipherCost("AES128", setup_s=1e-5, per_byte_s=1e-8)
        with pytest.raises(ValueError):
            cost.time_for(-1)

    def test_sigma_proportional_to_mean(self):
        cost = CipherCost("AES128", 1e-5, 1e-8, jitter_fraction=0.1)
        assert cost.sigma_for(1000) == pytest.approx(0.1 * cost.time_for(1000))

    def test_scaled_divides_times(self):
        cost = CipherCost("AES128", 2e-5, 4e-8)
        faster = cost.scaled(2.0)
        assert faster.setup_s == pytest.approx(1e-5)
        assert faster.per_byte_s == pytest.approx(2e-8)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CipherCost("AES128", 1e-5, 1e-8).scaled(0.0)


class TestReferenceCosts:
    def test_ordering_matches_cipher_complexity(self):
        aes128 = reference_cipher_cost("AES128")
        aes256 = reference_cipher_cost("AES256")
        des3 = reference_cipher_cost("3DES")
        assert aes128.per_byte_s < aes256.per_byte_s < des3.per_byte_s

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            reference_cipher_cost("ROT13")

    def test_speed_factor_applied(self):
        slow = reference_cipher_cost("AES128", speed_factor=1.0)
        fast = reference_cipher_cost("AES128", speed_factor=2.0)
        assert fast.per_byte_s == pytest.approx(slow.per_byte_s / 2.0)


class TestMakeCipher:
    @pytest.mark.parametrize("name", sorted(CIPHERS))
    def test_instantiates_each(self, name):
        key_size, _ = CIPHERS[name]
        cipher = make_cipher(name, bytes(key_size))
        block = bytes(cipher.block_size)
        assert len(cipher.encrypt_block(block)) == cipher.block_size

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            make_cipher("AES128", bytes(10))

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_cipher("DES5", bytes(8))


class TestFastCipher:
    """make_fast_cipher is the simulator's bulk path; it must be
    byte-identical to the scalar cipher and must not leak into the
    modelled ``T_e``."""

    @pytest.mark.parametrize("name", sorted(CIPHERS))
    def test_fast_cipher_byte_identical(self, name):
        key_size, _ = CIPHERS[name]
        key = bytes(range(key_size))
        fast = make_fast_cipher(name, key)
        scalar = make_cipher(name, key)
        block = bytes(range(scalar.block_size))
        assert fast.encrypt_block(block) == scalar.encrypt_block(block)

    @pytest.mark.parametrize("name", sorted(CIPHERS))
    def test_fast_cipher_is_vectorized(self, name):
        key_size, _ = CIPHERS[name]
        fast = make_fast_cipher(name, bytes(key_size))
        assert hasattr(fast, "encrypt_blocks")

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            make_fast_cipher("3DES", bytes(10))

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_fast_cipher("DES5", bytes(8))


class TestModelledTimesPinned:
    """T_e invariance: the modelled encryption-time inputs of the delay
    model (Section 4.2.2) must not move when the bulk crypto path gets
    faster.  These literals are the committed model; a deliberate
    recalibration must update this test."""

    def test_make_cipher_stays_scalar(self):
        """The calibration path times the byte-oriented reference
        implementation — it must never pick up encrypt_blocks."""
        for name in CIPHERS:
            key_size, _ = CIPHERS[name]
            assert not hasattr(make_cipher(name, bytes(key_size)),
                               "encrypt_blocks")

    def test_reference_costs_pinned(self):
        pins = {
            "AES128": (4.0e-6, 1.8e-8),
            "AES256": (5.0e-6, 2.5e-8),
            "3DES": (6.0e-6, 9.0e-8),
        }
        for name, (setup_s, per_byte_s) in pins.items():
            cost = reference_cipher_cost(name)
            assert cost.setup_s == setup_s
            assert cost.per_byte_s == per_byte_s
            assert cost.jitter_fraction == 0.05

    def test_device_costs_pinned(self):
        from repro.testbed.devices import GALAXY_S2, HTC_AMAZE_4G

        pins = [
            (GALAXY_S2, "3DES", 0.9e-3 * 2.2, 2.0e-6),
            (GALAXY_S2, "AES256", 0.9e-3, 0.68e-6),
            (HTC_AMAZE_4G, "3DES", 1.1e-3 * 2.2, 2.5e-6),
            (HTC_AMAZE_4G, "AES128", 1.1e-3 * 0.85, 0.70e-6),
        ]
        for device, algorithm, setup_s, per_byte_s in pins:
            cost = device.cipher_cost(algorithm)
            assert cost.setup_s == pytest.approx(setup_s, rel=0, abs=0)
            assert cost.per_byte_s == per_byte_s

    def test_mtu_packet_times_pinned(self):
        """The actual T_e numbers fed into eq. 15 for an MTU packet."""
        assert reference_cipher_cost("3DES").time_for(1460) == \
            pytest.approx(6.0e-6 + 9.0e-8 * 1460, rel=0, abs=0)
        from repro.testbed.devices import GALAXY_S2

        assert GALAXY_S2.cipher_cost("3DES").time_for(1460) == \
            pytest.approx(0.9e-3 * 2.2 + 2.0e-6 * 1460, rel=0, abs=0)


class TestMeasurement:
    def test_live_measurement_positive_and_ordered(self):
        aes = measure_cipher_cost("AES128", sizes=(64, 256), repeats=1)
        assert aes.per_byte_s > 0
        assert aes.time_for(256) > aes.time_for(64)

    def test_3des_slower_than_aes_live(self):
        aes = measure_cipher_cost("AES128", sizes=(64, 256), repeats=1)
        des3 = measure_cipher_cost("3DES", sizes=(64, 256), repeats=1)
        assert des3.per_byte_s > aes.per_byte_s
