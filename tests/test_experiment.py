"""End-to-end experiments: metrics, repetition protocol."""

import pytest

from repro.core import standard_policies
from repro.testbed import (
    ExperimentConfig,
    GALAXY_S2,
    run_experiment,
    run_repeated,
)


@pytest.fixture(scope="module")
def base_config():
    return ExperimentConfig(
        policy=standard_policies("AES256")["I"],
        device=GALAXY_S2,
        sensitivity_fraction=0.55,
    )


class TestSingleRun:
    def test_produces_all_metrics(self, slow_clip, slow_bitstream,
                                  base_config):
        result = run_experiment(slow_clip, slow_bitstream, base_config,
                                seed=0)
        assert result.mean_delay_ms > 0
        assert result.average_power_w > GALAXY_S2.base_power_w * 0.9
        assert result.receiver_psnr_db > 30.0
        assert result.eavesdropper_psnr_db < 15.0
        assert result.eavesdropper_mos == pytest.approx(1.0, abs=0.2)

    def test_decode_disabled_skips_video_metrics(self, slow_clip,
                                                 slow_bitstream):
        config = ExperimentConfig(
            policy=standard_policies("AES256")["I"],
            device=GALAXY_S2, sensitivity_fraction=0.55, decode_video=False,
        )
        result = run_experiment(slow_clip, slow_bitstream, config, seed=0)
        assert result.receiver_psnr_db is None
        assert result.eavesdropper_psnr_db is None
        assert result.mean_delay_ms > 0

    def test_none_policy_gives_eavesdropper_everything(
            self, slow_clip, slow_bitstream):
        config = ExperimentConfig(
            policy=standard_policies("AES256")["none"],
            device=GALAXY_S2, sensitivity_fraction=0.55,
        )
        result = run_experiment(slow_clip, slow_bitstream, config, seed=0)
        assert result.eavesdropper_psnr_db == pytest.approx(
            result.receiver_psnr_db, abs=0.5
        )


class TestRepeatedRuns:
    def test_aggregates(self, slow_clip, slow_bitstream, base_config):
        repeated = run_repeated(slow_clip, slow_bitstream, base_config,
                                repeats=4, base_seed=100)
        assert repeated.delay_ms.n == 4
        assert repeated.delay_ms.ci_halfwidth >= 0.0
        assert len(repeated.runs) == 4
        assert repeated.eavesdropper_psnr_db.mean < 15.0

    def test_repeats_validated(self, slow_clip, slow_bitstream, base_config):
        with pytest.raises(ValueError):
            run_repeated(slow_clip, slow_bitstream, base_config, repeats=0)


class TestEnergyAccounting:
    def test_power_ordering_over_policies(self, fast_clip, fast_bitstream):
        powers = {}
        for name, policy in standard_policies("3DES").items():
            config = ExperimentConfig(
                policy=policy, device=GALAXY_S2,
                sensitivity_fraction=0.9, decode_video=False,
            )
            result = run_experiment(fast_clip, fast_bitstream, config, seed=1)
            powers[name] = result.average_power_w
        assert powers["none"] < powers["I"] < powers["P"] <= powers["all"]
