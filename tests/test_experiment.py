"""End-to-end experiments: metrics, repetition protocol."""

import pytest

from repro.core import standard_policies
from repro.testbed import (
    ExperimentConfig,
    GALAXY_S2,
    HTC_AMAZE_4G,
    run_experiment,
    run_repeated,
)


@pytest.fixture(scope="module")
def base_config():
    return ExperimentConfig(
        policy=standard_policies("AES256")["I"],
        device=GALAXY_S2,
        sensitivity_fraction=0.55,
    )


class TestSingleRun:
    def test_produces_all_metrics(self, slow_clip, slow_bitstream,
                                  base_config):
        result = run_experiment(slow_clip, slow_bitstream, base_config,
                                seed=0)
        assert result.mean_delay_ms > 0
        assert result.average_power_w > GALAXY_S2.base_power_w * 0.9
        assert result.receiver_psnr_db > 30.0
        assert result.eavesdropper_psnr_db < 15.0
        assert result.eavesdropper_mos == pytest.approx(1.0, abs=0.2)

    def test_decode_disabled_skips_video_metrics(self, slow_clip,
                                                 slow_bitstream):
        config = ExperimentConfig(
            policy=standard_policies("AES256")["I"],
            device=GALAXY_S2, sensitivity_fraction=0.55, decode_video=False,
        )
        result = run_experiment(slow_clip, slow_bitstream, config, seed=0)
        assert result.receiver_psnr_db is None
        assert result.eavesdropper_psnr_db is None
        assert result.mean_delay_ms > 0

    def test_none_policy_gives_eavesdropper_everything(
            self, slow_clip, slow_bitstream):
        config = ExperimentConfig(
            policy=standard_policies("AES256")["none"],
            device=GALAXY_S2, sensitivity_fraction=0.55,
        )
        result = run_experiment(slow_clip, slow_bitstream, config, seed=0)
        assert result.eavesdropper_psnr_db == pytest.approx(
            result.receiver_psnr_db, abs=0.5
        )


class TestRepeatedRuns:
    def test_aggregates(self, slow_clip, slow_bitstream, base_config):
        repeated = run_repeated(slow_clip, slow_bitstream, base_config,
                                repeats=4, base_seed=100)
        assert repeated.delay_ms.n == 4
        assert repeated.delay_ms.ci_halfwidth >= 0.0
        assert len(repeated.runs) == 4
        assert repeated.eavesdropper_psnr_db.mean < 15.0

    def test_repeats_validated(self, slow_clip, slow_bitstream, base_config):
        with pytest.raises(ValueError):
            run_repeated(slow_clip, slow_bitstream, base_config, repeats=0)


class TestSeeding:
    """Regression: ``seed=base_seed + i`` let different experiment cells
    reuse overlapping seed ranges — cell A's run 1 (base_seed=0) and cell
    B's run 0 (base_seed=1) both ran on seed 1 and were bit-identical.
    ``SeedSequence(base_seed).spawn(n)`` keeps every stream distinct."""

    def test_overlapping_base_seeds_no_longer_share_streams(
            self, slow_clip, slow_bitstream, base_config):
        cell_a = run_repeated(slow_clip, slow_bitstream, base_config,
                              repeats=2, base_seed=0)
        cell_b = run_repeated(slow_clip, slow_bitstream, base_config,
                              repeats=2, base_seed=1)
        # Old scheme: cell_a seeds {0, 1}, cell_b seeds {1, 2} — so
        # cell_a.runs[1] equalled cell_b.runs[0] exactly.
        assert (cell_a.runs[1].mean_delay_ms
                != cell_b.runs[0].mean_delay_ms)
        delays = [r.mean_delay_ms for r in cell_a.runs + cell_b.runs]
        assert len(set(delays)) == 4, "repeat streams must all be distinct"

    def test_distinct_configs_no_longer_correlated(self, slow_clip,
                                                   slow_bitstream):
        """Two *distinct* configs with overlapping seed ranges used to be
        perfectly correlated: under the ``none`` policy the delay path is
        device-independent, so the Samsung cell's run 1 (seed 0+1) and
        the HTC cell's run 0 (seed 1+0) produced bit-identical traces."""
        config_a = ExperimentConfig(
            policy=standard_policies("AES256")["none"],
            device=GALAXY_S2, sensitivity_fraction=0.55, decode_video=False,
        )
        config_b = ExperimentConfig(
            policy=standard_policies("AES256")["none"],
            device=HTC_AMAZE_4G, sensitivity_fraction=0.55,
            decode_video=False,
        )
        cell_a = run_repeated(slow_clip, slow_bitstream, config_a,
                              repeats=2, base_seed=0)
        cell_b = run_repeated(slow_clip, slow_bitstream, config_b,
                              repeats=2, base_seed=1)
        assert (cell_a.runs[1].mean_delay_ms
                != cell_b.runs[0].mean_delay_ms)

    def test_reproducible_for_fixed_base_seed(self, slow_clip,
                                              slow_bitstream, base_config):
        first = run_repeated(slow_clip, slow_bitstream, base_config,
                             repeats=3, base_seed=42)
        second = run_repeated(slow_clip, slow_bitstream, base_config,
                              repeats=3, base_seed=42)
        assert ([r.mean_delay_ms for r in first.runs]
                == [r.mean_delay_ms for r in second.runs])
        assert first.delay_ms == second.delay_ms


class TestMultiFlow:
    @staticmethod
    def _config(flows):
        return ExperimentConfig(
            policy=standard_policies("AES256")["I"],
            device=GALAXY_S2, sensitivity_fraction=0.55,
            decode_video=False, flows=flows, engine="events",
        )

    def test_config_validation(self):
        base = dict(policy=standard_policies("AES256")["I"],
                    device=GALAXY_S2, sensitivity_fraction=0.55,
                    decode_video=False)
        with pytest.raises(ValueError, match="flows"):
            ExperimentConfig(**base, flows=0)
        with pytest.raises(ValueError, match="flows"):
            ExperimentConfig(**base, flows=True)
        with pytest.raises(ValueError, match="engine"):
            ExperimentConfig(**base, flows=2, engine="legacy")
        with pytest.raises(ValueError, match="engine"):
            ExperimentConfig(**base, flows=2, engine="simpy")
        with pytest.raises(ValueError, match="decode_video"):
            ExperimentConfig(policy=standard_policies("AES256")["I"],
                             device=GALAXY_S2, sensitivity_fraction=0.55,
                             decode_video=True, flows=2, engine="events")

    def test_multiflow_experiment_produces_metrics(self, slow_clip,
                                                   slow_bitstream):
        result = run_experiment(slow_clip, slow_bitstream,
                                self._config(flows=2), seed=0)
        assert result.multiflow is not None
        assert result.multiflow.n_flows == 2
        assert result.run is result.multiflow.flows[0]
        assert result.mean_delay_ms > 0
        assert result.average_power_w > GALAXY_S2.base_power_w * 0.9
        assert result.receiver_psnr_db is None

    def test_contention_raises_delay(self, slow_clip, slow_bitstream):
        one = run_experiment(slow_clip, slow_bitstream,
                             self._config(flows=1), seed=0)
        four = run_experiment(slow_clip, slow_bitstream,
                              self._config(flows=4), seed=0)
        assert four.mean_delay_ms > one.mean_delay_ms

    def test_repeated_multiflow_aggregates(self, slow_clip, slow_bitstream):
        repeated = run_repeated(slow_clip, slow_bitstream,
                                self._config(flows=2), repeats=3,
                                base_seed=9)
        assert repeated.delay_ms.n == 3
        assert len(repeated.runs) == 3
        assert repeated.delay_ms.mean > 0


class TestEnergyAccounting:
    def test_power_ordering_over_policies(self, fast_clip, fast_bitstream):
        powers = {}
        for name, policy in standard_policies("3DES").items():
            config = ExperimentConfig(
                policy=policy, device=GALAXY_S2,
                sensitivity_fraction=0.9, decode_video=False,
            )
            result = run_experiment(fast_clip, fast_bitstream, config, seed=1)
            powers[name] = result.average_power_w
        assert powers["none"] < powers["I"] < powers["P"] <= powers["all"]
