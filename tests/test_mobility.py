"""The mobility layer: traces, AP selection, handoff gaps, and the
kernel-vs-vector arrival-latch contract.

The three properties the ISSUE pins:

- a handoff gap never *improves* delivered packets (gaps force the
  delivery rate to zero; everything else is unchanged);
- a zero-speed trace is byte-identical to the static multiflow
  simulator (the retune process spawns no RNG and never fires);
- hysteresis selection never flaps between equal-RSSI APs.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import standard_policies
from repro.mobility import (
    MOBILITY_PROFILES,
    SELECTION_POLICIES,
    build_profile,
    build_scenario,
    default_field,
    linear_trace,
    parked_trace,
    parse_mobility_spec,
    run_mobility,
    select_aps,
    waypoint_trace,
)
from repro.mobility.field import error_rate_for_margin, rates_and_errors
from repro.mobility.selection import handoff_count
from repro.testbed import DEVICES, ExperimentConfig
from repro.testbed.multiflow import run_multiflow
from repro.video import CodecConfig, encode_sequence, generate_clip

POLICY = standard_policies("AES256")["I"]
DEVICE = DEVICES["samsung-s2"]


@pytest.fixture(scope="module")
def bitstream():
    clip = generate_clip("slow", 12, seed=1)
    return encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))


def _rows(result):
    return [
        (t.sequence_number, t.enqueue_time_s, t.service_start_s,
         t.encryption_time_s, t.transmit_time_s, t.departure_time_s,
         t.encrypted, t.delivered, t.attempts)
        for run in result.flows for t in run.trace]


def _delivered(result):
    return sum(sum(run.usable_by_receiver) for run in result.flows)


# -- traces --------------------------------------------------------------------


class TestTraces:
    def test_parked_is_one_position(self):
        trace = parked_trace(10.0)
        assert trace.speed_mps == 0.0
        assert np.all(trace.positions_m == trace.positions_m[0])
        assert trace.duration_s == 10.0

    def test_linear_covers_speed_times_duration(self):
        trace = linear_trace(2.0, 10.0, timestep_s=0.5)
        span = np.linalg.norm(trace.positions_m[-1] - trace.positions_m[0])
        assert span == pytest.approx(20.0)

    def test_position_at_interpolates_and_clamps(self):
        trace = linear_trace(1.0, 4.0, start_m=(0.0, 0.0))
        assert trace.position_at(1.5)[0, 0] == pytest.approx(1.5)
        assert trace.position_at(99.0)[0, 0] == pytest.approx(4.0)

    def test_waypoint_is_seed_deterministic(self):
        first = waypoint_trace(3.0, 20.0, seed=11)
        again = waypoint_trace(3.0, 20.0, seed=11)
        other = waypoint_trace(3.0, 20.0, seed=12)
        assert np.array_equal(first.positions_m, again.positions_m)
        assert not np.array_equal(first.positions_m, other.positions_m)

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            parked_trace(1.0).__class__(
                np.array([0.0, 1.0, 1.0]), np.zeros((3, 2)), 0.0)
        with pytest.raises(ValueError, match="start at t = 0"):
            parked_trace(1.0).__class__(
                np.array([1.0, 2.0]), np.zeros((2, 2)), 0.0)
        with pytest.raises(ValueError, match="timestep"):
            parked_trace(1.0, timestep_s=0.0)
        with pytest.raises(ValueError, match="positive speed"):
            waypoint_trace(0.0, 10.0)


# -- field ---------------------------------------------------------------------


class TestField:
    def test_rssi_falls_with_distance(self):
        field = default_field(1)
        near, far = field.rssi_dbm(np.array([[0.0, 2.0], [0.0, 50.0]]))
        assert near[0] > far[0]

    def test_clean_margin_means_zero_error(self):
        assert error_rate_for_margin(30.0) == 0.0
        assert error_rate_for_margin(35.0) == 0.0
        assert 0.0 < error_rate_for_margin(10.0) <= 0.25

    def test_rates_ladder_monotone_in_rssi(self):
        rssi = np.array([-60.0, -70.0, -80.0, -95.0])
        rate, _ = rates_and_errors(rssi)
        assert rate[0] >= rate[1] >= rate[2]
        assert rate[-1] == 0.0  # out of range


# -- selection -----------------------------------------------------------------


class TestSelection:
    def test_strongest_is_argmax(self):
        rssi = np.array([[-60.0, -70.0], [-75.0, -65.0]])
        assert select_aps(rssi, "strongest").tolist() == [0, 1]

    @settings(max_examples=25, deadline=None)
    @given(level=st.floats(-90.0, -40.0),
           samples=st.integers(2, 40),
           n_aps=st.integers(2, 5),
           margin=st.floats(0.5, 10.0))
    def test_hysteresis_never_flaps_between_equal_aps(
            self, level, samples, n_aps, margin):
        """Between APs of exactly equal strength the damper must hold
        the first association forever — zero handoffs."""
        rssi = np.full((samples, n_aps), level)
        chosen = select_aps(rssi, "hysteresis", hysteresis_db=margin)
        assert handoff_count(chosen) == 0
        assert np.all(chosen == chosen[0])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), samples=st.integers(2, 30))
    def test_hysteresis_switches_at_most_as_often_as_strongest(
            self, seed, samples):
        rng = np.random.default_rng(seed)
        rssi = -90.0 + 40.0 * rng.random((samples, 3))
        greedy = handoff_count(select_aps(rssi, "strongest"))
        damped = handoff_count(select_aps(rssi, "hysteresis"))
        assert damped <= greedy

    def test_history_smooths_a_transient_peak(self):
        # One-sample spike on AP 1: history's trailing mean ignores it.
        rssi = np.array([[-60.0, -70.0]] * 3 + [[-60.0, -50.0]]
                        + [[-60.0, -70.0]] * 3)
        spiky = select_aps(rssi, "strongest")
        smooth = select_aps(rssi, "history", history_window=3)
        assert handoff_count(smooth) <= handoff_count(spiky)


# -- scenarios -----------------------------------------------------------------


class TestScenario:
    def test_spec_parsing(self):
        assert parse_mobility_spec("parked") == ("parked", "strongest")
        assert parse_mobility_spec("vehicular:hysteresis") == \
            ("vehicular", "hysteresis")
        with pytest.raises(ValueError, match="unknown mobility profile"):
            parse_mobility_spec("teleport")
        with pytest.raises(ValueError, match="unknown selection policy"):
            parse_mobility_spec("parked:psychic")
        with pytest.raises(ValueError, match="non-empty"):
            parse_mobility_spec("")

    def test_every_named_profile_builds(self):
        for profile in MOBILITY_PROFILES:
            for selection in SELECTION_POLICIES:
                scenario = build_profile(f"{profile}:{selection}")
                assert scenario.segments[0].start_s == 0.0
                assert math.isinf(scenario.segments[-1].end_s)
                assert scenario.describe()["profile"] == profile

    def test_parked_profile_is_one_clean_segment(self):
        scenario = build_profile("parked")
        assert scenario.n_segments == 1
        assert scenario.handoffs == 0
        segment = scenario.segments[0]
        assert segment.rate_mbps == 54.0
        assert segment.error_rate == 0.0
        assert not segment.in_gap

    def test_gaps_open_on_handoffs(self):
        no_gap = build_scenario(
            linear_trace(25.0, 4.0, timestep_s=0.1),
            default_field(6, spacing_m=15.0), n_stations=3)
        gapped = build_scenario(
            linear_trace(25.0, 4.0, timestep_s=0.1),
            default_field(6, spacing_m=15.0),
            handoff_gap_s=0.15, n_stations=3)
        assert no_gap.handoffs == gapped.handoffs > 0
        assert no_gap.gap_time_s == 0.0
        assert gapped.gap_time_s > 0.0
        assert any(s.in_gap for s in gapped.segments)
        assert all(s.delivery_rate == 0.0
                   for s in gapped.segments if s.in_gap)

    def test_segment_index_latches_half_open_intervals(self):
        scenario = build_profile("vehicular")
        starts = scenario.segment_starts
        # exactly at a boundary -> the segment that starts there
        assert scenario.segment_at(float(starts[1])).start_s == starts[1]
        index = scenario.segment_index_at([0.0, float(starts[1]) - 1e-9])
        assert index[0] == 0
        assert index[1] == 0


# -- runs: the engine contract -------------------------------------------------


class TestRuns:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2 ** 16))
    def test_kernel_and_vector_oracle_agree_exactly(self, bitstream, seed):
        scenario = build_scenario(
            linear_trace(25.0, 4.0, timestep_s=0.1),
            default_field(6, spacing_m=15.0),
            handoff_gap_s=0.15, n_stations=3)
        kwargs = dict(mobility=scenario, flows=2, policy=POLICY,
                      device=DEVICE, seed=seed)
        kernel = run_mobility(bitstream, **kwargs)
        vector = run_mobility(bitstream, engine="vector",
                              sampling="oracle", **kwargs)
        assert _rows(kernel.flows_run) == _rows(vector.flows_run)
        assert kernel.gap_packets == vector.gap_packets

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), flows=st.integers(1, 3))
    def test_zero_speed_is_byte_identical_to_static(self, bitstream,
                                                    seed, flows):
        kwargs = dict(flows=flows, policy=POLICY, device=DEVICE,
                      seed=seed)
        parked = run_mobility(bitstream, mobility="parked", **kwargs)
        static = run_multiflow(bitstream, **kwargs)
        assert _rows(parked.flows_run) == _rows(static)
        assert parked.retunes == 0
        assert parked.gap_packets == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2 ** 16),
           gap_s=st.floats(0.05, 0.5))
    def test_handoff_gap_never_improves_delivery(self, bitstream, seed,
                                                 gap_s):
        """Same trace, same seed: opening gaps can only lose packets.
        With UDP the per-packet draw sequence is unchanged, so delivery
        outside gaps is identical and inside gaps forced to zero."""
        trace = linear_trace(25.0, 4.0, timestep_s=0.1)
        field = default_field(6, spacing_m=15.0)
        without = build_scenario(trace, field, n_stations=3)
        with_gap = build_scenario(trace, field, handoff_gap_s=gap_s,
                                  n_stations=3)
        kwargs = dict(flows=2, policy=POLICY, device=DEVICE, seed=seed,
                      engine="vector", sampling="oracle")
        clean = run_mobility(bitstream, mobility=without, **kwargs)
        gapped = run_mobility(bitstream, mobility=with_gap, **kwargs)
        assert _delivered(gapped.flows_run) <= _delivered(clean.flows_run)
        assert gapped.gap_packets >= 0

    def test_batch_sampling_is_sane(self, bitstream):
        run = run_mobility(bitstream, mobility="vehicular", flows=2,
                           policy=POLICY, device=DEVICE, seed=2013,
                           engine="vector")
        assert 0.0 < run.flows_run.mean_delay_ms < 1e4
        assert run.handoffs == run.scenario.handoffs

    def test_prebuilt_scenario_station_count_checked(self, bitstream):
        scenario = build_profile("parked", n_stations=5)
        with pytest.raises(ValueError, match="stations"):
            run_mobility(bitstream, mobility=scenario, flows=2,
                         policy=POLICY, device=DEVICE)


# -- experiment config plumbing ------------------------------------------------


class TestExperimentConfig:
    def test_mobility_roundtrips_in_description(self):
        config = ExperimentConfig(
            policy=POLICY, device=DEVICE, sensitivity_fraction=0.55,
            flows=2, decode_video=False, engine="events",
            mobility="vehicular:hysteresis")
        description = config.to_description()
        assert description["mobility"] == "vehicular:hysteresis"
        back = ExperimentConfig.from_description(description)
        assert back.mobility == "vehicular:hysteresis"

    def test_static_description_has_no_mobility_key(self):
        config = ExperimentConfig(
            policy=POLICY, device=DEVICE, sensitivity_fraction=0.55)
        assert "mobility" not in config.to_description()

    def test_mobility_requires_modern_engine(self):
        with pytest.raises(ValueError, match="legacy"):
            ExperimentConfig(
                policy=POLICY, device=DEVICE, sensitivity_fraction=0.55,
                mobility="parked")

    def test_bad_spec_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown mobility profile"):
            ExperimentConfig(
                policy=POLICY, device=DEVICE, sensitivity_fraction=0.55,
                engine="events", mobility="teleport")
