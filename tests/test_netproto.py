"""Wire-protocol unit tests: frame round-trips, malformed/truncated
frame fuzzing, the backoff helper, and tcp: spec parsing."""

import random
import struct

import pytest

from repro.testbed.netproto import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_BLOB_BYTES,
    MAX_HEADER_BYTES,
    PREFIX_LEN,
    PROTOCOL_VERSION,
    Backoff,
    NetClient,
    ProtocolError,
    RemoteError,
    decode_frame,
    encode_frame,
    parse_prefix,
    parse_tcp_spec,
)


class TestFrameRoundTrip:
    @pytest.mark.parametrize("kind", [KIND_REQUEST, KIND_RESPONSE,
                                      KIND_ERROR])
    def test_kinds_round_trip(self, kind):
        header = {"op": "queue.claim", "n": 3, "nested": {"a": [1, 2]}}
        blob = bytes(range(256)) * 7
        got_kind, got_header, got_blob = decode_frame(
            encode_frame(header, blob, kind=kind))
        assert got_kind == kind
        assert got_header == header
        assert got_blob == blob

    def test_empty_header_and_blob(self):
        kind, header, blob = decode_frame(encode_frame({}))
        assert (kind, header, blob) == (KIND_REQUEST, {}, b"")

    def test_unicode_header_survives(self):
        header = {"reason": "scénario → perdu", "key": "αβγ"}
        _, got, _ = decode_frame(encode_frame(header))
        assert got == header

    def test_prefix_is_twelve_bytes(self):
        # the layout the docstrings promise: 2+1+1+4+4
        assert PREFIX_LEN == 12

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="kind"):
            encode_frame({}, b"", kind=7)

    def test_oversized_header_rejected_on_encode(self):
        big = {"pad": "x" * (MAX_HEADER_BYTES + 1)}
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame(big)


class TestMalformedFrames:
    def _valid(self):
        return encode_frame({"op": "ping"}, b"payload")

    def test_every_truncation_rejected(self):
        frame = self._valid()
        for cut in range(len(frame)):
            with pytest.raises(ProtocolError):
                decode_frame(frame[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(self._valid() + b"x")

    def test_bad_magic_rejected(self):
        frame = bytearray(self._valid())
        frame[0] = 0x58
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_wrong_version_rejected(self):
        frame = bytearray(self._valid())
        frame[2] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(frame))

    def test_unknown_kind_rejected(self):
        frame = bytearray(self._valid())
        frame[3] = 9
        with pytest.raises(ProtocolError, match="kind"):
            decode_frame(bytes(frame))

    def test_hostile_header_length_rejected(self):
        prefix = struct.pack("!2sBBII", b"RW", PROTOCOL_VERSION,
                             KIND_REQUEST, MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="header length"):
            parse_prefix(prefix)

    def test_hostile_blob_length_rejected(self):
        # a 256 GiB announcement must die at the prefix, not allocate
        prefix = struct.pack("!2sBBII", b"RW", PROTOCOL_VERSION,
                             KIND_REQUEST, 2, MAX_BLOB_BYTES + 1)
        with pytest.raises(ProtocolError, match="blob length"):
            parse_prefix(prefix)

    def test_non_dict_header_rejected(self):
        body = b"[1, 2, 3]"
        frame = struct.pack("!2sBBII", b"RW", PROTOCOL_VERSION,
                            KIND_REQUEST, len(body), 0) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(frame)

    def test_undecodable_header_rejected(self):
        body = b"\xff\xfe not json"
        frame = struct.pack("!2sBBII", b"RW", PROTOCOL_VERSION,
                            KIND_REQUEST, len(body), 0) + body
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(frame)

    def test_random_bytes_never_crash(self):
        """Fuzz: arbitrary bytes either parse (astronomically unlikely)
        or raise ProtocolError — never any other exception."""
        rng = random.Random(20130927)
        for trial in range(500):
            length = rng.randrange(0, 64)
            data = bytes(rng.randrange(256) for _ in range(length))
            try:
                decode_frame(data)
            except ProtocolError:
                pass

    def test_bitflipped_valid_frames_never_crash(self):
        frame = self._valid()
        rng = random.Random(7)
        for trial in range(300):
            mutated = bytearray(frame)
            for _ in range(rng.randrange(1, 4)):
                mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            try:
                decode_frame(bytes(mutated))
            except ProtocolError:
                pass


def _advisor_frames():
    """One representative frame per advisor-service frame type: the
    requests `AdvisorClient` sends, and every response shape
    `AdvisorServer` answers with (cold/memo result, busy, stats,
    error)."""
    from repro.testbed.advisor_service import ServiceRequest, encode_payload

    default_request = ServiceRequest(frames=12, gop=6)
    rich_request = ServiceRequest(
        motion="fast", frames=24, gop=6, flows=3, target_mos=2.0,
        candidates=("I", "I+25%P", "all"), ap="ap-7")
    payload = encode_payload({
        "target_psnr_db": 19.0, "satisfied": True,
        "recommended": "I(AES256)",
        "sweep": {"I(AES256)": {"delay_ms": 2.5}}})
    return {
        "recommend-default": encode_frame(
            {"op": "advise.recommend",
             "request": default_request.to_header()}, kind=KIND_REQUEST),
        "recommend-rich": encode_frame(
            {"op": "advise.recommend",
             "request": rich_request.to_header()}, kind=KIND_REQUEST),
        "stats-request": encode_frame(
            {"op": "advise.stats"}, kind=KIND_REQUEST),
        "answer": encode_frame(
            {"source": "cold", "key": "a" * 64, "ap": "default"},
            payload, kind=KIND_RESPONSE),
        "busy": encode_frame(
            {"busy": True, "ap": "default", "in_flight": 4,
             "capacity": 4}, b"", kind=KIND_RESPONSE),
        "stats-response": encode_frame(
            {"ok": True, "uptime_s": 1.5, "evaluations": 3,
             "memo": {"hits": 2, "misses": 1, "hit_rate": 2 / 3},
             "aps": {"default": {"in_flight": 0, "admitted": 3,
                                 "rejected": 1, "peak_in_flight": 2}}},
            b"", kind=KIND_RESPONSE),
        "error": encode_frame(
            {"error": "unknown device 'iphone'", "kind": "ValueError"},
            b"", kind=KIND_ERROR),
    }


class TestAdvisorFrameFuzz:
    """Every advisor-service frame type through the malformation
    harness: truncation, bitflips, trailing garbage, and random bytes
    must only ever produce ProtocolError — never a crash of any other
    shape.  (Live-server behaviour on malformed-but-well-framed
    requests is covered in test_advisor_service.py.)"""

    @pytest.fixture(scope="class")
    def frames(self):
        return _advisor_frames()

    @pytest.mark.parametrize("name", [
        "recommend-default", "recommend-rich", "stats-request", "answer",
        "busy", "stats-response", "error",
    ])
    def test_round_trips(self, frames, name):
        kind, header, blob = decode_frame(frames[name])
        assert decode_frame(encode_frame(header, blob,
                                         kind=kind)) == (kind, header, blob)

    @pytest.mark.parametrize("name", [
        "recommend-default", "recommend-rich", "stats-request", "answer",
        "busy", "stats-response", "error",
    ])
    def test_every_truncation_rejected(self, frames, name):
        frame = frames[name]
        for cut in range(len(frame)):
            with pytest.raises(ProtocolError):
                decode_frame(frame[:cut])

    @pytest.mark.parametrize("name", [
        "recommend-default", "recommend-rich", "stats-request", "answer",
        "busy", "stats-response", "error",
    ])
    def test_trailing_garbage_rejected(self, frames, name):
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(frames[name] + b"\x00")

    @pytest.mark.parametrize("name", [
        "recommend-default", "recommend-rich", "stats-request", "answer",
        "busy", "stats-response", "error",
    ])
    def test_bitflips_never_crash(self, frames, name):
        frame = frames[name]
        rng = random.Random(hash(name) & 0xFFFF)
        for trial in range(200):
            mutated = bytearray(frame)
            for _ in range(rng.randrange(1, 4)):
                mutated[rng.randrange(len(mutated))] ^= \
                    1 << rng.randrange(8)
            try:
                kind, header, blob = decode_frame(bytes(mutated))
            except ProtocolError:
                continue
            # A flip that survives framing must still be a dict header:
            # the server dispatches on header["op"] via .get, so any
            # surviving parse is safe to execute.
            assert isinstance(header, dict)

    def test_random_prefix_splices_never_crash(self, frames):
        """Splice random bytes into valid prefixes (the highest-value
        corruption: lengths and kinds) — still only ProtocolError."""
        rng = random.Random(20130927)
        corpus = list(frames.values())
        for trial in range(300):
            frame = bytearray(rng.choice(corpus))
            splice_at = rng.randrange(0, PREFIX_LEN)
            frame[splice_at:splice_at + 2] = bytes(
                rng.randrange(256) for _ in range(2))
            try:
                decode_frame(bytes(frame))
            except ProtocolError:
                pass


class TestBackoff:
    def test_exponential_growth_capped(self):
        backoff = Backoff(base_s=0.1, cap_s=0.8, jitter=0.0)
        assert [round(backoff.next_delay(), 3) for _ in range(5)] == \
            [0.1, 0.2, 0.4, 0.8, 0.8]

    def test_jitter_stays_in_band(self):
        backoff = Backoff(base_s=0.1, cap_s=10.0, jitter=0.5,
                          rng=random.Random(1))
        for attempt in range(6):
            raw = min(10.0, 0.1 * 2.0 ** attempt)
            delay = backoff.next_delay()
            assert 0.5 * raw <= delay < 1.5 * raw

    def test_reset_starts_cheap_again(self):
        backoff = Backoff(base_s=0.1, cap_s=5.0, jitter=0.0)
        for _ in range(4):
            backoff.next_delay()
        backoff.reset()
        assert backoff.attempt == 0
        assert backoff.next_delay() == pytest.approx(0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Backoff(base_s=0.0)
        with pytest.raises(ValueError):
            Backoff(base_s=2.0, cap_s=1.0)
        with pytest.raises(ValueError):
            Backoff(jitter=1.0)


class TestTcpSpec:
    @pytest.mark.parametrize("spec,expected", [
        ("tcp:127.0.0.1:9000", ("127.0.0.1", 9000)),
        ("tcp://example.org:80", ("example.org", 80)),
        ("TCP:LOCALHOST:1", ("LOCALHOST", 1)),
        ("tcp:[::1]:4242", ("::1", 4242)),
        ("  tcp:10.0.0.2:65535  ", ("10.0.0.2", 65535)),
    ])
    def test_valid_specs(self, spec, expected):
        assert parse_tcp_spec(spec) == expected

    @pytest.mark.parametrize("spec", [
        "tcp:nohost", "tcp::9000", "tcp:host:", "tcp:host:port",
        "dir:/tmp/x", "tcp:host:9000/path", "tcp:host:0",
        "tcp:host:70000", "",
    ])
    def test_invalid_specs(self, spec):
        with pytest.raises(ValueError):
            parse_tcp_spec(spec)


class TestRemoteErrorMapping:
    def test_builtin_kinds_map_to_builtins(self):
        client = NetClient.__new__(NetClient)  # no connection needed
        assert isinstance(
            client._remote_error({"error": "x", "kind": "ValueError"}),
            ValueError)
        assert isinstance(
            client._remote_error({"error": "x",
                                  "kind": "FileNotFoundError"}),
            FileNotFoundError)

    def test_unknown_kind_preserved_on_remote_error(self):
        client = NetClient.__new__(NetClient)
        error = client._remote_error({"error": "boom",
                                      "kind": "ZeroDivisionError"})
        assert isinstance(error, RemoteError)
        assert error.kind == "ZeroDivisionError"
        assert "boom" in str(error)
