"""Wire-protocol unit tests: frame round-trips, malformed/truncated
frame fuzzing, the backoff helper, and tcp: spec parsing."""

import random
import struct

import pytest

from repro.testbed.netproto import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_BLOB_BYTES,
    MAX_HEADER_BYTES,
    PREFIX_LEN,
    PROTOCOL_VERSION,
    Backoff,
    NetClient,
    ProtocolError,
    RemoteError,
    decode_frame,
    encode_frame,
    parse_prefix,
    parse_tcp_spec,
)


class TestFrameRoundTrip:
    @pytest.mark.parametrize("kind", [KIND_REQUEST, KIND_RESPONSE,
                                      KIND_ERROR])
    def test_kinds_round_trip(self, kind):
        header = {"op": "queue.claim", "n": 3, "nested": {"a": [1, 2]}}
        blob = bytes(range(256)) * 7
        got_kind, got_header, got_blob = decode_frame(
            encode_frame(header, blob, kind=kind))
        assert got_kind == kind
        assert got_header == header
        assert got_blob == blob

    def test_empty_header_and_blob(self):
        kind, header, blob = decode_frame(encode_frame({}))
        assert (kind, header, blob) == (KIND_REQUEST, {}, b"")

    def test_unicode_header_survives(self):
        header = {"reason": "scénario → perdu", "key": "αβγ"}
        _, got, _ = decode_frame(encode_frame(header))
        assert got == header

    def test_prefix_is_twelve_bytes(self):
        # the layout the docstrings promise: 2+1+1+4+4
        assert PREFIX_LEN == 12

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="kind"):
            encode_frame({}, b"", kind=7)

    def test_oversized_header_rejected_on_encode(self):
        big = {"pad": "x" * (MAX_HEADER_BYTES + 1)}
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame(big)


class TestMalformedFrames:
    def _valid(self):
        return encode_frame({"op": "ping"}, b"payload")

    def test_every_truncation_rejected(self):
        frame = self._valid()
        for cut in range(len(frame)):
            with pytest.raises(ProtocolError):
                decode_frame(frame[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(self._valid() + b"x")

    def test_bad_magic_rejected(self):
        frame = bytearray(self._valid())
        frame[0] = 0x58
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_wrong_version_rejected(self):
        frame = bytearray(self._valid())
        frame[2] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(frame))

    def test_unknown_kind_rejected(self):
        frame = bytearray(self._valid())
        frame[3] = 9
        with pytest.raises(ProtocolError, match="kind"):
            decode_frame(bytes(frame))

    def test_hostile_header_length_rejected(self):
        prefix = struct.pack("!2sBBII", b"RW", PROTOCOL_VERSION,
                             KIND_REQUEST, MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="header length"):
            parse_prefix(prefix)

    def test_hostile_blob_length_rejected(self):
        # a 256 GiB announcement must die at the prefix, not allocate
        prefix = struct.pack("!2sBBII", b"RW", PROTOCOL_VERSION,
                             KIND_REQUEST, 2, MAX_BLOB_BYTES + 1)
        with pytest.raises(ProtocolError, match="blob length"):
            parse_prefix(prefix)

    def test_non_dict_header_rejected(self):
        body = b"[1, 2, 3]"
        frame = struct.pack("!2sBBII", b"RW", PROTOCOL_VERSION,
                            KIND_REQUEST, len(body), 0) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(frame)

    def test_undecodable_header_rejected(self):
        body = b"\xff\xfe not json"
        frame = struct.pack("!2sBBII", b"RW", PROTOCOL_VERSION,
                            KIND_REQUEST, len(body), 0) + body
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(frame)

    def test_random_bytes_never_crash(self):
        """Fuzz: arbitrary bytes either parse (astronomically unlikely)
        or raise ProtocolError — never any other exception."""
        rng = random.Random(20130927)
        for trial in range(500):
            length = rng.randrange(0, 64)
            data = bytes(rng.randrange(256) for _ in range(length))
            try:
                decode_frame(data)
            except ProtocolError:
                pass

    def test_bitflipped_valid_frames_never_crash(self):
        frame = self._valid()
        rng = random.Random(7)
        for trial in range(300):
            mutated = bytearray(frame)
            for _ in range(rng.randrange(1, 4)):
                mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            try:
                decode_frame(bytes(mutated))
            except ProtocolError:
                pass


class TestBackoff:
    def test_exponential_growth_capped(self):
        backoff = Backoff(base_s=0.1, cap_s=0.8, jitter=0.0)
        assert [round(backoff.next_delay(), 3) for _ in range(5)] == \
            [0.1, 0.2, 0.4, 0.8, 0.8]

    def test_jitter_stays_in_band(self):
        backoff = Backoff(base_s=0.1, cap_s=10.0, jitter=0.5,
                          rng=random.Random(1))
        for attempt in range(6):
            raw = min(10.0, 0.1 * 2.0 ** attempt)
            delay = backoff.next_delay()
            assert 0.5 * raw <= delay < 1.5 * raw

    def test_reset_starts_cheap_again(self):
        backoff = Backoff(base_s=0.1, cap_s=5.0, jitter=0.0)
        for _ in range(4):
            backoff.next_delay()
        backoff.reset()
        assert backoff.attempt == 0
        assert backoff.next_delay() == pytest.approx(0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Backoff(base_s=0.0)
        with pytest.raises(ValueError):
            Backoff(base_s=2.0, cap_s=1.0)
        with pytest.raises(ValueError):
            Backoff(jitter=1.0)


class TestTcpSpec:
    @pytest.mark.parametrize("spec,expected", [
        ("tcp:127.0.0.1:9000", ("127.0.0.1", 9000)),
        ("tcp://example.org:80", ("example.org", 80)),
        ("TCP:LOCALHOST:1", ("LOCALHOST", 1)),
        ("tcp:[::1]:4242", ("::1", 4242)),
        ("  tcp:10.0.0.2:65535  ", ("10.0.0.2", 65535)),
    ])
    def test_valid_specs(self, spec, expected):
        assert parse_tcp_spec(spec) == expected

    @pytest.mark.parametrize("spec", [
        "tcp:nohost", "tcp::9000", "tcp:host:", "tcp:host:port",
        "dir:/tmp/x", "tcp:host:9000/path", "tcp:host:0",
        "tcp:host:70000", "",
    ])
    def test_invalid_specs(self, spec):
        with pytest.raises(ValueError):
            parse_tcp_spec(spec)


class TestRemoteErrorMapping:
    def test_builtin_kinds_map_to_builtins(self):
        client = NetClient.__new__(NetClient)  # no connection needed
        assert isinstance(
            client._remote_error({"error": "x", "kind": "ValueError"}),
            ValueError)
        assert isinstance(
            client._remote_error({"error": "x",
                                  "kind": "FileNotFoundError"}),
            FileNotFoundError)

    def test_unknown_kind_preserved_on_remote_error(self):
        client = NetClient.__new__(NetClient)
        error = client._remote_error({"error": "boom",
                                      "kind": "ZeroDivisionError"})
        assert isinstance(error, RemoteError)
        assert error.kind == "ZeroDivisionError"
        assert "boom" in str(error)
