"""The 2-MMPP arrival process (eqs. 1-2) and its sampler."""

import numpy as np
import pytest

from repro.core.mmpp import MMPP2


@pytest.fixture
def bursty():
    return MMPP2(p1=50.0, p2=5.0, lambda1=3000.0, lambda2=100.0)


class TestMatrices:
    def test_generator_structure(self, bursty):
        generator = bursty.generator
        assert generator[0, 0] == -50.0
        assert generator[0, 1] == 50.0
        assert np.allclose(generator.sum(axis=1), 0.0)

    def test_rate_matrix_diagonal(self, bursty):
        assert np.allclose(bursty.rate_matrix,
                           np.diag([3000.0, 100.0]))

    def test_stationary_distribution_eq2(self, bursty):
        pi = bursty.stationary_distribution
        # pi = (p2, p1) / (p1 + p2)
        assert pi == pytest.approx([5.0 / 55.0, 50.0 / 55.0])
        assert pi.sum() == pytest.approx(1.0)

    def test_stationary_solves_balance(self, bursty):
        pi = bursty.stationary_distribution
        assert np.allclose(pi @ bursty.generator, 0.0, atol=1e-12)

    def test_mean_rate(self, bursty):
        pi = bursty.stationary_distribution
        assert bursty.mean_rate == pytest.approx(
            pi[0] * 3000.0 + pi[1] * 100.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPP2(p1=0.0, p2=1.0, lambda1=1.0, lambda2=1.0)


class TestDispersion:
    def test_poisson_has_unit_idc(self):
        process = MMPP2(p1=2.0, p2=3.0, lambda1=100.0, lambda2=100.0)
        assert process.index_of_dispersion() == pytest.approx(1.0)

    def test_burstiness_raises_idc(self, bursty):
        assert bursty.index_of_dispersion() > 10.0


class TestSampling:
    def test_sample_count_and_monotonicity(self, bursty):
        rng = np.random.default_rng(0)
        trace = bursty.sample(5000, rng=rng)
        assert len(trace) == 5000
        assert np.all(np.diff(trace.arrival_times) >= 0)

    def test_empirical_rate_matches(self, bursty):
        rng = np.random.default_rng(1)
        trace = bursty.sample(200_000, rng=rng)
        empirical = len(trace) / trace.arrival_times[-1]
        assert empirical == pytest.approx(bursty.mean_rate, rel=0.05)

    def test_phase_occupancy_matches_stationary(self, bursty):
        rng = np.random.default_rng(2)
        trace = bursty.sample(200_000, rng=rng)
        # Fraction of arrivals in phase 0 should be pi0*l1 / mean rate.
        pi = bursty.stationary_distribution
        expected = pi[0] * bursty.lambda1 / bursty.mean_rate
        assert np.mean(trace.phases == 0) == pytest.approx(expected, abs=0.02)

    def test_initial_phase_respected(self, bursty):
        trace = bursty.sample(10, rng=np.random.default_rng(3),
                              initial_phase=0)
        assert trace.phases[0] in (0, 1)  # may flip before first arrival

    def test_sample_validation(self, bursty):
        with pytest.raises(ValueError):
            bursty.sample(0)
        with pytest.raises(ValueError):
            bursty.sample(10, initial_phase=5)


class TestFromVideoStructure:
    def test_burst_and_trickle_rates(self):
        process = MMPP2.from_video_structure(
            fps=30.0, gop_size=30, i_frame_packets=7, burst_rate=4000.0
        )
        assert process.lambda1 == 4000.0
        assert process.lambda2 == 30.0
        # Mean burst duration = 7/4000 s.
        assert process.p1 == pytest.approx(4000.0 / 7.0)
        # Mean trickle duration = 29/30 s.
        assert process.p2 == pytest.approx(30.0 / 29.0)

    def test_mean_rate_reflects_gop(self):
        process = MMPP2.from_video_structure(
            fps=30.0, gop_size=30, i_frame_packets=7, burst_rate=4000.0
        )
        # Per GOP second: ~7 I packets + 29 P packets.  The MMPP cycle is
        # slightly shorter than the true GOP period (the burst runs in
        # parallel with the frame clock), so allow a few percent.
        assert process.mean_rate == pytest.approx(36.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPP2.from_video_structure(
                fps=0, gop_size=30, i_frame_packets=7, burst_rate=4000
            )
