"""Differential acceptance: dispatch="queue" with independent worker
processes must reproduce dispatch="local" byte for byte, with zero
duplicate simulations, and survive worker death mid-lease."""

import json
import multiprocessing
import os
import time

import pytest

from repro.core import standard_policies
from repro.testbed import (
    DEVICES,
    ExperimentConfig,
    ExperimentEngine,
    GridCell,
    ResultCache,
    WorkQueue,
    run_worker,
)
from repro.video import CodecConfig, encode_sequence, generate_clip

POLICIES = ("none", "I", "all")
REPEATS = 2
MASTER_SEED = 7


@pytest.fixture(scope="module")
def tiny_scenario():
    clip = generate_clip("slow", 12, seed=1)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))
    return clip, bitstream


def _cells():
    table = standard_policies("AES256")
    return [
        GridCell("tiny", ExperimentConfig(
            policy=table[name], device=DEVICES["samsung-s2"],
            sensitivity_fraction=0.55, decode_video=False), REPEATS)
        for name in POLICIES
    ]


def _local_reference(tiny_scenario, tmp_path):
    clip, bitstream = tiny_scenario
    cache = ResultCache(tmp_path / "local-cache")
    engine = ExperimentEngine(cache=cache, workers=1,
                              master_seed=MASTER_SEED)
    engine.add_scenario("tiny", clip, bitstream)
    summaries = engine.run_grid(_cells())
    keys = [engine.cell_key(cell) for cell in _cells()]
    engine.close()
    return summaries, keys, cache


def _worker_proc(queue_dir, report_path):
    run_worker(queue_dir, report_path=report_path)


class TestDifferential:
    def test_two_workers_byte_identical_zero_duplicates(
            self, tiny_scenario, tmp_path):
        clip, bitstream = tiny_scenario
        ref_summaries, keys, local_cache = _local_reference(
            tiny_scenario, tmp_path)

        queue = WorkQueue(tmp_path / "q", lease_expiry_s=60.0)
        engine = ExperimentEngine(dispatch="queue", queue=queue,
                                  master_seed=MASTER_SEED,
                                  queue_timeout_s=120.0)
        engine.add_scenario("tiny", clip, bitstream)
        submitted = engine.submit_grid(_cells())
        assert sorted(submitted) == sorted(keys)

        context = multiprocessing.get_context("fork")
        reports = [tmp_path / f"worker{i}.json" for i in range(2)]
        procs = [context.Process(target=_worker_proc,
                                 args=(str(queue.path), str(path)))
                 for path in reports]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        # zero duplicate simulations across the worker fleet
        totals = [json.loads(path.read_text()) for path in reports]
        assert sum(t["simulations"] for t in totals) == \
            len(keys) * REPEATS
        assert sum(t["claimed"] for t in totals) == len(keys)
        assert sum(t["failed"] for t in totals) == 0
        assert queue.counts() == {"pending": 0, "leased": 0,
                                  "done": len(keys), "failed": 0}

        # assembly returns summaries equal to the local path
        assembled = engine.run_grid(_cells())
        assert assembled == ref_summaries

        # ...and the underlying cache entries are byte-identical
        for key in keys:
            local_bytes = local_cache.backend.read(key)
            queue_bytes = engine.cache.backend.read(key)
            assert local_bytes is not None and queue_bytes is not None
            assert local_bytes == queue_bytes

        # warm re-run: resubmission is a no-op and a fresh worker
        # simulates nothing
        assert engine.submit_grid(_cells()) == []
        warm = run_worker(queue)
        assert warm.simulations == 0
        engine.close()
        local_cache.close()

    def test_dispatch_queue_waits_and_assembles(self, tiny_scenario,
                                                tmp_path):
        """run_grid(dispatch='queue') submits, waits for a concurrently
        running worker, and returns the local-path summaries."""
        clip, bitstream = tiny_scenario
        ref_summaries, _, local_cache = _local_reference(
            tiny_scenario, tmp_path)
        local_cache.close()

        queue = WorkQueue(tmp_path / "q", lease_expiry_s=60.0)
        engine = ExperimentEngine(dispatch="queue", queue=queue,
                                  master_seed=MASTER_SEED,
                                  queue_timeout_s=120.0)
        engine.add_scenario("tiny", clip, bitstream)
        # submit before the worker exists, then let run_grid's wait loop
        # (whose internal resubmission is a no-op) collect the results
        engine.submit_grid(_cells())
        context = multiprocessing.get_context("fork")
        proc = context.Process(target=_worker_proc,
                               args=(str(queue.path),
                                     str(tmp_path / "w.json")))
        proc.start()
        try:
            assembled = engine.run_grid(_cells())
        finally:
            proc.join(timeout=120)
        assert proc.exitcode == 0
        assert assembled == ref_summaries
        assert engine.simulations_run == 0  # every cell ran remotely
        engine.close()


class TestFaultInjection:
    def test_worker_death_mid_lease_grid_still_completes(
            self, tiny_scenario, tmp_path):
        clip, bitstream = tiny_scenario
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        engine = ExperimentEngine(dispatch="queue", queue=queue,
                                  master_seed=MASTER_SEED,
                                  queue_timeout_s=120.0)
        engine.add_scenario("tiny", clip, bitstream)
        keys = engine.submit_grid(_cells())

        # a worker claims one cell and dies without completing it
        dead_task = queue.claim()
        assert dead_task is not None
        lease = queue.path / "leases" / f"{dead_task.key}.json"
        old = time.time() - 120.0
        os.utime(lease, (old, old))  # its lease has since expired

        report = run_worker(queue)  # the surviving worker
        assert report.failed == 0
        assert report.simulations == len(keys) * REPEATS
        assert queue.counts() == {"pending": 0, "leased": 0,
                                  "done": len(keys), "failed": 0}
        assert engine.cache.get_runs(dead_task.key) is not None
        engine.close()

    def test_code_mismatch_refused_not_poisoned(self, tiny_scenario,
                                                tmp_path):
        clip, bitstream = tiny_scenario
        queue = WorkQueue(tmp_path / "q")
        engine = ExperimentEngine(dispatch="queue", queue=queue,
                                  master_seed=MASTER_SEED)
        engine.add_scenario("tiny", clip, bitstream)
        keys = engine.submit_grid(_cells()[:1])
        task_path = queue.path / "tasks" / f"{keys[0]}.json"
        payload = json.loads(task_path.read_text())
        payload["code"] = "deadbeef" * 8  # a different simulation build
        task_path.write_text(json.dumps(payload))

        report = run_worker(queue)
        assert report.failed == 1
        assert report.simulations == 0
        assert "fingerprint" in queue.failure_reason(keys[0])
        assert engine.cache.get_runs(keys[0]) is None
        engine.close()

    def test_queue_dispatch_surfaces_failures(self, tiny_scenario,
                                              tmp_path):
        """The waiting engine must raise on failed cells instead of
        spinning until its timeout."""
        clip, bitstream = tiny_scenario
        queue = WorkQueue(tmp_path / "q")
        engine = ExperimentEngine(dispatch="queue", queue=queue,
                                  master_seed=MASTER_SEED,
                                  queue_timeout_s=30.0)
        engine.add_scenario("tiny", clip, bitstream)
        keys = engine.submit_grid(_cells()[:1])
        queue.fail(keys[0], "synthetic failure")
        with pytest.raises(RuntimeError, match="synthetic failure"):
            engine.run_grid(_cells()[:1])
        engine.close()


class TestEngineValidation:
    def test_queue_dispatch_requires_queue(self):
        with pytest.raises(ValueError, match="requires a work queue"):
            ExperimentEngine(dispatch="queue")

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            ExperimentEngine(dispatch="cluster")

    def test_queue_path_accepted_and_cache_derived(self, tmp_path):
        engine = ExperimentEngine(dispatch="queue",
                                  queue=tmp_path / "q")
        assert isinstance(engine.queue, WorkQueue)
        assert engine.cache is not None
        assert str(engine.cache.directory).startswith(str(tmp_path / "q"))
        engine.close()
