"""Service-time components (eqs. 3-18): moments, transforms, sampling."""

import numpy as np
import pytest

from repro.core.policies import EncryptionPolicy
from repro.core.service import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    ServiceTimeModel,
    TransmissionComponent,
)


@pytest.fixture
def model():
    encryption = EncryptionComponent(
        q_i_effective=0.15, q_p_effective=0.3,
        atom_i=GaussianAtom(2e-3, 0.2e-3),
        atom_p=GaussianAtom(0.5e-3, 0.05e-3),
    )
    backoff = BackoffComponent(p_s=0.85, lambda_b=2000.0)
    transmission = TransmissionComponent(
        p_i=0.15, atom_i=GaussianAtom(0.9e-3, 0.05e-3),
        atom_p=GaussianAtom(0.3e-3, 0.02e-3),
    )
    return ServiceTimeModel(encryption, backoff, transmission)


class TestGaussianAtom:
    def test_scalar_lst_at_zero_is_one(self):
        assert GaussianAtom(1e-3, 1e-4).scalar_lst(0.0) == pytest.approx(1.0)

    def test_constant_atom_lst(self):
        atom = GaussianAtom(2e-3, 0.0)
        assert atom.scalar_lst(100.0) == pytest.approx(np.exp(-0.2))

    def test_second_moment(self):
        atom = GaussianAtom(3.0, 4.0)
        assert atom.second_moment == pytest.approx(25.0)

    def test_matrix_lst_matches_scalar_on_diagonal(self):
        atom = GaussianAtom(1e-3, 1e-4)
        m = np.diag([-50.0, -200.0])
        result = atom.matrix_lst(m)
        assert result[0, 0] == pytest.approx(atom.scalar_lst(50.0))
        assert result[1, 1] == pytest.approx(atom.scalar_lst(200.0))
        assert result[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_sampling_statistics(self):
        atom = GaussianAtom(1e-3, 1e-4)
        rng = np.random.default_rng(0)
        samples = [atom.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(1e-3, rel=0.02)
        assert np.std(samples) == pytest.approx(1e-4, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianAtom(-1.0, 0.0)
        with pytest.raises(ValueError):
            GaussianAtom(1.0, -0.1)


class TestEncryption:
    def test_from_policy_effective_probabilities(self):
        policy = EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.2)
        atom = GaussianAtom(1e-3, 0.0)
        component = EncryptionComponent.from_policy(policy, 0.25, atom, atom)
        assert component.q_i_effective == pytest.approx(0.25)
        assert component.q_p_effective == pytest.approx(0.2 * 0.75)

    def test_mass_at_zero(self):
        atom = GaussianAtom(1e-3, 0.0)
        component = EncryptionComponent(0.1, 0.2, atom, atom)
        # LST at infinity -> mass at zero = 0.7.
        assert component.scalar_lst(1e9) == pytest.approx(0.7, abs=1e-3)

    def test_mean_mixture(self):
        component = EncryptionComponent(
            0.5, 0.25, GaussianAtom(2.0, 0.0), GaussianAtom(1.0, 0.0)
        )
        assert component.mean == pytest.approx(0.5 * 2.0 + 0.25 * 1.0)

    def test_probabilities_validated(self):
        atom = GaussianAtom(1.0, 0.0)
        with pytest.raises(ValueError):
            EncryptionComponent(0.7, 0.5, atom, atom)

    def test_sampling_proportions(self):
        component = EncryptionComponent(
            0.3, 0.2, GaussianAtom(2.0, 0.0), GaussianAtom(1.0, 0.0)
        )
        rng = np.random.default_rng(1)
        samples = np.array([component.sample(rng) for _ in range(20_000)])
        assert np.mean(samples == 0.0) == pytest.approx(0.5, abs=0.02)
        assert np.mean(samples == 2.0) == pytest.approx(0.3, abs=0.02)


class TestBackoff:
    def test_mean_formula(self):
        component = BackoffComponent(p_s=0.8, lambda_b=1000.0)
        assert component.mean == pytest.approx(0.25 / 1000.0)

    def test_no_collisions_when_ps_one(self):
        component = BackoffComponent(p_s=1.0, lambda_b=1000.0)
        assert component.mean == 0.0
        rng = np.random.default_rng(0)
        assert all(component.sample(rng) == 0.0 for _ in range(100))

    def test_lst_eq7(self):
        component = BackoffComponent(p_s=0.8, lambda_b=1000.0)
        s = 123.0
        expected = 0.8 * (1000.0 + s) / (s + 0.8 * 1000.0)
        assert component.scalar_lst(s) == pytest.approx(expected)

    def test_moments_match_monte_carlo(self):
        component = BackoffComponent(p_s=0.7, lambda_b=500.0)
        rng = np.random.default_rng(2)
        samples = np.array([component.sample(rng) for _ in range(100_000)])
        assert np.mean(samples) == pytest.approx(component.mean, rel=0.03)
        assert np.mean(samples ** 2) == pytest.approx(
            component.second_moment, rel=0.05
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffComponent(p_s=0.0, lambda_b=100.0)
        with pytest.raises(ValueError):
            BackoffComponent(p_s=0.5, lambda_b=0.0)


class TestTransmission:
    def test_mixture_mean(self):
        component = TransmissionComponent(
            0.25, GaussianAtom(4.0, 0.0), GaussianAtom(2.0, 0.0)
        )
        assert component.mean == pytest.approx(0.25 * 4.0 + 0.75 * 2.0)

    def test_lst_eq18_at_zero(self):
        component = TransmissionComponent(
            0.25, GaussianAtom(1e-3, 1e-4), GaussianAtom(3e-4, 3e-5)
        )
        assert component.scalar_lst(0.0) == pytest.approx(1.0)


class TestServiceTotal:
    def test_lst_is_product(self, model):
        s = 321.0
        expected = (model.encryption.scalar_lst(s)
                    * model.backoff.scalar_lst(s)
                    * model.transmission.scalar_lst(s))
        assert model.scalar_lst(s) == pytest.approx(expected)

    def test_moments_match_monte_carlo(self, model):
        rng = np.random.default_rng(3)
        samples = np.array([model.sample(rng) for _ in range(100_000)])
        assert np.mean(samples) == pytest.approx(model.mean, rel=0.02)
        assert np.mean(samples ** 2) == pytest.approx(
            model.second_moment, rel=0.03
        )

    def test_variance_consistency(self, model):
        assert model.variance == pytest.approx(
            model.second_moment - model.mean ** 2
        )

    def test_matrix_lst_diagonal_consistency(self, model):
        """On a diagonal matrix the matrix LST factors to scalar LSTs."""
        m = np.diag([-100.0, -400.0])
        result = model.matrix_lst(m)
        assert result[0, 0] == pytest.approx(model.scalar_lst(100.0), rel=1e-9)
        assert result[1, 1] == pytest.approx(model.scalar_lst(400.0), rel=1e-9)

    def test_numerical_moment_from_lst(self, model):
        """-d/ds H(s) at 0 equals the mean (transform sanity)."""
        eps = 1e-4
        derivative = (model.scalar_lst(eps) - model.scalar_lst(0.0)) / eps
        assert -derivative == pytest.approx(model.mean, rel=1e-2)
