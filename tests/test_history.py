"""Bench history: per-revision snapshots, rendering, and the CLI paths
that record and display them."""

import json

import pytest

from repro.analysis.history import (
    current_git_sha,
    load_history,
    record_run,
    render_history,
)
from repro.cli import main

REPORT = {
    "aes256_ofb": {"vector_bytes_per_s": 2.0e8,
                   "scalar_bytes_per_s": 5.0e7,
                   "speedup": 4.0,
                   "payload_bytes": 1 << 20},
    "cache": {"cold_put_per_s": 900.0, "backend": "dir"},
}


class TestRecordAndLoad:
    def test_record_creates_snapshot_named_after_sha(self, tmp_path):
        path = record_run(REPORT, tmp_path, sha="abc1234", source="unit")
        assert path == tmp_path / "abc1234.json"
        snapshot = json.loads(path.read_text())
        assert snapshot["sha"] == "abc1234"
        assert snapshot["source"] == "unit"
        # nested numeric leaves flattened; strings dropped
        assert snapshot["metrics"]["aes256_ofb.vector_bytes_per_s"] == 2.0e8
        assert "cache.backend" not in snapshot["metrics"]

    def test_record_idempotent_per_revision(self, tmp_path):
        record_run(REPORT, tmp_path, sha="abc1234")
        bumped = {"aes256_ofb": {"vector_bytes_per_s": 3.0e8}}
        record_run(bumped, tmp_path, sha="abc1234")
        snapshots = load_history(tmp_path)
        assert len(snapshots) == 1
        assert snapshots[0]["metrics"]["aes256_ofb.vector_bytes_per_s"] \
            == 3.0e8

    def test_load_sorted_and_tolerant_of_torn_files(self, tmp_path):
        record_run(REPORT, tmp_path, sha="bbb")
        record_run(REPORT, tmp_path, sha="aaa")
        (tmp_path / "torn.json").write_text("{not json")
        (tmp_path / "alien.json").write_text('["no metrics"]')
        shas = [s["sha"] for s in load_history(tmp_path)]
        assert sorted(shas) == ["aaa", "bbb"]

    def test_load_missing_dir_is_empty(self, tmp_path):
        assert load_history(tmp_path / "never-made") == []

    def test_current_git_sha_in_this_repo(self):
        sha = current_git_sha()
        assert sha == "nogit" or len(sha) >= 7

    def test_current_git_sha_outside_any_repo(self, tmp_path):
        assert current_git_sha(cwd=tmp_path) == "nogit"


class TestRender:
    def test_table_has_throughput_columns_and_gaps(self, tmp_path):
        record_run(REPORT, tmp_path, sha="aaa")
        later = dict(REPORT)
        later["cache"] = {"cold_put_per_s": 950.0, "warm_get_per_s": 4e4}
        record_run(later, tmp_path, sha="bbb")
        table = render_history(load_history(tmp_path))
        assert "aaa" in table and "bbb" in table
        assert "vector_bytes_per_s" in table
        assert "speedup" not in table  # only *_per_s columns
        assert "-" in table  # aaa has no warm_get_per_s

    def test_empty_history_message(self):
        assert "no snapshots" in render_history([])

    def test_colliding_short_names_fall_back_to_full(self):
        snapshots = [{"sha": "aaa", "recorded_unix": 1.0, "metrics": {
            "a.x_per_s": 1.0, "b.x_per_s": 2.0}}]
        table = render_history(snapshots)
        assert "a.x_per_s" in table and "b.x_per_s" in table


class TestCli:
    def _reports(self, tmp_path):
        current = tmp_path / "BENCH.json"
        current.write_text(json.dumps(REPORT))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(REPORT))
        return current, baseline

    def test_trend_records_history_by_default(self, tmp_path, capsys):
        current, baseline = self._reports(tmp_path)
        history = tmp_path / "history"
        rc = main(["bench", "trend", "--current", str(current),
                   "--baseline", str(baseline),
                   "--history-dir", str(history)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recorded history snapshot" in out
        assert len(load_history(history)) == 1

    def test_trend_no_history_skips_recording(self, tmp_path, capsys):
        current, baseline = self._reports(tmp_path)
        history = tmp_path / "history"
        rc = main(["bench", "trend", "--current", str(current),
                   "--baseline", str(baseline),
                   "--history-dir", str(history), "--no-history"])
        assert rc == 0
        assert "recorded history snapshot" not in capsys.readouterr().out
        assert load_history(history) == []

    def test_history_action_renders_table(self, tmp_path, capsys):
        record_run(REPORT, tmp_path, sha="abc1234")
        rc = main(["bench", "history", "--history-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "abc1234" in out
        assert "cold_put_per_s" in out

    def test_failing_trend_still_records(self, tmp_path, capsys):
        current, baseline = self._reports(tmp_path)
        slow = dict(REPORT)
        slow["aes256_ofb"] = dict(REPORT["aes256_ofb"],
                                  vector_bytes_per_s=1.0e7)
        current.write_text(json.dumps(slow))
        history = tmp_path / "history"
        rc = main(["bench", "trend", "--current", str(current),
                   "--baseline", str(baseline),
                   "--history-dir", str(history)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
        # the regressed run is still in the history — that's the point
        assert len(load_history(history)) == 1
