"""Hypothesis property tests on the model stack's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    MMPP2,
    ServiceTimeModel,
    TransmissionComponent,
    mean_waiting_time,
    pollaczek_khinchine,
)
from repro.core.distortion import (
    DistortionModel,
    DistortionPolynomial,
    gop_state_probabilities,
)
from repro.core.frame_success import frame_success_probability
from repro.core.policies import EncryptionPolicy
from repro.video.quality import distortion_from_psnr, psnr_from_distortion


@settings(max_examples=50, deadline=None)
@given(
    gop_size=st.integers(2, 60),
    p_i=st.floats(0.0, 1.0),
    p_p=st.floats(0.0, 1.0),
)
def test_gop_states_always_a_distribution(gop_size, p_i, p_p):
    probabilities = gop_state_probabilities(gop_size, p_i, p_p)
    assert np.all(probabilities >= -1e-12)
    assert probabilities.sum() == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(
    p_i=st.floats(0.01, 0.99),
    p_p=st.floats(0.01, 0.99),
    cap=st.floats(100.0, 20_000.0),
)
def test_distortion_bounded_by_cap(p_i, p_p, cap):
    """Expected distortion can never exceed the saturation cap."""
    polynomial = DistortionPolynomial((0.0, cap / 10.0), cap=cap)
    model = DistortionModel(gop_size=10, n_gops=5, polynomial=polynomial)
    estimate = model.expected(p_i, p_p)
    assert -1e-9 <= estimate.average_distortion <= cap + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    p_better=st.floats(0.5, 1.0),
    delta=st.floats(0.0, 0.5),
)
def test_distortion_monotone_in_i_success(p_better, delta):
    polynomial = DistortionPolynomial((0.0, 100.0), cap=5000.0)
    model = DistortionModel(gop_size=10, n_gops=5, polynomial=polynomial)
    p_worse = max(p_better - delta, 0.0)
    better = model.expected(p_better, 0.9).average_distortion
    worse = model.expected(p_worse, 0.9).average_distortion
    assert worse >= better - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 10),
    p=st.floats(0.01, 0.99),
)
def test_frame_success_monotone_in_sensitivity(n, p):
    values = [frame_success_probability(n, s, p) for s in range(n)]
    assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))


@settings(max_examples=25, deadline=None)
@given(
    rho=st.floats(0.05, 0.85),
    burst_ratio=st.floats(1.0, 20.0),
)
def test_mmpp_waiting_at_least_poisson(rho, burst_ratio):
    """Burstier input can only increase the per-packet mean wait relative
    to a Poisson stream of the same rate (same service)."""
    service = ServiceTimeModel(
        EncryptionComponent(0.2, 0.0, GaussianAtom(1e-3, 0.0),
                            GaussianAtom(2e-4, 0.0)),
        BackoffComponent(p_s=0.95, lambda_b=5000.0),
        TransmissionComponent(0.2, GaussianAtom(4e-4, 0.0),
                              GaussianAtom(3e-4, 0.0)),
    )
    rate = rho / service.mean
    # Symmetric flips: pi = (1/2, 1/2), so lambda1 + lambda2 = 2*rate
    # keeps the mean arrival rate (and rho) fixed while the imbalance
    # epsilon controls burstiness.
    epsilon = 1.0 - 1.0 / burst_ratio  # in [0, 0.95]
    lambda1 = rate * (1.0 + epsilon)
    lambda2 = max(rate * (1.0 - epsilon), 1e-6)
    mmpp = MMPP2(p1=50.0, p2=50.0, lambda1=lambda1, lambda2=lambda2)
    per_packet, _, _ = mean_waiting_time(mmpp, service)
    poisson_wait = pollaczek_khinchine(
        mmpp.mean_rate, service.mean, service.second_moment
    )
    assert per_packet >= poisson_wait - 1e-9


@settings(max_examples=50, deadline=None)
@given(psnr=st.floats(1.0, 95.0))
def test_psnr_distortion_bijection(psnr):
    assert psnr_from_distortion(distortion_from_psnr(psnr)) == (
        pytest.approx(psnr, rel=1e-9)
    )


@settings(max_examples=30, deadline=None)
@given(
    p_i=st.floats(0.0, 1.0),
    fraction=st.floats(0.01, 1.0),
    algorithm=st.sampled_from(["AES128", "AES256", "3DES"]),
)
def test_mixture_policy_interpolates_extremes(p_i, fraction, algorithm):
    """I+f.P encrypted fraction sits between I-only's and all's."""
    mixture = EncryptionPolicy("i_plus_p_fraction", algorithm,
                               fraction=fraction)
    i_only = EncryptionPolicy("i_frames", algorithm)
    everything = EncryptionPolicy("all", algorithm)
    q = mixture.encrypted_fraction(p_i)
    assert i_only.encrypted_fraction(p_i) - 1e-12 <= q
    assert q <= everything.encrypted_fraction(p_i) + 1e-12


@settings(max_examples=20, deadline=None)
@given(
    mu=st.floats(1e-5, 1e-2),
    sigma_fraction=st.floats(0.0, 0.2),
    s=st.floats(0.0, 100.0),
)
def test_atom_lst_bounded(mu, sigma_fraction, s):
    """For moderate s the Gaussian atom transform behaves like one of a
    non-negative variable (bounded by 1)."""
    atom = GaussianAtom(mu, sigma_fraction * mu)
    value = atom.scalar_lst(s)
    assert 0.0 < value <= 1.0 + 1e-9
