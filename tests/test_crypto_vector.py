"""Vectorized AES and the batched OFB path: bit-exactness and throughput."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    AES,
    OFBMode,
    TripleDES,
    VectorAES,
    VectorTripleDES,
    derive_iv,
    has_vector_support,
    make_vector_cipher,
)

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
KEY128 = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
KEY192 = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
KEY256 = bytes.fromhex(
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
)


class TestKnownAnswers:
    """The FIPS-197 Appendix C vectors must hold bit-exactly on the
    vectorized implementation too."""

    @pytest.mark.parametrize("key,expected", [
        (KEY128, "69c4e0d86a7b0430d8cdb78070b4c55a"),
        (KEY192, "dda97ca4864cdfe06eaf70a0ec0d7191"),
        (KEY256, "8ea2b7ca516745bfeafc49904b496089"),
    ])
    def test_fips_vectors(self, key, expected):
        assert VectorAES(key).encrypt_block(PLAINTEXT).hex() == expected

    def test_decrypt_block_round_trip(self):
        cipher = VectorAES(KEY128)
        assert cipher.decrypt_block(cipher.encrypt_block(PLAINTEXT)) == \
            PLAINTEXT


class TestBatchAgreement:
    @pytest.mark.parametrize("key", [KEY128, KEY192, KEY256])
    def test_batch_matches_scalar(self, key):
        rng = np.random.default_rng(1234)
        blocks = rng.integers(0, 256, size=(64, 16), dtype=np.uint8)
        scalar = AES(key)
        batch = VectorAES(key).encrypt_blocks(blocks)
        for i in range(blocks.shape[0]):
            assert batch[i].tobytes() == scalar.encrypt_block(
                blocks[i].tobytes())

    def test_batch_of_one(self):
        block = np.frombuffer(PLAINTEXT, dtype=np.uint8).reshape(1, 16)
        out = VectorAES(KEY128).encrypt_blocks(block)
        assert out.shape == (1, 16)
        assert out.tobytes() == AES(KEY128).encrypt_block(PLAINTEXT)

    def test_bad_shape_rejected(self):
        cipher = VectorAES(KEY128)
        with pytest.raises(ValueError):
            cipher.encrypt_blocks(np.zeros((4, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")

    def test_input_not_mutated(self):
        blocks = np.zeros((4, 16), dtype=np.uint8)
        VectorAES(KEY128).encrypt_blocks(blocks)
        assert not blocks.any()


class TestFactory:
    def test_vector_support_map(self):
        assert has_vector_support("AES128")
        assert has_vector_support("AES256")
        assert has_vector_support("3DES")
        assert not has_vector_support("RC4")

    def test_make_vector_cipher(self):
        assert isinstance(make_vector_cipher("AES128", KEY128), VectorAES)
        assert isinstance(make_vector_cipher("3DES", bytes(range(24))),
                          VectorTripleDES)
        assert make_vector_cipher("RC4", bytes(16)) is None


class TestBatchedOfb:
    def test_keystream_batch_matches_scalar_chains(self):
        vec = OFBMode(VectorAES(KEY128))
        scalar = OFBMode(AES(KEY128))
        lengths = [0, 1, 15, 16, 17, 33, 100, 1459, 1461]
        ivs = [derive_iv(b"batch", i, 16) for i in range(len(lengths))]
        for stream, iv, length in zip(
                vec.keystream_batch(ivs, lengths), ivs, lengths):
            assert stream == scalar.keystream(iv, length)

    def test_scalar_cipher_fallback_is_identical(self):
        """A cipher without encrypt_blocks (the *scalar* TripleDES
        reference) takes the block-at-a-time fallback path and must
        produce the same streams."""
        mode = OFBMode(TripleDES(bytes(range(24))))
        lengths = [0, 3, 8, 9, 25]
        ivs = [derive_iv(b"fallback", i, 8) for i in range(len(lengths))]
        batch = mode.keystream_batch(ivs, lengths)
        assert batch == [mode.keystream(iv, length)
                         for iv, length in zip(ivs, lengths)]

    def test_encrypt_segments_round_trip(self):
        mode = OFBMode(VectorAES(KEY256))
        payloads = [bytes(range(i % 256)) * 3 for i in (1, 7, 91, 200)]
        ivs = [derive_iv(b"seg", i, 16) for i in range(len(payloads))]
        ciphertexts = mode.encrypt_segments(ivs, payloads)
        assert mode.decrypt_segments(ivs, ciphertexts) == payloads
        assert all(c != p for c, p in zip(ciphertexts, payloads) if p)

    def test_empty_batch(self):
        assert OFBMode(VectorAES(KEY128)).keystream_batch([], []) == []

    def test_mismatched_args_rejected(self):
        mode = OFBMode(VectorAES(KEY128))
        iv = derive_iv(b"x", 0, 16)
        with pytest.raises(ValueError):
            mode.keystream_batch([iv], [1, 2])
        with pytest.raises(ValueError):
            mode.keystream_batch([iv], [-1])
        with pytest.raises(ValueError):
            mode.keystream_batch([b"short"], [4])

    @settings(max_examples=20, deadline=None)
    @given(data=st.lists(st.integers(0, 200), min_size=1, max_size=8),
           salt=st.binary(max_size=8))
    def test_property_batch_equals_scalar(self, data, salt):
        vec = OFBMode(VectorAES(KEY128))
        scalar = OFBMode(AES(KEY128))
        ivs = [derive_iv(salt, i, 16) for i in range(len(data))]
        assert vec.keystream_batch(ivs, data) == \
            [scalar.keystream(iv, n) for iv, n in zip(ivs, data)]


@pytest.mark.slow
def test_vectorized_throughput_at_least_10x():
    """The acceptance floor, on a reduced payload so the (deliberately
    slow) scalar reference stays test-sized; ``benchmarks/
    crypto_microbench.py`` measures the full 1 MB figure."""
    total, segment = 96 * 1024, 1460
    payloads = []
    remaining = total
    while remaining > 0:
        size = min(segment, remaining)
        payloads.append(bytes(size))
        remaining -= size
    ivs = [derive_iv(b"perf", i, 16) for i in range(len(payloads))]

    scalar = OFBMode(AES(KEY256))
    start = time.perf_counter()
    expected = [scalar.encrypt(iv, p) for iv, p in zip(ivs, payloads)]
    scalar_s = time.perf_counter() - start

    vec = OFBMode(VectorAES(KEY256))
    start = time.perf_counter()
    got = vec.encrypt_segments(ivs, payloads)
    vector_s = time.perf_counter() - start

    assert got == expected  # bit-exact before fast
    assert scalar_s / vector_s >= 10.0, (
        f"vectorized OFB-AES only {scalar_s / vector_s:.1f}x faster"
    )
