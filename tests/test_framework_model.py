"""FrameworkModel + PolicyAdvisor: the Fig. 1 workflow end to end."""

import pytest

from repro.core import (
    EncryptionPolicy,
    FrameworkModel,
    PolicyAdvisor,
    calibrate_scenario,
    default_candidates,
    standard_policies,
)
from repro.core.distortion import DistortionPolynomial
from repro.crypto.timing import reference_cipher_cost

COSTS = {name: reference_cipher_cost(name)
         for name in ("AES128", "AES256", "3DES")}
POLY = DistortionPolynomial(coefficients=(0.0, 40.0, 4.0), cap=8000.0)


@pytest.fixture(scope="module")
def slow_scenario(slow_bitstream):
    return calibrate_scenario(
        slow_bitstream, cipher_costs=COSTS, polynomial=POLY,
        sensitivity_fraction=0.55, recovery_fraction=0.9,
        baseline_distortion=6.0,
    )


@pytest.fixture(scope="module")
def fast_scenario(fast_bitstream):
    return calibrate_scenario(
        fast_bitstream, cipher_costs=COSTS, polynomial=POLY,
        sensitivity_fraction=0.9, recovery_fraction=0.02,
        baseline_distortion=6.0,
    )


class TestFrameworkModel:
    def test_delay_ordering(self, slow_scenario):
        model = FrameworkModel(slow_scenario)
        policies = standard_policies("AES256")
        delays = {name: model.predict(p).delay_ms
                  for name, p in policies.items()}
        assert delays["none"] < delays["I"] < delays["all"]
        assert delays["none"] < delays["P"] <= delays["all"] + 1e-9

    def test_receiver_unharmed_by_encryption(self, slow_scenario):
        model = FrameworkModel(slow_scenario)
        for policy in standard_policies("AES256").values():
            prediction = model.predict(policy)
            assert prediction.receiver_psnr_db > 35.0

    def test_eavesdropper_distortion_ordering_slow(self, slow_scenario):
        """Slow motion: I-encryption devastates, P-encryption dents."""
        model = FrameworkModel(slow_scenario)
        policies = standard_policies("AES256")
        psnr = {name: model.predict(p).eavesdropper_psnr_db
                for name, p in policies.items()}
        assert psnr["all"] <= psnr["I"] + 1.0
        assert psnr["I"] < psnr["P"] - 5.0
        assert psnr["P"] < psnr["none"]

    def test_eavesdropper_distortion_ordering_fast(self, fast_scenario):
        """Fast motion: P-encryption hurts more than I-encryption."""
        model = FrameworkModel(fast_scenario)
        policies = standard_policies("AES256")
        psnr = {name: model.predict(p).eavesdropper_psnr_db
                for name, p in policies.items()}
        assert psnr["P"] < psnr["I"] - 3.0
        assert psnr["all"] < psnr["P"] + 1.0

    def test_predict_many(self, slow_scenario):
        model = FrameworkModel(slow_scenario)
        results = model.predict_many(standard_policies("AES128"))
        assert set(results) == {"none", "I", "P", "all"}


class TestAdvisor:
    def test_slow_motion_recommends_i_only(self, slow_scenario):
        """For slow motion, I-frame encryption suffices (Section 6.2) and
        is the cheapest confidential policy."""
        advisor = PolicyAdvisor(slow_scenario)
        choice = advisor.recommend(target_psnr_db=15.0)
        assert choice.satisfied
        assert choice.recommended.policy.mode == "i_frames"

    def test_fast_motion_needs_p_fraction(self, fast_scenario):
        """For fast motion, I-only leaks; the advisor escalates to a
        mixture (the paper lands on I+20%P)."""
        advisor = PolicyAdvisor(fast_scenario)
        choice = advisor.recommend(target_psnr_db=15.0)
        assert choice.satisfied
        policy = choice.recommended.policy
        assert policy.mode in ("i_plus_p_fraction", "p_frames", "all")

    def test_impossible_target(self, slow_scenario):
        advisor = PolicyAdvisor(slow_scenario)
        choice = advisor.recommend(target_psnr_db=-10.0)
        assert not choice.satisfied
        assert choice.recommended is None
        assert len(choice.sweep) > 0

    def test_recommended_is_cheapest_satisfying(self, fast_scenario):
        advisor = PolicyAdvisor(fast_scenario)
        choice = advisor.recommend(target_psnr_db=15.0)
        for prediction in choice.sweep.values():
            if prediction.eavesdropper_psnr_db <= 15.0:
                assert (choice.recommended.delay_ms
                        <= prediction.delay_ms + 1e-9)

    def test_default_candidates_shape(self):
        candidates = default_candidates("3DES", fractions=(0.2, 0.5))
        labels = [c.label for c in candidates]
        assert labels[0] == "I(3DES)"
        assert "I+20%P(3DES)" in labels
        assert labels[-1] == "all(3DES)"
