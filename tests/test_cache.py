"""Sharded result cache: layout, corruption handling, eviction, index
backends, crash-safe maintenance, and legacy-flat-layout migration."""

import hashlib
import json
import shutil

import pytest

from repro.testbed.cache import (
    QUARANTINE_DIR,
    SQLITE_AVAILABLE,
    IndexEntry,
    JsonlIndexBackend,
    ResultCache,
    RunMetrics,
)

INDEX_KINDS = [
    pytest.param("sqlite", marks=pytest.mark.skipif(
        not SQLITE_AVAILABLE, reason="sqlite3 unavailable")),
    "jsonl",
]


def make_key(label) -> str:
    return hashlib.sha256(str(label).encode()).hexdigest()


def make_runs(value: float = 1.0):
    return [RunMetrics(mean_delay_ms=value, mean_waiting_ms=2.0,
                       average_power_w=3.0, receiver_psnr_db=38.5)]


@pytest.fixture(params=INDEX_KINDS)
def index_kind(request):
    return request.param


@pytest.fixture()
def cache(tmp_path, index_kind):
    cache = ResultCache(tmp_path, index=index_kind)
    yield cache
    cache.close()


class TestShardedLayout:
    def test_entry_lands_in_its_shard(self, cache, tmp_path):
        key = make_key("cell")
        cache.put_runs(key, make_runs())
        assert (tmp_path / key[:2] / f"{key}.json").is_file()
        assert not (tmp_path / f"{key}.json").exists()
        assert cache.get_runs(key) == make_runs()

    def test_len_and_stats_come_from_the_index(self, cache):
        for i in range(5):
            cache.put_runs(make_key(i), make_runs(float(i)))
        assert len(cache) == 5
        stats = cache.stats()
        assert stats["entries"] == 5
        assert stats["total_bytes"] == cache.total_bytes() > 0
        assert stats["index_backend"] == cache._index.name

    def test_round_trip_preserves_floats(self, cache):
        runs = [RunMetrics(mean_delay_ms=0.1 + 0.2,
                           mean_waiting_ms=1e-17,
                           average_power_w=3.14159265358979,
                           eavesdropper_psnr_db=None)]
        cache.put_runs("k" * 64, runs)
        assert cache.get_runs("k" * 64) == runs

    def test_missing_key_is_a_miss(self, cache):
        assert cache.get_runs("absent") is None
        assert cache.misses == 1
        assert cache.hits == 0


BAD_PAYLOADS = {
    "not-json": "{definitely not json",
    "not-a-dict": json.dumps([1, 2, 3]),
    "missing-runs": json.dumps({"meta": {}}),
    "runs-not-list": json.dumps({"runs": {"a": 1}}),
    "empty-runs": json.dumps({"runs": []}),
    "run-not-dict": json.dumps({"runs": [7]}),
    "future-schema-field": json.dumps({"runs": [{
        "mean_delay_ms": 1.0, "mean_waiting_ms": 2.0,
        "average_power_w": 3.0, "quantum_entanglement": 9.0}]}),
    "missing-required-field": json.dumps({"runs": [{
        "mean_delay_ms": 1.0, "mean_waiting_ms": 2.0}]}),
    "wrong-value-type": json.dumps({"runs": [{
        "mean_delay_ms": "fast", "mean_waiting_ms": 2.0,
        "average_power_w": 3.0}]}),
}


class TestCorruptEntries:
    @pytest.mark.parametrize("payload", sorted(BAD_PAYLOADS),
                             ids=sorted(BAD_PAYLOADS))
    def test_malformed_entry_is_a_quarantined_miss(self, cache, tmp_path,
                                                   payload):
        key = make_key(payload)
        cache.put_runs(key, make_runs())
        cache.backend.path_for(key).write_text(BAD_PAYLOADS[payload])

        assert cache.get_runs(key) is None
        assert cache.corrupt == 1
        assert cache.misses == 1
        assert cache.hits == 0
        # entry is gone from the store and the index, kept for post-mortem
        assert not cache.backend.path_for(key).exists()
        assert (tmp_path / QUARANTINE_DIR / f"{key}.json").is_file()
        assert len(cache) == 0
        # a second read is a plain miss, not another corruption
        assert cache.get_runs(key) is None
        assert cache.corrupt == 1
        assert cache.misses == 2

    def test_get_still_returns_schema_invalid_json(self, cache):
        """``get`` is the raw accessor: decodable JSON comes back as-is,
        only ``get_runs`` applies the schema."""
        key = make_key("raw")
        cache.put_runs(key, make_runs())
        cache.backend.path_for(key).write_text(
            BAD_PAYLOADS["missing-runs"])
        assert cache.get(key) == {"meta": {}}
        assert cache.corrupt == 0


class TestOrphanTempFiles:
    def _plant_orphans(self, cache, tmp_path):
        key = make_key("live")
        cache.put_runs(key, make_runs())
        (tmp_path / ".tmp-crashed1.json").write_text("{")
        (tmp_path / key[:2] / ".tmp-crashed2.json").write_text("{")
        return key

    def test_orphans_are_not_counted_as_entries(self, cache, tmp_path):
        self._plant_orphans(cache, tmp_path)
        assert len(cache) == 1
        assert cache.stats()["entries"] == 1

    def test_gc_sweeps_stale_orphans(self, tmp_path, index_kind):
        with ResultCache(tmp_path, index=index_kind,
                         stale_tmp_seconds=0.0) as cache:
            key = self._plant_orphans(cache, tmp_path)
            report = cache.gc()
            assert report["tmp_removed"] == 2
            assert report["entries"] == 1
            assert not (tmp_path / ".tmp-crashed1.json").exists()
            assert not (tmp_path / key[:2] / ".tmp-crashed2.json").exists()
            assert cache.get_runs(key) == make_runs()

    def test_gc_spares_fresh_temp_files(self, tmp_path, index_kind):
        with ResultCache(tmp_path, index=index_kind,
                         stale_tmp_seconds=3600.0) as cache:
            self._plant_orphans(cache, tmp_path)
            assert cache.gc()["tmp_removed"] == 0
            assert (tmp_path / ".tmp-crashed1.json").exists()

    def test_clear_removes_orphans_regardless_of_age(self, cache, tmp_path):
        self._plant_orphans(cache, tmp_path)
        assert cache.clear() == 1  # orphans removed but not counted
        assert len(cache) == 0
        assert not (tmp_path / ".tmp-crashed1.json").exists()
        assert list(tmp_path.glob("*/.tmp-*")) == []


class TestEviction:
    def test_max_entries_evicts_least_recently_used(self, tmp_path,
                                                    index_kind):
        with ResultCache(tmp_path, index=index_kind,
                         max_entries=2) as cache:
            k1, k2, k3 = (make_key(i) for i in range(3))
            cache.put_runs(k1, make_runs(1.0))
            cache.put_runs(k2, make_runs(2.0))
            assert cache.get_runs(k1) is not None  # k1 now more recent
            cache.put_runs(k3, make_runs(3.0))
            assert len(cache) == 2
            assert cache.evictions == 1
            assert cache.get_runs(k2) is None  # the LRU entry went
            assert cache.get_runs(k1) is not None
            assert cache.get_runs(k3) is not None
            assert not cache.backend.path_for(k2).exists()

    def test_max_bytes_respected(self, tmp_path, index_kind):
        probe = ResultCache(tmp_path / "probe", index=index_kind)
        probe.put_runs(make_key("probe"), make_runs())
        entry_size = probe.total_bytes()
        probe.close()

        with ResultCache(tmp_path / "real", index=index_kind,
                         max_bytes=int(entry_size * 2.5)) as cache:
            for i in range(4):
                cache.put_runs(make_key(i), make_runs())
            assert cache.evictions == 2
            assert len(cache) == 2
            assert cache.total_bytes() <= cache.max_bytes

    def test_newest_entry_never_evicted_by_its_own_put(self, tmp_path,
                                                       index_kind):
        with ResultCache(tmp_path, index=index_kind,
                         max_entries=1) as cache:
            for i in range(3):
                cache.put_runs(make_key(i), make_runs(float(i)))
                assert cache.get_runs(make_key(i)) is not None
            assert len(cache) == 1

    def test_gc_enforces_caps_on_existing_directory(self, tmp_path,
                                                    index_kind):
        with ResultCache(tmp_path, index=index_kind) as cache:
            for i in range(6):
                cache.put_runs(make_key(i), make_runs())
        with ResultCache(tmp_path, index=index_kind,
                         max_entries=2) as capped:
            report = capped.gc()
            assert report["evicted"] == 4
            assert report["entries"] == 2
            assert len(capped) == 2

    def test_bad_caps_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=0)
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path, max_entries=-1)
        with pytest.raises(ValueError, match="index"):
            ResultCache(tmp_path, index="redis")


class TestLegacyMigration:
    def _plant_flat_layout(self, tmp_path, n=3):
        payloads = {}
        for i in range(n):
            key = make_key(f"legacy-{i}")
            payload = {"meta": {"cell": i},
                       "runs": [{"mean_delay_ms": float(i),
                                 "mean_waiting_ms": 2.0,
                                 "average_power_w": 3.0}]}
            (tmp_path / f"{key}.json").write_text(json.dumps(payload))
            payloads[key] = payload
        return payloads

    def test_flat_entries_adopted_into_shards(self, tmp_path, index_kind):
        payloads = self._plant_flat_layout(tmp_path)
        with ResultCache(tmp_path, index=index_kind) as cache:
            assert len(cache) == 3
            assert cache.migrated == 3
            for key, payload in payloads.items():
                # byte-identical payloads, now under the shard path
                assert cache.get(key) == payload
                assert cache.backend.path_for(key).is_file()
                assert not (tmp_path / f"{key}.json").exists()
            assert cache.hits == 3

    def test_migrated_entries_replay_as_runs(self, tmp_path, index_kind):
        payloads = self._plant_flat_layout(tmp_path)
        with ResultCache(tmp_path, index=index_kind) as cache:
            for key in payloads:
                runs = cache.get_runs(key)
                assert runs is not None and len(runs) == 1


class TestIndexRebuild:
    def test_lost_index_rebuilt_from_shards(self, tmp_path, index_kind):
        with ResultCache(tmp_path, index=index_kind) as cache:
            for i in range(3):
                cache.put_runs(make_key(i), make_runs())
        for path in list(tmp_path.glob("index.*")):
            path.unlink()
        with ResultCache(tmp_path, index=index_kind) as reopened:
            assert len(reopened) == 3
            assert reopened.total_bytes() > 0
            assert reopened.get_runs(make_key(1)) is not None

    def test_get_heals_index_when_file_vanishes(self, cache):
        key = make_key("gone")
        cache.put_runs(key, make_runs())
        cache.backend.path_for(key).unlink()  # deleted behind our back
        assert cache.get_runs(key) is None
        assert len(cache) == 0  # the index followed the files

    def test_verify_rebuilds_and_quarantines(self, cache, tmp_path):
        good = make_key("good")
        bad = make_key("bad")
        adopted = make_key("adopted")
        cache.put_runs(good, make_runs())
        cache.put_runs(bad, make_runs())
        cache.backend.path_for(bad).write_text("{broken")
        # a file written by another process, unknown to this index
        foreign = cache.backend.path_for(adopted)
        foreign.parent.mkdir(parents=True, exist_ok=True)
        foreign.write_text(json.dumps(
            {"meta": {}, "runs": [{"mean_delay_ms": 1.0,
                                   "mean_waiting_ms": 2.0,
                                   "average_power_w": 3.0}]}))
        cache._index.remove(adopted)

        report = cache.verify()
        assert report["corrupt"] == 1
        assert report["adopted"] == 1
        assert report["stale_index"] == 1  # the quarantined key's old row
        assert report["entries"] == 2
        assert len(cache) == 2
        assert (tmp_path / QUARANTINE_DIR / f"{bad}.json").is_file()
        assert cache.get_runs(good) is not None
        assert cache.get_runs(adopted) is not None

    @pytest.mark.skipif(not SQLITE_AVAILABLE, reason="sqlite3 unavailable")
    def test_corrupt_sqlite_index_recovered(self, tmp_path):
        with ResultCache(tmp_path, index="sqlite") as cache:
            cache.put_runs(make_key("x"), make_runs())
        (tmp_path / "index.sqlite").write_bytes(b"this is not a database")
        with ResultCache(tmp_path, index="sqlite") as reopened:
            assert len(reopened) == 1  # fresh index rebuilt from shards
            assert reopened.get_runs(make_key("x")) is not None

    def test_torn_jsonl_tail_skipped(self, tmp_path):
        with ResultCache(tmp_path, index="jsonl") as cache:
            for i in range(2):
                cache.put_runs(make_key(i), make_runs())
        with open(tmp_path / "index.jsonl", "a") as handle:
            handle.write('{"op": "put", "key": "torn')  # crashed mid-append
        with ResultCache(tmp_path, index="jsonl") as reopened:
            assert len(reopened) == 2


@pytest.mark.skipif(not SQLITE_AVAILABLE, reason="sqlite3 unavailable")
class TestBackendParity:
    """The sqlite and JSON-lines indexes must be behaviourally identical."""

    def _drive(self, cache):
        keys = [make_key(i) for i in range(6)]
        for index, key in enumerate(keys):
            cache.put_runs(key, make_runs(float(index)))
        for key in keys[:2]:
            cache.get_runs(key)
        cache.get_runs("never-there")
        cache.backend.path_for(keys[2]).write_text("{broken")
        cache.get_runs(keys[2])
        report = cache.gc()
        surviving = sorted(entry.key for entry in cache._index.entries())
        observable = {
            "len": len(cache),
            "total_bytes": cache.total_bytes(),
            "surviving": surviving,
            "gc": report,
        }
        stats = cache.stats()
        observable.update({name: stats[name] for name in
                           ("entries", "hits", "misses", "evictions",
                            "corrupt", "hit_rate")})
        return observable

    def test_same_observable_behaviour(self, tmp_path):
        with ResultCache(tmp_path / "a", index="sqlite",
                         max_entries=3) as sqlite_cache:
            via_sqlite = self._drive(sqlite_cache)
        with ResultCache(tmp_path / "b", index="jsonl",
                         max_entries=3) as jsonl_cache:
            via_jsonl = self._drive(jsonl_cache)
        assert via_sqlite == via_jsonl

    def test_auto_prefers_sqlite(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            cache.put_runs(make_key("x"), make_runs())
            assert cache.stats()["index_backend"] == "sqlite"
            assert (tmp_path / "index.sqlite").is_file()


class TestJsonlCompaction:
    def test_log_compacts_instead_of_growing_forever(self, tmp_path):
        index = JsonlIndexBackend(tmp_path / "index.jsonl")
        for i in range(2000):
            index.upsert(IndexEntry(f"k{i % 10}", 10, float(i), float(i)))
        assert index.count() == 10
        lines = (tmp_path / "index.jsonl").read_text().splitlines()
        assert len(lines) < 1000  # compacted, not 2000 appended ops
        reloaded = JsonlIndexBackend(tmp_path / "index.jsonl")
        assert reloaded.count() == 10


class TestClear:
    def test_clear_counts_entries_and_wipes_quarantine(self, cache,
                                                       tmp_path):
        for i in range(3):
            cache.put_runs(make_key(i), make_runs())
        bad = make_key(0)
        cache.backend.path_for(bad).write_text("{broken")
        cache.get_runs(bad)  # quarantines it
        assert cache.clear() == 2
        assert len(cache) == 0
        assert list((tmp_path / QUARANTINE_DIR).glob("*")) == []
        assert cache.get_runs(make_key(1)) is None

    def test_clear_on_missing_directory(self, tmp_path, index_kind):
        cache = ResultCache(tmp_path / "never-created", index=index_kind)
        assert cache.clear() == 0
        assert len(cache) == 0
        assert cache.stats()["entries"] == 0


class TestLegacyEngineMigration:
    """A cache written in the old flat layout replays byte-identically."""

    def test_flat_to_sharded_preserves_summaries(self, tmp_path, index_kind,
                                                 slow_clip, slow_bitstream):
        from repro.core import standard_policies
        from repro.testbed import (DEVICES, ExperimentConfig,
                                   ExperimentEngine, GridCell)

        def config(policy):
            return ExperimentConfig(
                policy=standard_policies("AES256")[policy],
                device=DEVICES["samsung-s2"],
                sensitivity_fraction=0.55,
                decode_video=False,
            )

        cells = [GridCell("slow", config(p)) for p in ("none", "I", "all")]
        with ExperimentEngine(
                workers=1, master_seed=7, repeats=2,
                cache=ResultCache(tmp_path, index=index_kind)) as fresh:
            fresh.add_scenario("slow", slow_clip, slow_bitstream)
            baseline = fresh.run_grid(cells)
            assert fresh.simulations_run == 2 * len(cells)
        # flatten back to the legacy layout: entries at the top level,
        # no shard directories, no index files
        for shard in list(tmp_path.iterdir()):
            if shard.is_dir() and shard.name != QUARANTINE_DIR:
                for path in shard.glob("*.json"):
                    path.rename(tmp_path / path.name)
                shutil.rmtree(shard)
        for path in list(tmp_path.glob("index.*")):
            path.unlink()

        replay_cache = ResultCache(tmp_path, index=index_kind)
        with ExperimentEngine(workers=1, master_seed=7, repeats=2,
                              cache=replay_cache) as replay:
            replay.add_scenario("slow", slow_clip, slow_bitstream)
            replayed = replay.run_grid(cells)
            assert replay.simulations_run == 0
        assert replay_cache.hits == len(cells)
        assert replay_cache.migrated == len(cells)
        assert replayed == baseline
        assert all(summary.from_cache for summary in replayed)
