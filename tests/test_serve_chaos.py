"""Chaos acceptance for `repro serve`: the daemon is SIGKILLed mid-burst
and restarted on the same port over the same memo cache; hammering
clients must reconnect through their transport backoff and every answer
— before the kill, after the restart, cold or memoized — must be
byte-identical to a cold local `PolicyAdvisor` evaluation.  The memo
store left behind must pass `repro cache verify`."""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.core.advisor import encode_choice
from repro.testbed.advisor_service import (
    AdvisorClient,
    ServiceRequest,
    evaluate_request,
)
from repro.testbed.netproto import Backoff

_SRC_ROOT = Path(repro.__file__).resolve().parent.parent

TINY = dict(frames=12, gop=6)
REQUESTS = [ServiceRequest(seed=seed, **TINY) for seed in (61, 62, 63)]


def _child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_SRC_ROOT)] + ([env["PYTHONPATH"]] if "PYTHONPATH" in env
                            else []))
    return env


def _serve(cache_dir, port):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--cache", str(cache_dir), "--port", str(port)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=_child_env())
    line = proc.stdout.readline()
    assert "serving advisor on" in line, line
    bound = int(line.strip().rpartition(":")[2])
    return proc, bound


@pytest.mark.slow
class TestServeChaos:
    def test_daemon_kill_restart_answers_stay_byte_identical(self,
                                                             tmp_path):
        expected = {request: encode_choice(evaluate_request(request))
                    for request in REQUESTS}
        cache_dir = tmp_path / "memo"

        server, port = _serve(cache_dir, 0)
        answers = []        # (request, source, data), appended under lock
        errors = []
        lock = threading.Lock()
        stop = threading.Event()

        def hammer(worker):
            try:
                # generous transport attempts: calls issued while the
                # daemon is down must survive into the restart
                with AdvisorClient(
                        socket_host, port,
                        attempts=40,
                        backoff=Backoff(base_s=0.05, cap_s=0.5),
                        connect_timeout_s=2.0) as client:
                    i = worker
                    while not stop.is_set():
                        request = REQUESTS[i % len(REQUESTS)]
                        answer = client.recommend(request)
                        with lock:
                            answers.append(
                                (request, answer.source, answer.data))
                        i += 1
            except Exception as exc:  # noqa: BLE001 - recorded below
                errors.append(exc)

        socket_host = "127.0.0.1"
        threads = [threading.Thread(target=hammer, args=(worker,))
                   for worker in range(4)]
        try:
            for thread in threads:
                thread.start()

            # let the burst land some answers, then murder the daemon
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with lock:
                    if len(answers) >= 2:
                        break
                time.sleep(0.05)
            with lock:
                pre_kill = len(answers)
            assert pre_kill >= 2, "burst never got going"

            server.kill()
            server.wait()
            time.sleep(0.3)  # clients are now retrying into a dead port
            server, _ = _serve(cache_dir, port)

            # the restarted daemon must serve the reconnecting clients
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with lock:
                    if len(answers) >= pre_kill + len(REQUESTS):
                        break
                time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60.0)
            server.kill()
            server.wait()

        assert not errors, errors
        with lock:
            collected = list(answers)
        assert len(collected) >= pre_kill + len(REQUESTS), \
            "no answers after the restart"

        # every answer, whatever its era or source, matches the cold
        # local evaluation byte for byte
        for request, source, data in collected:
            assert source in ("cold", "memo")
            assert data == expected[request], (request.seed, source)
        # the restarted daemon actually reused the surviving memo store
        post_restart = collected[pre_kill:]
        assert any(source == "memo" for _, source, _ in post_restart)

        # and the store the chaos left behind is internally consistent
        assert main(["cache", "verify", "--dir", str(cache_dir)]) == 0
