"""Testbed unit pieces: devices, energy (eq. 29), transport outcomes, traces."""

import numpy as np
import pytest

from repro.testbed.devices import DEVICES, GALAXY_S2, HTC_AMAZE_4G
from repro.testbed.energy import (
    average_power_w,
    microamp_hours_to_watts,
)
from repro.testbed.transport import (
    HTTP_TCP,
    UDP_RTP,
    TransportConfig,
    delivery_outcome,
    delivery_outcome_with,
)


class TestDevices:
    def test_registry(self):
        assert DEVICES["samsung-s2"] is GALAXY_S2
        assert DEVICES["htc-amaze"] is HTC_AMAZE_4G

    def test_cipher_cost_ordering(self):
        for device in DEVICES.values():
            aes128 = device.cipher_cost("AES128").per_byte_s
            aes256 = device.cipher_cost("AES256").per_byte_s
            des3 = device.cipher_cost("3DES").per_byte_s
            assert aes128 < aes256 < des3

    def test_htc_crypto_slower_than_samsung(self):
        """The paper's Figs. 8/13: HTC delays exceed the Samsung's."""
        for algorithm in ("AES128", "AES256", "3DES"):
            assert (HTC_AMAZE_4G.cipher_cost(algorithm).per_byte_s
                    > GALAXY_S2.cipher_cost(algorithm).per_byte_s)

    def test_unknown_cipher(self):
        with pytest.raises(ValueError):
            GALAXY_S2.cipher_cost("Blowfish")


class TestEnergy:
    def test_eq29_conversion(self):
        # 1000 uAh over 10 s at 3.9 V -> 1.404 W.
        assert microamp_hours_to_watts(1000.0, 10.0) == pytest.approx(1.404)

    def test_breakdown_arithmetic(self):
        energy = average_power_w(GALAXY_S2, duration_s=10.0,
                                 crypto_time_s=2.0, airtime_s=1.0)
        expected = (GALAXY_S2.base_power_w * 10
                    + GALAXY_S2.cpu_power_w * 2
                    + GALAXY_S2.radio_tx_power_w * 1)
        assert energy.total_energy_j == pytest.approx(expected)
        assert energy.average_power_w == pytest.approx(expected / 10)

    def test_monitor_reading_roundtrip(self):
        energy = average_power_w(GALAXY_S2, duration_s=10.0,
                                 crypto_time_s=1.0, airtime_s=0.5)
        reading = energy.equivalent_monitor_reading_uah()
        assert microamp_hours_to_watts(reading, 10.0) == pytest.approx(
            energy.average_power_w
        )

    def test_more_crypto_more_power(self):
        lo = average_power_w(GALAXY_S2, duration_s=10, crypto_time_s=0.5,
                             airtime_s=1.0)
        hi = average_power_w(GALAXY_S2, duration_s=10, crypto_time_s=5.0,
                             airtime_s=1.0)
        assert hi.average_power_w > lo.average_power_w

    def test_validation(self):
        with pytest.raises(ValueError):
            average_power_w(GALAXY_S2, duration_s=0.0, crypto_time_s=0,
                            airtime_s=0)
        with pytest.raises(ValueError):
            average_power_w(GALAXY_S2, duration_s=1.0, crypto_time_s=2.0,
                            airtime_s=0.0)
        with pytest.raises(ValueError):
            microamp_hours_to_watts(-1.0, 1.0)


class TestTransport:
    def test_configs(self):
        assert not UDP_RTP.reliable
        assert HTTP_TCP.reliable
        assert HTTP_TCP.header_bytes > UDP_RTP.header_bytes

    def test_udp_loss_is_final(self):
        rng = np.random.default_rng(0)
        outcomes = [delivery_outcome(UDP_RTP, 0.5, rng) for _ in range(2000)]
        delivered = np.mean([o.delivered for o in outcomes])
        assert delivered == pytest.approx(0.5, abs=0.04)
        assert all(o.attempts == 1 for o in outcomes)
        assert all(o.extra_delay_s == 0.0 for o in outcomes)

    def test_tcp_retransmits_until_delivered(self):
        rng = np.random.default_rng(1)
        outcomes = [delivery_outcome(HTTP_TCP, 0.5, rng) for _ in range(2000)]
        delivered = np.mean([o.delivered for o in outcomes])
        assert delivered > 0.999
        retried = [o for o in outcomes if o.attempts > 1]
        assert retried
        assert all(o.extra_delay_s >= HTTP_TCP.rto_s for o in retried)

    def test_tcp_gives_up_eventually(self):
        rng = np.random.default_rng(2)
        outcome = delivery_outcome(HTTP_TCP, 0.0, rng)
        assert not outcome.delivered
        assert outcome.attempts == HTTP_TCP.max_retransmissions + 1

    def test_perfect_channel_no_retries(self):
        rng = np.random.default_rng(3)
        outcome = delivery_outcome(HTTP_TCP, 1.0, rng)
        assert outcome.delivered and outcome.attempts == 1

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            delivery_outcome(UDP_RTP, 1.5, rng)
        with pytest.raises(ValueError):
            TransportConfig("bad", header_bytes=-1, reliable=False)

    @pytest.mark.parametrize("bad_rate", [
        -0.1, 1.0000001, 2.0, float("nan"), float("inf"), float("-inf"),
    ])
    def test_delivery_rate_outside_unit_interval_rejected(self, bad_rate):
        """delivery_outcome must never silently accept a rate outside
        [0, 1] (NaN included) — it would skew the whole loss process."""
        rng = np.random.default_rng(5)
        for config in (UDP_RTP, HTTP_TCP):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                delivery_outcome(config, bad_rate, rng)

    def test_delivery_rate_boundaries_accepted(self):
        rng = np.random.default_rng(6)
        assert not delivery_outcome(UDP_RTP, 0.0, rng).delivered
        assert delivery_outcome(UDP_RTP, 1.0, rng).delivered

    def test_delivery_outcome_with_custom_attempts(self):
        """The callable form drives the same retransmission loop: here
        the third attempt succeeds, costing two RTOs."""
        draws = iter([False, False, True])
        outcome = delivery_outcome_with(HTTP_TCP, lambda: next(draws))
        assert outcome.delivered
        assert outcome.attempts == 3
        assert outcome.extra_delay_s == pytest.approx(2 * HTTP_TCP.rto_s)
