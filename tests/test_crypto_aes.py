"""AES: FIPS-197 known-answer tests, inversion, and structural properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, _build_sbox

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
KEY128 = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
KEY192 = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
KEY256 = bytes.fromhex(
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
)


class TestKnownAnswers:
    """FIPS-197 Appendix C example vectors."""

    def test_aes128(self):
        assert AES(KEY128).encrypt_block(PLAINTEXT).hex() == (
            "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    def test_aes192(self):
        assert AES(KEY192).encrypt_block(PLAINTEXT).hex() == (
            "dda97ca4864cdfe06eaf70a0ec0d7191"
        )

    def test_aes256(self):
        assert AES(KEY256).encrypt_block(PLAINTEXT).hex() == (
            "8ea2b7ca516745bfeafc49904b496089"
        )

    def test_aes128_decrypt_known_answer(self):
        cipher = AES(KEY128)
        ct = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert cipher.decrypt_block(ct) == PLAINTEXT


class TestSbox:
    def test_sbox_is_permutation(self):
        sbox, inv = _build_sbox()
        assert sorted(sbox) == list(range(256))
        assert sorted(inv) == list(range(256))

    def test_sbox_inverse_relation(self):
        sbox, inv = _build_sbox()
        for value in range(256):
            assert inv[sbox[value]] == value

    def test_sbox_known_entries(self):
        sbox, _ = _build_sbox()
        # S(0x00) = 0x63 and S(0x53) = 0xed per FIPS-197.
        assert sbox[0x00] == 0x63
        assert sbox[0x53] == 0xED

    def test_sbox_has_no_fixed_points(self):
        sbox, _ = _build_sbox()
        assert all(sbox[value] != value for value in range(256))


class TestValidation:
    @pytest.mark.parametrize("key_len", [0, 8, 15, 17, 31, 33, 64])
    def test_bad_key_length_rejected(self, key_len):
        with pytest.raises(ValueError):
            AES(bytes(key_len))

    @pytest.mark.parametrize("block_len", [0, 8, 15, 17, 32])
    def test_bad_block_length_rejected(self, block_len):
        cipher = AES(KEY128)
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(block_len))
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(block_len))

    def test_rounds_per_key_size(self):
        assert AES(KEY128).rounds == 10
        assert AES(KEY192).rounds == 12
        assert AES(KEY256).rounds == 14


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    def test_roundtrip_aes128(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @settings(max_examples=10, deadline=None)
    @given(key=st.binary(min_size=32, max_size=32),
           block=st.binary(min_size=16, max_size=16))
    def test_roundtrip_aes256(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_avalanche_single_bit_flip(self):
        cipher = AES(KEY128)
        base = cipher.encrypt_block(PLAINTEXT)
        flipped = bytearray(PLAINTEXT)
        flipped[0] ^= 0x01
        other = cipher.encrypt_block(bytes(flipped))
        differing_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(base, other)
        )
        # Expect roughly half of the 128 output bits to flip.
        assert 40 <= differing_bits <= 90

    def test_different_keys_different_ciphertexts(self):
        other_key = bytes([KEY128[0] ^ 0xFF]) + KEY128[1:]
        assert (AES(KEY128).encrypt_block(PLAINTEXT)
                != AES(other_key).encrypt_block(PLAINTEXT))

    def test_block_size_attribute(self):
        assert AES(KEY128).block_size == BLOCK_SIZE == 16
