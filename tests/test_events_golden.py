"""Golden regression fixtures for the multi-flow kernel.

Small JSON traces of a 2-flow and a 4-flow run are committed under
``tests/golden/``; replaying the same scenario must reproduce them
**byte-identically** (full-precision floats via ``repr``), so a kernel
refactor cannot silently shift results.  Regenerate deliberately with

    REPRO_REGEN_GOLDEN=1 pytest tests/test_events_golden.py

after a change that is *supposed* to move the traces (and say so in the
commit).
"""

import json
import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.core import standard_policies
from repro.testbed.devices import GALAXY_S2
from repro.testbed.multiflow import run_multiflow
from repro.video import CodecConfig, encode_sequence, generate_clip

GOLDEN_DIR = Path(__file__).parent / "golden"
SEED = 2013


@lru_cache(maxsize=1)
def _bitstream():
    # Deliberately not the conftest fixtures: the golden scenario must
    # stay frozen even if the shared test clips are ever re-tuned.
    clip = generate_clip("slow", 24, seed=5)
    return encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))


def _payload(mrun):
    return {
        "schema": 1,
        "seed": SEED,
        "n_flows": mrun.n_flows,
        "flows": [
            [
                {
                    "seq": t.sequence_number,
                    "frame": t.frame_index,
                    "type": t.frame_type.value,
                    "bytes": t.payload_bytes,
                    "encrypted": t.encrypted,
                    "enqueue_s": t.enqueue_time_s,
                    "start_s": t.service_start_s,
                    "encrypt_s": t.encryption_time_s,
                    "transmit_s": t.transmit_time_s,
                    "depart_s": t.departure_time_s,
                    "delivered": t.delivered,
                    "attempts": t.attempts,
                }
                for t in run.trace
            ]
            for run in mrun.flows
        ],
    }


def _serialize(payload) -> str:
    # sort_keys + fixed separators + repr-precision floats: the byte
    # representation is canonical, so equality really is bit equality.
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"


@pytest.mark.parametrize("flows", [2, 4])
def test_golden_replay_byte_identical(flows):
    mrun = run_multiflow(
        _bitstream(),
        flows=flows,
        policy=standard_policies("AES256")["I"],
        device=GALAXY_S2,
        seed=SEED,
    )
    text = _serialize(_payload(mrun))
    path = GOLDEN_DIR / f"multiflow_{flows}flows.json"
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"{path} missing; run REPRO_REGEN_GOLDEN=1 pytest {__file__}"
    )
    assert path.read_text() == text


def test_golden_fixtures_are_valid_json():
    for flows in (2, 4):
        payload = json.loads(
            (GOLDEN_DIR / f"multiflow_{flows}flows.json").read_text())
        assert payload["n_flows"] == flows
        assert all(len(flow_trace) > 0 for flow_trace in payload["flows"])
