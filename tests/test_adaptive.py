"""Adaptive per-window policy selection on mixed-motion content."""

import pytest

from repro.core import EncryptionPolicy, standard_policies
from repro.core.adaptive import (
    AdaptivePolicy,
    DEFAULT_CLASS_POLICIES,
    WindowPlan,
    classify_windows,
    plan_adaptive_policy,
)
from repro.testbed import ExperimentConfig, GALAXY_S2, SenderSimulator
from repro.video import CodecConfig, encode_sequence, packetize
from repro.video.motion import MotionClass
from repro.video.synth import generate_mixed_clip


@pytest.fixture(scope="module")
def mixed_clip():
    return generate_mixed_clip([("slow", 60), ("fast", 60), ("slow", 60)],
                               seed=77)


@pytest.fixture(scope="module")
def mixed_bitstream(mixed_clip):
    return encode_sequence(mixed_clip, CodecConfig(gop_size=30, quantizer=8))


class TestMixedClip:
    def test_segment_lengths(self, mixed_clip):
        assert len(mixed_clip) == 180

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            generate_mixed_clip([])
        with pytest.raises(ValueError):
            generate_mixed_clip([("slow", 0)])


class TestClassification:
    def test_windows_cover_clip(self, mixed_clip):
        windows = classify_windows(mixed_clip, window_frames=30)
        assert windows[0][0] == 0
        assert windows[-1][1] == len(mixed_clip)
        for (_, end_a, _, _), (start_b, _, _, _) in zip(windows, windows[1:]):
            assert end_a == start_b

    def test_detects_the_motion_pattern(self, mixed_clip):
        windows = classify_windows(mixed_clip, window_frames=30)
        classes = [w[2] for w in windows]
        # slow-slow-fast-fast-slow-slow (60-frame segments, 30-frame windows);
        # the boundary windows may classify medium due to the cut.
        assert classes[0] is MotionClass.LOW
        assert classes[2] in (MotionClass.HIGH, MotionClass.MEDIUM)
        assert classes[3] is MotionClass.HIGH
        assert classes[-1] is MotionClass.LOW

    def test_window_size_validated(self, mixed_clip):
        with pytest.raises(ValueError):
            classify_windows(mixed_clip, window_frames=1)


class TestAdaptivePolicy:
    def test_plan_assigns_per_class_policies(self, mixed_clip):
        plan = plan_adaptive_policy(mixed_clip, window_frames=30)
        for window in plan.windows:
            expected = DEFAULT_CLASS_POLICIES[window.motion_class]
            assert window.policy.mode == expected.mode
            assert window.policy.fraction == expected.fraction

    def test_policy_for_frame_boundaries(self, mixed_clip):
        plan = plan_adaptive_policy(mixed_clip, window_frames=30)
        first = plan.windows[0]
        assert plan.policy_for_frame(first.start_frame) is first.policy
        assert plan.policy_for_frame(first.end_frame - 1) is first.policy
        # Overrun falls into the last window.
        assert plan.policy_for_frame(10_000) is plan.windows[-1].policy
        with pytest.raises(ValueError):
            plan.policy_for_frame(-1)

    def test_encrypts_respects_windows(self, mixed_clip, mixed_bitstream):
        plan = plan_adaptive_policy(mixed_clip, window_frames=30)
        packets = packetize(mixed_bitstream, carry_payload=False)
        slow_window_p = [
            p for p in packets
            if p.frame_type.value == "P"
            and plan.policy_for_frame(p.frame_index).mode == "i_frames"
        ]
        # In slow windows no P packet is encrypted.
        assert not any(plan.encrypts(p) for p in slow_window_p)
        fast_window_p = [
            p for p in packets
            if p.frame_type.value == "P"
            and plan.policy_for_frame(p.frame_index).mode
            == "i_plus_p_fraction"
        ]
        fraction = sum(plan.encrypts(p) for p in fast_window_p) / len(
            fast_window_p
        )
        assert 0.05 < fraction < 0.4

    def test_algorithm_override(self, mixed_clip):
        plan = plan_adaptive_policy(mixed_clip, algorithm="3DES")
        assert all(w.policy.algorithm == "3DES" for w in plan.windows)

    def test_contiguity_enforced(self):
        policy = EncryptionPolicy("i_frames", "AES256")
        windows = (
            WindowPlan(0, 30, MotionClass.LOW, policy, 1.0),
            WindowPlan(40, 60, MotionClass.LOW, policy, 1.0),
        )
        with pytest.raises(ValueError):
            AdaptivePolicy(windows=windows, algorithm="AES256")

    def test_summary_runs(self, mixed_clip):
        plan = plan_adaptive_policy(mixed_clip, window_frames=30)
        summary = plan.summary()
        assert sum(count for _, count in summary) == len(mixed_clip)


class TestDrivesSimulator:
    def test_simulator_accepts_adaptive_policy(self, mixed_clip,
                                               mixed_bitstream):
        plan = plan_adaptive_policy(mixed_clip, window_frames=30)
        simulator = SenderSimulator(mixed_bitstream, device=GALAXY_S2)
        run = simulator.run(plan, seed=0)
        static_i = simulator.run(standard_policies("AES256")["I"], seed=0)
        static_mix = simulator.run(
            EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.2),
            seed=0,
        )
        # Adaptive sits between always-I (cheapest) and always-I+20%P.
        assert static_i.mean_delay_ms <= run.mean_delay_ms
        assert run.mean_delay_ms <= static_mix.mean_delay_ms
