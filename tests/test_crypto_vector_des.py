"""Vectorized DES/3DES: known answers, scalar differentials, OFB wiring.

The scalar :mod:`repro.crypto.des` implementation is the oracle: every
vector result must agree with it block-for-block, and the FIPS 46-3 era
known-answer vectors (cross-checked against an independent library
implementation) must hold bit-exactly on both.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    DES,
    OFBMode,
    TripleDES,
    VectorDES,
    VectorTripleDES,
    derive_iv,
)

KEY2 = bytes.fromhex("0123456789abcdeffedcba9876543210")
KEY3 = bytes.fromhex("0123456789abcdef23456789abcdef01456789abcdef0123")

# (key, plaintext, ciphertext) hex triples: the classic NBS/SP 800-17
# style single-DES vectors, verified against an independent oracle.
DES_KATS = [
    ("133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"),
    ("0101010101010101", "8000000000000000", "95f8a5e5dd31d900"),
    ("0101010101010101", "4000000000000000", "dd7f121ca5015619"),
    ("8001010101010101", "0000000000000000", "95a8d72813daa94d"),
    ("7ca110454a1a6e57", "01a1d6d039776742", "690f5b0d9a26939b"),
    ("0131d9619dc1376e", "5cd54ca83def57da", "7a389d10354bd271"),
    ("ffffffffffffffff", "ffffffffffffffff", "7359b2163e4edc58"),
    ("3000000000000000", "1000000000000001", "958e6e627a05557b"),
]

# 2-key and 3-key EDE vectors, same provenance.
TDES_KATS = [
    (KEY2, "5468652071756663", "672f1f22f28b0b91"),
    (KEY2, "4e6f772069732074", "d80a0d8b2bae5e4e"),
    (KEY3, "5468652071756663", "a826fd8ce53b855f"),
    (KEY3, "4e6f772069732074", "314f8327fa7a09a8"),
]


def _blocks(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8).reshape(-1, 8)


class TestKnownAnswers:
    @pytest.mark.parametrize("key,pt,ct", DES_KATS)
    def test_des_vectors(self, key, pt, ct):
        cipher = VectorDES(bytes.fromhex(key))
        assert cipher.encrypt_block(bytes.fromhex(pt)).hex() == ct
        assert cipher.decrypt_block(bytes.fromhex(ct)).hex() == pt

    @pytest.mark.parametrize("key,pt,ct", TDES_KATS)
    def test_3des_vectors(self, key, pt, ct):
        cipher = VectorTripleDES(key)
        assert cipher.encrypt_block(bytes.fromhex(pt)).hex() == ct
        assert cipher.decrypt_block(bytes.fromhex(ct)).hex() == pt

    def test_kats_as_one_batch(self):
        """All single-DES KATs again, but through one encrypt_blocks call
        per key — the batch path must not depend on batch composition."""
        for key, pt, ct in DES_KATS:
            out = VectorDES(bytes.fromhex(key)).encrypt_blocks(
                np.repeat(_blocks(bytes.fromhex(pt)), 5, axis=0))
            assert out.tobytes() == bytes.fromhex(ct) * 5


class TestBatchAgreement:
    @pytest.mark.parametrize("key_len", [16, 24])
    def test_3des_batch_matches_scalar(self, key_len):
        key = bytes(range(key_len))
        rng = np.random.default_rng(99)
        blocks = rng.integers(0, 256, size=(128, 8), dtype=np.uint8)
        scalar = TripleDES(key)
        batch = VectorTripleDES(key).encrypt_blocks(blocks)
        for i in range(blocks.shape[0]):
            assert batch[i].tobytes() == scalar.encrypt_block(
                blocks[i].tobytes())

    def test_des_batch_matches_scalar(self):
        key = bytes.fromhex("133457799bbcdff1")
        rng = np.random.default_rng(7)
        blocks = rng.integers(0, 256, size=(64, 8), dtype=np.uint8)
        scalar = DES(key)
        batch = VectorDES(key).encrypt_blocks(blocks)
        for i in range(blocks.shape[0]):
            assert batch[i].tobytes() == scalar.encrypt_block(
                blocks[i].tobytes())

    def test_decrypt_blocks_inverts(self):
        cipher = VectorTripleDES(KEY3)
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 256, size=(33, 8), dtype=np.uint8)
        assert np.array_equal(
            cipher.decrypt_blocks(cipher.encrypt_blocks(blocks)), blocks)

    def test_empty_batch(self):
        out = VectorTripleDES(KEY3).encrypt_blocks(
            np.zeros((0, 8), dtype=np.uint8))
        assert out.shape == (0, 8)

    def test_bad_shape_rejected(self):
        cipher = VectorTripleDES(KEY3)
        with pytest.raises(ValueError):
            cipher.encrypt_blocks(np.zeros((4, 16), dtype=np.uint8))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")

    def test_input_not_mutated(self):
        blocks = np.zeros((4, 8), dtype=np.uint8)
        VectorTripleDES(KEY3).encrypt_blocks(blocks)
        assert not blocks.any()

    def test_key_validation_delegates_to_scalar(self):
        with pytest.raises(ValueError):
            VectorDES(bytes(7))
        with pytest.raises(ValueError):
            VectorTripleDES(bytes(8))
        with pytest.raises(ValueError):
            VectorTripleDES(bytes(23))


class TestBatchedOfbWiring:
    def test_keystream_batch_uses_encrypt_blocks(self):
        """The acceptance wiring check: with 3DES key material, the
        batched OFB path must go through ``encrypt_blocks``, not the
        scalar block-at-a-time fallback."""
        calls = {"blocks": 0, "single": 0}

        class SpyTripleDES(VectorTripleDES):
            def encrypt_blocks(self, blocks):
                calls["blocks"] += 1
                return super().encrypt_blocks(blocks)

            def encrypt_block(self, block):
                calls["single"] += 1
                return super().encrypt_block(block)

        mode = OFBMode(SpyTripleDES(bytes(range(24))))
        lengths = [5, 17, 0, 24]
        ivs = [derive_iv(b"spy", i, 8) for i in range(len(lengths))]
        mode.keystream_batch(ivs, lengths)
        assert calls["blocks"] > 0, "vector 3DES did not take the batch path"
        assert calls["single"] == 0, "batch path fell back to scalar blocks"

    def test_encrypt_segments_matches_scalar_loop(self):
        vec = OFBMode(VectorTripleDES(KEY3))
        scalar = OFBMode(TripleDES(KEY3))
        payloads = [bytes(range(i % 256)) * 2 for i in (1, 9, 80, 255)]
        ivs = [derive_iv(b"seg3", i, 8) for i in range(len(payloads))]
        assert vec.encrypt_segments(ivs, payloads) == \
            [scalar.encrypt(iv, p) for iv, p in zip(ivs, payloads)]


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(key=st.binary(min_size=8, max_size=8),
           block=st.binary(min_size=8, max_size=8))
    def test_vector_des_equals_scalar(self, key, block):
        assert VectorDES(key).encrypt_block(block) == \
            DES(key).encrypt_block(block)

    @settings(max_examples=15, deadline=None)
    @given(key=st.one_of(st.binary(min_size=16, max_size=16),
                         st.binary(min_size=24, max_size=24)),
           block=st.binary(min_size=8, max_size=8))
    def test_vector_3des_equals_scalar(self, key, block):
        vec = VectorTripleDES(key)
        scalar = TripleDES(key)
        ct = vec.encrypt_block(block)
        assert ct == scalar.encrypt_block(block)
        assert vec.decrypt_block(ct) == block

    @settings(max_examples=15, deadline=None)
    @given(lengths=st.lists(st.integers(0, 120), min_size=1, max_size=6),
           salt=st.binary(max_size=8))
    def test_batch_keystream_equals_scalar_loop(self, lengths, salt):
        """Ragged batches through the vector path byte-equal the scalar
        chain-by-chain loop."""
        vec = OFBMode(VectorTripleDES(KEY2))
        scalar = OFBMode(TripleDES(KEY2))
        ivs = [derive_iv(salt, i, 8) for i in range(len(lengths))]
        assert vec.keystream_batch(ivs, lengths) == \
            [scalar.keystream(iv, n) for iv, n in zip(ivs, lengths)]


@pytest.mark.slow
class TestSlowDifferentials:
    """Heavier scalar-3DES comparisons: the scalar oracle runs at only a
    few KB/s, so these stay behind the ``slow`` marker."""

    def test_large_random_batch_matches_scalar(self):
        rng = np.random.default_rng(2026)
        blocks = rng.integers(0, 256, size=(600, 8), dtype=np.uint8)
        scalar = TripleDES(KEY3)
        batch = VectorTripleDES(KEY3).encrypt_blocks(blocks)
        expected = b"".join(scalar.encrypt_block(blocks[i].tobytes())
                            for i in range(blocks.shape[0]))
        assert batch.tobytes() == expected

    def test_mtu_segment_stream_matches_scalar(self):
        """A 48 KiB MTU-segmented stream — the microbench workload in
        miniature — must be byte-identical scalar vs vector."""
        payloads, remaining, index = [], 48 * 1024, 0
        while remaining > 0:
            size = min(1460 - (index % 2), remaining)
            payloads.append(bytes((index + off) & 0xFF
                                  for off in range(size)))
            remaining -= size
            index += 1
        ivs = [derive_iv(b"slowdiff", i, 8) for i in range(len(payloads))]
        vec = OFBMode(VectorTripleDES(KEY2))
        scalar = OFBMode(TripleDES(KEY2))
        assert vec.encrypt_segments(ivs, payloads) == \
            [scalar.encrypt(iv, p) for iv, p in zip(ivs, payloads)]
