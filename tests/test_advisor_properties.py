"""Property tests for the advisor's selection rule.

One scenario is calibrated per module; `PolicyAdvisor` memoizes per-policy
predictions, so hundreds of hypothesis examples re-select over nine cached
model evaluations instead of re-solving the queueing model each time.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.advisor import (
    default_candidates,
    psnr_target_for_mos,
    select_cheapest,
)
from repro.testbed.advisor_service import ServiceRequest, build_scenario
from repro.core import PolicyAdvisor
from repro.video.quality import mos_from_psnr

CANDIDATES = default_candidates()
LABELS = [policy.label for policy in CANDIDATES]

targets = st.floats(min_value=-10.0, max_value=60.0,
                    allow_nan=False, allow_infinity=False)
subsets = st.lists(st.sampled_from(range(len(CANDIDATES))),
                   min_size=1, max_size=len(CANDIDATES), unique=True)

relaxed = settings(deadline=None, max_examples=50,
                   suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture(scope="module")
def advisor():
    scenario = build_scenario(ServiceRequest(frames=12, gop=6, seed=7))
    return PolicyAdvisor(scenario)


class TestSelectionRule:
    @relaxed
    @given(target=targets)
    def test_recommended_is_delay_argmin_of_satisfying_entries(
            self, advisor, target):
        choice = advisor.recommend(target_psnr_db=target)
        satisfying = [p for p in choice.sweep.values()
                      if p.eavesdropper_psnr_db <= target]
        if not satisfying:
            assert choice.recommended is None
            assert not choice.satisfied
        else:
            assert choice.recommended in satisfying
            best = min(p.delay_ms for p in satisfying)
            assert choice.recommended.delay_ms == best

    @relaxed
    @given(lo=targets, hi=targets)
    def test_tightening_the_target_is_never_cheaper(self, advisor, lo, hi):
        """A stricter confidentiality target (lower permissible
        eavesdropper PSNR) can only shrink the satisfying set, so the
        chosen policy can only get slower — never cheaper."""
        lo, hi = sorted((lo, hi))
        strict = advisor.recommend(target_psnr_db=lo)
        loose = advisor.recommend(target_psnr_db=hi)
        if strict.satisfied:
            assert loose.satisfied
            assert strict.recommended.delay_ms >= loose.recommended.delay_ms

    @relaxed
    @given(indices=subsets)
    def test_candidate_subsets_never_invent_labels(self, advisor, indices):
        chosen = [CANDIDATES[i] for i in indices]
        choice = advisor.recommend(candidates=chosen)
        assert set(choice.sweep) == {policy.label for policy in chosen}
        if choice.recommended is not None:
            assert choice.recommended.policy.label in choice.sweep
        # the subset selection agrees with the pure rule applied to the
        # subset's own predictions
        expected = select_cheapest(list(choice.sweep.values()),
                                   choice.target_psnr_db)
        assert choice.recommended == expected

    @relaxed
    @given(target=targets)
    def test_sweep_is_target_independent(self, advisor, target):
        """The sweep is a pure function of the candidate set; the target
        only affects selection."""
        choice = advisor.recommend(target_psnr_db=target)
        assert list(choice.sweep) == LABELS
        assert advisor.evaluations == len(CANDIDATES)


class TestMosBuckets:
    @relaxed
    @given(mos=st.floats(min_value=1.0, max_value=5.0,
                         allow_nan=False))
    def test_bucket_edge_is_the_loosest_psnr_meeting_the_mos(self, mos):
        edge = psnr_target_for_mos(mos)
        assert mos_from_psnr(edge) <= int(mos) + 0.5
        # one dB looser already overshoots the bucket (except MOS 5,
        # whose edge is the PSNR ceiling)
        if int(mos) < 5:
            assert mos_from_psnr(edge + 1.0) > int(mos)

    @relaxed
    @given(mos=st.one_of(
        st.floats(max_value=0.999, allow_nan=False),
        st.floats(min_value=5.001, allow_nan=False),
        st.just(float("nan"))))
    def test_out_of_range_mos_rejected(self, mos):
        with pytest.raises(ValueError):
            psnr_target_for_mos(mos)
