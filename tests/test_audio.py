"""Audio-encryption overhead (the paper's deferred future-work question)."""

import pytest

from repro.testbed.audio import AudioConfig, audio_encryption_overhead
from repro.testbed.devices import GALAXY_S2, HTC_AMAZE_4G


class TestAudioConfig:
    def test_defaults(self):
        config = AudioConfig()
        assert config.packet_rate_per_s == pytest.approx(46.875)
        assert config.payload_bytes == 256  # 96 kb/s * 21.33 ms / 8

    def test_validation(self):
        with pytest.raises(ValueError):
            AudioConfig(bitrate_bps=0)
        with pytest.raises(ValueError):
            AudioConfig(frame_duration_s=-1)


class TestOverhead:
    def test_audio_is_affordable_on_both_devices(self):
        """The paper's expectation, quantified: full audio encryption
        stays a second-order cost (<10% load, <0.15 W) — though not free:
        the per-segment setup at ~47 pkt/s costs ~5-7% load."""
        for device in (GALAXY_S2, HTC_AMAZE_4G):
            overhead = audio_encryption_overhead(device)
            assert overhead.affordable
            assert overhead.queue_load_increment > 0.01  # but not free

    def test_overhead_scales_with_cipher(self):
        aes = audio_encryption_overhead(GALAXY_S2, algorithm="AES256")
        des3 = audio_encryption_overhead(GALAXY_S2, algorithm="3DES")
        assert des3.crypto_time_s_per_s > aes.crypto_time_s_per_s
        assert des3.added_power_w > aes.added_power_w

    def test_overhead_scales_with_bitrate(self):
        low = audio_encryption_overhead(
            GALAXY_S2, audio=AudioConfig(bitrate_bps=48_000)
        )
        high = audio_encryption_overhead(
            GALAXY_S2, audio=AudioConfig(bitrate_bps=320_000)
        )
        assert high.crypto_time_s_per_s > low.crypto_time_s_per_s
        assert high.payload_bytes > low.payload_bytes

    def test_components_sum_to_load(self):
        overhead = audio_encryption_overhead(GALAXY_S2)
        assert overhead.queue_load_increment == pytest.approx(
            overhead.crypto_time_s_per_s + overhead.airtime_s_per_s
        )

    def test_unknown_cipher_rejected(self):
        with pytest.raises(ValueError):
            audio_encryption_overhead(GALAXY_S2, algorithm="RC4")
