"""The batched model stack vs the scalar oracle, differentially.

:mod:`repro.core.vector_models` re-derives the whole analytic pipeline
(G-matrix fixed point, eq. 19, Euler waiting-time inversion, frame
success, distortion/PSNR/MOS) in struct-of-arrays form.  Its contract
mirrors the crypto and flow fast paths: the scalar stack stays the
oracle, and hypothesis sweeps MMPP parameters, policy ladders and
quantile levels through both, pinning every scalar the advisor serves
to tight float tolerance — and the *selection* to byte identity.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    PolicyAdvisor,
    calibrate_scenario,
    default_candidates,
)
from repro.core import vector_models as vm
from repro.core.advisor import choice_payload, encode_payload
from repro.core.distortion import DistortionPolynomial
from repro.core.queueing import compute_g_matrix, solve_mmpp_g1
from repro.core.waiting_distribution import waiting_time_distribution
from repro.crypto.timing import reference_cipher_cost

COSTS = {name: reference_cipher_cost(name)
         for name in ("AES128", "AES256", "3DES")}
POLY = DistortionPolynomial(coefficients=(0.0, 40.0, 4.0), cap=8000.0)

# A 4-lane slice of the default ladder keeps the scalar oracle passes
# (the expensive side of every differential) fast.
LANE_POLICIES = (0, 3, 7, 8)


@pytest.fixture(scope="module")
def scenario(slow_bitstream):
    return calibrate_scenario(
        slow_bitstream, cipher_costs=COSTS, polynomial=POLY,
        sensitivity_fraction=0.55, recovery_fraction=0.9,
        baseline_distortion=6.0,
    )


def _lanes(scenario):
    ladder = default_candidates()
    policies = [ladder[i] for i in LANE_POLICIES]
    services = [scenario.service_model(p) for p in policies]
    return services, vm.ServiceBatch.from_models(services)


def _mmpp(scenario, p1, p2, scale):
    return replace(scenario.mmpp, p1=p1, p2=p2,
                   lambda1=scenario.mmpp.lambda1 * scale,
                   lambda2=scenario.mmpp.lambda2 * scale)


mmpp_params = given(
    p1=st.floats(0.05, 0.95),
    p2=st.floats(0.05, 0.95),
    scale=st.floats(0.2, 1.0),
)


class TestQueueDifferential:
    @settings(max_examples=10, deadline=None)
    @mmpp_params
    def test_g_matrix_matches_scalar(self, scenario, p1, p2, scale):
        services, batch = _lanes(scenario)
        mmpp = _mmpp(scenario, p1, p2, scale)
        assume(all(mmpp.mean_rate * s.mean < 0.9 for s in services))
        gs = vm.batch_g_matrix(mmpp, batch)
        for i, service in enumerate(services):
            reference = compute_g_matrix(mmpp, service)
            assert np.max(np.abs(gs[i] - reference)) < 1e-9

    @settings(max_examples=10, deadline=None)
    @mmpp_params
    def test_solve_matches_scalar(self, scenario, p1, p2, scale):
        services, batch = _lanes(scenario)
        mmpp = _mmpp(scenario, p1, p2, scale)
        assume(all(mmpp.mean_rate * s.mean < 0.9 for s in services))
        solution = vm.batch_solve_mmpp_g1(mmpp, batch)
        assert solution.stable.all()
        for i, service in enumerate(services):
            reference = solve_mmpp_g1(mmpp, service)
            lane = solution.solution(i)
            # Both stacks stop the G iteration at step < 1e-12, but the
            # scalar oracle's stopping rule leaves it ~tol/(1-rho) from
            # the true fixed point while the vector Newton path lands on
            # it; the propagated disagreement is O(1e-10), so the bound
            # here is 1e-9 (still 100x tighter than the 1e-7 serving
            # tolerance).
            for field in ("mean_waiting_time_s",
                          "mean_virtual_waiting_time_s",
                          "mean_sojourn_time_s", "traffic_intensity",
                          "mean_service_time_s",
                          "service_second_moment"):
                got = getattr(lane, field)
                want = getattr(reference, field)
                assert abs(got - want) <= 1e-9 * max(1.0, abs(want)), (
                    field, got, want)
            assert np.allclose(lane.idle_phase_vector,
                               reference.idle_phase_vector, atol=1e-10)


class TestWaitingDifferential:
    @settings(max_examples=6, deadline=None)
    @given(scale=st.floats(0.3, 1.0),
           level=st.floats(0.05, 0.99))
    def test_survival_cdf_quantile_mean(self, scenario, scale, level):
        services, batch = _lanes(scenario)
        mmpp = _mmpp(scenario, scenario.mmpp.p1, scenario.mmpp.p2, scale)
        assume(all(mmpp.mean_rate * s.mean < 0.9 for s in services))
        wd = vm.batch_waiting_distribution(mmpp, batch)
        refs = [waiting_time_distribution(mmpp, s) for s in services]

        mass = wd.mass_at_zero()
        means = wd.mean()
        quantiles = wd.quantile(level)
        t = np.array([r.quantile(0.5) for r in refs])
        survival = wd.survival(t)
        cdf = wd.cdf(t)
        # Tolerances leave headroom for the scalar G iteration's
        # stopping-rule offset (see TestQueueDifferential) propagated
        # through the Euler inversion.
        for i, reference in enumerate(refs):
            assert abs(mass[i] - reference._mass_at_zero()) < 1e-10
            want_mean = reference.mean()
            assert abs(means[i] - want_mean) <= \
                1e-9 * max(1.0, abs(want_mean))
            t_i = float(t[i])
            assert abs(survival[i] - reference.survival(t_i)) < 1e-9
            assert abs(cdf[i] - reference.cdf(t_i)) < 1e-9
            want_q = reference.quantile(level)
            assert abs(quantiles[i] - want_q) <= \
                1e-10 + 1e-8 * max(1.0, want_q)


class TestAdvisorParity:
    @settings(max_examples=8, deadline=None)
    @given(target=st.floats(10.0, 40.0))
    def test_selection_byte_identical(self, scenario, target):
        """Both engines must serve the *same bytes* for the selection
        head of the payload — the part admission and clients key on."""
        ladder = default_candidates()
        scalar = choice_payload(
            PolicyAdvisor(scenario, engine="scalar").recommend(
                target_psnr_db=target, candidates=ladder))
        vector = choice_payload(
            PolicyAdvisor(scenario, engine="vector").recommend(
                target_psnr_db=target, candidates=ladder))
        scalar_head = {key: scalar[key]
                       for key in ("recommended", "satisfied",
                                   "target_psnr_db")}
        vector_head = {key: vector[key]
                       for key in ("recommended", "satisfied",
                                   "target_psnr_db")}
        assert encode_payload(scalar_head) == encode_payload(vector_head)
        for label, entry in scalar["sweep"].items():
            other = vector["sweep"][label]
            for key in ("delay_ms", "waiting_ms", "traffic_intensity",
                        "receiver_psnr_db", "eavesdropper_psnr_db",
                        "eavesdropper_mos"):
                assert abs(other[key] - entry[key]) <= \
                    1e-7 * max(1.0, abs(entry[key])), (label, key)

    def test_wide_ladder_agrees(self, scenario):
        """One 27-policy pass: the lane count must not change the
        agreement (regression for lane-axis broadcasting bugs)."""
        fractions = [float(f) for f in np.linspace(0.02, 0.98, 24)]
        ladder = default_candidates(fractions=fractions)
        scalar = PolicyAdvisor(scenario, engine="scalar").recommend(
            candidates=ladder)
        vector = PolicyAdvisor(scenario, engine="vector").recommend(
            candidates=ladder)
        assert scalar.recommended.policy == vector.recommended.policy
        for label, entry in scalar.sweep.items():
            assert abs(vector.sweep[label].delay_ms - entry.delay_ms) <= \
                1e-7 * max(1.0, entry.delay_ms)

    def test_memo_entries_engine_agnostic(self, scenario):
        """A vector advisor must reuse scalar-computed memo entries
        verbatim — the memo key carries no engine field."""
        advisor = PolicyAdvisor(scenario, engine="vector")
        ladder = default_candidates()
        scalar_prediction = advisor.model.predict(ladder[0])
        advisor._predictions[ladder[0]] = scalar_prediction
        choice = advisor.recommend(candidates=ladder)
        assert choice.sweep[ladder[0].label] is scalar_prediction
        assert advisor.evaluations == len(ladder)


class TestSaturationFlag:
    def test_unstable_lane_flagged_not_astronomical(self, scenario):
        """Pushing a lane past rho = 1 must yield stable=False and inf
        waiting times, and the scalar-view accessor must raise exactly
        like the scalar solver — never emit astronomical floats."""
        services, batch = _lanes(scenario)
        heaviest = max(range(len(services)),
                       key=lambda i: services[i].mean)
        scale = 1.2 / (scenario.mmpp.mean_rate
                       * services[heaviest].mean)
        mmpp = _mmpp(scenario, scenario.mmpp.p1, scenario.mmpp.p2,
                     scale)
        solution = vm.batch_solve_mmpp_g1(mmpp, batch)
        assert not solution.stable[heaviest]
        assert np.isinf(solution.mean_waiting_time_s[heaviest])
        assert np.isinf(solution.mean_sojourn_time_s[heaviest])
        with pytest.raises(ValueError, match="unstable"):
            solution.solution(heaviest)
        with pytest.raises(ValueError, match="unstable"):
            vm.batch_waiting_distribution(mmpp, batch)
        for index in np.flatnonzero(solution.stable):
            lane = solution.solution(int(index))
            assert np.isfinite(lane.mean_waiting_time_s)
