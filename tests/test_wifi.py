"""WiFi substrate: DCF fixed point, PHY timing, loss channels."""

import numpy as np
import pytest

from repro.wifi import (
    DEFAULT_ADMISSION_SUCCESS_RATE,
    DcfParameters,
    GilbertElliottChannel,
    IidLossChannel,
    Phy80211g,
    admission_capacity,
    solve_dcf,
)


class TestDcf:
    def test_single_station_never_collides(self):
        solution = solve_dcf(DcfParameters(n_stations=1))
        assert solution.collision_probability == 0.0
        assert solution.packet_success_rate == 1.0

    def test_collisions_increase_with_contention(self):
        collisions = [
            solve_dcf(DcfParameters(n_stations=n)).collision_probability
            for n in (2, 5, 10, 20)
        ]
        assert collisions == sorted(collisions)
        assert all(0.0 < c < 1.0 for c in collisions)

    def test_success_rate_decreases_with_contention(self):
        rates = [
            solve_dcf(DcfParameters(n_stations=n)).packet_success_rate
            for n in (1, 2, 5, 10)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_channel_errors_multiply(self):
        clean = solve_dcf(DcfParameters(n_stations=2))
        lossy = solve_dcf(DcfParameters(n_stations=2, channel_error_rate=0.1))
        assert lossy.packet_success_rate == pytest.approx(
            clean.packet_success_rate * 0.9
        )

    def test_fixed_point_consistency(self):
        """At the solution, p = 1 - (1 - tau)^(n-1) holds."""
        params = DcfParameters(n_stations=5)
        solution = solve_dcf(params)
        expected = 1.0 - (1.0 - solution.tau) ** (params.n_stations - 1)
        assert solution.collision_probability == pytest.approx(
            expected, abs=1e-9
        )

    def test_backoff_rate_positive(self):
        solution = solve_dcf(DcfParameters(n_stations=3))
        assert solution.backoff_rate_per_s > 0
        assert solution.mean_backoff_slots > 0

    def test_admission_capacity_default_is_four(self):
        """The advisor service's historical per-AP cap of 4 must fall
        out of the contention model at the default admission floor."""
        capacity = admission_capacity()
        assert capacity == 4
        at_cap = solve_dcf(DcfParameters(n_stations=capacity))
        over = solve_dcf(DcfParameters(n_stations=capacity + 1))
        assert at_cap.packet_success_rate >= \
            DEFAULT_ADMISSION_SUCCESS_RATE > over.packet_success_rate

    def test_admission_capacity_monotone_in_floor(self):
        capacities = [admission_capacity(min_success_rate=floor)
                      for floor in (0.95, 0.75, 0.6)]
        assert capacities == sorted(capacities)
        assert admission_capacity(min_success_rate=1.0) == 1

    def test_admission_capacity_rejects_bad_floor(self):
        with pytest.raises(ValueError, match="min_success_rate"):
            admission_capacity(min_success_rate=0.0)
        with pytest.raises(ValueError, match="min_success_rate"):
            admission_capacity(min_success_rate=1.5)

    @pytest.mark.parametrize("kwargs", [
        {"n_stations": 0}, {"cw_min": 1},
        {"max_backoff_stages": -1}, {"channel_error_rate": 1.0},
    ])
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ValueError):
            DcfParameters(**kwargs)


class TestPhy:
    def test_airtime_monotone_in_size(self):
        phy = Phy80211g()
        times = [phy.payload_airtime_s(size) for size in (100, 500, 1460)]
        assert times == sorted(times)

    def test_rate_scales_airtime(self):
        slow = Phy80211g(data_rate_bps=6e6)
        fast = Phy80211g(data_rate_bps=54e6)
        assert (slow.payload_airtime_s(1460)
                > 3 * fast.payload_airtime_s(1460))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Phy80211g(data_rate_bps=11e6)  # that's 802.11b, not g

    def test_difs_definition(self):
        phy = Phy80211g()
        assert phy.difs_s == pytest.approx(phy.sifs_s + 2 * phy.slot_time_s)

    def test_full_exchange_includes_overheads(self):
        phy = Phy80211g()
        total = phy.packet_transmission_time_s(1460)
        assert total > phy.payload_airtime_s(1460)
        # An MTU frame at 54 Mb/s takes a few hundred microseconds.
        assert 2e-4 < total < 2e-3

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Phy80211g().payload_airtime_s(-1)


class TestChannels:
    def test_iid_rate_empirical(self):
        channel = IidLossChannel(0.8, seed=1)
        outcomes = channel.deliver_many(20_000)
        assert np.mean(outcomes) == pytest.approx(0.8, abs=0.02)

    def test_iid_extremes(self):
        assert IidLossChannel(1.0, seed=0).deliver_many(100).all()
        assert not IidLossChannel(0.0, seed=0).deliver_many(100).any()

    def test_iid_validation(self):
        with pytest.raises(ValueError):
            IidLossChannel(1.5)

    def test_gilbert_stationary_rate(self):
        channel = GilbertElliottChannel(
            p_gb=0.1, p_bg=0.3, good_success=1.0, bad_success=0.2, seed=2
        )
        expected = channel.long_run_success_rate
        outcomes = [channel.deliver() for _ in range(40_000)]
        assert np.mean(outcomes) == pytest.approx(expected, abs=0.02)

    def test_gilbert_stationary_good_probability(self):
        channel = GilbertElliottChannel(p_gb=0.1, p_bg=0.3)
        assert channel.stationary_good_probability == pytest.approx(0.75)

    def test_gilbert_burstiness(self):
        """Losses cluster: consecutive-loss probability exceeds iid."""
        channel = GilbertElliottChannel(
            p_gb=0.02, p_bg=0.1, good_success=1.0, bad_success=0.0, seed=3
        )
        outcomes = np.array([channel.deliver() for _ in range(40_000)])
        losses = ~outcomes
        loss_rate = losses.mean()
        consecutive = (losses[:-1] & losses[1:]).mean()
        assert consecutive > 1.5 * loss_rate ** 2

    def test_gilbert_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_gb=0.0, p_bg=0.0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_gb=1.2, p_bg=0.1)
