"""Cross-module integration: the paper's analysis-vs-experiment validation.

These tests are miniature versions of Figs. 4 and 7: calibrate the
analytical framework from the clip and link, run the simulated testbed,
and check that the model tracks the experiment — which is the paper's
central validation claim.
"""

import pytest

from repro.analysis import (
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_recovery_fraction,
    measure_reference_distance_distortion,
)
from repro.core import (
    FrameworkModel,
    calibrate_scenario,
    fit_gaussian_atom,
    fit_mmpp_from_trace,
    standard_policies,
)
from repro.testbed import ExperimentConfig, GALAXY_S2, run_experiment
from repro.video import (
    CodecConfig,
    analyze_motion,
    decode_bitstream,
    sensitivity_for,
    sequence_mse,
)


def _build_model(clip, bitstream, sensitivity):
    curve = measure_reference_distance_distortion(clip, max_distance=30)
    poly = fit_distortion_polynomial(curve, cap=blank_frame_distortion(clip))
    recovery = measure_recovery_fraction(
        clip, gop_size=bitstream.gop_layout.gop_size,
        sensitivity_fraction=sensitivity,
    )
    baseline = sequence_mse(clip, decode_bitstream(bitstream))
    scenario = calibrate_scenario(
        bitstream,
        cipher_costs=GALAXY_S2.cipher_costs,
        polynomial=poly,
        sensitivity_fraction=sensitivity,
        recovery_fraction=recovery,
        baseline_distortion=baseline,
    )
    return FrameworkModel(scenario)


@pytest.fixture(scope="module")
def slow_setup(slow_clip, slow_bitstream):
    sensitivity = sensitivity_for(analyze_motion(slow_clip).motion_class)
    return _build_model(slow_clip, slow_bitstream, sensitivity), sensitivity


@pytest.fixture(scope="module")
def fast_setup(fast_clip, fast_bitstream):
    sensitivity = sensitivity_for(analyze_motion(fast_clip).motion_class)
    return _build_model(fast_clip, fast_bitstream, sensitivity), sensitivity


class TestDistortionValidation:
    """Fig. 4: model PSNR at the eavesdropper tracks the experiment."""

    @pytest.mark.parametrize("policy_name", ["none", "I", "P", "all"])
    def test_slow_motion(self, slow_clip, slow_bitstream, slow_setup,
                         policy_name):
        model, sensitivity = slow_setup
        policy = standard_policies("AES256")[policy_name]
        predicted = model.predict(policy).eavesdropper_psnr_db
        config = ExperimentConfig(policy=policy, device=GALAXY_S2,
                                  sensitivity_fraction=sensitivity)
        measured = run_experiment(slow_clip, slow_bitstream, config,
                                  seed=0).eavesdropper_psnr_db
        assert predicted == pytest.approx(measured, abs=4.0)

    @pytest.mark.parametrize("policy_name", ["none", "P", "all"])
    def test_fast_motion(self, fast_clip, fast_bitstream, fast_setup,
                         policy_name):
        model, sensitivity = fast_setup
        policy = standard_policies("AES256")[policy_name]
        predicted = model.predict(policy).eavesdropper_psnr_db
        config = ExperimentConfig(policy=policy, device=GALAXY_S2,
                                  sensitivity_fraction=sensitivity)
        measured = run_experiment(fast_clip, fast_bitstream, config,
                                  seed=0).eavesdropper_psnr_db
        assert predicted == pytest.approx(measured, abs=4.0)

    def test_fast_motion_i_policy_shape(self, fast_clip, fast_bitstream,
                                        fast_setup):
        """For fast+I the model is conservative (recovery is a single
        constant); require agreement on the *qualitative* point: the
        eavesdropper keeps substantially more quality than under P/all."""
        model, sensitivity = fast_setup
        policies = standard_policies("AES256")
        predicted_i = model.predict(policies["I"]).eavesdropper_psnr_db
        predicted_all = model.predict(policies["all"]).eavesdropper_psnr_db
        config = ExperimentConfig(policy=policies["I"], device=GALAXY_S2,
                                  sensitivity_fraction=sensitivity)
        measured_i = run_experiment(fast_clip, fast_bitstream, config,
                                    seed=0).eavesdropper_psnr_db
        assert predicted_i > predicted_all + 8.0
        assert measured_i > predicted_all + 8.0
        assert predicted_i == pytest.approx(measured_i, abs=7.0)


class TestDelayValidation:
    """Fig. 7: the queueing model tracks the simulated per-packet delay."""

    @pytest.mark.parametrize("policy_name", ["none", "I", "P", "all"])
    def test_slow_motion_delay(self, slow_clip, slow_bitstream, slow_setup,
                               policy_name):
        model, sensitivity = slow_setup
        policy = standard_policies("AES256")[policy_name]
        predicted_ms = model.predict(policy).delay_ms
        config = ExperimentConfig(policy=policy, device=GALAXY_S2,
                                  sensitivity_fraction=sensitivity,
                                  decode_video=False)
        from repro.testbed import run_repeated
        measured = run_repeated(slow_clip, slow_bitstream, config,
                                repeats=5, base_seed=50).delay_ms
        # The MMPP abstracts the deterministic frame clock, so expect
        # agreement in scale, not exactness.
        assert predicted_ms == pytest.approx(measured.mean, rel=0.6)

    def test_ordering_agreement(self, fast_clip, fast_bitstream, fast_setup):
        """Model and experiment must order the policies identically."""
        model, sensitivity = fast_setup
        policies = standard_policies("AES256")
        predicted = {}
        measured = {}
        for name, policy in policies.items():
            predicted[name] = model.predict(policy).delay_ms
            config = ExperimentConfig(policy=policy, device=GALAXY_S2,
                                      sensitivity_fraction=sensitivity,
                                      decode_video=False)
            measured[name] = run_experiment(
                fast_clip, fast_bitstream, config, seed=1
            ).mean_delay_ms
        predicted_order = sorted(predicted, key=predicted.get)
        measured_order = sorted(measured, key=measured.get)
        assert predicted_order == measured_order


class TestCalibrationClosedLoop:
    """Section 6.1: parameters estimated from an initial trace match the
    configured scenario."""

    def test_trace_calibration_matches_configuration(self, slow_clip,
                                                     slow_bitstream):
        from repro.testbed import SenderSimulator
        policy = standard_policies("AES256")["all"]
        simulator = SenderSimulator(slow_bitstream, device=GALAXY_S2)
        run = simulator.run(policy, seed=42)

        times, phases = run.trace.arrival_trace()
        fitted = fit_mmpp_from_trace(times, phases)
        # The burst rate is the simulator's disk read rate (600 pkt/s).
        assert fitted.lambda1 == pytest.approx(600.0, rel=0.3)
        # The trickle rate sits at the frame rate, inflated slightly by
        # the occasional multi-packet P-frame (fragments arrive back to
        # back at the disk rate).
        assert 30.0 <= fitted.lambda2 <= 75.0

        from repro.video.gop import FrameType
        atom_i = fit_gaussian_atom(run.trace.encryption_samples(FrameType.I))
        cost = GALAXY_S2.cipher_cost("AES256")
        expected = cost.time_for(1432)
        assert atom_i.mu == pytest.approx(expected, rel=0.15)
