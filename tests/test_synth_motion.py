"""Synthetic clip generation and the motion classifier (AForge substitute)."""

import numpy as np
import pytest

from repro.video.motion import (
    MotionClass,
    analyze_motion,
    block_motion_magnitude,
    frame_activity,
    sensitivity_for,
)
from repro.video.synth import (
    FAST_MOTION,
    MEDIUM_MOTION,
    SLOW_MOTION,
    MotionProfile,
    SceneConfig,
    generate_clip,
    make_reference_clips,
)
from repro.video.yuv import CIF_HEIGHT, CIF_WIDTH


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = generate_clip("slow", 10, seed=42)
        b = generate_clip("slow", 10, seed=42)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.y, fb.y)

    def test_different_seeds_differ(self):
        a = generate_clip("slow", 10, seed=1)
        b = generate_clip("slow", 10, seed=2)
        assert not np.array_equal(a[0].y, b[0].y)

    def test_default_geometry_is_cif(self):
        clip = generate_clip("slow", 3, seed=0)
        assert (clip.width, clip.height) == (CIF_WIDTH, CIF_HEIGHT)

    def test_custom_scene(self):
        clip = generate_clip(
            "fast", 5, seed=0,
            scene=SceneConfig(width=64, height=48, object_size=10),
        )
        assert (clip.width, clip.height) == (64, 48)

    def test_unknown_profile_name(self):
        with pytest.raises(ValueError):
            generate_clip("hyperspeed", 5)

    def test_profile_object_accepted(self):
        profile = MotionProfile("custom", 1.0, 1.0, 0.0, 0.0)
        clip = generate_clip(profile, 3, seed=0)
        assert len(clip) == 3

    def test_reference_clips_cover_classes(self):
        clips = make_reference_clips(n_frames=8)
        assert set(clips) == {"slow", "medium", "fast"}


class TestActivityOrdering:
    def test_profiles_produce_ordered_activity(
            self, slow_clip, medium_clip, fast_clip):
        slow = analyze_motion(slow_clip)
        medium = analyze_motion(medium_clip)
        fast = analyze_motion(fast_clip)
        assert slow.mean_activity < medium.mean_activity < fast.mean_activity

    def test_classification_matches_profiles(
            self, slow_clip, medium_clip, fast_clip):
        assert analyze_motion(slow_clip).motion_class is MotionClass.LOW
        assert analyze_motion(medium_clip).motion_class is MotionClass.MEDIUM
        assert analyze_motion(fast_clip).motion_class is MotionClass.HIGH


class TestEstimators:
    def test_identical_frames_zero_activity(self):
        plane = np.full((32, 32), 50, dtype=np.uint8)
        assert frame_activity(plane, plane) == 0.0

    def test_activity_scales_with_change(self):
        base = np.zeros((32, 32), dtype=np.uint8)
        assert (frame_activity(base, base + 10)
                > frame_activity(base, base + 1))

    def test_block_motion_zero_for_static(self):
        rng = np.random.default_rng(0)
        plane = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        assert block_motion_magnitude(plane, plane) == 0.0

    def test_block_motion_detects_shift(self):
        rng = np.random.default_rng(0)
        plane = rng.integers(0, 256, (96, 96), dtype=np.uint8)
        shifted = np.roll(plane, 4, axis=1)
        assert block_motion_magnitude(plane, shifted) >= 2.0

    def test_needs_two_frames(self, slow_clip):
        from repro.video.yuv import Sequence420
        single = Sequence420([slow_clip[0]])
        with pytest.raises(ValueError):
            analyze_motion(single)


class TestSensitivity:
    def test_monotone_in_motion(self):
        assert (sensitivity_for(MotionClass.LOW)
                < sensitivity_for(MotionClass.MEDIUM)
                < sensitivity_for(MotionClass.HIGH))

    def test_values_are_fractions(self):
        for cls in MotionClass:
            assert 0.0 < sensitivity_for(cls) <= 1.0
