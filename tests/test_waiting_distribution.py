"""The waiting-time distribution (Section 4.2.3's 'distribution function
and moments'): transform, inversion, moments, quantiles — all validated
against discrete-event simulation of the same queue."""

import numpy as np
import pytest

from repro.core import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    MMPP2,
    ServiceTimeModel,
    TransmissionComponent,
    simulate_mmpp_g1,
    solve_mmpp_g1,
    waiting_time_distribution,
)


@pytest.fixture(scope="module")
def service():
    return ServiceTimeModel(
        EncryptionComponent(0.1, 0.0, GaussianAtom(0.5e-3, 0.05e-3),
                            GaussianAtom(0.1e-3, 0.01e-3)),
        BackoffComponent(p_s=0.9, lambda_b=1 / 0.3e-3),
        TransmissionComponent(0.1, GaussianAtom(0.9e-3, 0.05e-3),
                              GaussianAtom(0.3e-3, 0.03e-3)),
    )


@pytest.fixture(scope="module")
def mmpp():
    return MMPP2(200.0, 20.0, 1500.0, 300.0)


@pytest.fixture(scope="module")
def distribution(mmpp, service):
    return waiting_time_distribution(mmpp, service)


@pytest.fixture(scope="module")
def simulated(mmpp, service):
    return simulate_mmpp_g1(mmpp, service, n_packets=300_000, seed=3)


class TestTransform:
    def test_value_at_zero(self, distribution):
        assert distribution.transform(0) == pytest.approx(1.0)

    def test_bounded_on_positive_axis(self, distribution):
        for s in (1.0, 100.0, 10_000.0):
            value = distribution.transform(complex(s, 0.0)).real
            assert 0.0 < value <= 1.0

    def test_decreasing_in_s(self, distribution):
        values = [distribution.transform(complex(s, 0)).real
                  for s in (1.0, 10.0, 100.0, 1000.0)]
        assert values == sorted(values, reverse=True)

    def test_limit_is_empty_probability(self, distribution):
        """For large s, E[e^{-sW}] approaches P(W = 0).

        s must stay below ~2*mu/sigma^2: the Gaussian service atoms'
        transform e^{-mu s + sigma^2 s^2/2} formally diverges beyond that
        (the known price of eq. 15's Gaussian model).
        """
        tail = distribution.transform(complex(1e5, 0.0)).real
        assert tail == pytest.approx(distribution._mass_at_zero(), abs=2e-2)


class TestMoments:
    def test_first_moment_matches_eq19(self, distribution, mmpp, service):
        solution = solve_mmpp_g1(mmpp, service)
        assert distribution.mean() == pytest.approx(
            solution.mean_waiting_time_s, rel=1e-4
        )

    def test_second_moment_matches_simulation(self, distribution, simulated):
        simulated_m2 = float(np.mean(simulated.waiting_times ** 2))
        assert distribution.moment(2) == pytest.approx(simulated_m2, rel=0.05)

    def test_variance_positive(self, distribution):
        assert distribution.variance() > 0.0

    def test_moment_order_validated(self, distribution):
        with pytest.raises(ValueError):
            distribution.moment(0)
        with pytest.raises(ValueError):
            distribution.moment(5)


class TestInversion:
    @pytest.mark.parametrize("t_ms", [0.05, 0.1, 0.3, 0.6, 1.0])
    def test_survival_matches_simulation(self, distribution, simulated, t_ms):
        t = t_ms * 1e-3
        empirical = float(np.mean(simulated.waiting_times > t))
        assert distribution.survival(t) == pytest.approx(empirical, abs=0.01)

    def test_atom_at_zero_matches_simulation(self, distribution, simulated):
        empirical = float(np.mean(simulated.waiting_times <= 1e-12))
        assert distribution._mass_at_zero() == pytest.approx(
            empirical, abs=0.01
        )

    def test_survival_monotone(self, distribution):
        values = [distribution.survival(t * 1e-3)
                  for t in (0.05, 0.2, 0.5, 1.0, 2.0)]
        assert values == sorted(values, reverse=True)

    def test_cdf_complements_survival(self, distribution):
        t = 0.3e-3
        assert distribution.cdf(t) == pytest.approx(
            1.0 - distribution.survival(t)
        )

    def test_negative_time_rejected(self, distribution):
        with pytest.raises(ValueError):
            distribution.survival(-1.0)


class TestQuantiles:
    def test_q90_matches_simulation(self, distribution, simulated):
        empirical = float(np.quantile(simulated.waiting_times, 0.9))
        assert distribution.quantile(0.9) == pytest.approx(
            empirical, rel=0.05
        )

    def test_quantile_below_atom_is_zero(self, distribution):
        atom = distribution._mass_at_zero()
        assert distribution.quantile(atom / 2.0) == 0.0

    def test_quantile_validates(self, distribution):
        with pytest.raises(ValueError):
            distribution.quantile(1.5)


class TestStability:
    def test_unstable_rejected(self, service):
        rate = 2.0 / service.mean
        mmpp = MMPP2(5.0, 5.0, rate, rate)
        with pytest.raises(ValueError):
            waiting_time_distribution(mmpp, service)
