"""Differential layer: the event kernel vs the legacy sender loop.

For one flow the two engines share the :class:`PacketService` draw
order, so a fixed seed must give *identical* per-packet traces — far
inside the "statistical tolerance" the multi-flow work needs.  A
separate check compares the independent-stream multi-flow wiring
(``run_multiflow`` with one flow, spawned RNGs) against the legacy mean
across seeds, which genuinely is a statistical comparison.
"""

import numpy as np
import pytest

from repro.core import standard_policies
from repro.core.policies import EncryptionPolicy
from repro.testbed.devices import GALAXY_S2, HTC_AMAZE_4G
from repro.testbed.multiflow import run_multiflow
from repro.testbed.simulator import LinkConfig, SenderSimulator
from repro.testbed.transport import HTTP_TCP


def _trace_tuples(run):
    return [
        (t.sequence_number, t.enqueue_time_s, t.service_start_s,
         t.encryption_time_s, t.transmit_time_s, t.departure_time_s,
         t.encrypted, t.delivered, t.attempts)
        for t in run.trace
    ]


def _both(simulator, policy, seed):
    legacy = simulator.run(policy, seed=seed, engine="legacy")
    events = simulator.run(policy, seed=seed, engine="events")
    return legacy, events


@pytest.fixture(scope="module")
def simulator(slow_bitstream):
    return SenderSimulator(slow_bitstream, device=GALAXY_S2)


class TestSingleFlowIdentical:
    @pytest.mark.parametrize("policy_name", ["none", "I", "P", "all"])
    def test_trace_identical_per_policy(self, simulator, policy_name):
        policy = standard_policies("AES256")[policy_name]
        legacy, events = _both(simulator, policy, seed=11)
        assert _trace_tuples(legacy) == _trace_tuples(events)
        assert legacy.usable_by_receiver == events.usable_by_receiver
        assert legacy.usable_by_eavesdropper == events.usable_by_eavesdropper

    @pytest.mark.parametrize("seed", [0, 7, 2013])
    def test_trace_identical_across_seeds(self, simulator, seed):
        policy = standard_policies("AES256")["I"]
        legacy, events = _both(simulator, policy, seed=seed)
        assert _trace_tuples(legacy) == _trace_tuples(events)

    def test_mixture_policy_identical(self, simulator):
        policy = EncryptionPolicy("i_plus_p_fraction", "3DES", fraction=0.2)
        legacy, events = _both(simulator, policy, seed=3)
        assert _trace_tuples(legacy) == _trace_tuples(events)

    def test_seed_sequence_identical(self, simulator):
        policy = standard_policies("AES256")["all"]
        seed = np.random.SeedSequence(42).spawn(1)[0]
        legacy = simulator.run(policy, seed=seed, engine="legacy")
        seed = np.random.SeedSequence(42).spawn(1)[0]
        events = simulator.run(policy, seed=seed, engine="events")
        assert _trace_tuples(legacy) == _trace_tuples(events)

    def test_tcp_on_lossy_link_identical(self, slow_bitstream):
        """The retransmission path (extra RTO delays, attempts > 1)."""
        lossy = LinkConfig.default(channel_error_rate=0.2)
        lossy = LinkConfig(phy=lossy.phy, dcf=lossy.dcf, retry_limit=0)
        simulator = SenderSimulator(slow_bitstream, device=HTC_AMAZE_4G,
                                    link=lossy, transport=HTTP_TCP)
        legacy, events = _both(
            simulator, standard_policies("AES256")["I"], seed=12)
        assert _trace_tuples(legacy) == _trace_tuples(events)
        assert any(t.attempts > 1 for t in events.trace)

    def test_engine_constructor_default(self, slow_bitstream):
        """The constructor-level switch routes run() the same way."""
        policy = standard_policies("AES256")["I"]
        via_events = SenderSimulator(
            slow_bitstream, device=GALAXY_S2, engine="events"
        ).run(policy, seed=5)
        via_override = SenderSimulator(
            slow_bitstream, device=GALAXY_S2
        ).run(policy, seed=5, engine="events")
        assert _trace_tuples(via_events) == _trace_tuples(via_override)

    def test_unknown_engine_rejected(self, slow_bitstream):
        with pytest.raises(ValueError, match="engine"):
            SenderSimulator(slow_bitstream, device=GALAXY_S2,
                            engine="simpy")
        simulator = SenderSimulator(slow_bitstream, device=GALAXY_S2)
        with pytest.raises(ValueError, match="engine"):
            simulator.run(standard_policies("AES256")["I"], seed=1,
                          engine="asyncio")


@pytest.mark.slow
class TestSingleFlowStatistical:
    def test_multiflow_one_flow_matches_legacy_mean(self, slow_bitstream):
        """run_multiflow(flows=1) draws from spawned streams, so it can
        only match the legacy engine statistically: mean per-packet
        delay over several seeds must agree within a few percent."""
        policy = standard_policies("AES256")["I"]
        simulator = SenderSimulator(slow_bitstream, device=GALAXY_S2)
        seeds = range(8)
        legacy_mean = np.mean([
            simulator.run(policy, seed=seed).mean_delay_ms
            for seed in seeds
        ])
        kernel_mean = np.mean([
            run_multiflow(slow_bitstream, flows=1, policy=policy,
                          device=GALAXY_S2, seed=seed).mean_delay_ms
            for seed in seeds
        ])
        assert kernel_mean == pytest.approx(legacy_mean, rel=0.05)
