"""Shared fixtures: clips and bitstreams are expensive to build, so they
are session-scoped and sized for test speed (the benches use the paper's
full 300-frame clips)."""

from __future__ import annotations

import pytest

from repro.video import CodecConfig, encode_sequence, generate_clip


@pytest.fixture(scope="session")
def slow_clip():
    return generate_clip("slow", 90, seed=1)


@pytest.fixture(scope="session")
def fast_clip():
    return generate_clip("fast", 90, seed=2)


@pytest.fixture(scope="session")
def medium_clip():
    return generate_clip("medium", 90, seed=3)


@pytest.fixture(scope="session")
def slow_bitstream(slow_clip):
    return encode_sequence(slow_clip, CodecConfig(gop_size=30, quantizer=8))


@pytest.fixture(scope="session")
def fast_bitstream(fast_clip):
    return encode_sequence(fast_clip, CodecConfig(gop_size=30, quantizer=8))
