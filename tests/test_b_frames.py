"""B-frame extension: IBB..P layouts, codec and concealment behaviour.

The paper assumes IPP...P (Section 2 notes B-frames are optional); this
extension implements them and verifies the security-relevant structure:
B-frames are prediction-tree leaves, so their loss (or encryption) costs
almost nothing, while the reference frames keep their criticality.
"""

import numpy as np
import pytest

from repro.video import (
    CodecConfig,
    conceal_decode,
    decode_bitstream,
    encode_sequence,
    frames_decodable,
    generate_clip,
    packetize,
    sequence_psnr,
)
from repro.video.gop import FrameType, GopLayout


@pytest.fixture(scope="module")
def b_config():
    return CodecConfig(gop_size=30, quantizer=8, b_frames=2)


@pytest.fixture(scope="module")
def slow_b_bitstream(slow_clip, b_config):
    return encode_sequence(slow_clip, b_config)


class TestLayout:
    def test_pattern(self):
        layout = GopLayout(30, b_frames=2)
        pattern = "".join(layout.frame_type(i).value for i in range(10))
        assert pattern == "IBBPBBPBBP"

    def test_trailing_positions_are_references(self):
        # GOP of 8 with 2 B-frames: positions 7 has no later in-GOP
        # reference, so it must be P.
        layout = GopLayout(8, b_frames=2)
        pattern = "".join(layout.frame_type(i).value for i in range(8))
        assert pattern == "IBBPBBPP"

    def test_zero_b_frames_is_ipp(self):
        layout = GopLayout(30, b_frames=0)
        assert all(layout.frame_type(i) is FrameType.P
                   for i in range(1, 30))

    def test_validation(self):
        with pytest.raises(ValueError):
            GopLayout(3, b_frames=2)
        with pytest.raises(ValueError):
            GopLayout(30, b_frames=-1)


class TestCodec:
    def test_clean_roundtrip_quality(self, slow_clip, slow_b_bitstream):
        decoded = decode_bitstream(slow_b_bitstream)
        assert sequence_psnr(slow_clip, decoded) > 32.0

    def test_stream_contains_all_types(self, slow_b_bitstream):
        types = {f.frame_type for f in slow_b_bitstream}
        assert types == {FrameType.I, FrameType.P, FrameType.B}

    def test_display_order_preserved(self, slow_b_bitstream):
        assert [f.index for f in slow_b_bitstream] == list(
            range(len(slow_b_bitstream))
        )

    def test_b_frames_small_for_slow_motion(self, slow_b_bitstream):
        sizes = {}
        for frame in slow_b_bitstream:
            sizes.setdefault(frame.frame_type, []).append(frame.size_bytes)
        assert np.mean(sizes[FrameType.B]) < 0.2 * np.mean(sizes[FrameType.I])

    def test_fast_motion_roundtrip(self, fast_clip, b_config):
        bitstream = encode_sequence(fast_clip, b_config)
        decoded = decode_bitstream(bitstream)
        assert sequence_psnr(fast_clip, decoded) > 32.0

    def test_decode_frame_rejects_b(self, slow_b_bitstream, b_config):
        from repro.video.codec import Decoder
        decoder = Decoder(b_config)
        b_frame = next(f for f in slow_b_bitstream
                       if f.frame_type is FrameType.B)
        with pytest.raises(ValueError):
            decoder.decode_frame(b_frame)


class TestConcealment:
    def _eavesdrop(self, clip, bitstream, dropped_type, mode="strict",
                   sensitivity=0.55):
        packets = packetize(bitstream)
        usable = [p.frame_type.value != dropped_type for p in packets]
        decodable = frames_decodable(packets, usable, sensitivity)
        config = CodecConfig(
            gop_size=bitstream.gop_layout.gop_size,
            quantizer=bitstream.quantizer,
            b_frames=bitstream.gop_layout.b_frames,
        )
        return conceal_decode(bitstream, decodable, config, mode=mode)

    def test_b_loss_freezes_only_b_frames(self, slow_clip, slow_b_bitstream):
        result = self._eavesdrop(slow_clip, slow_b_bitstream, "B")
        frozen = {r.index for r in result.frames if not r.decoded}
        b_indices = {f.index for f in slow_b_bitstream
                     if f.frame_type is FrameType.B}
        assert frozen == b_indices

    def test_b_loss_barely_hurts(self, slow_clip, slow_b_bitstream):
        """Encrypting only B-frames is pointless as protection."""
        result = self._eavesdrop(slow_clip, slow_b_bitstream, "B")
        assert sequence_psnr(slow_clip, result.sequence) > 30.0

    def test_i_loss_still_devastates(self, slow_clip, slow_b_bitstream):
        result = self._eavesdrop(slow_clip, slow_b_bitstream, "I",
                                 mode="best_effort")
        assert sequence_psnr(slow_clip, result.sequence) < 15.0

    def test_clean_b_stream_decodes_fully(self, slow_clip,
                                          slow_b_bitstream):
        packets = packetize(slow_b_bitstream)
        decodable = frames_decodable(packets, [True] * len(packets), 0.55)
        config = CodecConfig(gop_size=30, quantizer=8, b_frames=2)
        result = conceal_decode(slow_b_bitstream, decodable, config)
        assert result.n_frozen == 0
        assert sequence_psnr(slow_clip, result.sequence) > 32.0

    def test_reference_loss_freezes_dependent_bs(self, slow_clip,
                                                 slow_b_bitstream):
        """Losing a P reference freezes it, the refs after it in the GOP
        (strict chain policy) and the B-frames that needed it."""
        packets = packetize(slow_b_bitstream)
        # Drop the first P reference of GOP 0 (display index 3).
        usable = [p.frame_index != 3 for p in packets]
        decodable = frames_decodable(packets, usable, 0.55)
        config = CodecConfig(gop_size=30, quantizer=8, b_frames=2)
        result = conceal_decode(slow_b_bitstream, decodable, config)
        frozen = {r.index for r in result.frames if not r.decoded}
        # B-frames 1,2 depend on reference 3: frozen.  Everything from 3
        # to the end of GOP 0 is frozen (broken reference chain).
        assert {1, 2, 3}.issubset(frozen)
        assert all(i in frozen for i in range(3, 30))
        assert 30 not in frozen  # next GOP recovers
