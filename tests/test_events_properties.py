"""Property tests for the discrete-event kernel's determinism contract.

Three invariants pin the kernel down (tests/test_events_differential.py
and the golden fixtures then pin the *simulations* built on it):

- identical seeds and process setup give an identical fired-event trace;
- no event ever fires before its scheduled time, and a ``Timeout``
  fires at *exactly* ``now + delay`` (no float drift through the heap);
- same-time events fire in scheduling order (FIFO), no matter how many
  unrelated events share the heap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testbed.events import (
    EventKernel,
    Request,
    Resource,
    Timeout,
    WaitUntil,
)


def _random_walk_kernel(seed: int, n_processes: int, steps: int):
    """N processes, each sleeping through its own spawned RNG stream."""
    kernel = EventKernel(seed=seed, trace=True)

    def sleeper(rng):
        def gen():
            for _ in range(steps):
                yield Timeout(float(rng.exponential(1.0)))
        return gen()

    for i in range(n_processes):
        kernel.add_process(sleeper(kernel.spawn_rng()), name=f"p{i}")
    kernel.run()
    return kernel


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_processes=st.integers(1, 5),
        steps=st.integers(1, 15),
    )
    def test_identical_seeds_identical_event_trace(self, seed, n_processes,
                                                   steps):
        first = _random_walk_kernel(seed, n_processes, steps)
        second = _random_walk_kernel(seed, n_processes, steps)
        assert first.fired == second.fired
        assert first.now == second.now

    def test_different_seeds_differ(self):
        a = _random_walk_kernel(1, 3, 10)
        b = _random_walk_kernel(2, 3, 10)
        assert a.fired != b.fired

    def test_spawned_streams_are_independent_of_later_processes(self):
        """Adding more processes never perturbs earlier streams' draws."""
        def first_draw(n_streams):
            kernel = EventKernel(seed=99)
            rngs = [kernel.spawn_rng() for _ in range(n_streams)]
            return float(rngs[0].random())
        assert first_draw(1) == first_draw(5)


class TestNoEarlyFiring:
    @settings(max_examples=25, deadline=None)
    @given(delays=st.lists(
        st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=20,
    ))
    def test_timeout_fires_exactly_on_schedule(self, delays):
        kernel = EventKernel()
        observed = []

        def gen():
            for delay in delays:
                target = kernel.now + delay
                yield Timeout(delay)
                observed.append((target, kernel.now))

        kernel.add_process(gen())
        kernel.run()
        assert len(observed) == len(delays)
        for target, fired_at in observed:
            assert fired_at == target  # exact, not approximate

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_processes=st.integers(1, 4),
    )
    def test_fired_times_monotone(self, seed, n_processes):
        kernel = _random_walk_kernel(seed, n_processes, 10)
        times = [event.time for event in kernel.fired]
        assert times == sorted(times)

    def test_wait_until_past_fires_now_not_backwards(self):
        kernel = EventKernel()
        observed = []

        def gen():
            yield Timeout(5.0)
            yield WaitUntil(1.0)  # already in the past
            observed.append(kernel.now)

        kernel.add_process(gen())
        kernel.run()
        assert observed == [5.0]

    def test_wait_until_future_is_exact(self):
        kernel = EventKernel()
        observed = []

        def gen():
            yield WaitUntil(0.1 + 0.2)  # an instant with no exact float sum
            observed.append(kernel.now)

        kernel.add_process(gen())
        kernel.run()
        assert observed == [0.1 + 0.2]

    def test_run_until_stops_the_clock_exactly(self):
        kernel = EventKernel()
        fired = []

        def gen():
            yield Timeout(1.0)
            fired.append("early")
            yield Timeout(10.0)
            fired.append("late")

        kernel.add_process(gen())
        assert kernel.run(until=5.0) == 5.0
        assert fired == ["early"]
        # The remaining event is still pending and fires on resume.
        kernel.run()
        assert fired == ["early", "late"]
        assert kernel.now == 11.0


class TestFifoTieBreaking:
    @settings(max_examples=25, deadline=None)
    @given(
        n_waiters=st.integers(2, 6),
        n_fillers=st.integers(0, 25),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_same_time_events_fire_in_schedule_order(self, n_waiters,
                                                     n_fillers, seed):
        """The wake order at t=1.0 equals the scheduling order and is
        unaffected by how many unrelated events crowd the heap."""
        kernel = EventKernel(seed=seed)
        order = []

        def waiter(i):
            yield WaitUntil(1.0)
            order.append(i)

        def filler(rng):
            for _ in range(3):
                yield Timeout(float(rng.uniform(0.0, 0.9)) / 3.0)

        for i in range(n_waiters):
            kernel.add_process(waiter(i), name=f"w{i}")
        for j in range(n_fillers):
            kernel.add_process(filler(kernel.spawn_rng()), name=f"f{j}")
        kernel.run()
        assert order == list(range(n_waiters))

    def test_resource_grants_in_request_order(self):
        kernel = EventKernel()
        resource = Resource(kernel)
        order = []

        def user(i, hold):
            yield WaitUntil(0.0)
            yield Request(resource)
            order.append(i)
            yield Timeout(hold)
            resource.release()

        for i in range(5):
            kernel.add_process(user(i, hold=0.5), name=f"u{i}")
        kernel.run()
        assert order == [0, 1, 2, 3, 4]
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_resource_serialises_holders(self):
        """With a capacity-1 resource, hold intervals never overlap."""
        kernel = EventKernel()
        resource = Resource(kernel)
        intervals = []

        def user(hold):
            yield Request(resource)
            start = kernel.now
            yield Timeout(hold)
            intervals.append((start, kernel.now))
            resource.release()

        for hold in (0.3, 0.2, 0.5):
            kernel.add_process(user(hold))
        kernel.run()
        intervals.sort()
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert start >= end


class TestKillAndStall:
    """Regressions: ``release()`` used to grant the medium to a dead
    process (leaking the slot and deadlocking every waiter behind it),
    and a stalled kernel returned silently with half-finished flows."""

    def test_dead_waiter_skipped_on_release(self):
        kernel = EventKernel()
        resource = Resource(kernel)
        order = []

        def user(i, hold):
            yield Request(resource)
            order.append(i)
            yield Timeout(hold)
            resource.release()

        processes = [kernel.add_process(user(i, hold=1.0), name=f"u{i}")
                     for i in range(4)]
        kernel.run(until=0.5)      # u0 holds; u1..u3 queued
        processes[1].kill()        # dies while waiting
        kernel.run()
        assert order == [0, 2, 3]
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_grant_in_flight_to_killed_process_releases_slot(self):
        """The race the queue cannot see: the hand-over event is already
        in the heap when the grantee dies.  The grant must bounce the
        slot to the next waiter instead of leaking it."""
        kernel = EventKernel()
        resource = Resource(kernel)
        order = []

        def user(i):
            yield Request(resource)
            order.append(i)
            yield Timeout(1.0)
            resource.release()

        victim = {}

        def killer():
            yield WaitUntil(1.0)  # fires after u0's release, before the
            victim["b"].kill()    # in-flight grant event reaches u1

        kernel.add_process(user(0), name="u0")
        victim["b"] = kernel.add_process(user(1), name="u1")
        kernel.add_process(user(2), name="u2")
        kernel.add_process(killer(), name="killer")
        kernel.run()
        assert order == [0, 2]
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_all_waiters_dead_frees_the_slot(self):
        kernel = EventKernel()
        resource = Resource(kernel)

        def holder():
            yield Request(resource)
            yield Timeout(1.0)
            resource.release()

        def waiter():
            yield Request(resource)
            resource.release()

        kernel.add_process(holder(), name="h")
        doomed = [kernel.add_process(waiter(), name=f"w{i}")
                  for i in range(3)]
        kernel.run(until=0.5)
        for process in doomed:
            process.kill()
        kernel.run()
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_kill_is_idempotent(self):
        kernel = EventKernel()

        def gen():
            yield Timeout(1.0)

        process = kernel.add_process(gen())
        process.kill()
        process.kill()  # second kill: no error, still dead
        assert not process.alive
        kernel.run()  # the orphaned timeout event is a no-op

    def test_stalled_kernel_raises_instead_of_returning(self):
        """A holder that never releases leaves its waiter stranded: the
        heap drains while the waiter is still alive."""
        kernel = EventKernel()
        resource = Resource(kernel)

        def holder():
            yield Request(resource)
            # ends without releasing: the classic leak

        def waiter():
            yield Request(resource)
            resource.release()

        kernel.add_process(holder(), name="leaky-holder")
        kernel.add_process(waiter(), name="stranded-waiter")
        with pytest.raises(RuntimeError, match="stalled"):
            kernel.run()

    def test_stall_message_names_the_stranded_processes(self):
        kernel = EventKernel()
        resource = Resource(kernel)

        def holder():
            yield Request(resource)

        def waiter():
            yield Request(resource)
            resource.release()

        kernel.add_process(holder(), name="leaky-holder")
        kernel.add_process(waiter(), name="stranded-waiter")
        with pytest.raises(RuntimeError, match="stranded-waiter"):
            kernel.run()

    def test_run_until_does_not_raise_on_pending_processes(self):
        """Stopping at a horizon legitimately leaves live processes —
        only a *drained* heap with survivors is a stall."""
        kernel = EventKernel()

        def gen():
            yield Timeout(10.0)

        kernel.add_process(gen())
        assert kernel.run(until=1.0) == 1.0  # no RuntimeError
        kernel.run()  # completes normally

    def test_clean_completion_still_silent(self):
        kernel = EventKernel()
        resource = Resource(kernel)

        def user():
            yield Request(resource)
            yield Timeout(0.5)
            resource.release()

        for _ in range(3):
            kernel.add_process(user())
        assert kernel.run() == 1.5


class TestValidation:
    def test_negative_timeout_rejected(self):
        kernel = EventKernel()

        def gen():
            yield Timeout(-1.0)

        kernel.add_process(gen())
        with pytest.raises(ValueError, match="negative timeout"):
            kernel.run()

    def test_nan_timeout_rejected(self):
        kernel = EventKernel()

        def gen():
            yield Timeout(float("nan"))

        kernel.add_process(gen())
        with pytest.raises(ValueError):
            kernel.run()

    def test_unknown_command_rejected(self):
        kernel = EventKernel()

        def gen():
            yield "sleep"

        kernel.add_process(gen())
        with pytest.raises(TypeError, match="yielded"):
            kernel.run()

    def test_release_without_acquire_rejected(self):
        kernel = EventKernel()
        with pytest.raises(RuntimeError, match="release"):
            Resource(kernel).release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            Resource(EventKernel(), capacity=0)

    def test_seed_sequence_accepted(self):
        root = np.random.SeedSequence(7)
        kernel = EventKernel(seed=root)
        assert isinstance(kernel.spawn_rng(), np.random.Generator)
