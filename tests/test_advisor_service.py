"""The advisor service tier: `repro serve`'s request validation, memo
layer, admission control, and wire behaviour over a live loopback
server."""

import json
import socket
import threading
import time

import pytest

from repro.core.advisor import encode_choice
from repro.testbed import advisor_service
from repro.testbed.advisor_service import (
    AdvisorClient,
    AdvisorMemo,
    ServiceRequest,
    evaluate_request,
    policy_from_name,
)
from repro.testbed.cache import ResultCache
from repro.testbed.netproto import Backoff, NetClient
from repro.testbed.server import AdvisorServer, ServerThread

TINY = dict(frames=12, gop=6)  # the fast cold path (~0.3 s end to end)


class TestServiceRequest:
    def test_defaults_mirror_the_cli(self):
        request = ServiceRequest()
        assert (request.motion, request.frames, request.gop) == \
            ("slow", 150, 30)
        assert request.device == "samsung-s2"
        assert request.flows == 2
        assert request.resolved_target_psnr_db == pytest.approx(19.0)

    def test_header_round_trip(self):
        request = ServiceRequest(motion="fast", frames=24, gop=6,
                                 flows=3, target_mos=2.0,
                                 candidates=("I", "all"), ap="ap-1")
        assert ServiceRequest.from_header(request.to_header()) == request

    def test_target_mos_resolves_to_bucket_edge(self):
        assert ServiceRequest(target_mos=2.0).resolved_target_psnr_db \
            == pytest.approx(25.0)
        assert ServiceRequest(target_mos=1.0).resolved_target_psnr_db \
            == pytest.approx(20.0)

    def test_canonical_excludes_ap(self):
        a = ServiceRequest(ap="ap-1", **TINY)
        b = ServiceRequest(ap="ap-2", **TINY)
        assert a.canonical() == b.canonical()

    def test_canonical_collapses_equivalent_targets(self):
        by_mos = ServiceRequest(target_mos=2.0, **TINY)
        by_psnr = ServiceRequest(target_psnr_db=25.0, **TINY)
        assert by_mos.canonical() == by_psnr.canonical()

    @pytest.mark.parametrize("bad", [
        {"motion": "warp"},
        {"frames": 5},                      # too short to fit the curve
        {"frames": 10**6},
        {"frames": 12.5},
        {"frames": True},
        {"gop": 0},
        {"quantizer": 0},
        {"device": "iphone"},
        {"flows": 0},
        {"flows": 10**5},
        {"algorithm": "ROT13"},
        {"target_psnr_db": 15.0, "target_mos": 2.0},
        {"target_psnr_db": float("nan")},
        {"target_mos": 0.5},
        {"target_mos": 6},
        {"candidates": ()},
        {"candidates": ("warp-drive",)},
        {"candidates": "I"},
        {"candidates": (7,)},
        {"ap": ""},
        {"ap": "x" * 200},
        {"ap": 3},
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ValueError):
            ServiceRequest(**bad)

    def test_from_header_rejects_non_dict(self):
        with pytest.raises(ValueError, match="JSON object"):
            ServiceRequest.from_header([1, 2, 3])

    def test_from_header_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            ServiceRequest.from_header({"frames": 12, "warp": 9})

    def test_mobility_spec_round_trips_and_keys_apart(self):
        mobile = ServiceRequest(mobility="vehicular:hysteresis", **TINY)
        assert ServiceRequest.from_header(mobile.to_header()) == mobile
        assert mobile.canonical()["mobility"] == "vehicular:hysteresis"
        # additive key: static requests keep their pre-mobility
        # canonical form (and hence their memo keys)
        static = ServiceRequest(**TINY)
        assert "mobility" not in static.canonical()
        assert mobile.canonical() != static.canonical()

    @pytest.mark.parametrize("bad", [
        {"mobility": "teleport"},
        {"mobility": "parked:psychic"},
        {"mobility": ""},
        {"mobility": 7},
    ])
    def test_bad_mobility_spec_rejected(self, bad):
        with pytest.raises(ValueError):
            ServiceRequest(**bad)

    def test_policy_from_name_matches_cli_grammar(self):
        assert policy_from_name("I").mode == "i_frames"
        assert policy_from_name("I+25%P").fraction == pytest.approx(0.25)
        with pytest.raises(ValueError, match="unknown policy"):
            policy_from_name("everything")
        with pytest.raises(ValueError, match="malformed policy"):
            policy_from_name("I+lots%P")


class TestAdvisorMemo:
    def _memo(self, tmp_path):
        return AdvisorMemo(ResultCache(tmp_path / "memo"))

    def test_roundtrip_and_counters(self, tmp_path):
        memo = self._memo(tmp_path)
        request = ServiceRequest(**TINY)
        key = memo.key(request)
        assert memo.get(key) is None
        payload = {"target_psnr_db": 19.0, "satisfied": True,
                   "recommended": "I(AES256)",
                   "sweep": {"I(AES256)": {
                       "delay_ms": 2.5, "waiting_ms": 1.0,
                       "receiver_psnr_db": 30.0,
                       "eavesdropper_psnr_db": 6.0,
                       "eavesdropper_mos": 1.0}}}
        memo.put(key, request, payload)
        assert memo.get(key) == payload
        assert (memo.hits, memo.misses) == (1, 1)
        memo.cache.close()

    def test_foreign_cache_entry_is_a_miss_not_a_crash(self, tmp_path):
        memo = self._memo(tmp_path)
        key = "c" * 64
        memo.cache.backend.write(key, b"{not json")
        assert memo.get(key) is None
        memo.cache.backend.write(key, json.dumps(
            {"meta": {"service": "experiment"}, "runs": []}).encode())
        assert memo.get(key) is None
        memo.cache.close()

    def test_key_depends_on_code_fingerprint(self, tmp_path, monkeypatch):
        memo = self._memo(tmp_path)
        request = ServiceRequest(**TINY)
        before = memo.key(request)
        monkeypatch.setattr(advisor_service, "advisor_fingerprint",
                            lambda: "f" * 64)
        assert memo.key(request) != before
        memo.cache.close()

    def test_ap_shares_one_entry(self, tmp_path):
        memo = self._memo(tmp_path)
        assert memo.key(ServiceRequest(ap="ap-1", **TINY)) == \
            memo.key(ServiceRequest(ap="ap-2", **TINY))
        memo.cache.close()


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One loopback AdvisorServer shared by the wire tests."""
    root = tmp_path_factory.mktemp("advisor-serve")
    server = AdvisorServer(root / "memo", ap_capacity=4, workers=4)
    with ServerThread(server=server) as thread:
        yield thread


class TestServedRecommendations:
    def test_cold_then_memo_byte_identical_to_local(self, served):
        request = ServiceRequest(seed=31, **TINY)
        local = encode_choice(evaluate_request(request))
        with AdvisorClient(served.host, served.port) as client:
            evaluations_before = served.server.evaluations
            cold = client.recommend(request)
            warm = client.recommend(request)
        assert cold.source == "cold"
        assert warm.source == "memo"
        assert cold.data == local
        assert warm.data == local
        # the warm answer swept nothing
        assert served.server.evaluations == evaluations_before + 1

    def test_mobility_request_over_the_wire(self, served):
        """The acceptance bar for the mobility bridge: a vehicular
        request served over TCP answers byte-identically to a cold
        local evaluation, and the memoized replay sweeps nothing."""
        request = ServiceRequest(seed=36, mobility="vehicular", **TINY)
        local = encode_choice(evaluate_request(request))
        with AdvisorClient(served.host, served.port) as client:
            evaluations_before = served.server.evaluations
            cold = client.recommend(request)
            warm = client.recommend(request)
        assert cold.source == "cold"
        assert warm.source == "memo"
        assert cold.data == local
        assert warm.data == local
        assert served.server.evaluations == evaluations_before + 1

    def test_mobility_shares_no_memo_with_static(self, served):
        static = ServiceRequest(seed=36, **TINY)
        mobile = ServiceRequest(seed=36, mobility="vehicular", **TINY)
        with AdvisorClient(served.host, served.port) as client:
            static_payload = client.recommend(static).payload
            mobile_payload = client.recommend(mobile).payload
        # the gap fraction thins delivery, so the swept scalars differ
        assert static_payload != mobile_payload

    def test_candidate_subset_never_invents_labels(self, served):
        request = ServiceRequest(seed=32, candidates=("I", "all"), **TINY)
        with AdvisorClient(served.host, served.port) as client:
            payload = client.recommend(request).payload
        labels = set(payload["sweep"])
        assert labels == {policy_from_name(name).label
                          for name in ("I", "all")}
        assert payload["recommended"] in labels | {None}

    def test_target_mos_over_the_wire(self, served):
        request = ServiceRequest(seed=33, target_mos=2.0, **TINY)
        with AdvisorClient(served.host, served.port) as client:
            payload = client.recommend(request).payload
        assert payload["target_psnr_db"] == pytest.approx(25.0)

    def test_stats_shape(self, served):
        with AdvisorClient(served.host, served.port) as client:
            client.recommend(ServiceRequest(seed=34, **TINY))
            stats = client.stats()
        assert stats["ok"] is True
        assert stats["uptime_s"] > 0
        assert stats["evaluations"] >= 1
        assert stats["ap_capacity"] == 4
        assert set(stats["memo"]) == {"hits", "misses", "hit_rate"}
        load = stats["aps"]["default"]
        assert set(load) == {"in_flight", "admitted", "rejected",
                             "peak_in_flight"}
        assert load["in_flight"] == 0  # all sessions drained

    def test_stats_report_engine_and_solve_latency(self, served):
        """Cold evaluations must feed the per-engine solve-latency
        percentiles; the idle engine's slot stays empty, not fake."""
        with AdvisorClient(served.host, served.port) as client:
            client.recommend(ServiceRequest(seed=35, **TINY))
            stats = client.stats()
        assert stats["engine"] == "vector"
        solve = stats["solve_ms"]
        assert set(solve) == {"scalar", "vector"}
        vector = solve["vector"]
        assert vector["count"] >= 1
        assert 0.0 < vector["p50_ms"] <= vector["p99_ms"]
        scalar = solve["scalar"]
        assert scalar == {"count": 0, "p50_ms": None, "p99_ms": None}

    @pytest.mark.parametrize("request_obj", [
        None,
        "not a dict",
        {"motion": "warp"},
        {"frames": 5},
        {"device": "iphone"},
        {"target_psnr_db": 15.0, "target_mos": 2.0},
        {"candidates": []},
        {"unknown_field": 1},
        {"ap": ""},
    ])
    def test_malformed_request_is_an_error_response_not_a_crash(
            self, served, request_obj):
        """A well-framed but semantically garbage request must come back
        as a protocol-level error response (mapped to ValueError
        client-side); the server keeps serving afterwards."""
        with NetClient(served.host, served.port) as net:
            with pytest.raises(ValueError):
                net.call("advise.recommend", {"request": request_obj})
            header, _ = net.call("ping")
            assert header["pong"] is True

    def test_unknown_op_is_an_error_response(self, served):
        with NetClient(served.host, served.port) as net:
            with pytest.raises(ValueError, match="unknown op"):
                net.call("advise.destroy")

    def test_raw_garbage_on_the_socket_leaves_server_healthy(self, served):
        import random
        rng = random.Random(13)
        for _ in range(5):
            with socket.create_connection((served.host, served.port),
                                          timeout=5.0) as sock:
                sock.sendall(bytes(rng.randrange(256)
                                   for _ in range(rng.randrange(1, 80))))
                # server drops the connection on garbage; swallow the
                # FIN/RST however the OS reports it
                sock.settimeout(1.0)
                try:
                    sock.recv(64)
                except OSError:
                    pass
        with AdvisorClient(served.host, served.port) as client:
            assert client.ping()["pong"] is True


class TestServerConfig:
    def test_capacity_derived_from_dcf_model(self, tmp_path):
        """Without --ap-capacity the cap falls out of the contention
        model, matching the historical hand-set default of 4."""
        from repro.wifi.dcf import admission_capacity

        server = AdvisorServer(tmp_path / "memo")
        try:
            assert server.ap_capacity == admission_capacity() == 4
        finally:
            server.cache.close()
            server._executor.shutdown(wait=False)

    def test_explicit_capacity_overrides_model(self, tmp_path):
        server = AdvisorServer(tmp_path / "memo", ap_capacity=9)
        try:
            assert server.ap_capacity == 9
        finally:
            server.cache.close()
            server._executor.shutdown(wait=False)

    def test_zero_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ap_capacity"):
            AdvisorServer(tmp_path / "memo", ap_capacity=0)

    def test_unknown_engine_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="engine"):
            AdvisorServer(tmp_path / "memo", engine="simd")


class TestAdmissionControl:
    """Per-AP caps under a hammering client pool, with the model sweep
    stubbed so cold evaluations take a deterministic ~50 ms."""

    CANNED = {"target_psnr_db": 19.0, "satisfied": True,
              "recommended": "I(AES256)",
              "sweep": {"I(AES256)": {
                  "policy": {"mode": "i_frames", "algorithm": "AES256",
                             "fraction": None, "label": "I(AES256)"},
                  "delay_ms": 2.5, "waiting_ms": 1.0,
                  "traffic_intensity": 0.4, "receiver_psnr_db": 30.0,
                  "eavesdropper_psnr_db": 6.0, "eavesdropper_mos": 1.0}}}

    def test_cap_holds_and_rejected_sessions_eventually_complete(
            self, tmp_path, monkeypatch):
        def slow_evaluate(request, **kwargs):
            time.sleep(0.05)
            return dict(self.CANNED)

        monkeypatch.setattr(advisor_service, "evaluate_payload",
                            slow_evaluate)
        server = AdvisorServer(tmp_path / "memo", ap_capacity=2,
                               workers=8)
        answers, errors = [], []
        with ServerThread(server=server) as served:
            def hammer(worker, ap):
                try:
                    with AdvisorClient(
                            served.host, served.port,
                            busy_attempts=200,
                            busy_backoff=Backoff(base_s=0.005,
                                                 cap_s=0.05)) as client:
                        for i in range(4):
                            request = ServiceRequest(
                                seed=worker * 101 + i, ap=ap, **TINY)
                            answers.append(client.recommend(request))
                except Exception as exc:  # noqa: BLE001 - recorded below
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer,
                                 args=(worker, f"ap-{worker % 2}"))
                for worker in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            with AdvisorClient(served.host, served.port) as client:
                stats = client.stats()

        assert not errors, errors
        # no starvation: every session eventually got a real answer
        assert len(answers) == 8 * 4
        assert all(a.source in ("cold", "memo") for a in answers)
        for ap, load in stats["aps"].items():
            assert load["peak_in_flight"] <= 2, (ap, load)
            assert load["in_flight"] == 0, (ap, load)
        # the pool genuinely overloaded both APs at some point
        total_rejected = sum(load["rejected"]
                             for load in stats["aps"].values())
        assert total_rejected > 0
        total_admitted = sum(load["admitted"]
                             for load in stats["aps"].values())
        assert total_admitted == stats["evaluations"]

    def test_busy_response_shape(self, tmp_path, monkeypatch):
        """A session over a saturated AP sees {"busy": true} with the
        occupancy attached — and it is a normal response, not an error
        frame, so NetClient's no-retry-on-semantic-errors rule keeps
        out of the way."""
        release = threading.Event()

        def blocking_evaluate(request, **kwargs):
            release.wait(timeout=30.0)
            return dict(self.CANNED)

        monkeypatch.setattr(advisor_service, "evaluate_payload",
                            blocking_evaluate)
        server = AdvisorServer(tmp_path / "memo", ap_capacity=1,
                               workers=4)
        with ServerThread(server=server) as served:
            filler_done = []

            def filler():
                with AdvisorClient(served.host, served.port) as client:
                    filler_done.append(
                        client.recommend(ServiceRequest(seed=1, **TINY)))

            thread = threading.Thread(target=filler)
            thread.start()
            try:
                deadline = time.monotonic() + 10.0
                with NetClient(served.host, served.port) as net:
                    # wait for the filler to actually occupy the slot —
                    # probing earlier would win the slot ourselves
                    while time.monotonic() < deadline:
                        stats, _ = net.call("advise.stats")
                        if stats["in_flight"] >= 1:
                            break
                        time.sleep(0.01)
                    else:
                        pytest.fail("filler never entered the AP")
                    header, blob = net.call(
                        "advise.recommend",
                        {"request": ServiceRequest(
                            seed=2, **TINY).to_header()})
                assert header.get("busy") is True
                assert header["ap"] == "default"
                assert header["capacity"] == 1
                assert header["in_flight"] == 1
                assert blob == b""
            finally:
                release.set()
                thread.join(timeout=30.0)
            assert filler_done and filler_done[0].source == "cold"
