"""Eq. (20): frame success probabilities, checked against enumeration."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frame_success import (
    FrameSuccessModel,
    decryption_rate,
    frame_success_probability,
)
from repro.core.policies import EncryptionPolicy


def _brute_force(n, s, p):
    """Enumerate all packet outcomes (exponential, for small n)."""
    total = 0.0
    for outcome in itertools.product([0, 1], repeat=n):
        if not outcome[0]:
            continue
        if sum(outcome[1:]) < s:
            continue
        prob = 1.0
        for bit in outcome:
            prob *= p if bit else (1.0 - p)
        total += prob
    return total


class TestEquation20:
    @pytest.mark.parametrize("n,s,p", [
        (1, 0, 0.9), (2, 1, 0.8), (4, 2, 0.7), (5, 4, 0.95), (6, 0, 0.5),
    ])
    def test_matches_enumeration(self, n, s, p):
        assert frame_success_probability(n, s, p) == pytest.approx(
            _brute_force(n, s, p), abs=1e-12
        )

    def test_single_packet_frame(self):
        assert frame_success_probability(1, 0, 0.77) == pytest.approx(0.77)

    def test_perfect_channel(self):
        assert frame_success_probability(10, 9, 1.0) == 1.0

    def test_dead_channel(self):
        assert frame_success_probability(10, 0, 0.0) == 0.0

    def test_monotone_in_p(self):
        values = [frame_success_probability(5, 3, p)
                  for p in (0.5, 0.7, 0.9, 0.99)]
        assert values == sorted(values)

    def test_monotone_decreasing_in_sensitivity(self):
        values = [frame_success_probability(6, s, 0.8) for s in range(6)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            frame_success_probability(0, 0, 0.5)
        with pytest.raises(ValueError):
            frame_success_probability(5, 5, 0.5)
        with pytest.raises(ValueError):
            frame_success_probability(5, 2, 1.5)


class TestDecryptionRate:
    def test_receiver_sees_channel_only(self):
        assert decryption_rate(0.9, 0.8, eavesdropper=False) == 0.9

    def test_eavesdropper_thinned(self):
        assert decryption_rate(0.9, 0.25, eavesdropper=True) == pytest.approx(
            0.675
        )

    def test_full_encryption_blinds_eavesdropper(self):
        assert decryption_rate(1.0, 1.0, eavesdropper=True) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            decryption_rate(1.5, 0.0, eavesdropper=True)


class TestFrameSuccessModel:
    @pytest.fixture
    def model(self):
        return FrameSuccessModel(n_i=7, n_p=1, sensitivity_fraction=0.55,
                                 p_s=0.98)

    def test_receiver_unaffected_by_policy(self, model):
        all_policy = EncryptionPolicy("all", "AES256")
        none_policy = EncryptionPolicy("none", None)
        assert model.i_frame_success(all_policy, eavesdropper=False) == (
            model.i_frame_success(none_policy, eavesdropper=False)
        )

    def test_eavesdropper_loses_encrypted_i_frames(self, model):
        policy = EncryptionPolicy("i_frames", "AES256")
        assert model.i_frame_success(policy, eavesdropper=True) == 0.0
        assert model.p_frame_success(policy, eavesdropper=True) == (
            pytest.approx(0.98)
        )

    def test_eavesdropper_loses_encrypted_p_frames(self, model):
        policy = EncryptionPolicy("p_frames", "AES256")
        assert model.p_frame_success(policy, eavesdropper=True) == 0.0
        assert model.i_frame_success(policy, eavesdropper=True) > 0.5

    def test_mixture_thins_p_frames(self, model):
        policy = EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.2)
        assert model.p_frame_success(policy, eavesdropper=True) == (
            pytest.approx(0.8 * 0.98)
        )

    def test_sensitivity_ceiling(self):
        model = FrameSuccessModel(n_i=7, n_p=1, sensitivity_fraction=0.55,
                                  p_s=0.9)
        # s = ceil(0.55 * 6) = 4 of the remaining 6.
        expected = frame_success_probability(7, 4, 0.9)
        policy = EncryptionPolicy("none", None)
        assert model.i_frame_success(policy, eavesdropper=True) == (
            pytest.approx(expected)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameSuccessModel(n_i=0, n_p=1, sensitivity_fraction=0.5, p_s=0.9)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 12), p=st.floats(0.0, 1.0))
def test_property_bounds(n, p):
    s = max(0, (n - 1) // 2)
    value = frame_success_probability(n, s, p)
    assert 0.0 <= value <= 1.0
    assert value <= p + 1e-12  # can't beat the mandatory first packet
