"""Work queue: atomic claims, lease expiry, idempotent completion,
scenario blobs, and fault injection."""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.testbed.engine import scenario_fingerprint
from repro.testbed.queue import (QueueTask, WorkQueue, open_queue,
                                 pack_scenario, unpack_scenario)
from repro.video import CodecConfig, encode_sequence, generate_clip


def _task(key_char: str, **overrides) -> QueueTask:
    fields = dict(
        key=key_char * 64,
        scenario="s",
        scenario_fingerprint="f" * 64,
        scenario_meta={"motion": "slow"},
        config={"policy": {"mode": "none"}},
        repeats=2,
        master_seed=0,
        schema=2,
        code="c" * 64,
    )
    fields.update(overrides)
    return QueueTask(**fields)


class TestLifecycle:
    def test_submit_claim_complete(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.submit(_task("a"))
        assert queue.counts() == {"pending": 1, "leased": 0,
                                  "done": 0, "failed": 0}
        task = queue.claim()
        assert task == _task("a")
        assert queue.counts()["leased"] == 1
        queue.complete(task.key)
        assert queue.counts() == {"pending": 0, "leased": 0,
                                  "done": 1, "failed": 0}
        assert queue.is_drained()

    def test_submit_idempotent_across_states(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.submit(_task("a"))
        assert not queue.submit(_task("a"))  # pending
        queue.claim()
        assert not queue.submit(_task("a"))  # leased
        queue.complete(_task("a").key)
        assert not queue.submit(_task("a"))  # done

    def test_claim_empty_returns_none(self, tmp_path):
        assert WorkQueue(tmp_path / "q").claim() is None

    def test_complete_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(_task("a"))
        task = queue.claim()
        queue.complete(task.key)
        queue.complete(task.key)  # twin finishing after expiry: no error
        assert queue.counts()["done"] == 1

    def test_fail_records_reason_and_payload(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(_task("a"))
        task = queue.claim()
        queue.fail(task.key, "code fingerprint mismatch")
        assert queue.counts()["failed"] == 1
        assert "mismatch" in queue.failure_reason(task.key)
        # retry restores the original task payload
        assert queue.retry_failed() == [task.key]
        assert queue.claim() == task

    def test_config_persisted_and_conflicts_rejected(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=7.0,
                          cache_spec="dir:/somewhere")
        reopened = WorkQueue(tmp_path / "q")
        assert reopened.lease_expiry_s == 7.0
        assert reopened.cache_spec == "dir:/somewhere"
        with pytest.raises(ValueError, match="cache spec"):
            WorkQueue(tmp_path / "q", cache_spec="dir:/elsewhere")
        with pytest.raises(ValueError, match="lease_expiry_s"):
            WorkQueue(tmp_path / "q", lease_expiry_s=9.0)

    def test_malformed_task_file_failed_not_crashed(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        (queue.path / "tasks" / f"{'a' * 64}.json").write_text("{broken")
        assert queue.claim() is None
        assert queue.counts()["failed"] == 1


def _age_lease(lease, seconds):
    """Age a lease's heartbeat: payload ``renewed_at`` and mtime both."""
    payload = json.loads(lease.read_text())
    if isinstance(payload, dict) and "renewed_at" in payload:
        payload["renewed_at"] -= seconds
        lease.write_text(json.dumps(payload))
    old = time.time() - seconds
    os.utime(lease, (old, old))


class TestLeaseExpiry:
    def test_abandoned_lease_requeued_after_expiry(self, tmp_path):
        """Fault injection: a worker claims a cell and dies.  After the
        lease expires the cell must be claimable again."""
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        task = queue.claim()  # the "dead" worker's claim
        assert queue.claim() is None
        assert queue.requeue_expired() == []  # fresh lease: not expired
        # age the lease artificially past expiry
        lease = queue.path / "leases" / f"{task.key}.json"
        _age_lease(lease, 60.0)
        assert queue.requeue_expired() == [task.key]
        replacement = queue.claim()
        assert replacement == task

    def test_renew_defers_expiry(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        task = queue.claim()
        lease = queue.path / "leases" / f"{task.key}.json"
        _age_lease(lease, 60.0)
        queue.renew(task.key)  # live worker heartbeat
        assert queue.requeue_expired() == []

    def test_stale_mtime_does_not_expire_live_lease(self, tmp_path):
        """Regression: a shared filesystem that mangles mtime (coarse
        granularity, skewed clock) must not kill a live lease — the
        payload's ``renewed_at`` heartbeat is authoritative."""
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        task = queue.claim()
        lease = queue.path / "leases" / f"{task.key}.json"
        old = time.time() - 3600.0
        os.utime(lease, (old, old))  # mtime lies; payload stays fresh
        assert queue.requeue_expired() == []
        queue.complete(task.key)

    def test_fresh_mtime_does_not_revive_dead_lease(self, tmp_path):
        """The other direction: a fresh mtime (e.g. a backup tool or a
        skewed writer touched the file) must not shield a lease whose
        payload heartbeat is long past expiry."""
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        task = queue.claim()
        lease = queue.path / "leases" / f"{task.key}.json"
        payload = json.loads(lease.read_text())
        payload["renewed_at"] -= 3600.0
        lease.write_text(json.dumps(payload))
        os.utime(lease)  # mtime says "just touched"
        assert queue.requeue_expired() == [task.key]

    def test_bare_legacy_lease_falls_back_to_mtime(self, tmp_path):
        """A lease written by an older worker (bare task JSON, no
        heartbeat payload) is still expirable via mtime."""
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        task = queue.claim()
        lease = queue.path / "leases" / f"{task.key}.json"
        lease.write_text(task.to_json())  # strip the heartbeat wrapper
        assert queue.requeue_expired() == []  # fresh mtime: keep it
        old = time.time() - 60.0
        os.utime(lease, (old, old))
        assert queue.requeue_expired() == [task.key]
        assert queue.claim() == task

    def test_requeued_wrapped_task_claimable(self, tmp_path):
        """requeue_expired moves the *wrapped* payload back to tasks/;
        a later claim must unwrap it transparently."""
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        task = queue.claim()
        _age_lease(queue.path / "leases" / f"{task.key}.json", 60.0)
        assert queue.requeue_expired() == [task.key]
        pending = queue.path / "tasks" / f"{task.key}.json"
        assert "renewed_at" in pending.read_text()
        assert queue.claim() == task
        queue.fail(task.key, "boom")
        reasons = json.loads(
            (queue.path / "failed" / f"{task.key}.json").read_text())
        assert reasons["task"]["key"] == task.key  # payload survived

    def test_claim_resets_submit_mtime(self, tmp_path):
        """os.rename preserves mtime; an old pending task must not be
        born expired when finally claimed."""
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        pending = queue.path / "tasks" / f"{_task('a').key}.json"
        old = time.time() - 3600.0
        os.utime(pending, (old, old))
        task = queue.claim()
        assert queue.requeue_expired() == []
        queue.complete(task.key)

    def test_claim_vs_requeue_race_regression(self, tmp_path,
                                              monkeypatch):
        """Regression for the claim-time false-expiry race: an old
        pending task is claimed while a concurrent requeue_expired()
        fires *inside* the claim's parse window.  Pre-fix, the rename
        preserved the hour-old submit mtime, so the requeuer saw an
        expired lease, stole the task back to pending, and the claimer's
        heartbeat rewrite resurrected the lease — the same cell then
        existed in both states and was simulated twice."""
        import repro.testbed.queue as queue_mod

        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        pending = queue.path / "tasks" / f"{_task('a').key}.json"
        old = time.time() - 3600.0
        os.utime(pending, (old, old))  # submitted an hour ago

        stealer = WorkQueue(tmp_path / "q")
        real_parse = queue_mod._parse_lease_payload
        stolen = []
        fired = []

        def racing_parse(text):
            if not fired:  # one shot: requeue_expired parses leases too
                fired.append(True)
                stolen.extend(stealer.requeue_expired())
            return real_parse(text)

        monkeypatch.setattr(queue_mod, "_parse_lease_payload",
                            racing_parse)
        task = queue.claim()
        assert task == _task("a")
        assert stolen == []  # the mid-claim requeue must see a live lease
        assert queue.claim() is None  # and no duplicate copy to claim
        assert queue.counts() == {"pending": 0, "leased": 1,
                                  "done": 0, "failed": 0}


def _claim_all(queue_dir: str):
    queue = WorkQueue(queue_dir)
    claimed = []
    while True:
        task = queue.claim()
        if task is None:
            return claimed
        claimed.append(task.key)


@pytest.mark.slow
class TestDoubleClaim:
    def test_hammered_claims_never_duplicate(self, tmp_path):
        """Acceptance: N processes hammering claim() must partition the
        task set — no key claimed twice, none lost."""
        queue = WorkQueue(tmp_path / "q")
        keys = {("%02x" % i) * 32 for i in range(24)}
        for key in keys:
            queue.submit(_task("a", key=key))
        with ProcessPoolExecutor(max_workers=6) as pool:
            partitions = list(pool.map(
                _claim_all, [str(queue.path)] * 6))
        flat = [key for part in partitions for key in part]
        assert len(flat) == len(keys), "a task was lost or double-claimed"
        assert set(flat) == keys
        assert queue.counts()["leased"] == len(keys)


class TestScenarioBlobs:
    def test_round_trip_preserves_fingerprint(self, tmp_path):
        clip = generate_clip("slow", 12, seed=1)
        bitstream = encode_sequence(clip,
                                    CodecConfig(gop_size=6, quantizer=8))
        fingerprint = scenario_fingerprint(clip, bitstream)
        queue = WorkQueue(tmp_path / "q")
        assert not queue.has_scenario(fingerprint)
        queue.store_scenario(fingerprint, clip, bitstream)
        assert queue.has_scenario(fingerprint)
        loaded_clip, loaded_bitstream = queue.load_scenario(
            fingerprint, verify=scenario_fingerprint)
        assert len(loaded_clip) == len(clip)
        assert loaded_bitstream.quantizer == bitstream.quantizer
        assert [f.frame_type for f in loaded_bitstream.frames] == \
            [f.frame_type for f in bitstream.frames]

    def test_corrupted_blob_rejected(self, tmp_path):
        clip = generate_clip("slow", 6, seed=1)
        bitstream = encode_sequence(clip,
                                    CodecConfig(gop_size=6, quantizer=8))
        fingerprint = scenario_fingerprint(clip, bitstream)
        queue = WorkQueue(tmp_path / "q")
        # store under a *wrong* fingerprint: verification must catch it
        queue.store_scenario("0" * 64, clip, bitstream)
        with pytest.raises(ValueError, match="fingerprint"):
            queue.load_scenario("0" * 64, verify=scenario_fingerprint)
        # and the correct fingerprint passes
        queue.store_scenario(fingerprint, clip, bitstream)
        queue.load_scenario(fingerprint, verify=scenario_fingerprint)


class TestLeaseStats:
    def test_lease_stats_reports_heartbeat_ages(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_expiry_s=30.0)
        queue.submit(_task("a"))
        queue.submit(_task("b"))
        first = queue.claim()
        second = queue.claim()
        _age_lease(queue.path / "leases" / f"{first.key}.json", 10.0)
        stats = queue.lease_stats()
        assert set(stats) == {first.key, second.key}
        assert stats[first.key] >= 9.0
        assert 0.0 <= stats[second.key] < 5.0
        queue.complete(first.key)
        queue.complete(second.key)
        assert queue.lease_stats() == {}


class TestOpenQueue:
    def test_directory_opens_local_queue(self, tmp_path):
        queue = open_queue(tmp_path / "q")
        assert isinstance(queue, WorkQueue)

    def test_existing_queue_passes_through(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert open_queue(queue) is queue

    def test_malformed_tcp_spec_rejected(self):
        with pytest.raises(ValueError, match="tcp"):
            open_queue("tcp:no-port-here")


class TestScenarioPacking:
    def test_module_level_pack_unpack_round_trip(self):
        clip = generate_clip("slow", 6, seed=1)
        bitstream = encode_sequence(clip,
                                    CodecConfig(gop_size=6, quantizer=8))
        fingerprint = scenario_fingerprint(clip, bitstream)
        blob = pack_scenario(clip, bitstream)
        loaded_clip, loaded_bitstream = unpack_scenario(
            blob, fingerprint=fingerprint, verify=scenario_fingerprint)
        assert scenario_fingerprint(loaded_clip, loaded_bitstream) == \
            fingerprint

    def test_garbage_blob_rejected(self):
        with pytest.raises(ValueError, match="archive"):
            unpack_scenario(b"not an npz archive at all")


class TestTaskSerialization:
    def test_json_round_trip(self):
        task = _task("a")
        assert QueueTask.from_json(task.to_json()) == task

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            QueueTask.from_json("{}")
        with pytest.raises(ValueError, match="malformed"):
            QueueTask.from_json(json.dumps({"key": "x", "bogus": 1}))
