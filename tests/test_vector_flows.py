"""The struct-of-arrays fast path vs the coroutine kernel.

The vector engine's contract has two tiers, mirroring the legacy-vs-
events differential layer one level up:

- ``sampling="oracle"`` + ``scheduler="exact"`` must reproduce the
  event kernel's traces *bit for bit* — hypothesis sweeps seeds, flow
  counts and lossy-channel configs through both engines;
- ``sampling="batch"`` (the 10^4-flow path) only promises the same
  *distribution*, so it is pinned statistically, while the batch
  scheduler is pinned against the exact scheduler on identical
  pre-sampled tables (pure determinism, ulp-level tolerance).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import standard_policies
from repro.core.policies import EncryptionPolicy
from repro.testbed.devices import GALAXY_S2, HTC_AMAZE_4G
from repro.testbed.multiflow import (
    MultiFlowRun,
    _packetize_flows,
    _service_for,
    contention_link,
    run_multiflow,
)
from repro.testbed.simulator import LinkConfig, SimulationRun
from repro.testbed.tracing import TraceLog
from repro.testbed.transport import HTTP_TCP, UDP_RTP
from repro.testbed.vector_flows import (
    SATURATION_DRAIN_FACTOR,
    _schedule_batch,
    _schedule_exact,
    build_tables,
    run_vector_flows,
)

SEED_GUARD = 2013
from repro.video import CodecConfig, encode_sequence, generate_clip
from repro.wifi.channel import GilbertElliottChannel


@pytest.fixture(scope="module")
def tiny_bitstream():
    clip = generate_clip("slow", 12, seed=1)
    return encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))


def _trace_tuples(result):
    return [
        (t.sequence_number, t.enqueue_time_s, t.service_start_s,
         t.encryption_time_s, t.transmit_time_s, t.departure_time_s,
         t.encrypted, t.delivered, t.attempts)
        for run in result.flows for t in run.trace
    ]


def _both(bitstream, **kwargs):
    kernel = run_multiflow(bitstream, **kwargs)
    vector = run_multiflow(bitstream, engine="vector", sampling="oracle",
                           **kwargs)
    return kernel, vector


class TestOracleMatchesKernel:
    """Bit-identical traces: the differential anchor of the fast path."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        flows=st.sampled_from([1, 2, 4]),
        error=st.sampled_from([0.0, 0.1, 0.3]),
    )
    def test_trace_identical_over_seeds_flows_loss(self, tiny_bitstream,
                                                   seed, flows, error):
        kernel, vector = _both(
            tiny_bitstream, flows=flows,
            policy=standard_policies("AES256")["I"], device=GALAXY_S2,
            seed=seed, channel_error_rate=error,
        )
        assert _trace_tuples(kernel) == _trace_tuples(vector)

    @pytest.mark.parametrize("policy_name", ["none", "I", "P", "all"])
    def test_trace_identical_per_policy(self, tiny_bitstream, policy_name):
        kernel, vector = _both(
            tiny_bitstream, flows=3,
            policy=standard_policies("AES256")[policy_name],
            device=GALAXY_S2, seed=11,
        )
        assert _trace_tuples(kernel) == _trace_tuples(vector)

    def test_mixture_policy_identical(self, tiny_bitstream):
        policy = EncryptionPolicy("i_plus_p_fraction", "3DES", fraction=0.2)
        kernel, vector = _both(tiny_bitstream, flows=4, policy=policy,
                               device=GALAXY_S2, seed=5)
        assert _trace_tuples(kernel) == _trace_tuples(vector)

    def test_tcp_on_lossy_link_identical(self, tiny_bitstream):
        """The retransmission path: extra RTO delays, attempts > 1, and
        undelivered packets must all line up."""
        lossy = LinkConfig.default(channel_error_rate=0.2)
        lossy = LinkConfig(phy=lossy.phy, dcf=lossy.dcf, retry_limit=0)
        kernel, vector = _both(
            tiny_bitstream, flows=2,
            policy=standard_policies("AES256")["I"], device=HTC_AMAZE_4G,
            link=lossy, transport=HTTP_TCP, seed=12,
        )
        assert _trace_tuples(kernel) == _trace_tuples(vector)
        assert any(t.attempts > 1
                   for run in kernel.flows for t in run.trace)

    def test_stagger_identical(self, tiny_bitstream):
        kernel, vector = _both(
            tiny_bitstream, flows=3,
            policy=standard_policies("AES256")["all"], device=GALAXY_S2,
            seed=9, stagger_s=0.004,
        )
        assert _trace_tuples(kernel) == _trace_tuples(vector)

    def test_usable_flags_identical(self, tiny_bitstream):
        kernel, vector = _both(
            tiny_bitstream, flows=2,
            policy=standard_policies("AES256")["I"], device=GALAXY_S2,
            seed=4, channel_error_rate=0.15,
        )
        for k_run, v_run in zip(kernel.flows, vector.flows):
            assert k_run.usable_by_receiver == v_run.usable_by_receiver
            assert k_run.usable_by_eavesdropper == \
                v_run.usable_by_eavesdropper


def _tables_for(bitstream, n_flows, *, seed, sampling):
    link = contention_link(n_flows)
    service = _service_for(standard_policies("AES256")["I"], GALAXY_S2,
                           link, UDP_RTP)
    flow_streams, flow_arrivals = _packetize_flows(
        [bitstream] * n_flows, mtu=1460,
        disk_read_rate_pkts_per_s=600.0, stagger_s=0.0)
    tables, _ = build_tables(flow_streams, flow_arrivals, service=service,
                             seed=seed, sampling=sampling)
    return tables


class TestBatchScheduler:
    """The vectorized scheduler vs the heap replay, same sampled tables
    (pure determinism — any disagreement beyond float reassociation is
    a bug, not noise)."""

    @pytest.mark.parametrize("sampling", ["oracle", "batch"])
    @pytest.mark.parametrize("n_flows", [1, 4, 16])
    def test_agrees_with_exact_to_ulps(self, tiny_bitstream, n_flows,
                                       sampling):
        tables = _tables_for(tiny_bitstream, n_flows, seed=11,
                             sampling=sampling)
        e_start, e_transmit, e_depart = _schedule_exact(tables)
        b_start, b_transmit, b_depart = _schedule_batch(tables)
        np.testing.assert_allclose(b_start, e_start, rtol=0, atol=1e-9)
        np.testing.assert_allclose(b_transmit, e_transmit, rtol=0,
                                   atol=1e-9)
        np.testing.assert_allclose(b_depart, e_depart, rtol=0, atol=1e-9)

    def test_airtime_segment_exact_per_packet(self, tiny_bitstream):
        """Committed ``depart`` must equal ``transmit + transmission_s``
        exactly (not to ulps) — the same single rounding the kernel's
        ``Timeout(transmission)`` performs, so airtime sums agree."""
        tables = _tables_for(tiny_bitstream, 8, seed=3, sampling="batch")
        _, transmit, depart = _schedule_batch(tables)
        mask = tables.valid_mask()
        assert np.array_equal(depart[mask],
                              (transmit + tables.transmission_s)[mask])

    def test_server_never_overlaps(self, tiny_bitstream):
        """Grant intervals on the shared medium must not overlap (up to
        the documented ulp reassociation drift)."""
        tables = _tables_for(tiny_bitstream, 12, seed=7, sampling="batch")
        _, transmit, depart = _schedule_batch(tables)
        mask = tables.valid_mask()
        order = np.argsort(transmit[mask], kind="stable")
        busy_from = (transmit[mask]
                     - tables.backoff_s[mask]
                     - tables.extra_delay_s[mask])[order]
        busy_to = depart[mask][order]
        assert np.all(busy_from[1:] >= busy_to[:-1] - 1e-9)


class TestBatchSamplingDistribution:
    """Batch sampling promises the kernel's distribution, not its
    stream: pin the delay profile statistically across fixed seeds."""

    def test_mean_delay_matches_kernel_across_seeds(self, tiny_bitstream):
        policy = standard_policies("AES256")["I"]
        seeds = range(6)
        kernel_mean = np.mean([
            run_multiflow(tiny_bitstream, flows=8, policy=policy,
                          device=GALAXY_S2, seed=seed).mean_delay_ms
            for seed in seeds
        ])
        batch_mean = np.mean([
            run_multiflow(tiny_bitstream, flows=8, policy=policy,
                          device=GALAXY_S2, seed=seed,
                          engine="vector").mean_delay_ms
            for seed in seeds
        ])
        assert batch_mean == pytest.approx(kernel_mean, rel=0.15)

    def test_delivery_rate_matches_kernel(self, tiny_bitstream):
        policy = standard_policies("AES256")["none"]
        kwargs = dict(flows=8, policy=policy, device=GALAXY_S2,
                      channel_error_rate=0.2)
        kernel_rate = np.mean([
            np.mean([np.mean(run.usable_by_receiver) for run in
                     run_multiflow(tiny_bitstream, seed=s, **kwargs).flows])
            for s in range(6)
        ])
        vector_rate = np.mean([
            np.mean([np.mean(run.usable_by_receiver) for run in
                     run_multiflow(tiny_bitstream, seed=s,
                                   engine="vector", **kwargs).flows])
            for s in range(6)
        ])
        assert vector_rate == pytest.approx(kernel_rate, abs=0.05)

    def test_large_grid_sane(self, tiny_bitstream):
        """A few hundred flows through the fast path: finite delays,
        FIFO-consistent makespan, everything accounted for."""
        link = contention_link(200)
        service = _service_for(standard_policies("AES256")["I"],
                               GALAXY_S2, link, UDP_RTP)
        flow_streams, flow_arrivals = _packetize_flows(
            [tiny_bitstream] * 200, mtu=1460,
            disk_read_rate_pkts_per_s=600.0, stagger_s=0.0)
        vrun = run_vector_flows(flow_streams, flow_arrivals,
                                service=service, seed=5)
        assert vrun.n_flows == 200
        delays = vrun.delays_ms()
        mask = vrun.tables.valid_mask()
        assert np.isfinite(delays[mask]).all()
        assert (delays[mask] >= 0).all()
        assert vrun.makespan_s >= np.max(vrun.depart_s[mask]) - 1e-12


class TestVectorRunViews:
    def test_views_match_materialized_run(self, tiny_bitstream):
        vrun = run_multiflow(tiny_bitstream, flows=3,
                             policy=standard_policies("AES256")["I"],
                             device=GALAXY_S2, seed=8, engine="vector",
                             sampling="oracle")
        kernel_equiv = run_multiflow(
            tiny_bitstream, flows=3,
            policy=standard_policies("AES256")["I"],
            device=GALAXY_S2, seed=8)
        assert vrun.mean_delay_ms == pytest.approx(
            kernel_equiv.mean_delay_ms, rel=1e-12)
        assert vrun.makespan_s == pytest.approx(
            kernel_equiv.makespan_s, rel=1e-12)
        for v_row, k_row in zip(vrun.delay_percentiles_ms(),
                                kernel_equiv.delay_percentiles_ms()):
            for key in ("p50", "p90", "p99", "mean"):
                assert v_row[key] == pytest.approx(k_row[key], rel=1e-9)

    def test_zero_packet_flow_gives_none_row(self, tiny_bitstream):
        """Satellite regression, vector side: a zero-packet flow gets a
        ``None`` percentile row and NaN padding, never a NaN metric."""
        link = contention_link(2)
        service = _service_for(standard_policies("AES256")["I"],
                               GALAXY_S2, link, UDP_RTP)
        flow_streams, flow_arrivals = _packetize_flows(
            [tiny_bitstream], mtu=1460,
            disk_read_rate_pkts_per_s=600.0, stagger_s=0.0)
        flow_streams.append([])
        flow_arrivals.append(np.array([]))
        vrun = run_vector_flows(flow_streams, flow_arrivals,
                                service=service, seed=1)
        rows = vrun.delay_percentiles_ms()
        assert rows[0] is not None and rows[1] is None
        assert not np.isnan(vrun.mean_delay_ms)
        assert vrun.per_flow_delays_ms()[1].size == 0

    def test_all_empty_grid_raises_not_nan(self):
        link = contention_link(1)
        service = _service_for(standard_policies("AES256")["I"],
                               GALAXY_S2, link, UDP_RTP)
        vrun = run_vector_flows([[], []],
                                [np.array([]), np.array([])],
                                service=service, seed=1)
        assert vrun.delay_percentiles_ms() == [None, None]
        with pytest.raises(ValueError, match="no flow"):
            vrun.mean_delay_ms
        with pytest.raises(ValueError, match="no flow"):
            vrun.makespan_s


class TestMultiFlowRunEmptyFlows:
    """Satellite regression, kernel side: ``MultiFlowRun`` views used to
    crash (``np.percentile`` of an empty array) or emit NaN means when a
    flow carried zero packets."""

    def _empty_run(self):
        return SimulationRun(trace=TraceLog([]), packets=[],
                             usable_by_receiver=[],
                             usable_by_eavesdropper=[])

    def test_mixed_grid_skips_empty_flow(self, tiny_bitstream):
        populated = run_multiflow(
            tiny_bitstream, flows=1,
            policy=standard_policies("AES256")["I"], device=GALAXY_S2,
            seed=3).flows[0]
        mixed = MultiFlowRun(flows=[populated, self._empty_run()])
        rows = mixed.delay_percentiles_ms()
        assert rows[0] is not None and rows[1] is None
        assert not np.isnan(mixed.mean_delay_ms)
        assert mixed.makespan_s > 0

    def test_all_empty_grid_raises(self):
        empty = MultiFlowRun(flows=[self._empty_run(), self._empty_run()])
        assert empty.delay_percentiles_ms() == [None, None]
        with pytest.raises(ValueError, match="no flow"):
            empty.mean_delay_ms
        with pytest.raises(ValueError, match="no flow"):
            empty.makespan_s


class TestSaturationGuard:
    """Satellite regression: saturated grids must be flagged, not
    reported as astronomical-but-finite latency percentiles (the 10k-
    flow flows_scale point used to publish a p99 of ~8.2e14 ms)."""

    def _run(self, bitstream, n_flows):
        link = contention_link(n_flows)
        service = _service_for(standard_policies("AES256")["I"],
                               GALAXY_S2, link, UDP_RTP)
        flow_streams, flow_arrivals = _packetize_flows(
            [bitstream] * n_flows, mtu=1460,
            disk_read_rate_pkts_per_s=600.0, stagger_s=0.0)
        return run_vector_flows(flow_streams, flow_arrivals,
                                service=service, seed=SEED_GUARD)

    def test_light_grid_is_stable(self, tiny_bitstream):
        vrun = self._run(tiny_bitstream, 4)
        assert not vrun.saturated
        assert 1.0 <= vrun.drain_factor < SATURATION_DRAIN_FACTOR

    def test_overloaded_grid_is_flagged(self, tiny_bitstream):
        """Enough contenders that the backlog grows for the whole run:
        the drain factor blows past the threshold and the run must be
        reported unstable (the bench then emits p99 = inf)."""
        vrun = self._run(tiny_bitstream, 150)
        assert vrun.saturated
        assert vrun.drain_factor > SATURATION_DRAIN_FACTOR


class TestValidation:
    def test_unknown_engine_rejected(self, tiny_bitstream):
        with pytest.raises(ValueError, match="engine"):
            run_multiflow(tiny_bitstream, flows=2,
                          policy=standard_policies("AES256")["I"],
                          device=GALAXY_S2, engine="simpy")

    def test_stateful_channel_rejected_on_vector(self, tiny_bitstream):
        with pytest.raises(ValueError, match="LossChannel"):
            run_multiflow(tiny_bitstream, flows=2,
                          policy=standard_policies("AES256")["I"],
                          device=GALAXY_S2, engine="vector",
                          channel=GilbertElliottChannel(
                              p_gb=0.1, p_bg=0.4, seed=0))

    def test_unknown_sampling_and_scheduler_rejected(self, tiny_bitstream):
        link = contention_link(1)
        service = _service_for(standard_policies("AES256")["I"],
                               GALAXY_S2, link, UDP_RTP)
        flow_streams, flow_arrivals = _packetize_flows(
            [tiny_bitstream], mtu=1460,
            disk_read_rate_pkts_per_s=600.0, stagger_s=0.0)
        with pytest.raises(ValueError, match="sampling"):
            run_vector_flows(flow_streams, flow_arrivals,
                             service=service, sampling="quantum")
        with pytest.raises(ValueError, match="scheduler"):
            run_vector_flows(flow_streams, flow_arrivals,
                             service=service, scheduler="fifo")

    def test_mismatched_arrivals_rejected(self, tiny_bitstream):
        link = contention_link(1)
        service = _service_for(standard_policies("AES256")["I"],
                               GALAXY_S2, link, UDP_RTP)
        flow_streams, flow_arrivals = _packetize_flows(
            [tiny_bitstream], mtu=1460,
            disk_read_rate_pkts_per_s=600.0, stagger_s=0.0)
        with pytest.raises(ValueError, match="arrival"):
            run_vector_flows(flow_streams, [flow_arrivals[0][:-1]],
                             service=service)
