"""YUV frame/sequence containers and serialization."""

import numpy as np
import pytest

from repro.video.yuv import CIF_HEIGHT, CIF_WIDTH, Frame, Sequence420, write_pgm


def _frame(width=16, height=16, luma=100):
    return Frame(
        y=np.full((height, width), luma, dtype=np.uint8),
        u=np.full((height // 2, width // 2), 128, dtype=np.uint8),
        v=np.full((height // 2, width // 2), 128, dtype=np.uint8),
    )


class TestFrame:
    def test_geometry(self):
        frame = _frame(32, 16)
        assert frame.width == 32
        assert frame.height == 16

    def test_blank_defaults_to_cif(self):
        frame = Frame.blank()
        assert (frame.width, frame.height) == (CIF_WIDTH, CIF_HEIGHT)
        assert int(frame.y[0, 0]) == 16
        assert int(frame.u[0, 0]) == 128

    def test_rejects_non_uint8(self):
        with pytest.raises(ValueError):
            Frame(
                y=np.zeros((16, 16), dtype=np.float32),
                u=np.zeros((8, 8), dtype=np.uint8),
                v=np.zeros((8, 8), dtype=np.uint8),
            )

    def test_rejects_odd_dimensions(self):
        with pytest.raises(ValueError):
            Frame(
                y=np.zeros((15, 16), dtype=np.uint8),
                u=np.zeros((7, 8), dtype=np.uint8),
                v=np.zeros((7, 8), dtype=np.uint8),
            )

    def test_rejects_wrong_chroma_shape(self):
        with pytest.raises(ValueError):
            Frame(
                y=np.zeros((16, 16), dtype=np.uint8),
                u=np.zeros((16, 16), dtype=np.uint8),
                v=np.zeros((8, 8), dtype=np.uint8),
            )

    def test_planar_roundtrip(self):
        rng = np.random.default_rng(0)
        frame = Frame(
            y=rng.integers(0, 256, (16, 16), dtype=np.uint8),
            u=rng.integers(0, 256, (8, 8), dtype=np.uint8),
            v=rng.integers(0, 256, (8, 8), dtype=np.uint8),
        )
        restored = Frame.from_planar_bytes(frame.to_planar_bytes(), 16, 16)
        assert np.array_equal(frame.y, restored.y)
        assert np.array_equal(frame.u, restored.u)
        assert np.array_equal(frame.v, restored.v)

    def test_planar_size_check(self):
        with pytest.raises(ValueError):
            Frame.from_planar_bytes(b"short", 16, 16)

    def test_copy_is_independent(self):
        frame = _frame()
        duplicate = frame.copy()
        duplicate.y[0, 0] = 0
        assert frame.y[0, 0] == 100


class TestSequence:
    def test_basic_properties(self):
        seq = Sequence420([_frame() for _ in range(30)], fps=30.0)
        assert len(seq) == 30
        assert seq.duration_s == pytest.approx(1.0)
        assert seq.width == 16

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequence420([])

    def test_rejects_mixed_geometry(self):
        with pytest.raises(ValueError):
            Sequence420([_frame(16, 16), _frame(32, 16)])

    def test_luma_stack_shape(self):
        seq = Sequence420([_frame() for _ in range(5)])
        assert seq.luma_stack().shape == (5, 16, 16)

    def test_save_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        frames = [
            Frame(
                y=rng.integers(0, 256, (16, 16), dtype=np.uint8),
                u=rng.integers(0, 256, (8, 8), dtype=np.uint8),
                v=rng.integers(0, 256, (8, 8), dtype=np.uint8),
            )
            for _ in range(4)
        ]
        seq = Sequence420(frames, fps=25.0)
        path = tmp_path / "clip.yuv"
        seq.save(path)
        loaded = Sequence420.load(path, 16, 16, fps=25.0)
        assert len(loaded) == 4
        for a, b in zip(seq, loaded):
            assert np.array_equal(a.y, b.y)
            assert np.array_equal(a.v, b.v)

    def test_load_rejects_truncated(self, tmp_path):
        path = tmp_path / "bad.yuv"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            Sequence420.load(path, 16, 16)

    def test_indexing_and_iteration(self):
        seq = Sequence420([_frame(luma=i) for i in range(5)])
        assert int(seq[3].y[0, 0]) == 3
        assert [int(f.y[0, 0]) for f in seq] == [0, 1, 2, 3, 4]


class TestPgm:
    def test_writes_valid_header(self, tmp_path):
        path = tmp_path / "shot.pgm"
        write_pgm(path, np.zeros((4, 6), dtype=np.uint8))
        data = path.read_bytes()
        assert data.startswith(b"P5\n6 4\n255\n")
        assert len(data) == len(b"P5\n6 4\n255\n") + 24

    def test_rejects_wrong_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((4, 4), dtype=np.float64))
