"""DES / Triple-DES known answers, keying rules and inversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import BLOCK_SIZE, DES, TripleDES


class TestKnownAnswers:
    def test_classic_vector(self):
        """The canonical 'DES illustrated' vector."""
        cipher = DES(bytes.fromhex("133457799BBCDFF1"))
        ct = cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert ct.hex() == "85e813540f0ab405"

    def test_classic_vector_decrypt(self):
        cipher = DES(bytes.fromhex("133457799BBCDFF1"))
        pt = cipher.decrypt_block(bytes.fromhex("85E813540F0AB405"))
        assert pt.hex() == "0123456789abcdef"

    def test_all_zero_key_vector(self):
        # Known: DES(K=00..00, P=00..00) = 8CA64DE9C1B123A7.
        cipher = DES(bytes(8))
        assert cipher.encrypt_block(bytes(8)).hex() == "8ca64de9c1b123a7"

    @pytest.mark.parametrize("key,pt,ct", [
        # NBS/SP 800-17 style vectors, verified against an independent
        # oracle (shared with tests/test_crypto_vector_des.py).
        ("0101010101010101", "8000000000000000", "95f8a5e5dd31d900"),
        ("0101010101010101", "4000000000000000", "dd7f121ca5015619"),
        ("8001010101010101", "0000000000000000", "95a8d72813daa94d"),
        ("7ca110454a1a6e57", "01a1d6d039776742", "690f5b0d9a26939b"),
        ("0131d9619dc1376e", "5cd54ca83def57da", "7a389d10354bd271"),
        ("ffffffffffffffff", "ffffffffffffffff", "7359b2163e4edc58"),
        ("3000000000000000", "1000000000000001", "958e6e627a05557b"),
    ])
    def test_nbs_vectors(self, key, pt, ct):
        cipher = DES(bytes.fromhex(key))
        assert cipher.encrypt_block(bytes.fromhex(pt)).hex() == ct
        assert cipher.decrypt_block(bytes.fromhex(ct)).hex() == pt


class TestTripleDes:
    def test_three_key_roundtrip(self):
        cipher = TripleDES(bytes(range(24)))
        block = b"8bytes!!"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_two_key_form_expands(self):
        two_key = bytes(range(16))
        expanded = two_key + two_key[:8]
        block = b"\x01" * 8
        assert (TripleDES(two_key).encrypt_block(block)
                == TripleDES(expanded).encrypt_block(block))

    def test_degenerate_equals_single_des(self):
        """EDE with K1 = K2 = K3 reduces to single DES."""
        key = bytes.fromhex("133457799BBCDFF1")
        single = DES(key)
        triple = TripleDES(key * 3)
        block = bytes.fromhex("0123456789ABCDEF")
        assert triple.encrypt_block(block) == single.encrypt_block(block)

    def test_block_size(self):
        assert TripleDES(bytes(24)).block_size == BLOCK_SIZE == 8

    @pytest.mark.parametrize("key,pt,ct", [
        # 2-key and 3-key EDE vectors, oracle-verified.
        ("0123456789abcdeffedcba9876543210",
         "5468652071756663", "672f1f22f28b0b91"),
        ("0123456789abcdeffedcba9876543210",
         "4e6f772069732074", "d80a0d8b2bae5e4e"),
        ("0123456789abcdef23456789abcdef01456789abcdef0123",
         "5468652071756663", "a826fd8ce53b855f"),
        ("0123456789abcdef23456789abcdef01456789abcdef0123",
         "4e6f772069732074", "314f8327fa7a09a8"),
    ])
    def test_ede_vectors(self, key, pt, ct):
        cipher = TripleDES(bytes.fromhex(key))
        assert cipher.encrypt_block(bytes.fromhex(pt)).hex() == ct
        assert cipher.decrypt_block(bytes.fromhex(ct)).hex() == pt

    @pytest.mark.parametrize("key_len", [0, 8, 15, 23, 25, 32])
    def test_bad_key_length(self, key_len):
        with pytest.raises(ValueError):
            TripleDES(bytes(key_len))

    def test_key_errors_explain_the_fix(self):
        """Wrong-length keys that are multiples of 8 are the common
        confusion (DES key handed to 3DES and vice versa); the errors
        must say which cipher wants what."""
        with pytest.raises(ValueError, match="2-key.*3-key|16 bytes.*24"):
            TripleDES(bytes(8))
        with pytest.raises(ValueError, match="16 bytes.*24|2-key"):
            TripleDES(bytes(32))
        with pytest.raises(ValueError, match="TripleDES"):
            DES(bytes(16))
        with pytest.raises(ValueError, match="TripleDES"):
            DES(bytes(24))


class TestValidation:
    @pytest.mark.parametrize("key_len", [0, 7, 9, 16])
    def test_des_key_length(self, key_len):
        with pytest.raises(ValueError):
            DES(bytes(key_len))

    @pytest.mark.parametrize("block_len", [0, 7, 9, 16])
    def test_des_block_length(self, block_len):
        cipher = DES(bytes(8))
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(block_len))


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(key=st.binary(min_size=8, max_size=8),
           block=st.binary(min_size=8, max_size=8))
    def test_des_roundtrip(self, key, block):
        cipher = DES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @settings(max_examples=10, deadline=None)
    @given(key=st.binary(min_size=24, max_size=24),
           block=st.binary(min_size=8, max_size=8))
    def test_3des_roundtrip(self, key, block):
        cipher = TripleDES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_complementation_property(self):
        """DES(~K, ~P) == ~DES(K, P) — a structural DES identity."""
        key = bytes.fromhex("133457799BBCDFF1")
        pt = bytes.fromhex("0123456789ABCDEF")
        comp_key = bytes(b ^ 0xFF for b in key)
        comp_pt = bytes(b ^ 0xFF for b in pt)
        ct = DES(key).encrypt_block(pt)
        comp_ct = DES(comp_key).encrypt_block(comp_pt)
        assert comp_ct == bytes(b ^ 0xFF for b in ct)
