"""Worker fault handling: unexpected exceptions must fail the cell and
keep draining (not strand the lease), operator interrupts must still
propagate, and the idle poll must back off instead of spinning at a
fixed interval."""

import pytest

from repro.core import standard_policies
from repro.testbed import (
    DEVICES,
    ExperimentConfig,
    ExperimentEngine,
    GridCell,
    WorkQueue,
)
from repro.testbed import worker as worker_mod
from repro.video import CodecConfig, encode_sequence, generate_clip

MASTER_SEED = 7


@pytest.fixture(scope="module")
def tiny_scenario():
    clip = generate_clip("slow", 12, seed=1)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))
    return clip, bitstream


def _submitted_queue(tiny_scenario, tmp_path, cells=1):
    clip, bitstream = tiny_scenario
    table = standard_policies("AES256")
    grid = [
        GridCell("tiny", ExperimentConfig(
            policy=table[name], device=DEVICES["samsung-s2"],
            sensitivity_fraction=0.55, decode_video=False), 2)
        for name in ("none", "I", "all")[:cells]
    ]
    queue = WorkQueue(tmp_path / "q")
    engine = ExperimentEngine(dispatch="queue", queue=queue,
                              master_seed=MASTER_SEED)
    engine.add_scenario("tiny", clip, bitstream)
    keys = engine.submit_grid(grid)
    engine.close()
    return queue, keys


class TestCrashingExperiment:
    def test_unexpected_exception_fails_cell_releases_lease(
            self, tiny_scenario, tmp_path, monkeypatch):
        """Regression: pre-fix, only (OSError, ValueError) were caught
        around the simulation, so a KeyError propagated out of
        run_worker with the lease still held, stalling the drain until
        expiry."""
        queue, keys = _submitted_queue(tiny_scenario, tmp_path)

        def crashing(original, bitstream, config, seed):
            raise KeyError("malformed config description")

        monkeypatch.setattr(worker_mod, "run_experiment", crashing)
        report = worker_mod.run_worker(queue)  # must NOT raise
        assert report.failed == len(keys)
        assert report.simulations == 0
        assert queue.counts() == {"pending": 0, "leased": 0,
                                  "done": 0, "failed": len(keys)}
        reason = queue.failure_reason(keys[0])
        assert "KeyError" in reason
        assert "malformed config" in reason

    def test_failed_cells_recoverable_after_crash(
            self, tiny_scenario, tmp_path, monkeypatch):
        """After the crash is fixed, retry_failed + a healthy worker
        completes the grid."""
        queue, keys = _submitted_queue(tiny_scenario, tmp_path)

        real = worker_mod.run_experiment
        monkeypatch.setattr(
            worker_mod, "run_experiment",
            lambda *args, **kwargs: (_ for _ in ()).throw(
                RuntimeError("transient crash")))
        assert worker_mod.run_worker(queue).failed == len(keys)

        monkeypatch.setattr(worker_mod, "run_experiment", real)
        assert sorted(queue.retry_failed()) == sorted(keys)
        report = worker_mod.run_worker(queue)
        assert report.failed == 0
        assert queue.counts()["done"] == len(keys)

    def test_keyboard_interrupt_propagates(self, tiny_scenario, tmp_path,
                                           monkeypatch):
        queue, keys = _submitted_queue(tiny_scenario, tmp_path)

        def interrupted(original, bitstream, config, seed):
            raise KeyboardInterrupt()

        monkeypatch.setattr(worker_mod, "run_experiment", interrupted)
        with pytest.raises(KeyboardInterrupt):
            worker_mod.run_worker(queue)
        # the interrupt is not buried in failed/ — the lease stays for
        # expiry-requeue so another worker finishes the cell
        assert queue.counts()["failed"] == 0


class TestIdleBackoff:
    def test_idle_poll_backs_off_exponentially(self, tiny_scenario,
                                               tmp_path, monkeypatch):
        """The worker's wait-for-other-workers loop must sleep on a
        growing (jittered, capped) schedule, not a fixed interval."""
        queue, keys = _submitted_queue(tiny_scenario, tmp_path)
        holder = WorkQueue(tmp_path / "q")
        held = holder.claim()  # another "worker" holds the only cell
        assert held is not None

        sleeps = []

        def fake_sleep(delay):
            sleeps.append(delay)
            if len(sleeps) >= 6:  # enough samples: finish the cell
                holder.complete(held.key)

        monkeypatch.setattr(worker_mod.time, "sleep", fake_sleep)
        report = worker_mod.run_worker(queue, poll_s=0.1)
        assert report.claimed == 0
        assert len(sleeps) >= 6
        # capped exponential with +/-50% jitter around 0.1 * 2^n
        for index, delay in enumerate(sleeps):
            raw = min(2.0, 0.1 * 2.0 ** index)
            assert 0.5 * raw <= delay <= 1.5 * raw
        assert sleeps[4] > sleeps[0]  # it actually grew
