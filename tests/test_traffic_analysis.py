"""Traffic analysis extension: the size classifier and padding defences."""

import numpy as np
import pytest

from repro.testbed.devices import GALAXY_S2
from repro.testbed.simulator import SenderSimulator
from repro.testbed.traffic_analysis import (
    SizePacketClassifier,
    evaluate_classifier,
    pad_packets,
)
from repro.video.gop import FrameType
from repro.video.packetizer import DEFAULT_MTU, packetize


@pytest.fixture(scope="module")
def packets(slow_bitstream):
    return packetize(slow_bitstream, carry_payload=False)


class TestClassifierAttack:
    def test_unpadded_flow_is_classifiable(self, packets):
        classifier = SizePacketClassifier().fit(packets)
        report = evaluate_classifier(classifier, packets)
        # MTU-sized I-fragments vs small P-packets: near-perfect attack.
        assert report.i_recall > 0.9
        assert report.p_recall > 0.9
        assert report.advantage > 0.4

    def test_generalises_across_clips(self, slow_bitstream, fast_bitstream):
        train = packetize(slow_bitstream, carry_payload=False)
        test = packetize(fast_bitstream, carry_payload=False)
        classifier = SizePacketClassifier().fit(train)
        report = evaluate_classifier(classifier, test)
        assert report.i_recall > 0.5

    def test_unfitted_predict_rejected(self, packets):
        with pytest.raises(RuntimeError):
            SizePacketClassifier().predict(packets)

    def test_fit_needs_both_classes(self, packets):
        only_p = [p for p in packets if p.frame_type is FrameType.P]
        with pytest.raises(ValueError):
            SizePacketClassifier().fit(only_p)


class TestPaddingDefence:
    def test_mtu_padding_blinds_the_classifier(self, packets):
        classifier = SizePacketClassifier().fit(packets)
        padded = pad_packets(packets, "mtu")
        report = evaluate_classifier(classifier, padded)
        assert report.advantage < 0.05

    def test_mtu_padding_makes_all_sizes_equal(self, packets):
        padded = pad_packets(packets, "mtu")
        sizes = {p.payload_size for p in padded}
        assert len(sizes) == 1

    def test_bucket_padding_reduces_advantage(self, packets):
        classifier = SizePacketClassifier().fit(packets)
        baseline = evaluate_classifier(classifier, packets)
        padded = pad_packets(packets, "buckets")
        report = evaluate_classifier(
            SizePacketClassifier().fit(packets), padded
        )
        # Buckets leak less than raw sizes but more than full padding.
        assert report.advantage <= baseline.advantage

    def test_bucket_padding_cheaper_than_mtu(self, packets):
        mtu_bytes = sum(p.payload_size for p in pad_packets(packets, "mtu"))
        bucket_bytes = sum(p.payload_size
                           for p in pad_packets(packets, "buckets"))
        raw_bytes = sum(p.payload_size for p in packets)
        assert raw_bytes < bucket_bytes < mtu_bytes

    def test_padding_preserves_count_and_order(self, packets):
        padded = pad_packets(packets, "mtu")
        assert len(padded) == len(packets)
        assert [p.sequence_number for p in padded] == [
            p.sequence_number for p in packets
        ]

    def test_unknown_mode(self, packets):
        with pytest.raises(ValueError):
            pad_packets(packets, "quantum")

    def test_none_mode_is_identity(self, packets):
        assert pad_packets(packets, "none") == list(packets)


class TestPaddingCost:
    def test_padded_transfer_slower(self, slow_bitstream):
        from repro.core import standard_policies
        policy = standard_policies("AES256")["all"]
        plain = SenderSimulator(slow_bitstream, device=GALAXY_S2)
        padded = SenderSimulator(slow_bitstream, device=GALAXY_S2,
                                 padding="mtu")
        assert (padded.run(policy, seed=0).mean_delay_ms
                > plain.run(policy, seed=0).mean_delay_ms)
