"""Trace-based estimators of Section 6.1."""

import numpy as np
import pytest

from repro.core.calibration import (
    estimate_success_rate,
    fit_gaussian_atom,
    fit_mmpp_from_trace,
)
from repro.core.mmpp import MMPP2


class TestMmppFit:
    def test_recovers_parameters_from_long_trace(self):
        truth = MMPP2(p1=40.0, p2=4.0, lambda1=2000.0, lambda2=60.0)
        trace = truth.sample(150_000, rng=np.random.default_rng(0))
        fitted = fit_mmpp_from_trace(trace.arrival_times, trace.phases)
        assert fitted.lambda1 == pytest.approx(truth.lambda1, rel=0.15)
        assert fitted.lambda2 == pytest.approx(truth.lambda2, rel=0.15)
        assert fitted.mean_rate == pytest.approx(truth.mean_rate, rel=0.1)

    def test_transition_rates_order_of_magnitude(self):
        truth = MMPP2(p1=40.0, p2=4.0, lambda1=2000.0, lambda2=60.0)
        trace = truth.sample(150_000, rng=np.random.default_rng(1))
        fitted = fit_mmpp_from_trace(trace.arrival_times, trace.phases)
        # Switch rates are estimated from observed phase flips at arrival
        # granularity; expect the right ballpark, not exactness.
        assert fitted.p1 == pytest.approx(truth.p1, rel=0.5)
        assert fitted.p2 == pytest.approx(truth.p2, rel=0.5)

    def test_requires_both_phases(self):
        times = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            fit_mmpp_from_trace(times, np.zeros(10, dtype=int))

    def test_requires_sorted_times(self):
        with pytest.raises(ValueError):
            fit_mmpp_from_trace([0.0, 0.5, 0.3, 0.9], [0, 1, 0, 1])

    def test_rejects_bad_phase_values(self):
        with pytest.raises(ValueError):
            fit_mmpp_from_trace([0.0, 0.1, 0.2, 0.3], [0, 1, 2, 0])

    def test_minimum_length(self):
        with pytest.raises(ValueError):
            fit_mmpp_from_trace([0.0, 0.1], [0, 1])


class TestAtomFit:
    def test_mean_and_sigma(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(2e-3, 1e-4, 5000).clip(min=0)
        atom = fit_gaussian_atom(samples)
        assert atom.mu == pytest.approx(2e-3, rel=0.02)
        assert atom.sigma == pytest.approx(1e-4, rel=0.1)

    def test_single_sample_zero_sigma(self):
        atom = fit_gaussian_atom([1.5e-3])
        assert atom.mu == 1.5e-3
        assert atom.sigma == 0.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            fit_gaussian_atom([])
        with pytest.raises(ValueError):
            fit_gaussian_atom([1e-3, -1e-3])


class TestSuccessRate:
    def test_mean_of_outcomes(self):
        assert estimate_success_rate([True, True, False, True]) == 0.75

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            estimate_success_rate([])
