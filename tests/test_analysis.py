"""Analysis helpers: the Fig. 2 regression, stats, tables."""

import numpy as np
import pytest

from repro.analysis import (
    ReferenceDistanceCurve,
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_recovery_fraction,
    measure_reference_distance_distortion,
    relative_error,
    render_series,
    render_table,
    summarize,
)


class TestReferenceDistanceCurve:
    def test_distortion_grows_with_distance_fast(self, fast_clip):
        curve = measure_reference_distance_distortion(fast_clip,
                                                      max_distance=8)
        values = curve.mean_distortion
        assert values[-1] > values[0]

    def test_fast_exceeds_slow_at_all_distances(self, slow_clip, fast_clip):
        """The Fig. 2 motion-class separation."""
        slow = measure_reference_distance_distortion(slow_clip, max_distance=6)
        fast = measure_reference_distance_distortion(fast_clip, max_distance=6)
        for s, f in zip(slow.mean_distortion, fast.mean_distortion):
            assert f > s

    def test_distance_bounds(self, slow_clip):
        with pytest.raises(ValueError):
            measure_reference_distance_distortion(slow_clip, max_distance=0)
        with pytest.raises(ValueError):
            measure_reference_distance_distortion(slow_clip,
                                                  max_distance=1000)


class TestPolynomialFit:
    def test_fit_tracks_measurements(self, fast_clip):
        curve = measure_reference_distance_distortion(fast_clip,
                                                      max_distance=10)
        poly = fit_distortion_polynomial(curve)
        xs, ys = curve.as_arrays()
        for x, y in zip(xs, ys):
            assert poly(x) == pytest.approx(y, rel=0.5, abs=20.0)

    def test_fit_anchored_at_origin(self, fast_clip):
        curve = measure_reference_distance_distortion(fast_clip,
                                                      max_distance=10)
        poly = fit_distortion_polynomial(curve)
        assert poly(0.0) == 0.0

    def test_cap_default(self):
        curve = ReferenceDistanceCurve((1, 2, 3), (10.0, 20.0, 30.0))
        poly = fit_distortion_polynomial(curve, degree=2)
        assert poly.cap == pytest.approx(45.0)

    def test_explicit_cap(self):
        curve = ReferenceDistanceCurve((1, 2), (10.0, 20.0))
        poly = fit_distortion_polynomial(curve, degree=1, cap=100.0)
        assert poly.cap == 100.0


class TestBlankDistortion:
    def test_positive_and_large(self, slow_clip):
        assert blank_frame_distortion(slow_clip) > 1000.0


class TestRecoveryFraction:
    def test_slow_near_one_fast_near_zero(self, slow_clip, fast_clip):
        """The central calibration asymmetry (Section 6.2 reproduced)."""
        slow = measure_recovery_fraction(slow_clip, gop_size=30,
                                         sensitivity_fraction=0.55)
        fast = measure_recovery_fraction(fast_clip, gop_size=30,
                                         sensitivity_fraction=0.9)
        assert slow > 0.5
        assert fast < 0.1

    def test_bounded(self, medium_clip):
        value = measure_recovery_fraction(medium_clip)
        assert 0.0 <= value <= 1.0


class TestStats:
    def test_summary_mean(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.n == 4
        assert summary.low < summary.mean < summary.high

    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.ci_halfwidth == 0.0

    def test_ci_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(0, 1, 10))
        large = summarize(rng.normal(0, 1, 1000))
        assert large.ci_halfwidth < small.ci_halfwidth

    def test_ci_coverage(self):
        """95% CI should cover the true mean ~95% of the time."""
        rng = np.random.default_rng(1)
        covered = 0
        trials = 300
        for _ in range(trials):
            summary = summarize(rng.normal(10.0, 2.0, 20))
            if summary.low <= 10.0 <= summary.high:
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.04)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0


class TestTables:
    def test_render_alignment(self):
        text = render_table(
            ["policy", "delay"],
            [["none", 1.234567], ["all", 22.2]],
            title="Fig. X",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig. X"
        assert "policy" in lines[2]
        assert "1.235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_series(self):
        text = render_series("slow", [10, 20], [1.5, 2.5], unit="ms")
        assert text == "slow: 10=1.5ms, 20=2.5ms"

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("x", [1], [1.0, 2.0])
