"""OFB mode: involution, length preservation, per-segment error isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AES, OFBMode, TripleDES, derive_iv

KEY = bytes(range(16))


@pytest.fixture
def mode():
    return OFBMode(AES(KEY))


class TestOfb:
    def test_encrypt_decrypt_involution(self, mode):
        iv = derive_iv(b"salt", 0, 16)
        message = b"the I-frame carries most of the content"
        assert mode.decrypt(iv, mode.encrypt(iv, message)) == message

    def test_length_preserved_no_padding(self, mode):
        """RTP payloads are odd-sized; OFB must not pad (Section 5)."""
        iv = derive_iv(b"salt", 1, 16)
        for size in (0, 1, 15, 16, 17, 100, 1461):
            assert len(mode.encrypt(iv, bytes(size))) == size

    def test_ciphertext_differs_from_plaintext(self, mode):
        iv = derive_iv(b"salt", 2, 16)
        message = b"A" * 64
        assert mode.encrypt(iv, message) != message

    def test_different_ivs_different_keystreams(self, mode):
        iv_a = derive_iv(b"salt", 0, 16)
        iv_b = derive_iv(b"salt", 1, 16)
        assert mode.keystream(iv_a, 32) != mode.keystream(iv_b, 32)

    def test_keystream_prefix_consistency(self, mode):
        iv = derive_iv(b"salt", 3, 16)
        assert mode.keystream(iv, 64)[:16] == mode.keystream(iv, 16)

    def test_error_isolated_within_segment(self, mode):
        """OFB is a stream XOR: flipping a ciphertext byte corrupts only
        that plaintext byte — the non-propagation property Section 5
        relies on."""
        iv = derive_iv(b"salt", 4, 16)
        message = bytes(range(64)) * 2
        ciphertext = bytearray(mode.encrypt(iv, message))
        ciphertext[10] ^= 0xFF
        recovered = mode.decrypt(iv, bytes(ciphertext))
        differing = [i for i, (a, b) in enumerate(zip(message, recovered))
                     if a != b]
        assert differing == [10]

    def test_separate_segments_independent(self, mode):
        """Segments use distinct IVs, so corrupting one segment cannot
        affect another's decryption."""
        segments = [b"segment-zero....", b"segment-one....."]
        ivs = [derive_iv(b"session", i, 16) for i in range(len(segments))]
        ciphertexts = [mode.encrypt(iv, seg)
                       for iv, seg in zip(ivs, segments)]
        # Corrupt segment 0 entirely; segment 1 still decrypts.
        assert mode.decrypt(ivs[1], ciphertexts[1]) == segments[1]

    def test_bad_iv_length_rejected(self, mode):
        with pytest.raises(ValueError):
            mode.encrypt(b"short", b"data")

    def test_zero_length_plaintext_is_valid(self, mode):
        iv = derive_iv(b"salt", 5, 16)
        assert mode.encrypt(iv, b"") == b""
        assert mode.keystream(iv, 0) == b""

    def test_negative_keystream_length_rejected(self, mode):
        iv = derive_iv(b"salt", 6, 16)
        with pytest.raises(ValueError, match="non-negative"):
            mode.keystream(iv, -1)

    def test_works_over_3des(self):
        mode = OFBMode(TripleDES(bytes(range(24))))
        iv = derive_iv(b"salt", 0, 8)
        message = b"an RTP payload of arbitrary length!"
        assert mode.decrypt(iv, mode.encrypt(iv, message)) == message


class TestDeriveIv:
    def test_deterministic(self):
        assert derive_iv(b"s", 7, 16) == derive_iv(b"s", 7, 16)

    def test_varies_with_segment(self):
        ivs = {derive_iv(b"s", i, 16) for i in range(100)}
        assert len(ivs) == 100

    def test_varies_with_salt(self):
        assert derive_iv(b"a", 0, 16) != derive_iv(b"b", 0, 16)

    @pytest.mark.parametrize("block_size", [8, 16])
    def test_length_matches_block(self, block_size):
        assert len(derive_iv(b"s", 0, block_size)) == block_size

    def test_negative_segment_index_rejected(self):
        """Used to escape as a bare OverflowError from int.to_bytes."""
        with pytest.raises(ValueError, match="non-negative"):
            derive_iv(b"s", -1, 16)

    @pytest.mark.parametrize("block_size", [0, -4, 33])
    def test_unservable_block_size_rejected(self, block_size):
        with pytest.raises(ValueError, match="block size"):
            derive_iv(b"s", 0, block_size)


@settings(max_examples=25, deadline=None)
@given(message=st.binary(max_size=256), segment=st.integers(0, 1000))
def test_property_roundtrip(message, segment):
    mode = OFBMode(AES(KEY))
    iv = derive_iv(b"prop", segment, 16)
    assert mode.decrypt(iv, mode.encrypt(iv, message)) == message


# RTP payloads are odd-sized by design, so the round-trip properties are
# exercised with odd payload sizes (plus the zero-length edge case) over
# every cipher the paper evaluates — and AES-192 for FIPS completeness.
_CIPHER_FACTORIES = {
    "AES128": lambda: AES(bytes(range(16))),
    "AES192": lambda: AES(bytes(range(24))),
    "AES256": lambda: AES(bytes(range(32))),
    "3DES": lambda: TripleDES(bytes(range(24))),
}

_odd_sizes = st.integers(0, 400).map(lambda n: 2 * n + 1)


@pytest.mark.parametrize("cipher_name", sorted(_CIPHER_FACTORIES))
@settings(max_examples=15, deadline=None)
@given(size=_odd_sizes, segment=st.integers(0, 1000), data=st.data())
def test_property_roundtrip_odd_sizes(cipher_name, size, segment, data):
    cipher = _CIPHER_FACTORIES[cipher_name]()
    mode = OFBMode(cipher)
    message = data.draw(st.binary(min_size=size, max_size=size))
    iv = derive_iv(b"odd", segment, cipher.block_size)
    ciphertext = mode.encrypt(iv, message)
    assert len(ciphertext) == size  # no padding, ever
    assert mode.decrypt(iv, ciphertext) == message


@pytest.mark.parametrize("cipher_name", sorted(_CIPHER_FACTORIES))
def test_zero_length_roundtrip_all_ciphers(cipher_name):
    cipher = _CIPHER_FACTORIES[cipher_name]()
    mode = OFBMode(cipher)
    iv = derive_iv(b"zero", 0, cipher.block_size)
    assert mode.decrypt(iv, mode.encrypt(iv, b"")) == b""


@settings(max_examples=25, deadline=None)
@given(message=st.binary(max_size=512), segment=st.integers(0, 100))
def test_property_vectorized_and_scalar_keystreams_identical(message,
                                                             segment):
    from repro.crypto import VectorAES

    iv = derive_iv(b"vec", segment, 16)
    scalar = OFBMode(AES(KEY))
    vectorized = OFBMode(VectorAES(KEY))
    assert vectorized.keystream(iv, len(message)) == \
        scalar.keystream(iv, len(message))
    assert vectorized.keystream_batch([iv], [len(message)])[0] == \
        scalar.keystream(iv, len(message))
    assert vectorized.encrypt(iv, message) == scalar.encrypt(iv, message)


class TestBatchDegenerateInputs:
    """keystream_batch edge cases: empty work, repeated IVs, and a cipher
    whose encrypt_blocks returns garbage."""

    def test_all_zero_lengths(self):
        from repro.crypto import VectorTripleDES

        mode = OFBMode(VectorTripleDES(bytes(range(24))))
        ivs = [derive_iv(b"zeros", i, 8) for i in range(4)]
        assert mode.keystream_batch(ivs, [0, 0, 0, 0]) == [b""] * 4

    def test_duplicate_ivs_give_identical_streams(self):
        """Duplicate IVs are legal at this layer (uniqueness is
        derive_iv's contract): identical chains must yield byte-identical
        keystreams, same as running them scalar."""
        from repro.crypto import VectorAES

        mode = OFBMode(VectorAES(KEY))
        iv = derive_iv(b"dup", 0, 16)
        a, b = mode.keystream_batch([iv, iv], [48, 48])
        assert a == b == mode.keystream(iv, 48)

    def test_duplicate_ivs_ragged_lengths(self):
        from repro.crypto import VectorAES

        mode = OFBMode(VectorAES(KEY))
        iv = derive_iv(b"dup", 1, 16)
        short, long = mode.keystream_batch([iv, iv], [10, 70])
        assert long[:10] == short

    @pytest.mark.parametrize("bad_shape", [(3, 16), (1, 16), (6, 8)])
    def test_wrong_shape_encrypt_blocks_raises(self, bad_shape):
        """A cipher whose encrypt_blocks returns the wrong shape must be
        a clear ValueError naming the class, not a silent mis-slice."""
        import numpy as np

        class BrokenCipher:
            block_size = 16

            def encrypt_block(self, block):
                return bytes(16)

            def encrypt_blocks(self, blocks):
                return np.zeros(bad_shape, dtype=np.uint8)

        mode = OFBMode(BrokenCipher())
        ivs = [derive_iv(b"bad", i, 16) for i in range(2)]
        with pytest.raises(ValueError, match="BrokenCipher.*shape"):
            mode.keystream_batch(ivs, [16, 16])


class TestXorFallback:
    """The stdlib XOR path must agree with the numpy path so receivers
    without numpy decrypt the same bytes."""

    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(max_size=512))
    def test_stdlib_xor_matches_numpy_xor(self, payload):
        from repro.crypto.ofb import _xor_bytes, _xor_bytes_stdlib

        keystream = bytes((i * 37 + 11) & 0xFF for i in range(len(payload)))
        expected = bytes(p ^ s for p, s in zip(payload, keystream))
        assert _xor_bytes_stdlib(payload, keystream) == expected
        assert _xor_bytes(payload, keystream) == expected

    def test_stdlib_xor_zero_length(self):
        from repro.crypto.ofb import _xor_bytes_stdlib

        assert _xor_bytes_stdlib(b"", b"") == b""
