"""OFB mode: involution, length preservation, per-segment error isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AES, OFBMode, TripleDES, derive_iv

KEY = bytes(range(16))


@pytest.fixture
def mode():
    return OFBMode(AES(KEY))


class TestOfb:
    def test_encrypt_decrypt_involution(self, mode):
        iv = derive_iv(b"salt", 0, 16)
        message = b"the I-frame carries most of the content"
        assert mode.decrypt(iv, mode.encrypt(iv, message)) == message

    def test_length_preserved_no_padding(self, mode):
        """RTP payloads are odd-sized; OFB must not pad (Section 5)."""
        iv = derive_iv(b"salt", 1, 16)
        for size in (0, 1, 15, 16, 17, 100, 1461):
            assert len(mode.encrypt(iv, bytes(size))) == size

    def test_ciphertext_differs_from_plaintext(self, mode):
        iv = derive_iv(b"salt", 2, 16)
        message = b"A" * 64
        assert mode.encrypt(iv, message) != message

    def test_different_ivs_different_keystreams(self, mode):
        iv_a = derive_iv(b"salt", 0, 16)
        iv_b = derive_iv(b"salt", 1, 16)
        assert mode.keystream(iv_a, 32) != mode.keystream(iv_b, 32)

    def test_keystream_prefix_consistency(self, mode):
        iv = derive_iv(b"salt", 3, 16)
        assert mode.keystream(iv, 64)[:16] == mode.keystream(iv, 16)

    def test_error_isolated_within_segment(self, mode):
        """OFB is a stream XOR: flipping a ciphertext byte corrupts only
        that plaintext byte — the non-propagation property Section 5
        relies on."""
        iv = derive_iv(b"salt", 4, 16)
        message = bytes(range(64)) * 2
        ciphertext = bytearray(mode.encrypt(iv, message))
        ciphertext[10] ^= 0xFF
        recovered = mode.decrypt(iv, bytes(ciphertext))
        differing = [i for i, (a, b) in enumerate(zip(message, recovered))
                     if a != b]
        assert differing == [10]

    def test_separate_segments_independent(self, mode):
        """Segments use distinct IVs, so corrupting one segment cannot
        affect another's decryption."""
        segments = [b"segment-zero....", b"segment-one....."]
        ivs = [derive_iv(b"session", i, 16) for i in range(len(segments))]
        ciphertexts = [mode.encrypt(iv, seg)
                       for iv, seg in zip(ivs, segments)]
        # Corrupt segment 0 entirely; segment 1 still decrypts.
        assert mode.decrypt(ivs[1], ciphertexts[1]) == segments[1]

    def test_bad_iv_length_rejected(self, mode):
        with pytest.raises(ValueError):
            mode.encrypt(b"short", b"data")

    def test_works_over_3des(self):
        mode = OFBMode(TripleDES(bytes(range(24))))
        iv = derive_iv(b"salt", 0, 8)
        message = b"an RTP payload of arbitrary length!"
        assert mode.decrypt(iv, mode.encrypt(iv, message)) == message


class TestDeriveIv:
    def test_deterministic(self):
        assert derive_iv(b"s", 7, 16) == derive_iv(b"s", 7, 16)

    def test_varies_with_segment(self):
        ivs = {derive_iv(b"s", i, 16) for i in range(100)}
        assert len(ivs) == 100

    def test_varies_with_salt(self):
        assert derive_iv(b"a", 0, 16) != derive_iv(b"b", 0, 16)

    @pytest.mark.parametrize("block_size", [8, 16])
    def test_length_matches_block(self, block_size):
        assert len(derive_iv(b"s", 0, block_size)) == block_size


@settings(max_examples=25, deadline=None)
@given(message=st.binary(max_size=256), segment=st.integers(0, 1000))
def test_property_roundtrip(message, segment):
    mode = OFBMode(AES(KEY))
    iv = derive_iv(b"prop", segment, 16)
    assert mode.decrypt(iv, mode.encrypt(iv, message)) == message
