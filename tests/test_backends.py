"""Pluggable cache backends: sqlite store, spec parsing, file locks,
and concurrent-maintenance safety."""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.testbed import (
    FileLock,
    LockTimeout,
    ResultCache,
    RunMetrics,
    SqliteBackend,
)
from repro.testbed.backends import (
    DirectoryBackend,
    backend_from_env,
    parse_backend_spec,
)

RUNS = [RunMetrics(mean_delay_ms=1.5, mean_waiting_ms=0.5,
                   average_power_w=2.0, receiver_psnr_db=None,
                   receiver_mos=None, eavesdropper_psnr_db=None,
                   eavesdropper_mos=None)]


def _key(byte: str) -> str:
    return byte * 64


class TestSpecParsing:
    def test_bare_path_is_directory(self, tmp_path):
        backend = parse_backend_spec(str(tmp_path / "c"))
        assert isinstance(backend, DirectoryBackend)

    def test_dir_spec(self, tmp_path):
        backend = parse_backend_spec(f"dir:{tmp_path / 'c'}")
        assert isinstance(backend, DirectoryBackend)
        assert backend.name == "dir"

    def test_sqlite_spec(self, tmp_path):
        backend = parse_backend_spec(f"sqlite:{tmp_path / 'c.sqlite'}")
        assert isinstance(backend, SqliteBackend)
        assert backend.name == "sqlite"
        assert backend.index_capable
        backend.close()

    def test_unknown_scheme_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            parse_backend_spec(f"redis:{tmp_path}")

    def test_env_selection(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        backend = backend_from_env(tmp_path / "c")
        assert isinstance(backend, SqliteBackend)
        backend.close()
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "dir")
        assert isinstance(backend_from_env(tmp_path / "c2"),
                          DirectoryBackend)
        monkeypatch.delenv("REPRO_CACHE_BACKEND")
        assert isinstance(backend_from_env(tmp_path / "c3"),
                          DirectoryBackend)


class TestSqliteBackend:
    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache.from_spec(f"sqlite:{tmp_path / 'c.sqlite'}")
        cache.put_runs(_key("a"), RUNS, meta={"cell": 1})
        assert cache.get_runs(_key("a")) == RUNS
        assert cache.stats()["backend"] == "sqlite"
        assert cache.stats()["entries"] == 1
        cache.close()
        # reopening sees the same data (lazy reconnect after close)
        assert cache.get_runs(_key("a")) == RUNS
        cache.close()

    def test_single_file_on_disk(self, tmp_path):
        cache = ResultCache.from_spec(f"sqlite:{tmp_path / 'c.sqlite'}")
        cache.put_runs(_key("a"), RUNS)
        cache.close()
        names = {p.name for p in tmp_path.iterdir()}
        assert "c.sqlite" in names
        # no per-entry shard directories, unlike the dir backend
        assert not any((tmp_path / n).is_dir() for n in names)

    def test_concurrent_second_opener(self, tmp_path):
        path = tmp_path / "c.sqlite"
        first = ResultCache.from_spec(f"sqlite:{path}")
        second = ResultCache.from_spec(f"sqlite:{path}")
        first.put_runs(_key("a"), RUNS)
        second.put_runs(_key("b"), RUNS)
        assert first.get_runs(_key("b")) == RUNS
        assert second.get_runs(_key("a")) == RUNS
        first.close()
        second.close()

    def test_verify_quarantines_corrupt_row(self, tmp_path):
        cache = ResultCache.from_spec(f"sqlite:{tmp_path / 'c.sqlite'}")
        cache.put_runs(_key("a"), RUNS)
        cache.backend.write(_key("b"), b"{not json")
        report = cache.verify()
        assert report["corrupt"] == 1
        assert cache.get_runs(_key("b")) is None
        assert cache.get_runs(_key("a")) == RUNS
        cache.close()

    def test_gc_enforces_caps(self, tmp_path):
        cache = ResultCache.from_spec(f"sqlite:{tmp_path / 'c.sqlite'}",
                                      max_entries=2)
        for letter in "abcd":
            cache.put_runs(_key(letter), RUNS)
            time.sleep(0.01)
        cache.gc()
        assert cache.stats()["entries"] == 2
        cache.close()

    def test_forced_external_index_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="index"):
            ResultCache.from_spec(f"sqlite:{tmp_path / 'c.sqlite'}",
                                  index="jsonl")


class TestFileLock:
    def test_exclusion_and_release(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        first = FileLock(lock_path)
        second = FileLock(lock_path, timeout_s=0.1, poll_s=0.01)
        with first:
            assert not second.try_acquire()
            with pytest.raises(LockTimeout):
                second.acquire()
        assert second.try_acquire()
        second.release()

    def test_stale_lock_broken_by_age(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        holder = FileLock(lock_path, stale_seconds=0.05)
        assert holder.try_acquire()
        time.sleep(0.1)
        contender = FileLock(lock_path, stale_seconds=0.05,
                             timeout_s=2.0, poll_s=0.01)
        contender.acquire()
        assert contender.held
        contender.release()

    def test_dead_pid_broken_immediately(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        # forge a lock owned by a certainly-dead pid on this host
        import socket
        lock_path.write_text(json.dumps(
            {"host": socket.gethostname(), "pid": 2 ** 22 + 12345,
             "taken": time.time()}))
        contender = FileLock(lock_path, stale_seconds=3600.0,
                             timeout_s=2.0, poll_s=0.01)
        contender.acquire()
        contender.release()

    def test_reacquire_while_held_rejected(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()


def _hammer_maintenance(args):
    """One process doing a maintenance op against a shared cache."""
    directory, op, n_keys = args
    cache = ResultCache(directory)
    try:
        if op == "gc":
            cache.gc()
        elif op == "verify":
            cache.verify()
        else:
            # force an index rebuild from a cold open
            cache.stats()
        return sum(
            cache.get_runs("%02x" % i * 32) is not None
            for i in range(n_keys)
        )
    finally:
        cache.close()


@pytest.mark.slow
class TestConcurrentMaintenance:
    """Regression: gc/verify/index-rebuild used to race when several
    processes shared one cache directory; the maintenance FileLock
    serialises them without losing entries."""

    def test_parallel_gc_verify_rebuild_lose_nothing(self, tmp_path):
        directory = tmp_path / "shared"
        cache = ResultCache(directory)
        n_keys = 16
        for i in range(n_keys):
            cache.put_runs("%02x" % i * 32, RUNS, meta={"i": i})
        cache.close()
        # fresh opens in every worker; mixed maintenance ops
        jobs = [(str(directory), op, n_keys)
                for op in ("gc", "verify", "stats") * 4]
        with ProcessPoolExecutor(max_workers=4) as pool:
            survivors = list(pool.map(_hammer_maintenance, jobs))
        assert all(count == n_keys for count in survivors)
        final = ResultCache(directory)
        assert final.stats()["entries"] == n_keys
        final.close()

    def test_stale_maintenance_lock_is_broken(self, tmp_path):
        directory = tmp_path / "shared"
        cache = ResultCache(directory)
        cache.put_runs(_key("a"), RUNS)
        # a crashed maintainer left its lock behind, long ago
        lock_path = cache.backend.lock_path
        lock_path.write_text(json.dumps(
            {"host": "elsewhere", "pid": 1, "taken": 0.0}))
        old = time.time() - 3600.0
        os.utime(lock_path, (old, old))
        report = cache.gc()  # must break the stale lock, not hang
        assert report["entries"] == 1
        cache.close()
