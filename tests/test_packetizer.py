"""MTU fragmentation and the eq. (20) frame-success rule at packet level."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.gop import FrameType
from repro.video.packetizer import (
    DEFAULT_MTU,
    RTP_HEADER_BYTES,
    UDP_IP_HEADER_BYTES,
    frames_decodable,
    packetize,
    packetize_frame,
    required_packets,
)

MAX_PAYLOAD = DEFAULT_MTU - RTP_HEADER_BYTES - UDP_IP_HEADER_BYTES


class TestFragmentation:
    def test_i_frames_fragment_p_frames_do_not(self, slow_bitstream):
        packets = packetize(slow_bitstream)
        by_frame = {}
        for packet in packets:
            by_frame.setdefault(packet.frame_index, []).append(packet)
        p_counts = []
        for frame in slow_bitstream:
            fragments = by_frame[frame.index]
            if frame.frame_type is FrameType.I:
                assert len(fragments) > 1
            else:
                p_counts.append(len(fragments))
        # The *typical* slow-motion P-frame fits a single packet
        # (Section 4.2.1); the occasional outlier may fragment.
        import statistics
        assert statistics.median(p_counts) == 1

    def test_reassembly_recovers_payload(self, slow_bitstream):
        frame = slow_bitstream.frames[0]
        packets = packetize_frame(frame)
        assert b"".join(p.payload for p in packets) == frame.payload

    def test_fragment_sizes_respect_mtu(self, slow_bitstream):
        for packet in packetize(slow_bitstream):
            assert packet.payload_size <= MAX_PAYLOAD
            assert packet.wire_bytes <= DEFAULT_MTU

    def test_sequence_numbers_contiguous(self, slow_bitstream):
        packets = packetize(slow_bitstream)
        assert [p.sequence_number for p in packets] == list(range(len(packets)))

    def test_fragment_metadata(self, slow_bitstream):
        packets = packetize_frame(slow_bitstream.frames[0])
        n = len(packets)
        for i, packet in enumerate(packets):
            assert packet.fragment_index == i
            assert packet.n_fragments == n
        assert packets[0].is_first_fragment

    def test_tiny_mtu_rejected(self, slow_bitstream):
        with pytest.raises(ValueError):
            packetize_frame(slow_bitstream.frames[0], mtu=30)

    def test_carry_payload_false_drops_bytes(self, slow_bitstream):
        packets = packetize(slow_bitstream, carry_payload=False)
        assert all(p.payload == b"" for p in packets)
        assert all(p.payload_size > 0 for p in packets)

    def test_with_encryption_sets_marker(self, slow_bitstream):
        packet = packetize_frame(slow_bitstream.frames[0])[0]
        encrypted = packet.with_encryption(b"\x00" * packet.payload_size)
        assert encrypted.encrypted
        assert not packet.encrypted
        assert encrypted.payload_size == packet.payload_size


class TestRequiredPackets:
    def test_single_packet_frame_needs_nothing_extra(self):
        assert required_packets(1, 0.9) == 0

    def test_full_sensitivity_needs_all(self):
        assert required_packets(10, 1.0) == 9

    def test_zero_sensitivity_needs_only_first(self):
        assert required_packets(10, 0.0) == 0

    def test_ceiling_behaviour(self):
        assert required_packets(5, 0.5) == 2  # ceil(0.5 * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_packets(5, 1.5)
        with pytest.raises(ValueError):
            required_packets(0, 0.5)


class TestFramesDecodable:
    def _packets(self, bitstream):
        return packetize(bitstream)

    def test_all_usable_all_decodable(self, slow_bitstream):
        packets = self._packets(slow_bitstream)
        decodable = frames_decodable(packets, [True] * len(packets), 1.0)
        assert decodable == {f.index for f in slow_bitstream}

    def test_first_fragment_is_mandatory(self, slow_bitstream):
        packets = self._packets(slow_bitstream)
        usable = [not (p.frame_index == 0 and p.is_first_fragment)
                  for p in packets]
        decodable = frames_decodable(packets, usable, 0.0)
        assert 0 not in decodable
        assert 1 in decodable

    def test_sensitivity_threshold(self, slow_bitstream):
        packets = self._packets(slow_bitstream)
        # Drop one non-first fragment of frame 0 (an I-frame with many).
        target = next(p for p in packets
                      if p.frame_index == 0 and p.fragment_index == 1)
        usable = [p is not target for p in packets]
        n = target.n_fragments
        # With full sensitivity the frame is lost...
        assert 0 not in frames_decodable(packets, usable, 1.0)
        # ...with a lax decoder it survives.
        assert 0 in frames_decodable(packets, usable, 0.5)

    def test_encrypted_view_of_eavesdropper(self, slow_bitstream):
        """Marking all I-frame packets unusable removes exactly the
        I-frames at full sensitivity."""
        packets = self._packets(slow_bitstream)
        usable = [p.frame_type is not FrameType.I for p in packets]
        decodable = frames_decodable(packets, usable, 1.0)
        i_indices = {f.index for f in slow_bitstream if f.is_intra}
        assert decodable.isdisjoint(i_indices)
        assert decodable == ({f.index for f in slow_bitstream} - i_indices)


@settings(max_examples=30, deadline=None)
@given(payload_size=st.integers(1, 50_000))
def test_property_fragment_count(payload_size):
    """ceil-division invariant of the fragmenter."""
    import dataclasses
    from repro.video.gop import EncodedFrame
    frame = EncodedFrame(
        index=0, frame_type=FrameType.I, payload=bytes(payload_size),
        gop_index=0, position_in_gop=0,
    )
    packets = packetize_frame(frame)
    expected = -(-payload_size // MAX_PAYLOAD)
    assert len(packets) == expected
    assert sum(p.payload_size for p in packets) == payload_size
