"""Benchmark trend gate: flattening, gating policy, CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis.trend import (
    DEFAULT_THRESHOLD,
    compare_reports,
    flatten_metrics,
    load_report,
    render_trend,
    trend_gate,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

BASELINE = {
    "workload": {"payload_bytes": 1048576, "cipher": "AES256-OFB"},
    "scalar_bytes_per_s": 50_000.0,
    "vector_bytes_per_s": 7_000_000.0,
    "speedup": 140.0,
    "3des": {
        "scalar_bytes_per_s": 10_000.0,
        "vector_bytes_per_s": 1_400_000.0,
        "speedup": 140.0,
    },
    "cache": {"cold_put_per_s": 4000.0, "len_s": 0.0001,
              "index_backend": "sqlite"},
}


def _by_metric(rows):
    return {row.metric: row for row in rows}


class TestFlatten:
    def test_nested_dotted_keys(self):
        flat = flatten_metrics(BASELINE)
        assert flat["3des.vector_bytes_per_s"] == 1_400_000.0
        assert flat["cache.cold_put_per_s"] == 4000.0
        assert flat["workload.payload_bytes"] == 1048576.0

    def test_non_numeric_leaves_skipped(self):
        flat = flatten_metrics({"a": "text", "b": True, "c": None,
                                "d": [1, 2], "e": 3})
        assert flat == {"e": 3.0}


class TestGatePolicy:
    def test_equal_reports_pass(self):
        rows, failed = trend_gate(BASELINE, BASELINE)
        assert not failed
        assert all(row.status in ("ok", "info") for row in rows)

    def test_throughput_drop_beyond_threshold_fails(self):
        current = json.loads(json.dumps(BASELINE))
        current["3des"]["vector_bytes_per_s"] *= 0.65  # -35%
        rows, failed = trend_gate(current, BASELINE)
        assert failed
        assert _by_metric(rows)["3des.vector_bytes_per_s"].status == \
            "regression"

    def test_drop_within_threshold_is_ok(self):
        current = json.loads(json.dumps(BASELINE))
        current["vector_bytes_per_s"] *= 0.75  # -25% < 30%
        rows, failed = trend_gate(current, BASELINE)
        assert not failed
        assert _by_metric(rows)["vector_bytes_per_s"].status == "ok"

    def test_large_gain_reported_improved(self):
        current = json.loads(json.dumps(BASELINE))
        current["vector_bytes_per_s"] *= 2
        rows, failed = trend_gate(current, BASELINE)
        assert not failed
        assert _by_metric(rows)["vector_bytes_per_s"].status == "improved"

    def test_ungated_metrics_never_fail(self):
        """speedup / latency / descriptor drops are context, not gated."""
        current = json.loads(json.dumps(BASELINE))
        current["speedup"] = 1.0
        current["cache"]["len_s"] = 99.0
        current["workload"]["payload_bytes"] = 1
        rows, failed = trend_gate(current, BASELINE)
        assert not failed
        assert _by_metric(rows)["speedup"].status == "info"

    def test_new_and_missing_metrics_do_not_fail(self):
        current = json.loads(json.dumps(BASELINE))
        current["blowfish_bytes_per_s"] = 1.0
        del current["cache"]
        rows, failed = trend_gate(current, BASELINE)
        assert not failed
        by = _by_metric(rows)
        assert by["blowfish_bytes_per_s"].status == "new"
        assert by["cache.cold_put_per_s"].status == "missing"

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.2, 5])
    def test_bad_threshold_rejected(self, threshold):
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(BASELINE, BASELINE, threshold)

    def test_custom_threshold(self):
        current = json.loads(json.dumps(BASELINE))
        current["scalar_bytes_per_s"] *= 0.85  # -15%
        _, failed_default = trend_gate(current, BASELINE)
        _, failed_tight = trend_gate(current, BASELINE, threshold=0.10)
        assert not failed_default
        assert failed_tight

    def test_saturation_markers_ride_ungated(self):
        """p99 = inf (the saturated-queue marker from flows-scale) must
        render as 'inf' with no delta, never crash the formatter — and
        a finite->inf flip on an ungated leaf stays informational."""
        current = json.loads(json.dumps(BASELINE))
        baseline = json.loads(json.dumps(BASELINE))
        baseline["cache"]["len_s"] = float("inf")
        current["cache"]["len_s"] = float("inf")
        current["cache"]["stats_s"] = float("inf")  # finite -> inf
        rows, failed = trend_gate(current, baseline)
        assert not failed
        by = _by_metric(rows)
        assert by["cache.len_s"].delta_fraction is None
        assert by["cache.stats_s"].delta_fraction is None
        text = render_trend(rows, threshold=DEFAULT_THRESHOLD)
        assert "inf" in text

    def test_render_lists_gated_rows_first(self):
        rows, _ = trend_gate(BASELINE, BASELINE)
        text = render_trend(rows, threshold=DEFAULT_THRESHOLD)
        lines = [l for l in text.splitlines() if "per_s" in l or
                 "speedup" in l]
        per_s = [i for i, l in enumerate(lines) if "per_s" in l]
        info = [i for i, l in enumerate(lines) if "speedup" in l]
        assert max(per_s) < min(info)


class TestLoadReport:
    def test_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="crypto_microbench"):
            load_report(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_report(bad)

    def test_non_object_rejected(self, tmp_path):
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_report(arr)


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        assert main(["bench", "trend", "--current", base,
                     "--baseline", base]) == 0
        assert "trend gate passed" in capsys.readouterr().out

    def test_injected_regression_exit_nonzero(self, tmp_path, capsys):
        """The acceptance fixture: a 30%+ drop must exit non-zero."""
        current = json.loads(json.dumps(BASELINE))
        current["3des"]["vector_bytes_per_s"] *= 0.69  # -31%
        base = self._write(tmp_path, "base.json", BASELINE)
        cur = self._write(tmp_path, "cur.json", current)
        assert main(["bench", "trend", "--current", cur,
                     "--baseline", base]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_is_actionable(self, tmp_path):
        cur = self._write(tmp_path, "cur.json", BASELINE)
        with pytest.raises(SystemExit, match="crypto_microbench"):
            main(["bench", "trend", "--current", cur,
                  "--baseline", str(tmp_path / "absent.json")])

    def test_real_numbers_pass(self):
        """The committed BENCH_crypto.json must pass against the
        committed baseline (they are refreshed together)."""
        current = REPO_ROOT / "BENCH_crypto.json"
        baseline = REPO_ROOT / "benchmarks" / "results" / \
            "bench_baseline.json"
        if not (current.exists() and baseline.exists()):
            pytest.skip("bench reports not present in this checkout")
        assert main(["bench", "trend", "--current", str(current),
                     "--baseline", str(baseline)]) == 0
