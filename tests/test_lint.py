"""`repro lint` — the reproducibility static checks.

The banned patterns below are assembled from fragments (or marked
`# lint: allow`) so this test file itself stays clean under the linter.
"""

from pathlib import Path

from repro.cli import main
from repro.lint import DEFAULT_ROOTS, lint_file, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent

NP_SEED = "np.random." + "seed(42)"
GLOBAL_RANDOM = "x = " + "random" + ".randint(0, 9)"
WALL_CLOCK = "now = time." + "time()"
RAW_SOCKET = "sock = " + "socket" + ".create_connection(addr)"
BLOCKING_SLEEP = "time." + "sleep(0.2)"


def _write(tmp_path, name, *lines):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


class TestRules:
    def test_global_np_seed_flagged(self, tmp_path):
        path = _write(tmp_path, "mod.py", "import numpy as np", NP_SEED)
        errors = lint_file(path)
        assert [e.rule for e in errors] == ["global-np-seed"]
        assert errors[0].line == 2
        assert "default_rng" in errors[0].message

    def test_module_level_random_flagged(self, tmp_path):
        path = _write(tmp_path, "mod.py", "import random", GLOBAL_RANDOM)
        assert [e.rule for e in lint_file(path)] == ["global-random"]

    def test_seeded_random_instance_allowed(self, tmp_path):
        path = _write(tmp_path, "mod.py",
                      "import random",
                      "rng = random.Random(7)",
                      "value = rng.randint(0, 9)")
        assert lint_file(path) == []

    def test_np_random_default_rng_allowed(self, tmp_path):
        path = _write(tmp_path, "mod.py",
                      "import numpy as np",
                      "rng = np.random.default_rng(7)")
        assert lint_file(path) == []

    def test_wall_clock_only_banned_in_events(self, tmp_path):
        everywhere_else = _write(tmp_path, "mod.py",
                                 "import time", WALL_CLOCK)
        assert lint_file(everywhere_else) == []
        kernel = _write(tmp_path, "events.py", "import time", WALL_CLOCK)
        assert [e.rule for e in lint_file(kernel)] == \
            ["wall-clock-in-kernel"]

    def test_packet_loop_only_banned_in_vector_module(self, tmp_path):
        loop = "for packet in packets:"
        elsewhere = _write(tmp_path, "mod.py", loop, "    pass")
        assert lint_file(elsewhere) == []
        vector = _write(tmp_path, "vector_flows.py", loop, "    pass")
        assert [e.rule for e in lint_file(vector)] == \
            ["packet-loop-in-vector"]
        assert "flow_sampling" in lint_file(vector)[0].message

    def test_packet_loop_variants_flagged(self, tmp_path):
        for line in ("for pkt in self.pkts:",
                     "for i, packet in enumerate(stream):",
                     "for p in packets[flow]:"):
            vector = _write(tmp_path, "vector_flows.py", line, "    pass")
            assert [e.rule for e in lint_file(vector)] == \
                ["packet-loop-in-vector"], line

    def test_flow_loop_allowed_in_vector_module(self, tmp_path):
        vector = _write(tmp_path, "vector_flows.py",
                        "for flow in range(tables.n_flows):",
                        "    pass")
        assert lint_file(vector) == []

    def test_policy_loop_only_banned_in_vector_models(self, tmp_path):
        loop = "for policy in candidates:"
        elsewhere = _write(tmp_path, "mod.py", loop, "    pass")
        assert lint_file(elsewhere) == []
        models = _write(tmp_path, "vector_models.py", loop, "    pass")
        assert [e.rule for e in lint_file(models)] == \
            ["policy-loop-in-vector-models"]
        assert "leading axis" in lint_file(models)[0].message

    def test_policy_loop_variants_flagged(self, tmp_path):
        for line in ("for i, policy in enumerate(ladder):",
                     "for lane in range(batch_size):",
                     "for c in candidates:"):
            models = _write(tmp_path, "vector_models.py", line, "    pass")
            assert [e.rule for e in lint_file(models)] == \
                ["policy-loop-in-vector-models"], line

    def test_model_stacking_loop_allowed_in_vector_models(self, tmp_path):
        models = _write(tmp_path, "vector_models.py",
                        "values = np.array([getter(m) for m in models])")
        assert lint_file(models) == []

    def test_blocking_calls_only_banned_in_server_module(self, tmp_path):
        for line in (RAW_SOCKET, BLOCKING_SLEEP):
            elsewhere = _write(tmp_path, "mod.py", line)
            assert lint_file(elsewhere) == [], line
            server = _write(tmp_path, "server.py", line)
            assert [e.rule for e in lint_file(server)] == \
                ["blocking-call-in-server"], line
            assert "asyncio" in lint_file(server)[0].message

    def test_socket_attribute_access_allowed_in_server(self, tmp_path):
        # server.sockets[0].getsockname() is asyncio API, not the
        # blocking socket module
        server = _write(tmp_path, "server.py",
                        "addr = listener.sockets[0].getsockname()",
                        "s = my.socket.thing")
        assert lint_file(server) == []

    def test_timestep_loop_only_banned_in_mobility_vector(self, tmp_path):
        loop = "for segment in scenario.segments:"
        elsewhere = _write(tmp_path, "mod.py", loop, "    pass")
        assert lint_file(elsewhere) == []
        # a file named vector.py outside a mobility/ directory is fine
        other_vector = _write(tmp_path, "vector.py", loop, "    pass")
        assert lint_file(other_vector) == []
        (tmp_path / "mobility").mkdir()
        mobile = _write(tmp_path / "mobility", "vector.py",
                        loop, "    pass")
        assert [e.rule for e in lint_file(mobile)] == \
            ["timestep-loop-in-mobility-vector"]
        assert "searchsorted" in lint_file(mobile)[0].message

    def test_timestep_loop_variants_flagged(self, tmp_path):
        (tmp_path / "mobility").mkdir()
        for line in ("for step in range(n_steps):",
                     "for t, timestep in enumerate(trace):",
                     "for seg in segments:",
                     "for packet in packets:",
                     "for waypoint in leg_waypoints:"):
            mobile = _write(tmp_path / "mobility", "vector.py",
                            line, "    pass")
            assert [e.rule for e in lint_file(mobile)] == \
                ["timestep-loop-in-mobility-vector"], line

    def test_flow_loop_allowed_in_mobility_vector(self, tmp_path):
        (tmp_path / "mobility").mkdir()
        mobile = _write(tmp_path / "mobility", "vector.py",
                        "for flow in range(n_flows):",
                        "    pass")
        assert lint_file(mobile) == []

    def test_wall_clock_and_seed_banned_across_mobility(self, tmp_path):
        (tmp_path / "mobility").mkdir()
        clock = _write(tmp_path / "mobility", "trace.py",
                       "import time", WALL_CLOCK)
        assert [e.rule for e in lint_file(clock)] == \
            ["wall-clock-in-mobility"]
        assert "SeedSequence" in lint_file(clock)[0].message
        # np.random.seed() inside mobility/ trips both the global ban
        # and the mobility-specific rule
        seeded = _write(tmp_path / "mobility", "field.py",
                        "import numpy as np", NP_SEED)
        assert [e.rule for e in lint_file(seeded)] == \
            ["global-np-seed", "wall-clock-in-mobility"]
        # outside mobility/ the wall clock stays allowed (except in the
        # event kernel, covered above)
        elsewhere = _write(tmp_path, "trace.py", "import time", WALL_CLOCK)
        assert lint_file(elsewhere) == []

    def test_allow_marker_and_comments_skipped(self, tmp_path):
        path = _write(tmp_path, "mod.py",
                      NP_SEED + "  # lint: allow",
                      "# commented out: " + NP_SEED)
        assert lint_file(path) == []

    def test_pattern_in_string_is_still_flagged_without_marker(
            self, tmp_path):
        # docstring mentions count: the rules are textual by design, and
        # the allow marker is the documented escape hatch
        path = _write(tmp_path, "mod.py", f'text = "{NP_SEED}"')
        assert [e.rule for e in lint_file(path)] == ["global-np-seed"]

    def test_error_rendering(self, tmp_path):
        path = _write(tmp_path, "mod.py", NP_SEED)
        rendered = str(lint_file(path)[0])
        assert rendered.startswith(f"{path}:1: [global-np-seed]")


class TestPaths:
    def test_roots_walk_and_self_exclusion(self, tmp_path):
        (tmp_path / "src").mkdir()
        _write(tmp_path / "src", "bad.py", NP_SEED)
        _write(tmp_path / "src", "lint.py", NP_SEED)  # the linter itself
        errors = lint_paths(["src"], base=tmp_path)
        assert [Path(e.path).name for e in errors] == ["bad.py"]

    def test_missing_root_is_empty(self, tmp_path):
        assert lint_paths(["nowhere"], base=tmp_path) == []

    def test_repository_is_clean(self):
        errors = lint_paths(DEFAULT_ROOTS, base=REPO_ROOT)
        assert errors == [], "\n".join(str(e) for e in errors)


class TestCli:
    def test_exit_one_and_report(self, tmp_path, capsys):
        bad = _write(tmp_path, "bad.py", NP_SEED)
        rc = main(["lint", str(bad)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "global-np-seed" in out
        assert "1 violation(s)" in out

    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = _write(tmp_path, "ok.py", "x = 1")
        rc = main(["lint", str(clean)])
        assert rc == 0
