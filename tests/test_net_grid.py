"""Networked-grid acceptance: workers draining one grid over ``tcp:``
must reproduce ``dispatch="local"`` byte for byte with zero duplicate
simulations — including under chaos (worker SIGKILLed mid-claim, server
killed and restarted mid-drain)."""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core import standard_policies
from repro.testbed import (
    DEVICES,
    ExperimentConfig,
    ExperimentEngine,
    GridCell,
    RemoteWorkQueue,
    ResultCache,
    WorkQueue,
    run_autoscaler,
    run_worker,
)
from repro.testbed.server import ServerThread
from repro.video import CodecConfig, encode_sequence, generate_clip

POLICIES = ("none", "I", "all")
REPEATS = 2
MASTER_SEED = 7

_SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def _child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_SRC_ROOT)] + ([env["PYTHONPATH"]] if "PYTHONPATH" in env
                            else []))
    return env


@pytest.fixture(scope="module")
def tiny_scenario():
    clip = generate_clip("slow", 12, seed=1)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))
    return clip, bitstream


def _cells():
    table = standard_policies("AES256")
    return [
        GridCell("tiny", ExperimentConfig(
            policy=table[name], device=DEVICES["samsung-s2"],
            sensitivity_fraction=0.55, decode_video=False), REPEATS)
        for name in POLICIES
    ]


def _local_reference(tiny_scenario, tmp_path):
    clip, bitstream = tiny_scenario
    cache = ResultCache(tmp_path / "local-cache")
    engine = ExperimentEngine(cache=cache, workers=1,
                              master_seed=MASTER_SEED)
    engine.add_scenario("tiny", clip, bitstream)
    summaries = engine.run_grid(_cells())
    keys = [engine.cell_key(cell) for cell in _cells()]
    engine.close()
    return summaries, keys, cache


def _worker_proc(spec, report_path):
    run_worker(spec, report_path=report_path)


def _doomed_worker_proc(spec):
    """A worker that SIGKILLs itself the moment it would simulate: it
    claims a cell, loads the scenario, records zero simulations, and
    dies holding the lease — the crash the chaos test recovers from."""
    from repro.testbed import worker as worker_mod

    def _die(task, original, bitstream, queue):
        os.kill(os.getpid(), signal.SIGKILL)

    worker_mod._execute_task = _die
    worker_mod.run_worker(spec)


def _assert_byte_identical(local_cache, spec, keys):
    remote_cache = ResultCache.from_spec(spec)
    try:
        for key in keys:
            local_bytes = local_cache.backend.read(key)
            remote_bytes = remote_cache.backend.read(key)
            assert local_bytes is not None and remote_bytes is not None
            assert local_bytes == remote_bytes
    finally:
        remote_cache.close()


class TestTcpDifferential:
    def test_two_tcp_workers_byte_identical_zero_duplicates(
            self, tiny_scenario, tmp_path):
        clip, bitstream = tiny_scenario
        ref_summaries, keys, local_cache = _local_reference(
            tiny_scenario, tmp_path)

        with ServerThread(tmp_path / "q", lease_expiry_s=60.0) as served:
            spec = served.spec
            engine = ExperimentEngine(dispatch="queue", queue=spec,
                                      master_seed=MASTER_SEED,
                                      queue_timeout_s=120.0)
            assert isinstance(engine.queue, RemoteWorkQueue)
            engine.add_scenario("tiny", clip, bitstream)
            submitted = engine.submit_grid(_cells())
            assert sorted(submitted) == sorted(keys)

            context = multiprocessing.get_context("fork")
            reports = [tmp_path / f"worker{i}.json" for i in range(2)]
            procs = [context.Process(target=_worker_proc,
                                     args=(spec, str(path)))
                     for path in reports]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join(timeout=120)
                assert proc.exitcode == 0

            totals = [json.loads(path.read_text()) for path in reports]
            assert sum(t["simulations"] for t in totals) == \
                len(keys) * REPEATS
            assert sum(t["claimed"] for t in totals) == len(keys)
            assert sum(t["failed"] for t in totals) == 0
            assert engine.queue.counts() == {"pending": 0, "leased": 0,
                                             "done": len(keys),
                                             "failed": 0}

            assembled = engine.run_grid(_cells())
            assert assembled == ref_summaries
            _assert_byte_identical(local_cache, spec, keys)

            # warm re-run over the wire: no resubmission, no simulation
            assert engine.submit_grid(_cells()) == []
            warm = run_worker(spec)
            assert warm.simulations == 0
            engine.close()
        local_cache.close()

    def test_scenario_blob_round_trips_verified(self, tiny_scenario,
                                                tmp_path):
        clip, bitstream = tiny_scenario
        with ServerThread(tmp_path / "q") as served:
            remote = RemoteWorkQueue.from_spec(served.spec)
            from repro.testbed.engine import scenario_fingerprint
            fingerprint = scenario_fingerprint(clip, bitstream)
            assert not remote.has_scenario(fingerprint)
            remote.store_scenario(fingerprint, clip, bitstream)
            assert remote.has_scenario(fingerprint)
            got_clip, got_bitstream = remote.load_scenario(
                fingerprint, verify=scenario_fingerprint)
            assert scenario_fingerprint(got_clip, got_bitstream) == \
                fingerprint
            remote.close()


class TestChaos:
    def test_kill_and_partition_mid_drain(self, tiny_scenario, tmp_path):
        """The acceptance bar: a worker SIGKILLed holding a lease AND
        the server killed/restarted (partition) mid-drain, yet the
        assembled grid is byte-identical with zero duplicate sims."""
        clip, bitstream = tiny_scenario
        ref_summaries, keys, local_cache = _local_reference(
            tiny_scenario, tmp_path)

        root = tmp_path / "q"
        # Short lease expiry so the murdered worker's lease requeues
        # within the test's patience.
        queue = WorkQueue(root, lease_expiry_s=3.0)
        engine = ExperimentEngine(dispatch="queue", queue=queue,
                                  master_seed=MASTER_SEED,
                                  queue_timeout_s=120.0)
        engine.add_scenario("tiny", clip, bitstream)
        assert sorted(engine.submit_grid(_cells())) == sorted(keys)

        def _serve(port):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "cached", "serve",
                 "--root", str(root), "--port", str(port)],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=_child_env())
            line = proc.stdout.readline()
            assert "serving" in line, line
            bound = int(line.strip().rpartition(":")[2])
            return proc, bound

        server, port = _serve(0)
        spec = f"tcp:127.0.0.1:{port}"
        context = multiprocessing.get_context("fork")
        survivors = []
        try:
            # Phase 1: a worker claims a cell and is SIGKILLed.
            doomed = context.Process(target=_doomed_worker_proc,
                                     args=(spec,))
            doomed.start()
            doomed.join(timeout=60)
            assert doomed.exitcode == -signal.SIGKILL
            counts = RemoteWorkQueue.from_spec(spec).counts()
            assert counts["leased"] == 1  # the stranded lease

            # Phase 2: survivors start draining.
            reports = [tmp_path / f"survivor{i}.json" for i in range(2)]
            survivors = [context.Process(target=_worker_proc,
                                         args=(spec, str(path)))
                         for path in reports]
            for proc in survivors:
                proc.start()
            time.sleep(0.5)  # let them get mid-drain

            # Phase 3: partition — the server dies and comes back on
            # the same port; clients must reconnect with backoff.
            server.kill()
            server.wait()
            time.sleep(0.5)
            server, _ = _serve(port)

            for proc in survivors:
                proc.join(timeout=120)
                assert proc.exitcode == 0
            survivors = []

            totals = [json.loads(path.read_text()) for path in reports]
            # Zero duplicates: the doomed worker simulated nothing, so
            # the survivors' total must be exactly the grid size.
            assert sum(t["simulations"] for t in totals) == \
                len(keys) * REPEATS
            assert sum(t["failed"] for t in totals) == 0
            assert queue.counts() == {"pending": 0, "leased": 0,
                                      "done": len(keys), "failed": 0}

            assembled = engine.run_grid(_cells())
            assert assembled == ref_summaries
            _assert_byte_identical(local_cache, spec, keys)
        finally:
            for proc in survivors:
                proc.terminate()
            server.kill()
            server.wait()
            engine.close()
            local_cache.close()


class TestAutoscaler:
    @pytest.mark.slow
    def test_autoscaler_drains_grid_over_tcp(self, tiny_scenario,
                                             tmp_path):
        clip, bitstream = tiny_scenario
        with ServerThread(tmp_path / "q") as served:
            spec = served.spec
            engine = ExperimentEngine(dispatch="queue", queue=spec,
                                      master_seed=MASTER_SEED,
                                      queue_timeout_s=120.0)
            engine.add_scenario("tiny", clip, bitstream)
            keys = engine.submit_grid(_cells())
            assert keys

            report = run_autoscaler(spec, max_workers=2,
                                    cells_per_worker=1, poll_s=0.2,
                                    max_rounds=600)
            assert report.spawned >= 1
            assert report.peak_workers <= 2
            assert report.final_counts == {"pending": 0, "leased": 0,
                                           "done": len(keys),
                                           "failed": 0}
            engine.close()

    def test_autoscaler_spawn_hook_and_sizing(self, tmp_path):
        """Unit-level: pool sizing from queue depth without real
        subprocesses (the hook records spawns and 'drains' by fiat)."""
        from repro.testbed.queue import QueueTask

        queue = WorkQueue(tmp_path / "q")
        for index in range(4):
            queue.submit(QueueTask(
                key=f"cell-{index}", scenario="t",
                scenario_fingerprint="f" * 64, scenario_meta={},
                config={}, repeats=1, master_seed=0, schema=0,
                code="c" * 64))

        class _FakeWorker:
            def __init__(self):
                # claim everything immediately: a perfect drain
                while True:
                    task = queue.claim()
                    if task is None:
                        break
                    queue.complete(task.key)

            def poll(self):
                return 0

            def wait(self, timeout=None):
                return 0

        spawned = []

        def _spawn(spec):
            worker = _FakeWorker()
            spawned.append(spec)
            return worker

        report = run_autoscaler(queue, max_workers=2, cells_per_worker=2,
                                poll_s=0.01, spawn_worker=_spawn,
                                max_rounds=50)
        # 4 pending / 2 per worker -> 2 spawned in round one
        assert report.spawned == 2
        assert report.peak_workers == 2
        assert spawned == [str(queue.path)] * 2
        assert report.retired == 2
        assert report.final_counts["done"] == 4
