"""The command-line front end (the EvalVid-toolchain analogue)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["inspect"])
        assert args.motion == "slow"
        assert args.gop == 30
        assert args.frames == 150

    def test_rejects_unknown_motion(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inspect", "--motion", "warp"])

    def test_rejects_unknown_device(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise", "--device", "iphone"])


class TestCommands:
    def test_clip_writes_yuv(self, tmp_path, capsys):
        out = tmp_path / "clip.yuv"
        code = main(["clip", "--motion", "slow", "--frames", "12",
                     "--gop", "6", "--out", str(out)])
        assert code == 0
        # 12 frames of CIF I420 = 12 * 352*288*1.5 bytes.
        assert out.stat().st_size == 12 * 352 * 288 * 3 // 2
        assert "slow-motion clip" in capsys.readouterr().out

    def test_inspect_reports_motion_class(self, capsys):
        code = main(["inspect", "--motion", "fast", "--frames", "40",
                     "--gop", "20"])
        assert code == 0
        output = capsys.readouterr().out
        assert "high" in output
        assert "decoder sensitivity" in output

    def test_experiment_reports_metrics(self, capsys):
        code = main(["experiment", "--motion", "slow", "--frames", "60",
                     "--policy", "I"])
        assert code == 0
        output = capsys.readouterr().out
        assert "delay (ms)" in output
        assert "I(AES256)" in output

    def test_experiment_mixture_policy_parsing(self, capsys):
        code = main(["experiment", "--motion", "slow", "--frames", "60",
                     "--policy", "I+20%P"])
        assert code == 0
        assert "I+20%P" in capsys.readouterr().out

    def test_experiment_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--frames", "60", "--policy", "everything"])

    def test_advise_recommends_for_slow(self, capsys):
        code = main(["advise", "--motion", "slow", "--frames", "90",
                     "--target-psnr", "15"])
        assert code == 0
        output = capsys.readouterr().out
        assert "<= recommended" in output

    def test_advise_unsatisfiable_returns_nonzero(self, capsys):
        code = main(["advise", "--motion", "slow", "--frames", "90",
                     "--target-psnr", "-5"])
        assert code == 1
        assert "encrypt everything" in capsys.readouterr().out


class TestExampleModules:
    """The shipped examples must at least import cleanly."""

    @pytest.mark.parametrize("name", [
        "quickstart", "policy_advisor", "eavesdropper_demo", "tcp_vs_udp",
        "adaptive_streaming",
    ])
    def test_example_imports(self, name):
        import importlib.util
        import pathlib
        path = (pathlib.Path(__file__).resolve().parent.parent / "examples"
                / f"{name}.py")
        spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "main")
