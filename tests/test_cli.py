"""The command-line front end (the EvalVid-toolchain analogue)."""

import hashlib

import pytest

from repro.cli import build_parser, main
from repro.testbed import ResultCache, RunMetrics


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["inspect"])
        assert args.motion == "slow"
        assert args.gop == 30
        assert args.frames == 150

    def test_rejects_unknown_motion(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inspect", "--motion", "warp"])

    def test_rejects_unknown_device(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise", "--device", "iphone"])


class TestCommands:
    def test_clip_writes_yuv(self, tmp_path, capsys):
        out = tmp_path / "clip.yuv"
        code = main(["clip", "--motion", "slow", "--frames", "12",
                     "--gop", "6", "--out", str(out)])
        assert code == 0
        # 12 frames of CIF I420 = 12 * 352*288*1.5 bytes.
        assert out.stat().st_size == 12 * 352 * 288 * 3 // 2
        assert "slow-motion clip" in capsys.readouterr().out

    def test_inspect_reports_motion_class(self, capsys):
        code = main(["inspect", "--motion", "fast", "--frames", "40",
                     "--gop", "20"])
        assert code == 0
        output = capsys.readouterr().out
        assert "high" in output
        assert "decoder sensitivity" in output

    def test_experiment_reports_metrics(self, capsys):
        code = main(["experiment", "--motion", "slow", "--frames", "60",
                     "--policy", "I"])
        assert code == 0
        output = capsys.readouterr().out
        assert "delay (ms)" in output
        assert "I(AES256)" in output

    def test_experiment_mixture_policy_parsing(self, capsys):
        code = main(["experiment", "--motion", "slow", "--frames", "60",
                     "--policy", "I+20%P"])
        assert code == 0
        assert "I+20%P" in capsys.readouterr().out

    def test_experiment_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--frames", "60", "--policy", "everything"])

    def test_advise_recommends_for_slow(self, capsys):
        code = main(["advise", "--motion", "slow", "--frames", "90",
                     "--target-psnr", "15"])
        assert code == 0
        output = capsys.readouterr().out
        assert "<= recommended" in output

    def test_advise_unsatisfiable_returns_nonzero(self, capsys):
        code = main(["advise", "--motion", "slow", "--frames", "90",
                     "--target-psnr", "-5"])
        assert code == 1
        assert "encrypt everything" in capsys.readouterr().out

    def test_multiflow_reports_per_flow_percentiles(self, capsys):
        code = main(["multiflow", "--flows", "2", "--frames", "30",
                     "--gop", "10"])
        assert code == 0
        output = capsys.readouterr().out
        assert "2 contending slow-motion flows" in output
        assert "p99 (ms)" in output
        assert "all-flow mean delay" in output

    def test_multiflow_rejects_zero_flows(self):
        with pytest.raises(SystemExit):
            main(["multiflow", "--flows", "0", "--frames", "30"])


class TestAdviseServeArgs:
    """`repro advise` service arguments and `repro serve` error paths."""

    def test_advise_defaults(self):
        args = build_parser().parse_args(["advise"])
        assert args.target_psnr is None
        assert args.target_mos is None
        assert args.flows == 2
        assert args.server is None
        assert args.ap == "default"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0
        assert args.host == "127.0.0.1"
        # None = derive the cap from the DCF contention model at startup.
        assert args.ap_capacity is None
        assert args.engine == "vector"
        assert args.workers == 2

    def test_advise_rejects_both_targets(self):
        with pytest.raises(SystemExit, match="not both"):
            main(["advise", "--frames", "12", "--gop", "6",
                  "--target-psnr", "15", "--target-mos", "2"])

    def test_advise_rejects_unknown_policy_name(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["advise", "--frames", "12", "--gop", "6",
                  "--policies", "I,everything"])

    def test_advise_rejects_out_of_range_mos(self):
        with pytest.raises(SystemExit, match="MOS"):
            main(["advise", "--frames", "12", "--gop", "6",
                  "--target-mos", "7"])

    def test_advise_rejects_malformed_server_spec(self):
        with pytest.raises(SystemExit, match="malformed tcp spec"):
            main(["advise", "--frames", "12", "--gop", "6",
                  "--server", "udp:somewhere"])

    def test_advise_unreachable_server_fails_cleanly(self, capsys):
        # A closed port: the client retries transport errors, then the
        # CLI reports the failure with exit 1 instead of a traceback.
        code = main(["advise", "--frames", "12", "--gop", "6",
                     "--server", "tcp:127.0.0.1:9"])
        assert code == 1
        assert "advise:" in capsys.readouterr().out

    def test_advise_explicit_policies_subset(self, capsys):
        code = main(["advise", "--frames", "12", "--gop", "6",
                     "--policies", "I,all"])
        assert code == 0
        out = capsys.readouterr().out
        assert "I(AES256)" in out
        assert "all(AES256)" in out
        assert "P(AES256)\n" not in out  # subset never invents labels

    def test_advise_target_mos_resolves_to_bucket_edge(self, capsys):
        code = main(["advise", "--frames", "12", "--gop", "6",
                     "--target-mos", "2"])
        assert code == 0
        # MOS <= 2 is PSNR <= 25 dB, shown in the table title.
        assert "target <= 25 dB" in capsys.readouterr().out

    def test_serve_rejects_bad_capacity(self, tmp_path):
        with pytest.raises(SystemExit, match="ap_capacity"):
            main(["serve", "--cache", str(tmp_path), "--ap-capacity", "0"])

    def test_serve_rejects_bad_workers(self, tmp_path):
        with pytest.raises(SystemExit, match="workers"):
            main(["serve", "--cache", str(tmp_path), "--workers", "-1"])


class TestCacheCommand:
    @staticmethod
    def _populate(directory, n=2):
        with ResultCache(directory) as cache:
            keys = []
            for i in range(n):
                key = hashlib.sha256(f"cli-{i}".encode()).hexdigest()
                cache.put_runs(key, [RunMetrics(
                    mean_delay_ms=float(i), mean_waiting_ms=2.0,
                    average_power_w=3.0)])
                keys.append(key)
        return keys

    def test_stats(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "index_backend" in out

    def test_gc_enforces_caps(self, tmp_path, capsys):
        self._populate(tmp_path, n=4)
        code = main(["cache", "gc", "--dir", str(tmp_path),
                     "--max-entries", "1"])
        assert code == 0
        assert "evicted" in capsys.readouterr().out
        with ResultCache(tmp_path) as cache:
            assert len(cache) == 1

    def test_clear(self, tmp_path, capsys):
        self._populate(tmp_path, n=3)
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 3" in capsys.readouterr().out
        with ResultCache(tmp_path) as cache:
            assert len(cache) == 0

    def test_verify_flags_corruption(self, tmp_path, capsys):
        keys = self._populate(tmp_path)
        with ResultCache(tmp_path) as cache:
            cache.backend.path_for(keys[0]).write_text("{broken")
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
        assert "corrupt" in capsys.readouterr().out
        # a clean cache verifies green
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0

    def test_stats_on_missing_directory(self, tmp_path, capsys):
        target = tmp_path / "nothing-here"
        assert main(["cache", "stats", "--dir", str(target)]) == 0
        assert "entries" in capsys.readouterr().out
        assert not target.exists()


class TestExampleModules:
    """The shipped examples must at least import cleanly."""

    @pytest.mark.parametrize("name", [
        "quickstart", "policy_advisor", "eavesdropper_demo", "tcp_vs_udp",
        "adaptive_streaming",
    ])
    def test_example_imports(self, name):
        import importlib.util
        import pathlib
        path = (pathlib.Path(__file__).resolve().parent.parent / "examples"
                / f"{name}.py")
        spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "main")
