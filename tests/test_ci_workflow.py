"""The CI pipeline definition: valid YAML, correct tiering, and every
command it runs must exist in this tree."""

import shlex
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


def _steps(workflow, job):
    return workflow["jobs"][job]["steps"]


def _run_lines(workflow, job):
    return [step["run"] for step in _steps(workflow, job)
            if "run" in step]


class TestStructure:
    def test_parses_and_has_all_jobs(self, workflow):
        assert set(workflow["jobs"]) == {
            "static-checks", "tier-1", "tier-2", "bench-gate"}

    def test_pythonpath_src_everywhere(self, workflow):
        # `on` parses as boolean True in YAML 1.1
        assert workflow["env"]["PYTHONPATH"] == "src"

    def test_triggers(self, workflow):
        triggers = workflow.get("on") or workflow.get(True)
        assert "pull_request" in triggers
        assert triggers["push"]["branches"] == ["main"]

    def test_tier2_and_bench_gate_main_push_only(self, workflow):
        for job in ("tier-2", "bench-gate"):
            condition = workflow["jobs"][job]["if"]
            assert "push" in condition
            assert "refs/heads/main" in condition
        for job in ("static-checks", "tier-1"):
            assert "if" not in workflow["jobs"][job]

    def test_selftest_is_first_command_in_every_job(self, workflow):
        for job in workflow["jobs"]:
            runs = _run_lines(workflow, job)
            commands = [line for line in runs
                        if not line.startswith("python -m pip")]
            assert commands[0] == "python -m repro.cli selftest", job

    def test_superseded_runs_are_cancelled(self, workflow):
        """Pushing a fixup must not leave the previous run burning
        matrix minutes: the workflow declares a per-ref concurrency
        group with cancel-in-progress."""
        concurrency = workflow["concurrency"]
        assert concurrency["cancel-in-progress"] is True
        assert "github.ref" in concurrency["group"]

    def test_every_job_has_a_timeout(self, workflow):
        """A hung step (deadlocked server, stuck socket) must never pin
        a runner for the 6-hour default."""
        for job, spec in workflow["jobs"].items():
            minutes = spec.get("timeout-minutes")
            assert isinstance(minutes, int) and 0 < minutes <= 60, \
                f"{job} needs a sane timeout-minutes, got {minutes!r}"

    def test_pip_cache_keyed_on_pyproject(self, workflow):
        """Every setup-python step caches pip downloads keyed on
        pyproject.toml, so dependency bumps invalidate the cache and
        nothing else does."""
        for job, spec in workflow["jobs"].items():
            setups = [step for step in spec["steps"]
                      if "setup-python" in str(step.get("uses", ""))]
            assert setups, f"{job} never sets up python"
            for step in setups:
                with_block = step["with"]
                assert with_block["cache"] == "pip", job
                assert with_block["cache-dependency-path"] == \
                    "pyproject.toml", job

    def test_tier1_matrix_covers_supported_pythons(self, workflow):
        """Tier-1 fans out across the supported interpreter range; the
        step must actually consume the matrix variable."""
        tier1 = workflow["jobs"]["tier-1"]
        matrix = tier1["strategy"]["matrix"]["python-version"]
        assert matrix == ["3.10", "3.11", "3.12"]
        assert tier1["strategy"]["fail-fast"] is False
        setup = next(step for step in tier1["steps"]
                     if "setup-python" in str(step.get("uses", "")))
        assert setup["with"]["python-version"] == \
            "${{ matrix.python-version }}"


class TestCommands:
    def test_tier1_deselects_slow(self, workflow):
        runs = _run_lines(workflow, "tier-1")
        assert any("-m \"not slow\"" in line or "-m 'not slow'" in line
                   for line in runs)

    def test_tier2_runs_full_suite(self, workflow):
        assert "python -m pytest -x -q" in _run_lines(workflow, "tier-2")

    def test_tier1_runs_flows_scale_smoke(self, workflow):
        """The PR job must differential-check the vector engine against
        the kernel at 10/100 flows — cheap, and it guards the fast
        path's core equivalence claim on every PR."""
        runs = _run_lines(workflow, "tier-1")
        assert any("bench_ext_flows_scale.py --smoke" in line
                   for line in runs)

    def test_tier1_runs_mobility_smoke(self, workflow):
        """The PR job must differential-check the mobile vector path
        against the kernel across real handoffs, and pin the parked
        profile to the static simulator byte-for-byte."""
        runs = _run_lines(workflow, "tier-1")
        assert any("bench_ext_mobility.py --smoke" in line
                   for line in runs)

    def test_tier1_runs_net_grid_smoke(self, workflow):
        """The PR job must also spin up a loopback `cached serve` and
        differential-check two TCP workers against local execution —
        the networked tier's byte-identity claim, on every PR."""
        runs = _run_lines(workflow, "tier-1")
        assert any("bench_net_grid.py --smoke" in line for line in runs)

    def test_tier1_runs_serve_smoke(self, workflow):
        """The PR job must also prove the advisor service's memo layer:
        warm answers byte-identical to a cold sweep, zero extra
        evaluations — over a real loopback TCP server, on every PR."""
        runs = _run_lines(workflow, "tier-1")
        assert any("bench_serve.py --smoke" in line for line in runs)

    def test_tier1_runs_advisor_sweep_smoke(self, workflow):
        """The PR job must also pin the model engines to each other:
        a scalar and a vector sweep over the default ladder must select
        the same policy and agree on every sweep scalar."""
        runs = _run_lines(workflow, "tier-1")
        assert any("bench_advisor_sweep.py --smoke" in line
                   for line in runs)

    def test_bench_gate_checks_trend(self, workflow):
        runs = _run_lines(workflow, "bench-gate")
        assert any("crypto_microbench.py" in line for line in runs)
        # The flows-scale run gates the *merged* report (crypto + cache
        # + flows curve), so --check-trend rides on the last writer.
        assert any("bench_ext_flows_scale.py --check-trend" in line
                   for line in runs)
        assert any("bench history" in line for line in runs)

    def test_bench_gate_merges_before_gating(self, workflow):
        """crypto_microbench rewrites BENCH_crypto.json from scratch, so
        it must run first; the serve, advisor-sweep and mobility benches
        merge their sections in next, and the flows bench (the last
        writer) carries --check-trend — so the gate sees the mobility
        throughput keys too."""
        runs = _run_lines(workflow, "bench-gate")
        crypto = next(i for i, line in enumerate(runs)
                      if "crypto_microbench.py" in line)
        serve = next(i for i, line in enumerate(runs)
                     if "bench_serve.py" in line)
        sweep = next(i for i, line in enumerate(runs)
                     if "bench_advisor_sweep.py" in line)
        mobility = next(i for i, line in enumerate(runs)
                        if "bench_ext_mobility.py" in line)
        flows = next(i for i, line in enumerate(runs)
                     if "bench_ext_flows_scale.py" in line)
        assert crypto < serve < sweep < mobility < flows

    def test_static_checks_compile_and_lint(self, workflow):
        runs = _run_lines(workflow, "static-checks")
        assert any("compileall" in line and "src tests benchmarks" in line
                   for line in runs)
        assert any("lint_checks.py" in line for line in runs)

    def test_referenced_scripts_exist(self, workflow):
        for job in workflow["jobs"]:
            for line in _run_lines(workflow, job):
                for token in shlex.split(line):
                    if token.endswith(".py"):
                        assert (REPO_ROOT / token).is_file(), \
                            f"{job} runs missing script {token}"

    def test_no_new_dependencies(self, workflow):
        """The pipeline may only install what the project already
        depends on (plus the test/yaml toolchain)."""
        allowed = {"numpy", "scipy", "pytest", "hypothesis", "pyyaml"}
        for job in workflow["jobs"]:
            for line in _run_lines(workflow, job):
                if "pip install" in line:
                    packages = set(shlex.split(line.split("install", 1)[1]))
                    assert packages <= allowed, f"{job}: {packages}"
