"""The distortion model (eqs. 21-28): states, polynomials, the GOP-chain DP."""

import numpy as np
import pytest

from repro.core.distortion import (
    DistortionModel,
    DistortionPolynomial,
    gop_state_probabilities,
    intra_gop_distortion_linear,
)


@pytest.fixture
def polynomial():
    # Quadratic-ish growth capped at 5000 (a plausible measured curve).
    return DistortionPolynomial(coefficients=(0.0, 50.0, 5.0), cap=5000.0)


class TestPolynomial:
    def test_zero_at_origin(self, polynomial):
        assert polynomial(0.0) == 0.0
        assert polynomial(-3.0) == 0.0

    def test_evaluation(self, polynomial):
        assert polynomial(2.0) == pytest.approx(50 * 2 + 5 * 4)

    def test_cap_applies(self, polynomial):
        assert polynomial(1000.0) == 5000.0

    def test_negative_values_clamped(self):
        poly = DistortionPolynomial(coefficients=(-100.0, 1.0), cap=10.0)
        assert poly(1.0) == 0.0

    def test_mean_over(self, polynomial):
        assert polynomial.mean_over([1, 2]) == pytest.approx(
            (polynomial(1) + polynomial(2)) / 2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DistortionPolynomial(coefficients=(), cap=1.0)
        with pytest.raises(ValueError):
            DistortionPolynomial(coefficients=(1.0,), cap=0.0)


class TestStateProbabilities:
    def test_eq24_values(self):
        probabilities = gop_state_probabilities(4, p_i=0.9, p_p=0.8)
        assert probabilities[0] == pytest.approx(0.1)
        assert probabilities[1] == pytest.approx(0.9 * 0.2)
        assert probabilities[2] == pytest.approx(0.9 * 0.8 * 0.2)
        assert probabilities[3] == pytest.approx(0.9 * 0.8 ** 2 * 0.2)
        assert probabilities[4] == pytest.approx(0.9 * 0.8 ** 3)

    def test_sums_to_one(self):
        for p_i, p_p in ((0.5, 0.5), (0.99, 0.97), (0.0, 1.0), (1.0, 0.0)):
            probabilities = gop_state_probabilities(30, p_i, p_p)
            assert probabilities.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            gop_state_probabilities(1, 0.5, 0.5)
        with pytest.raises(ValueError):
            gop_state_probabilities(30, 1.5, 0.5)


class TestLinearEq21:
    def test_monotone_decreasing_in_position(self):
        values = [intra_gop_distortion_linear(30, i, 10.0, 1000.0)
                  for i in range(1, 30)]
        assert values == sorted(values, reverse=True)

    def test_early_loss_near_dmax(self):
        value = intra_gop_distortion_linear(50, 1, 10.0, 1000.0)
        assert value > 0.9 * 1000.0

    def test_late_loss_scales_with_dmin(self):
        a = intra_gop_distortion_linear(30, 29, 10.0, 1000.0)
        b = intra_gop_distortion_linear(30, 29, 20.0, 1000.0)
        assert b == pytest.approx(2 * a)

    def test_position_bounds(self):
        with pytest.raises(ValueError):
            intra_gop_distortion_linear(30, 0, 1.0, 10.0)
        with pytest.raises(ValueError):
            intra_gop_distortion_linear(30, 30, 1.0, 10.0)


class TestDistortionModel:
    def _model(self, polynomial, **kwargs):
        return DistortionModel(gop_size=30, n_gops=10,
                               polynomial=polynomial, **kwargs)

    def test_perfect_reception_zero_distortion(self, polynomial):
        estimate = self._model(polynomial).expected(1.0, 1.0)
        assert estimate.average_distortion == pytest.approx(0.0, abs=1e-9)
        assert estimate.psnr_db == pytest.approx(100.0)

    def test_no_i_frames_saturates_at_cap(self, polynomial):
        """Everything lost: distortion approaches the cap (Case 3)."""
        estimate = self._model(polynomial).expected(0.0, 0.0)
        assert estimate.average_distortion == pytest.approx(
            polynomial.cap, rel=0.05
        )

    def test_monotone_in_p_frame_success(self, polynomial):
        model = self._model(polynomial)
        estimates = [model.expected(0.95, p).average_distortion
                     for p in (0.5, 0.8, 0.95, 1.0)]
        assert estimates == sorted(estimates, reverse=True)

    def test_monotone_in_i_frame_success(self, polynomial):
        model = self._model(polynomial)
        estimates = [model.expected(p, 0.95).average_distortion
                     for p in (0.2, 0.5, 0.9, 1.0)]
        assert estimates == sorted(estimates, reverse=True)

    def test_baseline_distortion_added(self, polynomial):
        model = self._model(polynomial)
        clean = model.expected(1.0, 1.0, baseline_distortion=25.0)
        assert clean.average_distortion == pytest.approx(25.0)

    def test_recovery_fraction_reduces_distortion(self, polynomial):
        """A decoder that recovers across broken chains sees less
        distortion than the freeze decoder (the fast-motion effect)."""
        freeze = self._model(polynomial).expected(0.0, 1.0)
        recover = self._model(
            polynomial, recovery_fraction=0.0
        ).expected(0.0, 1.0)
        assert (recover.average_distortion
                < 0.25 * freeze.average_distortion)

    def test_recovery_fraction_one_equals_freeze(self, polynomial):
        freeze = self._model(polynomial).expected(0.3, 0.9)
        full_leak = self._model(
            polynomial, recovery_fraction=1.0
        ).expected(0.3, 0.9)
        assert full_leak.average_distortion == pytest.approx(
            freeze.average_distortion, rel=1e-9
        )

    def test_recovery_requires_arriving_packets(self, polynomial):
        """With everything encrypted (p_p = 0) recovery cannot help."""
        freeze = self._model(polynomial).expected(0.0, 0.0)
        recover = self._model(
            polynomial, recovery_fraction=0.0
        ).expected(0.0, 0.0)
        assert recover.average_distortion == pytest.approx(
            freeze.average_distortion, rel=1e-9
        )

    def test_per_gop_chain_length(self, polynomial):
        estimate = self._model(polynomial).expected(0.9, 0.9)
        assert len(estimate.per_gop_distortion) == 10

    def test_consecutive_i_losses_accumulate_age(self, polynomial):
        """With I-frames always lost, later GOPs freeze at growing
        distances, so per-GOP distortion is non-decreasing."""
        model = DistortionModel(gop_size=10, n_gops=6,
                                polynomial=polynomial)
        estimate = model.expected(0.0, 1.0)
        series = estimate.per_gop_distortion
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_validation(self, polynomial):
        with pytest.raises(ValueError):
            DistortionModel(gop_size=1, n_gops=5, polynomial=polynomial)
        with pytest.raises(ValueError):
            DistortionModel(gop_size=30, n_gops=0, polynomial=polynomial)
        with pytest.raises(ValueError):
            DistortionModel(gop_size=30, n_gops=5, polynomial=polynomial,
                            recovery_fraction=1.5)
