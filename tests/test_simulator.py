"""The Fig. 3 sender simulation and its traces."""

import numpy as np
import pytest

from repro.core import standard_policies
from repro.core.calibration import fit_mmpp_from_trace
from repro.core.policies import EncryptionPolicy
from repro.testbed.devices import GALAXY_S2
from repro.testbed.simulator import LinkConfig, SenderSimulator
from repro.testbed.transport import HTTP_TCP
from repro.video.gop import FrameType


@pytest.fixture(scope="module")
def simulator(slow_bitstream):
    return SenderSimulator(slow_bitstream, device=GALAXY_S2)


class TestDeterminism:
    def test_same_seed_same_run(self, simulator):
        policy = standard_policies("AES256")["I"]
        a = simulator.run(policy, seed=11)
        b = simulator.run(policy, seed=11)
        assert a.mean_delay_ms == b.mean_delay_ms
        assert a.usable_by_eavesdropper == b.usable_by_eavesdropper

    def test_different_seeds_differ(self, simulator):
        policy = standard_policies("AES256")["I"]
        a = simulator.run(policy, seed=1)
        b = simulator.run(policy, seed=2)
        assert a.mean_delay_ms != b.mean_delay_ms


class TestDelayBehaviour:
    def test_policy_ordering(self, simulator):
        delays = {}
        for name, policy in standard_policies("AES256").items():
            delays[name] = simulator.run(policy, seed=5).mean_delay_ms
        assert delays["none"] < delays["I"]
        assert delays["none"] < delays["P"]
        assert delays["I"] < delays["all"]
        assert delays["P"] <= delays["all"]

    def test_3des_slower_than_aes256(self, simulator):
        aes = simulator.run(EncryptionPolicy("all", "AES256"), seed=5)
        des3 = simulator.run(EncryptionPolicy("all", "3DES"), seed=5)
        assert des3.mean_delay_ms > aes.mean_delay_ms

    def test_fifo_departures_ordered(self, simulator):
        run = simulator.run(standard_policies("AES256")["all"], seed=6)
        departures = [t.departure_time_s for t in run.trace]
        assert departures == sorted(departures)

    def test_waiting_nonnegative(self, simulator):
        run = simulator.run(standard_policies("AES256")["none"], seed=7)
        assert all(t.waiting_time_s >= -1e-12 for t in run.trace)


class TestVisibility:
    def test_eavesdropper_never_sees_encrypted(self, simulator):
        run = simulator.run(standard_policies("AES256")["I"], seed=8)
        for packet, trace, usable in zip(
                run.packets, run.trace, run.usable_by_eavesdropper):
            if trace.encrypted:
                assert not usable
            assert trace.encrypted == (packet.frame_type is FrameType.I)

    def test_receiver_sees_all_delivered(self, simulator):
        run = simulator.run(standard_policies("AES256")["all"], seed=9)
        for trace, usable in zip(run.trace, run.usable_by_receiver):
            assert usable == trace.delivered

    def test_none_policy_marks_nothing(self, simulator):
        run = simulator.run(standard_policies("AES256")["none"], seed=10)
        assert run.trace.encrypted_fraction() == 0.0


class TestTraceViews:
    def test_crypto_time_zero_without_encryption(self, simulator):
        run = simulator.run(standard_policies("AES256")["none"], seed=3)
        assert run.trace.total_crypto_time_s() == 0.0

    def test_makespan_bounds(self, simulator, slow_bitstream):
        run = simulator.run(standard_policies("AES256")["none"], seed=3)
        assert run.trace.makespan_s() >= slow_bitstream.duration_s * 0.9

    def test_arrival_trace_feeds_mmpp_fit(self, simulator):
        """Section 6.1 closed loop: the simulated trace calibrates an MMPP
        whose burst rate matches the configured disk read rate."""
        run = simulator.run(standard_policies("AES256")["none"], seed=4)
        times, phases = run.trace.arrival_trace()
        fitted = fit_mmpp_from_trace(times, phases)
        assert fitted.lambda1 > 10 * fitted.lambda2

    def test_encryption_samples_by_type(self, simulator):
        run = simulator.run(standard_policies("AES256")["I"], seed=4)
        i_samples = run.trace.encryption_samples(FrameType.I)
        p_samples = run.trace.encryption_samples(FrameType.P)
        assert i_samples and not p_samples
        assert all(s > 0 for s in i_samples)


class TestTcpMode:
    def test_tcp_under_loss_slower_but_delivers(self, slow_bitstream):
        lossy = LinkConfig.default(channel_error_rate=0.2)
        lossy = LinkConfig(phy=lossy.phy, dcf=lossy.dcf, retry_limit=0)
        policy = standard_policies("AES256")["none"]
        udp_sim = SenderSimulator(slow_bitstream, device=GALAXY_S2,
                                  link=lossy)
        tcp_sim = SenderSimulator(slow_bitstream, device=GALAXY_S2,
                                  link=lossy, transport=HTTP_TCP)
        udp = udp_sim.run(policy, seed=12)
        tcp = tcp_sim.run(policy, seed=12)
        assert np.mean(udp.usable_by_receiver) < 0.95
        assert np.mean(tcp.usable_by_receiver) > 0.99
        assert tcp.mean_delay_ms > udp.mean_delay_ms
