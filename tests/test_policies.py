"""Encryption policies: selection probabilities and per-packet rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import EncryptionPolicy, standard_policies
from repro.video.gop import FrameType
from repro.video.packetizer import packetize


class TestSelectionProbabilities:
    @pytest.mark.parametrize("mode,q_i,q_p", [
        ("none", 0.0, 0.0),
        ("i_frames", 1.0, 0.0),
        ("p_frames", 0.0, 1.0),
        ("all", 1.0, 1.0),
    ])
    def test_basic_modes(self, mode, q_i, q_p):
        algorithm = None if mode == "none" else "AES256"
        policy = EncryptionPolicy(mode, algorithm)
        assert policy.q_i == q_i
        assert policy.q_p == q_p

    def test_mixture_mode(self):
        policy = EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.2)
        assert policy.q_i == 1.0
        assert policy.q_p == 0.2

    def test_partial_i_mode(self):
        policy = EncryptionPolicy("partial_i", "AES256", fraction=0.5)
        assert policy.q_i == 0.5
        assert policy.q_p == 0.0

    def test_encrypted_fraction_formula(self):
        policy = EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.2)
        # q = q_i p_i + q_p (1 - p_i)
        assert policy.encrypted_fraction(0.25) == pytest.approx(
            0.25 + 0.2 * 0.75
        )

    def test_encrypted_fraction_validates(self):
        with pytest.raises(ValueError):
            EncryptionPolicy("all", "AES256").encrypted_fraction(1.5)


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            EncryptionPolicy("every-other", "AES256")

    def test_fraction_range(self):
        with pytest.raises(ValueError):
            EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=1.5)

    def test_fraction_required_for_partial_modes(self):
        with pytest.raises(ValueError):
            EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.0)

    def test_algorithm_required_unless_none(self):
        with pytest.raises(ValueError):
            EncryptionPolicy("all", None)


class TestPerPacketRule:
    def test_deterministic(self, slow_bitstream):
        policy = EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.3)
        packets = packetize(slow_bitstream, carry_payload=False)
        first = [policy.encrypts(p) for p in packets]
        second = [policy.encrypts(p) for p in packets]
        assert first == second

    def test_i_mode_selects_exactly_i_packets(self, slow_bitstream):
        policy = EncryptionPolicy("i_frames", "AES256")
        for packet in packetize(slow_bitstream, carry_payload=False):
            assert policy.encrypts(packet) == (
                packet.frame_type is FrameType.I
            )

    def test_mixture_selects_all_i_and_fraction_of_p(self, fast_bitstream):
        policy = EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.2)
        packets = packetize(fast_bitstream, carry_payload=False)
        p_packets = [p for p in packets if p.frame_type is FrameType.P]
        i_packets = [p for p in packets if p.frame_type is FrameType.I]
        assert all(policy.encrypts(p) for p in i_packets)
        selected = sum(policy.encrypts(p) for p in p_packets)
        assert selected / len(p_packets) == pytest.approx(0.2, abs=0.05)

    def test_partial_i_selects_fraction_of_i(self, fast_bitstream):
        policy = EncryptionPolicy("partial_i", "AES256", fraction=0.5)
        packets = packetize(fast_bitstream, carry_payload=False)
        i_packets = [p for p in packets if p.frame_type is FrameType.I]
        p_packets = [p for p in packets if p.frame_type is FrameType.P]
        assert not any(policy.encrypts(p) for p in p_packets)
        selected = sum(policy.encrypts(p) for p in i_packets)
        assert 0 < selected < len(i_packets)

    def test_none_and_all(self, slow_bitstream):
        packets = packetize(slow_bitstream, carry_payload=False)
        none_policy = EncryptionPolicy("none", None)
        all_policy = EncryptionPolicy("all", "3DES")
        assert not any(none_policy.encrypts(p) for p in packets)
        assert all(all_policy.encrypts(p) for p in packets)


class TestLabelsAndFactory:
    def test_standard_policies_keys(self):
        policies = standard_policies("AES128")
        assert set(policies) == {"none", "I", "P", "all"}
        assert policies["I"].algorithm == "AES128"

    def test_labels(self):
        assert EncryptionPolicy("none", None).label == "none"
        assert EncryptionPolicy("i_frames", "AES256").label == "I(AES256)"
        assert (EncryptionPolicy("i_plus_p_fraction", "3DES",
                                 fraction=0.2).label == "I+20%P(3DES)")


@settings(max_examples=20, deadline=None)
@given(p_i=st.floats(0.0, 1.0), fraction=st.floats(0.01, 1.0))
def test_property_fraction_bounds(p_i, fraction):
    policy = EncryptionPolicy("i_plus_p_fraction", "AES256",
                              fraction=fraction)
    q = policy.encrypted_fraction(p_i)
    assert 0.0 <= q <= 1.0
    assert q >= p_i * policy.q_i * 0.999  # at least the I share
