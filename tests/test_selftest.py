"""`repro selftest` — the first command of every CI job."""

import pytest

import repro.selftest as selftest_mod
from repro.cli import main
from repro.selftest import CheckResult, run_selftest


class TestRunSelftest:
    def test_all_checks_pass_in_this_tree(self):
        results = run_selftest()
        assert [r.name for r in results] == [
            "crypto-kat", "cached-engine", "event-kernel", "vector-flows",
            "vector-models", "mobility", "net-queue", "advise-serve"]
        failures = [r for r in results if not r.ok]
        assert not failures, [f"{r.name}: {r.detail}" for r in failures]

    def test_mobility_check_proves_the_differential(self):
        """The mobility check must pin both halves of the contract:
        deterministic builds and kernel==vector across handoffs."""
        results = run_selftest(["mobility"])
        assert [r.name for r in results] == ["mobility"]
        assert results[0].ok, results[0].detail
        assert "oracle==kernel" in results[0].detail
        assert "handoffs" in results[0].detail

    def test_subset_selection(self):
        results = run_selftest(["crypto-kat"])
        assert [r.name for r in results] == ["crypto-kat"]
        assert results[0].ok

    def test_advise_serve_check_asserts_memo_hit(self):
        """The serve check must prove the warm path did zero sweeps."""
        results = run_selftest(["advise-serve"])
        assert [r.name for r in results] == ["advise-serve"]
        assert results[0].ok, results[0].detail
        assert "memo hit" in results[0].detail
        assert "1 evaluation" in results[0].detail

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown selftest check"):
            run_selftest(["crypto-kat", "warp-core"])

    def test_failures_become_rows_not_exceptions(self, monkeypatch):
        def boom():
            raise AssertionError("synthetic breakage")
        monkeypatch.setattr(
            selftest_mod, "_CHECKS",
            [("crypto-kat", boom)] + selftest_mod._CHECKS[1:])
        results = run_selftest(["crypto-kat"])
        assert results == [CheckResult(
            "crypto-kat", False, "AssertionError: synthetic breakage")]


class TestCli:
    def test_exit_zero_and_table(self, capsys):
        rc = main(["selftest", "--only", "crypto-kat"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crypto-kat" in out
        assert "all 1 checks passed" in out

    def test_exit_one_on_failure(self, monkeypatch, capsys):
        def boom():
            raise RuntimeError("synthetic breakage")
        monkeypatch.setattr(
            selftest_mod, "_CHECKS", [("crypto-kat", boom)])
        rc = main(["selftest"])
        assert rc == 1
        assert "SELFTEST FAILED" in capsys.readouterr().out
