"""Parallel cached experiment engine: determinism, caching, seeding."""

import pytest

from repro.core import standard_policies
from repro.testbed import (
    DEVICES,
    ExperimentConfig,
    ExperimentEngine,
    GridCell,
    ResultCache,
    RunMetrics,
    describe_config,
    scenario_fingerprint,
)


def _config(policy_name="I", algorithm="AES256", decode=False, flows=1,
            engine="legacy"):
    return ExperimentConfig(
        policy=standard_policies(algorithm)[policy_name],
        device=DEVICES["samsung-s2"],
        sensitivity_fraction=0.55,
        decode_video=decode,
        flows=flows,
        engine=engine,
    )


@pytest.fixture()
def engine_factory(slow_clip, slow_bitstream):
    """Engines pre-loaded with the shared test scenario, closed on exit."""
    engines = []

    def make(**kwargs):
        kwargs.setdefault("master_seed", 7)
        kwargs.setdefault("repeats", 3)
        engine = ExperimentEngine(**kwargs)
        engine.add_scenario("slow", slow_clip, slow_bitstream)
        engines.append(engine)
        return engine

    yield make
    for engine in engines:
        engine.close()


GRID_POLICIES = ("none", "I", "all")


class TestDeterminism:
    def test_fresh_engine_rerun_identical(self, engine_factory):
        cells = [GridCell("slow", _config(p)) for p in GRID_POLICIES]
        first = engine_factory(workers=1).run_grid(cells)
        again = engine_factory(workers=1).run_grid(cells)
        assert first == again

    @pytest.mark.slow
    def test_parallel_byte_identical_to_serial(self, engine_factory):
        cells = [GridCell("slow", _config(p)) for p in GRID_POLICIES]
        serial = engine_factory(workers=1).run_grid(cells)
        parallel = engine_factory(workers=2).run_grid(cells)
        assert serial == parallel

    def test_cell_independent_of_grid_composition(self, engine_factory):
        """A cell's seeds derive from its content, not its grid position,
        so running it alone or inside a grid gives identical results."""
        in_grid = engine_factory(workers=1).run_grid(
            [GridCell("slow", _config(p)) for p in GRID_POLICIES]
        )[1]
        alone = engine_factory(workers=1).run_cell(
            "slow", _config(GRID_POLICIES[1]))
        assert alone == in_grid

    def test_master_seed_changes_results(self, engine_factory):
        base = engine_factory(workers=1).run_cell("slow", _config("all"))
        other = engine_factory(workers=1, master_seed=8).run_cell(
            "slow", _config("all"))
        assert base.delay_ms != other.delay_ms

    def test_repeats_are_independent(self, engine_factory):
        engine = engine_factory(workers=1, repeats=4)
        summary = engine.run_cell("slow", _config("all"))
        assert summary.n_runs == 4
        assert summary.delay_ms.ci_halfwidth > 0.0  # streams not reused


class TestSummaries:
    def test_metrics_shape(self, engine_factory):
        summary = engine_factory(workers=1).run_cell(
            "slow", _config("I", decode=True))
        assert summary.delay_ms.mean > 0
        assert summary.power_w.mean > 0
        assert summary.receiver_psnr_db.mean > 30.0
        assert summary.eavesdropper_psnr_db.mean < 15.0
        assert summary.n_runs == 3

    def test_decode_disabled_skips_video_metrics(self, engine_factory):
        summary = engine_factory(workers=1).run_cell(
            "slow", _config("I", decode=False))
        assert summary.receiver_psnr_db is None
        assert summary.eavesdropper_mos is None

    def test_unknown_scenario_rejected(self, engine_factory):
        engine = engine_factory(workers=1)
        with pytest.raises(KeyError):
            engine.run_cell("nope", _config())


class TestCache:
    def test_replay_performs_zero_simulations(self, engine_factory,
                                              tmp_path):
        cells = [GridCell("slow", _config(p)) for p in GRID_POLICIES]
        first = engine_factory(workers=1, cache=ResultCache(tmp_path))
        fresh = first.run_grid(cells)
        assert first.simulations_run == 3 * len(cells)
        assert first.cache.misses == len(cells)

        replay_cache = ResultCache(tmp_path)
        second = engine_factory(workers=1, cache=replay_cache)
        replayed = second.run_grid(cells)
        assert second.simulations_run == 0
        assert replay_cache.hits == len(cells)
        assert replayed == fresh  # byte-identical summaries
        assert all(summary.from_cache for summary in replayed)

    def test_decoded_metrics_survive_the_cache(self, engine_factory,
                                               tmp_path):
        cell = GridCell("slow", _config("I", decode=True))
        fresh = engine_factory(
            workers=1, cache=ResultCache(tmp_path)).run_grid([cell])[0]
        replayed = engine_factory(
            workers=1, cache=ResultCache(tmp_path)).run_grid([cell])[0]
        assert replayed == fresh
        assert replayed.eavesdropper_mos == fresh.eavesdropper_mos

    def test_key_sensitivity(self, engine_factory, tmp_path):
        engine = engine_factory(workers=1, cache=ResultCache(tmp_path))
        keys = {
            engine.cell_key(GridCell("slow", _config("I"))),
            engine.cell_key(GridCell("slow", _config("all"))),
            engine.cell_key(GridCell("slow", _config("I", decode=True))),
            engine.cell_key(GridCell("slow", _config("I"), repeats=5)),
            engine.cell_key(GridCell("slow", _config("I", engine="events"))),
            engine.cell_key(GridCell(
                "slow", _config("I", flows=2, engine="events"))),
        }
        assert len(keys) == 6

    def test_clear(self, engine_factory, tmp_path):
        cache = ResultCache(tmp_path)
        engine = engine_factory(workers=1, cache=cache)
        engine.run_cell("slow", _config("I"))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestCacheFidelity:
    def test_run_metrics_float_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        runs = [RunMetrics(mean_delay_ms=0.1 + 0.2,
                           mean_waiting_ms=1e-17,
                           average_power_w=3.14159265358979,
                           eavesdropper_psnr_db=None)]
        cache.put_runs("k" * 64, runs)
        assert cache.get_runs("k" * 64) == runs

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_runs("absent") is None
        assert cache.misses == 1


class TestBugfixes:
    def test_duplicate_cells_simulated_once(self, engine_factory):
        """Two identical uncached cells must share one simulation batch,
        with the summary fanned back to both grid positions."""
        engine = engine_factory(workers=1)
        out = engine.run_grid([GridCell("slow", _config("I")),
                               GridCell("slow", _config("all")),
                               GridCell("slow", _config("I"))])
        assert engine.simulations_run == 3 * 2  # 2 unique cells, not 3
        assert out[0] == out[2]

    def test_duplicate_cells_single_cache_write(self, engine_factory,
                                                tmp_path):
        cache = ResultCache(tmp_path)
        engine = engine_factory(workers=1, cache=cache)
        engine.run_grid([GridCell("slow", _config("I")),
                         GridCell("slow", _config("I"))])
        assert engine.simulations_run == 3
        assert len(cache) == 1

    def test_zero_repeats_rejected_not_coerced(self, engine_factory):
        engine = engine_factory(workers=1)
        with pytest.raises(ValueError, match="repeats"):
            engine.run_cell("slow", _config("I"), repeats=0)
        with pytest.raises(ValueError, match="repeats"):
            engine.cell_key(GridCell("slow", _config("I"), repeats=-2))

    def test_engine_repeats_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            ExperimentEngine(workers=1, repeats=0)

    def test_garbage_workers_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_ENGINE_WORKERS"):
            ExperimentEngine()

    def test_workers_env_still_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "1")
        assert ExperimentEngine().workers == 1


class TestStatsSurface:
    def test_stats_without_cache(self, engine_factory):
        engine = engine_factory(workers=1)
        engine.run_cell("slow", _config("I"))
        stats = engine.stats()
        assert stats["simulations_run"] == 3
        assert stats["memo_entries"] == 1
        assert stats["cache"] is None

    def test_stats_with_cache(self, engine_factory, tmp_path):
        engine = engine_factory(workers=1, cache=ResultCache(tmp_path))
        engine.run_cell("slow", _config("I"))
        engine.run_cell("slow", _config("I"))  # memo hit, no new lookup
        cache_stats = engine.stats()["cache"]
        assert cache_stats["entries"] == 1
        assert cache_stats["misses"] == 1
        assert cache_stats["evictions"] == 0
        assert cache_stats["corrupt"] == 0
        assert cache_stats["index_backend"] in ("sqlite", "jsonl")


class TestScenarios:
    def test_conflicting_registration_rejected(self, slow_clip,
                                               slow_bitstream, fast_clip,
                                               fast_bitstream):
        engine = ExperimentEngine(workers=1)
        engine.add_scenario("clip", slow_clip, slow_bitstream)
        engine.add_scenario("clip", slow_clip, slow_bitstream)  # idempotent
        with pytest.raises(ValueError):
            engine.add_scenario("clip", fast_clip, fast_bitstream)

    def test_fingerprint_tracks_content(self, slow_clip, slow_bitstream,
                                        fast_clip, fast_bitstream):
        assert scenario_fingerprint(slow_clip, slow_bitstream) == \
            scenario_fingerprint(slow_clip, slow_bitstream)
        assert scenario_fingerprint(slow_clip, slow_bitstream) != \
            scenario_fingerprint(fast_clip, fast_bitstream)

    def test_describe_config_is_json_canonical(self):
        description = describe_config(_config("I"))
        assert description["policy"]["mode"] == "i_frames"
        assert description["device"]["name"] == "Samsung Galaxy S-II"
        assert description["link"] is None
        # schema v2: flows/engine appear only off their defaults, so
        # pre-existing cells keep their v1 payloads and seed streams.
        assert "flows" not in description
        assert "engine" not in description
        multi = describe_config(_config("I", flows=2, engine="events"))
        assert multi["flows"] == 2
        assert multi["engine"] == "events"

    def test_multiflow_cells_run_and_cache(self, engine_factory, tmp_path):
        engine = engine_factory(workers=1, cache=ResultCache(tmp_path))
        cell = GridCell("slow", _config("I", flows=2, engine="events"))
        first = engine.run_grid([cell])[0]
        before = engine.simulations_run
        second = engine.run_grid([cell])[0]
        assert engine.simulations_run == before
        assert second == first
        assert first.delay_ms.mean > 0
