"""Loss concealment: the strict Section 4.3.2 policy and best-effort mode."""

import numpy as np
import pytest

from repro.video.concealment import conceal_decode
from repro.video.gop import FrameType
from repro.video.quality import sequence_psnr


def _all_indices(bitstream):
    return {f.index for f in bitstream}


class TestCleanDecode:
    def test_everything_decodable_matches_clean_decode(
            self, slow_clip, slow_bitstream):
        result = conceal_decode(slow_bitstream, _all_indices(slow_bitstream))
        assert result.n_frozen == 0
        assert sequence_psnr(slow_clip, result.sequence) > 32.0

    def test_records_have_zero_distance(self, slow_bitstream):
        result = conceal_decode(slow_bitstream, _all_indices(slow_bitstream))
        assert all(r.reference_distance == 0 for r in result.frames)


class TestStrictPolicy:
    def test_first_p_loss_freezes_rest_of_gop(self, slow_bitstream):
        """Case 1: even frames whose packets arrived are frozen once the
        chain breaks."""
        decodable = _all_indices(slow_bitstream) - {5}
        result = conceal_decode(slow_bitstream, decodable, mode="strict")
        # Frames 5..29 of GOP 0 are frozen at frame 4.
        frozen = [r for r in result.frames if 5 <= r.index < 30]
        assert all(not r.decoded for r in frozen)
        distances = [r.reference_distance for r in frozen]
        assert distances == [i - 4 for i in range(5, 30)]
        # The next GOP restarts cleanly.
        assert result.frames[30].decoded

    def test_frozen_frames_show_last_good_picture(self, slow_bitstream):
        decodable = _all_indices(slow_bitstream) - {5}
        result = conceal_decode(slow_bitstream, decodable, mode="strict")
        assert np.array_equal(result.sequence[10].y, result.sequence[4].y)

    def test_i_loss_freezes_whole_gop(self, slow_bitstream):
        """Case 2: the GOP freezes at the previous GOP's last frame."""
        decodable = _all_indices(slow_bitstream) - {30}
        result = conceal_decode(slow_bitstream, decodable, mode="strict")
        gop1 = [r for r in result.frames if 30 <= r.index < 60]
        assert all(not r.decoded for r in gop1)
        assert np.array_equal(result.sequence[45].y, result.sequence[29].y)
        assert gop1[0].reference_distance == 1
        assert gop1[-1].reference_distance == 30

    def test_initial_gop_lost_shows_blank(self, slow_bitstream):
        """Case 3: nothing ever decoded -> blank frames."""
        decodable = {f.index for f in slow_bitstream if f.index >= 30}
        result = conceal_decode(slow_bitstream, decodable, mode="strict")
        assert not result.frames[0].decoded
        assert int(result.sequence[0].y[0, 0]) == 16  # blank luma

    def test_gop_not_starting_with_i_rejected(self, slow_bitstream):
        import dataclasses
        broken = dataclasses.replace(slow_bitstream)
        broken.frames = [
            dataclasses.replace(f, frame_type=FrameType.P) if f.index == 0
            else f
            for f in slow_bitstream.frames
        ]
        with pytest.raises(ValueError):
            conceal_decode(broken, _all_indices(broken), mode="strict")

    def test_unknown_mode_rejected(self, slow_bitstream):
        with pytest.raises(ValueError):
            conceal_decode(slow_bitstream, set(), mode="optimistic")


class TestBestEffort:
    def test_decodes_p_frames_without_i(self, fast_bitstream):
        """An eavesdropper missing every I-frame still reconstructs
        fast-motion P-frames (they are largely intra-coded)."""
        i_indices = {f.index for f in fast_bitstream if f.is_intra}
        decodable = _all_indices(fast_bitstream) - i_indices
        result = conceal_decode(fast_bitstream, decodable, mode="best_effort")
        decoded = [r for r in result.frames if r.decoded]
        assert len(decoded) == len(fast_bitstream) - len(i_indices)

    def test_best_effort_beats_strict_for_fast_motion(
            self, fast_clip, fast_bitstream):
        i_indices = {f.index for f in fast_bitstream if f.is_intra}
        decodable = _all_indices(fast_bitstream) - i_indices
        strict = conceal_decode(fast_bitstream, decodable, mode="strict")
        best = conceal_decode(fast_bitstream, decodable, mode="best_effort")
        assert (sequence_psnr(fast_clip, best.sequence)
                > sequence_psnr(fast_clip, strict.sequence) + 5.0)

    def test_best_effort_still_fails_for_slow_motion(
            self, slow_clip, slow_bitstream):
        """Slow-motion P-frames carry nothing; even best-effort decoding
        leaves the eavesdropper with garbage (the paper's key asymmetry)."""
        i_indices = {f.index for f in slow_bitstream if f.is_intra}
        decodable = _all_indices(slow_bitstream) - i_indices
        best = conceal_decode(slow_bitstream, decodable, mode="best_effort")
        assert sequence_psnr(slow_clip, best.sequence) < 15.0

    def test_nothing_decodable_all_blank(self, slow_bitstream):
        result = conceal_decode(slow_bitstream, set(), mode="best_effort")
        assert result.n_decoded == 0
        assert int(result.sequence[0].y[0, 0]) == 16


class TestResultApi:
    def test_freeze_distances(self, slow_bitstream):
        decodable = _all_indices(slow_bitstream) - {5}
        result = conceal_decode(slow_bitstream, decodable)
        assert result.freeze_distances() == [i - 4 for i in range(5, 30)]

    def test_counts_sum(self, slow_bitstream):
        decodable = _all_indices(slow_bitstream) - {5, 31}
        result = conceal_decode(slow_bitstream, decodable)
        assert result.n_decoded + result.n_frozen == len(slow_bitstream)
