"""MSE / PSNR (eq. 28) / EvalVid MOS metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.quality import (
    MAX_PSNR_DB,
    distortion_from_psnr,
    frame_psnr,
    mos_from_psnr,
    mse,
    psnr_from_distortion,
    sequence_mos,
    sequence_mse,
    sequence_psnr,
)
from repro.video.yuv import Frame, Sequence420


def _frame(value):
    return Frame(
        y=np.full((16, 16), value, dtype=np.uint8),
        u=np.full((8, 8), 128, dtype=np.uint8),
        v=np.full((8, 8), 128, dtype=np.uint8),
    )


class TestMse:
    def test_identical_is_zero(self):
        plane = np.arange(256, dtype=np.uint8).reshape(16, 16)
        assert mse(plane, plane) == 0.0

    def test_constant_offset(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 10, dtype=np.uint8)
        assert mse(a, b) == pytest.approx(100.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4), np.uint8), np.zeros((4, 8), np.uint8))


class TestPsnr:
    def test_eq28_value(self):
        # D = 255^2 -> PSNR = 0 dB.
        assert psnr_from_distortion(255.0 ** 2) == pytest.approx(0.0)

    def test_known_point(self):
        # D = 100 -> 20 log10(255/10) = 28.13 dB.
        assert psnr_from_distortion(100.0) == pytest.approx(
            20.0 * math.log10(25.5)
        )

    def test_zero_distortion_capped(self):
        assert psnr_from_distortion(0.0) == MAX_PSNR_DB

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            psnr_from_distortion(-1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1e-3, max_value=255.0 ** 2))
    def test_inverse_roundtrip(self, distortion):
        psnr = psnr_from_distortion(distortion)
        assert distortion_from_psnr(psnr) == pytest.approx(
            distortion, rel=1e-9
        )

    def test_monotone_decreasing(self):
        values = [psnr_from_distortion(d) for d in (1.0, 10.0, 100.0, 1000.0)]
        assert values == sorted(values, reverse=True)


class TestMos:
    @pytest.mark.parametrize("psnr,expected", [
        (40.0, 5), (37.5, 5), (35.0, 4), (31.5, 4),
        (28.0, 3), (25.5, 3), (22.0, 2), (20.5, 2), (15.0, 1), (0.0, 1),
    ])
    def test_bucket_map(self, psnr, expected):
        assert mos_from_psnr(psnr) == expected


class TestSequenceMetrics:
    def test_sequence_mse_mean_of_frames(self):
        ref = Sequence420([_frame(0), _frame(0)])
        deg = Sequence420([_frame(0), _frame(10)])
        assert sequence_mse(ref, deg) == pytest.approx(50.0)

    def test_sequence_psnr_uses_average_distortion(self):
        ref = Sequence420([_frame(0), _frame(0)])
        deg = Sequence420([_frame(0), _frame(10)])
        assert sequence_psnr(ref, deg) == pytest.approx(
            psnr_from_distortion(50.0)
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            sequence_mse(Sequence420([_frame(0)]),
                         Sequence420([_frame(0), _frame(0)]))

    def test_sequence_mos_fractional(self):
        """Per-frame bucketing averages to fractional values, as the
        paper's Table 2 MOS column shows."""
        ref = Sequence420([_frame(0), _frame(0)])
        deg = Sequence420([_frame(0), _frame(100)])  # one perfect, one bad
        score = sequence_mos(ref, deg)
        assert score == pytest.approx((5 + 1) / 2)

    def test_frame_psnr_identical(self):
        assert frame_psnr(_frame(7), _frame(7)) == MAX_PSNR_DB
