"""The predictive codec: structure, closed-loop fidelity, size behaviour."""

import numpy as np
import pytest

from repro.video.codec import CodecConfig, Decoder, Encoder, decode_bitstream, encode_sequence
from repro.video.gop import FrameType
from repro.video.quality import sequence_psnr
from repro.video.synth import generate_clip


class TestConfig:
    def test_defaults(self):
        config = CodecConfig()
        assert config.gop_size == 30
        assert config.quantizer == 8

    @pytest.mark.parametrize("kwargs", [
        {"gop_size": 0}, {"quantizer": 0}, {"quantizer": 100},
        {"compression_level": 0}, {"compression_level": 10},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CodecConfig(**kwargs)


class TestStructure:
    def test_gop_pattern(self, slow_bitstream):
        for frame in slow_bitstream:
            expected = (FrameType.I if frame.index % 30 == 0
                        else FrameType.P)
            assert frame.frame_type is expected

    def test_positions_and_gop_indices(self, slow_bitstream):
        frame = slow_bitstream.frames[31]
        assert frame.gop_index == 1
        assert frame.position_in_gop == 1

    def test_slow_motion_size_asymmetry(self, slow_bitstream):
        """The property Section 4.2.1 leans on: slow-motion I-frames are
        much larger than P-frames."""
        summary = slow_bitstream.size_summary()
        assert summary["mean_i_bytes"] > 5 * summary["mean_p_bytes"]

    def test_fast_motion_p_frames_large(self, fast_bitstream, slow_bitstream):
        """Fast-motion P-frames carry real content (Section 6.2)."""
        fast_p = fast_bitstream.size_summary()["mean_p_bytes"]
        slow_p = slow_bitstream.size_summary()["mean_p_bytes"]
        assert fast_p > 5 * slow_p

    def test_intra_fallback_caps_p_frames(self, fast_bitstream):
        """P-frames never cost much more than an intra frame (the
        per-frame intra fallback)."""
        summary = fast_bitstream.size_summary()
        assert summary["mean_p_bytes"] <= 1.6 * summary["mean_i_bytes"]


class TestRoundtrip:
    def test_clean_decode_quality(self, slow_clip, slow_bitstream):
        decoded = decode_bitstream(slow_bitstream)
        assert sequence_psnr(slow_clip, decoded) > 32.0

    def test_clean_decode_quality_fast(self, fast_clip, fast_bitstream):
        decoded = decode_bitstream(fast_bitstream)
        assert sequence_psnr(fast_clip, decoded) > 32.0

    def test_decode_is_deterministic(self, slow_bitstream):
        a = decode_bitstream(slow_bitstream)
        b = decode_bitstream(slow_bitstream)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.y, fb.y)

    def test_quantizer_tradeoff(self):
        clip = generate_clip("medium", 12, seed=5)
        fine = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=4))
        coarse = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=24))
        assert coarse.total_bytes < fine.total_bytes
        psnr_fine = sequence_psnr(clip, decode_bitstream(fine))
        psnr_coarse = sequence_psnr(clip, decode_bitstream(coarse))
        assert psnr_fine > psnr_coarse


class TestDecoderErrors:
    def test_p_frame_before_reference(self, slow_bitstream):
        decoder = Decoder(CodecConfig(gop_size=30, quantizer=8))
        # Find a residual-coded P-frame (magic 'P'), not an intra-fallback.
        p_frame = next(
            f for f in slow_bitstream
            if f.frame_type is FrameType.P and f.payload[0] == 0x50
        )
        with pytest.raises(ValueError):
            decoder.decode_frame(p_frame)

    def test_corrupt_magic_rejected(self, slow_bitstream):
        import dataclasses
        decoder = Decoder(CodecConfig(gop_size=30, quantizer=8))
        first = slow_bitstream.frames[0]
        corrupt = dataclasses.replace(
            first, payload=b"\xff" + first.payload[1:]
        )
        with pytest.raises(ValueError):
            decoder.decode_frame(corrupt)


class TestEncoderState:
    def test_first_frame_forced_intra(self, slow_clip):
        encoder = Encoder(CodecConfig(gop_size=30, quantizer=8))
        first = encoder.encode_frame(slow_clip[0])
        assert first.frame_type is FrameType.I

    def test_indices_increment(self, slow_clip):
        encoder = Encoder(CodecConfig(gop_size=30, quantizer=8))
        frames = [encoder.encode_frame(f) for f in slow_clip.frames[:5]]
        assert [f.index for f in frames] == [0, 1, 2, 3, 4]

    def test_decoder_mirrors_encoder_reconstruction(self, slow_clip):
        """Closed loop: feeding the decoder the encoder's output reproduces
        the encoder's own reference, so no drift accumulates."""
        config = CodecConfig(gop_size=30, quantizer=8)
        encoder = Encoder(config)
        decoder = Decoder(config)
        for frame in slow_clip.frames[:10]:
            encoded = encoder.encode_frame(frame)
            decoded = decoder.decode_frame(encoded)
        assert np.array_equal(decoded.y, encoder._reference.y)
