"""Scenario calibration and the per-policy service assembly."""

import pytest

from repro.core import (
    EncryptionPolicy,
    calibrate_scenario,
    standard_policies,
)
from repro.core.distortion import DistortionPolynomial
from repro.crypto.timing import reference_cipher_cost

COSTS = {name: reference_cipher_cost(name)
         for name in ("AES128", "AES256", "3DES")}
POLY = DistortionPolynomial(coefficients=(0.0, 40.0, 4.0), cap=8000.0)


@pytest.fixture(scope="module")
def scenario(slow_bitstream):
    return calibrate_scenario(
        slow_bitstream,
        cipher_costs=COSTS,
        polynomial=POLY,
        sensitivity_fraction=0.55,
    )


class TestCalibration:
    def test_packet_structure(self, scenario):
        assert scenario.n_i_packets >= 2      # I-frames fragment
        assert scenario.n_p_packets == 1      # slow P-frames do not
        assert 0.0 < scenario.p_i < 0.5
        assert scenario.i_packet_payload_bytes > scenario.p_packet_payload_bytes

    def test_gop_metadata(self, scenario, slow_bitstream):
        assert scenario.gop_size == 30
        assert scenario.n_gops == slow_bitstream.gop_layout.n_gops(
            len(slow_bitstream)
        )

    def test_link_rates(self, scenario):
        assert 0.5 < scenario.p_s <= 1.0
        assert scenario.p_delivery >= scenario.p_s
        assert scenario.p_delivery == pytest.approx(1.0, abs=1e-4)

    def test_transmission_atoms_ordered(self, scenario):
        assert scenario.tx_atom_i.mu > scenario.tx_atom_p.mu

    def test_mmpp_burst_structure(self, scenario):
        assert scenario.mmpp.lambda1 > scenario.mmpp.lambda2


class TestServiceAssembly:
    def test_policy_mean_ordering(self, scenario):
        """Mean service time: none < I-only < P-only < all (slow motion:
        most packets are P packets... but each I packet is larger).
        What must hold universally: none is cheapest, all is priciest."""
        policies = standard_policies("AES256")
        means = {name: scenario.service_model(p).mean
                 for name, p in policies.items()}
        assert means["none"] < means["I"] < means["all"]
        assert means["none"] < means["P"] <= means["all"]

    def test_3des_more_expensive_than_aes(self, scenario):
        aes = scenario.service_model(EncryptionPolicy("all", "AES256"))
        des3 = scenario.service_model(EncryptionPolicy("all", "3DES"))
        assert des3.mean > aes.mean

    def test_none_has_no_encryption_mass(self, scenario):
        model = scenario.service_model(EncryptionPolicy("none", None))
        assert model.encryption.mean == 0.0

    def test_unknown_algorithm_rejected(self, scenario):
        with pytest.raises(ValueError):
            scenario.encryption_atoms("RC4")

    def test_encryption_atoms_scale_with_payload(self, scenario):
        atom_i, atom_p = scenario.encryption_atoms("AES256")
        assert atom_i.mu > atom_p.mu

    def test_with_delivery_rate(self, scenario):
        modified = scenario.with_delivery_rate(0.9)
        assert modified.p_delivery == 0.9
        assert modified.p_s == scenario.p_s


class TestFrameSuccessIntegration:
    def test_model_uses_delivery_rate(self, scenario):
        lossy = scenario.with_delivery_rate(0.8)
        model = lossy.frame_success_model()
        assert model.p_s == 0.8
