"""The 2-MMPP/G/1 solver: P-K anchor, simulation cross-validation, eq. 19."""

import numpy as np
import pytest

from repro.core.mmpp import MMPP2
from repro.core.queueing import (
    compute_g_matrix,
    idle_phase_vector,
    mean_waiting_time,
    pollaczek_khinchine,
    simulate_mmpp_g1,
    solve_mmpp_g1,
)
from repro.core.service import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    ServiceTimeModel,
    TransmissionComponent,
)


def _service():
    encryption = EncryptionComponent(
        0.1, 0.0, GaussianAtom(0.5e-3, 0.05e-3), GaussianAtom(0.1e-3, 0.01e-3)
    )
    backoff = BackoffComponent(p_s=0.9, lambda_b=1 / 0.3e-3)
    transmission = TransmissionComponent(
        0.1, GaussianAtom(0.9e-3, 0.05e-3), GaussianAtom(0.3e-3, 0.03e-3)
    )
    return ServiceTimeModel(encryption, backoff, transmission)


@pytest.fixture(scope="module")
def service():
    return _service()


class TestPollaczekKhinchine:
    def test_reduction_to_mg1(self, service):
        """When lambda1 = lambda2 the MMPP is Poisson and eq. (19) must
        equal P-K exactly (the paper's formula passes this anchor)."""
        lam = 0.5 / service.mean
        mmpp = MMPP2(p1=5.0, p2=3.0, lambda1=lam, lambda2=lam)
        per_packet, virtual, _ = mean_waiting_time(mmpp, service)
        expected = pollaczek_khinchine(lam, service.mean,
                                       service.second_moment)
        assert per_packet == pytest.approx(expected, rel=1e-9)
        assert virtual == pytest.approx(expected, rel=1e-9)

    def test_pk_unstable_rejected(self):
        with pytest.raises(ValueError):
            pollaczek_khinchine(1000.0, 1e-2, 1e-4)


class TestGMatrix:
    def test_stochastic_at_fixed_point(self, service):
        mmpp = MMPP2(50.0, 5.0, 3000.0, 100.0)
        g = compute_g_matrix(mmpp, service)
        assert np.allclose(g.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(g >= -1e-12)

    def test_satisfies_fixed_point_equation(self, service):
        mmpp = MMPP2(50.0, 5.0, 3000.0, 100.0)
        g = compute_g_matrix(mmpp, service)
        m = mmpp.generator - mmpp.rate_matrix + mmpp.rate_matrix @ g
        assert np.allclose(service.matrix_lst(m), g, atol=1e-9)


class TestIdleVector:
    def test_sums_to_idle_probability(self, service):
        mmpp = MMPP2(50.0, 5.0, 3000.0, 100.0)
        g = compute_g_matrix(mmpp, service)
        y = idle_phase_vector(mmpp, service, g)
        rho = mmpp.mean_rate * service.mean
        assert y.sum() == pytest.approx(1.0 - rho, rel=1e-9)
        assert np.all(y >= 0)

    def test_matches_simulated_idle_time(self, service):
        """The y vector is the time-stationary empty-phase probability;
        cross-check total idle probability against simulation."""
        mmpp = MMPP2(200.0, 20.0, 1500.0, 300.0)
        g = compute_g_matrix(mmpp, service)
        y = idle_phase_vector(mmpp, service, g)
        sim = simulate_mmpp_g1(mmpp, service, n_packets=200_000, seed=4)
        # Busy fraction ~ rho; idle ~ 1 - rho = y.e
        rho = mmpp.mean_rate * service.mean
        assert y.sum() == pytest.approx(1 - rho, rel=1e-9)


class TestAgainstSimulation:
    @pytest.mark.parametrize("params", [
        (50.0, 5.0, 3000.0, 100.0),
        (200.0, 20.0, 1500.0, 300.0),
        (20.0, 20.0, 900.0, 900.0),
    ])
    def test_mean_waiting_time(self, service, params):
        mmpp = MMPP2(*params)
        solution = solve_mmpp_g1(mmpp, service)
        simulated = simulate_mmpp_g1(mmpp, service,
                                     n_packets=400_000, seed=9)
        assert solution.mean_waiting_time_s == pytest.approx(
            simulated.mean_waiting_time_s, rel=0.08
        )

    def test_sojourn_is_wait_plus_service(self, service):
        mmpp = MMPP2(50.0, 5.0, 3000.0, 100.0)
        solution = solve_mmpp_g1(mmpp, service)
        assert solution.mean_sojourn_time_s == pytest.approx(
            solution.mean_waiting_time_s + service.mean
        )

    def test_virtual_below_customer_for_bursty(self, service):
        """Bursty arrivals sample the workload at bad times, so the
        per-packet wait exceeds the time-average workload."""
        mmpp = MMPP2(50.0, 5.0, 3000.0, 100.0)
        solution = solve_mmpp_g1(mmpp, service)
        assert (solution.mean_waiting_time_s
                > solution.mean_virtual_waiting_time_s)


class TestStability:
    def test_unstable_queue_rejected(self, service):
        rate = 2.0 / service.mean
        mmpp = MMPP2(5.0, 5.0, rate, rate)
        with pytest.raises(ValueError):
            mean_waiting_time(mmpp, service)

    def test_heavy_traffic_blowup(self, service):
        """E[W] grows as rho -> 1 (sanity on the 1/(1-rho) factor)."""
        waits = []
        for load in (0.3, 0.6, 0.9):
            lam = load / service.mean
            mmpp = MMPP2(5.0, 3.0, lam, lam)
            waits.append(mean_waiting_time(mmpp, service)[0])
        assert waits == sorted(waits)
        assert waits[2] > 5 * waits[0]


class TestSimulator:
    def test_deterministic_given_seed(self, service):
        mmpp = MMPP2(50.0, 5.0, 3000.0, 100.0)
        a = simulate_mmpp_g1(mmpp, service, n_packets=5000, seed=7)
        b = simulate_mmpp_g1(mmpp, service, n_packets=5000, seed=7)
        assert a.mean_waiting_time_s == b.mean_waiting_time_s

    def test_minimum_packets_enforced(self, service):
        mmpp = MMPP2(50.0, 5.0, 3000.0, 100.0)
        with pytest.raises(ValueError):
            simulate_mmpp_g1(mmpp, service, n_packets=10)
