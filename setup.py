"""Legacy setup shim: the execution environment has no `wheel` package and
no network access, so PEP 517/660 editable installs cannot build; this shim
lets `pip install -e . --no-build-isolation` fall back to `setup.py develop`.
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
