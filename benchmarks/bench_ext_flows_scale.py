#!/usr/bin/env python
"""Scale benchmark: the vector multi-flow engine vs the coroutine kernel.

Sweeps the flow count over 10 / 100 / 1000 / 10000 contending senders
transmitting the same clip, and reports packets scheduled per second
plus the per-flow p99 delay at each point.  The coroutine kernel is
timed alongside up to ``--kernel-max`` flows (default 1000; beyond that
its generator switching makes the comparison pointless), giving the
speedup the ISSUE's acceptance gate reads (>= 20x at 1000 flows).

Results merge into the crypto micro-bench report (``BENCH_crypto.json``
under a ``flows_scale`` section) so ``repro bench trend`` gates the
``*_per_s`` throughput keys against the committed baseline alongside
the cipher numbers; the p99 latency keys ride along un-gated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/crypto_microbench.py
    PYTHONPATH=src python benchmarks/bench_ext_flows_scale.py --check-trend

``--smoke`` is the PR-tier mode: the 10- and 100-flow points only,
plus a differential assertion that the vector engine with oracle
sampling reproduces the kernel's traces bit for bit (writes nothing).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.cli import main as repro_main
from repro.core import standard_policies
from repro.testbed.devices import DEVICES
from repro.testbed.multiflow import (
    _packetize_flows,
    _service_for,
    contention_link,
    run_multiflow,
)
from repro.testbed.transport import UDP_RTP
from repro.testbed.vector_flows import run_vector_flows
from repro.video import CodecConfig, encode_sequence, generate_clip

DEFAULT_FLOWS = (10, 100, 1000, 10000)
SMOKE_FLOWS = (10, 100)
DEFAULT_KERNEL_MAX = 1000
DEFAULT_FRAMES = 30
DEFAULT_BASELINE = Path("benchmarks/results/bench_baseline.json")
SEED = 2013


def _scenario(frames: int):
    clip = generate_clip("slow", frames, seed=1)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))
    policy = standard_policies("AES256")["I"]
    device = DEVICES["samsung-s2"]
    return bitstream, policy, device


def _vector_inputs(bitstream, policy, device, n_flows):
    link = contention_link(n_flows)
    service = _service_for(policy, device, link, UDP_RTP)
    flow_streams, flow_arrivals = _packetize_flows(
        [bitstream] * n_flows, mtu=1460,
        disk_read_rate_pkts_per_s=600.0, stagger_s=0.0)
    return service, flow_streams, flow_arrivals


def _time_vector(bitstream, policy, device, n_flows):
    service, flow_streams, flow_arrivals = _vector_inputs(
        bitstream, policy, device, n_flows)
    start = time.perf_counter()
    vrun = run_vector_flows(flow_streams, flow_arrivals, service=service,
                            seed=SEED)
    elapsed = time.perf_counter() - start
    return vrun, elapsed


def _time_kernel(bitstream, policy, device, n_flows):
    start = time.perf_counter()
    result = run_multiflow(bitstream, flows=n_flows, policy=policy,
                           device=device, seed=SEED)
    elapsed = time.perf_counter() - start
    total = sum(len(run.packets) for run in result.flows)
    return total, elapsed


def _bench_point(bitstream, policy, device, n_flows, kernel_max):
    vrun, vector_s = _time_vector(bitstream, policy, device, n_flows)
    total = vrun.total_packets
    # Saturated points (the queue grows for the whole run) have no
    # steady-state latency: report stable=false and an explicit inf
    # instead of an astronomical backlog artifact.
    stable = not vrun.saturated
    if stable:
        rows = vrun.delay_percentiles_ms()
        p99 = float(np.mean([row["p99"] for row in rows
                             if row is not None]))
    else:
        p99 = float("inf")
    point = {
        "total_packets": total,
        "vector_packets_per_s": total / vector_s,
        "vector_wall_s": vector_s,
        "stable": stable,
        "drain_factor": vrun.drain_factor,
        "p99_delay_ms": p99,
    }
    if n_flows <= kernel_max:
        k_total, kernel_s = _time_kernel(bitstream, policy, device, n_flows)
        assert k_total == total, "engines disagree on the packet count"
        point["kernel_packets_per_s"] = total / kernel_s
        point["kernel_wall_s"] = kernel_s
        point["speedup"] = kernel_s / vector_s
    return point


def _smoke(frames: int) -> None:
    """PR-tier check: small curve plus trace-level differential."""
    bitstream, policy, device = _scenario(frames)
    for n_flows in SMOKE_FLOWS:
        kernel = run_multiflow(bitstream, flows=n_flows, policy=policy,
                               device=device, seed=SEED)
        vector = run_multiflow(bitstream, flows=n_flows, policy=policy,
                               device=device, seed=SEED, engine="vector",
                               sampling="oracle")
        kernel_rows = [
            (t.sequence_number, t.enqueue_time_s, t.service_start_s,
             t.transmit_time_s, t.departure_time_s, t.delivered, t.attempts)
            for run in kernel.flows for t in run.trace]
        vector_rows = [
            (t.sequence_number, t.enqueue_time_s, t.service_start_s,
             t.transmit_time_s, t.departure_time_s, t.delivered, t.attempts)
            for run in vector.flows for t in run.trace]
        assert kernel_rows == vector_rows, (
            f"vector engine diverged from the kernel at {n_flows} flows")
        point = _bench_point(bitstream, policy, device, n_flows,
                             kernel_max=max(SMOKE_FLOWS))
        print(f"{n_flows:5d} flows: oracle==kernel over"
              f" {len(kernel_rows)} traces, vector"
              f" {point['vector_packets_per_s'] / 1e3:8.1f} kpkt/s,"
              f" speedup {point['speedup']:.1f}x")
    print("smoke: vector engine matches the coroutine kernel")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flows", type=int, nargs="+",
                        default=list(DEFAULT_FLOWS),
                        help="flow counts to sweep (default 10 100 1000"
                             " 10000)")
    parser.add_argument("--frames", type=int, default=DEFAULT_FRAMES,
                        help=f"clip length in frames (default"
                             f" {DEFAULT_FRAMES})")
    parser.add_argument("--kernel-max", type=int,
                        default=DEFAULT_KERNEL_MAX,
                        help="largest flow count also timed on the"
                             " coroutine kernel (default 1000)")
    parser.add_argument("--smoke", action="store_true",
                        help="PR-tier mode: 10/100 flows plus an exact"
                             " vector-vs-kernel differential; writes no"
                             " report")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_crypto.json"),
                        help="report to merge the flows_scale section"
                             " into (default ./BENCH_crypto.json)")
    parser.add_argument("--check-trend", action="store_true",
                        help="after writing, run the regression gate"
                             " against the committed baseline")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline for --check-trend (default"
                             f" {DEFAULT_BASELINE})")
    args = parser.parse_args()
    if args.frames < 6:
        parser.error("--frames must be at least 6")
    if any(n < 1 for n in args.flows):
        parser.error("--flows entries must be positive")

    if args.smoke:
        _smoke(args.frames)
        return

    bitstream, policy, device = _scenario(args.frames)
    curve = {}
    for n_flows in args.flows:
        point = _bench_point(bitstream, policy, device, n_flows,
                             args.kernel_max)
        curve[str(n_flows)] = point
        p99_text = (f"{point['p99_delay_ms']:10.2f} ms"
                    if point["stable"] else "       inf (saturated)")
        line = (f"{n_flows:6d} flows: vector"
                f" {point['vector_packets_per_s'] / 1e3:9.1f} kpkt/s,"
                f" p99 {p99_text}")
        if "speedup" in point:
            line += (f", kernel"
                     f" {point['kernel_packets_per_s'] / 1e3:7.1f} kpkt/s,"
                     f" speedup {point['speedup']:7.1f}x")
        print(line)
    print("target : >= 20x over the kernel at 1000 flows")

    report = {}
    if args.out.exists():
        report = json.loads(args.out.read_text())
    report["flows_scale"] = {
        "frames": args.frames,
        "packets_per_flow": curve[str(args.flows[0])]["total_packets"]
        // args.flows[0],
        "curve": curve,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[saved to {args.out}]")
    if args.check_trend:
        raise SystemExit(repro_main([
            "bench", "trend", "--current", str(args.out),
            "--baseline", str(args.baseline),
        ]))


if __name__ == "__main__":
    main()
