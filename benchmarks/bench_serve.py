#!/usr/bin/env python
"""Service benchmark: cold model sweeps vs memoized answers over TCP.

Stands up an in-process ``AdvisorServer`` over a throwaway memo cache
and measures requests per second through the full wire path (framing,
admission, memo lookup) in two regimes:

* **cold** — every request has a distinct canonical key, so each one
  runs the full calibrate-and-sweep pipeline before answering;
* **warm** — the same requests replayed, so every answer is a memo hit
  and the daemon does zero model sweeps.

Results merge into the crypto micro-bench report (``BENCH_crypto.json``
under a ``serve`` section) so ``repro bench trend`` gates the
``*_per_s`` throughput keys against the committed baseline; the
speedup ratio rides along un-gated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/crypto_microbench.py
    PYTHONPATH=src python benchmarks/bench_serve.py --check-trend

``--smoke`` is the PR-tier mode: one cold and several warm requests,
asserting the warm path is byte-identical to the cold answer and did
zero additional evaluations (writes nothing).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.cli import main as repro_main
from repro.core.advisor import encode_choice
from repro.testbed.advisor_service import (
    AdvisorClient,
    ServiceRequest,
    evaluate_request,
)
from repro.testbed.server import AdvisorServer, ServerThread

DEFAULT_BASELINE = Path("benchmarks/results/bench_baseline.json")
FRAMES, GOP = 12, 6          # the fast cold path; the model is exact
DEFAULT_COLD = 4             # distinct sessions in the cold burst
DEFAULT_WARM_ROUNDS = 25     # replays of the burst for the warm rate
SEED0 = 500


def _requests(count: int):
    return [ServiceRequest(frames=FRAMES, gop=GOP, seed=SEED0 + i)
            for i in range(count)]


def _smoke() -> None:
    """PR-tier check: warm answers are memo hits, byte for byte."""
    request = _requests(1)[0]
    local = encode_choice(evaluate_request(request))
    with tempfile.TemporaryDirectory() as tmp:
        server = AdvisorServer(Path(tmp) / "memo")
        with ServerThread(server=server) as served, \
                AdvisorClient(served.host, served.port) as client:
            cold = client.recommend(request)
            warms = [client.recommend(request) for _ in range(5)]
            stats = client.stats()
    assert cold.source == "cold", cold.source
    assert cold.data == local, "served answer diverged from local sweep"
    for warm in warms:
        assert warm.source == "memo", warm.source
        assert warm.data == cold.data, "memo answer not byte-identical"
    assert stats["evaluations"] == 1, stats
    assert stats["memo"]["hits"] == len(warms), stats
    print(f"smoke: 1 cold + {len(warms)} warm requests, 1 evaluation,"
          f" all answers byte-identical to the local sweep")


def _bench(cold_count: int, warm_rounds: int) -> dict:
    requests = _requests(cold_count)
    with tempfile.TemporaryDirectory() as tmp:
        server = AdvisorServer(Path(tmp) / "memo")
        with ServerThread(server=server) as served, \
                AdvisorClient(served.host, served.port) as client:
            start = time.perf_counter()
            for request in requests:
                answer = client.recommend(request)
                assert answer.source == "cold", answer.source
            cold_s = time.perf_counter() - start

            start = time.perf_counter()
            warm_calls = 0
            for _ in range(warm_rounds):
                for request in requests:
                    answer = client.recommend(request)
                    assert answer.source == "memo", answer.source
                    warm_calls += 1
            warm_s = time.perf_counter() - start
            stats = client.stats()

    assert stats["evaluations"] == cold_count, stats
    cold_rate = cold_count / cold_s
    warm_rate = warm_calls / warm_s
    return {
        "frames": FRAMES,
        "cold_requests": cold_count,
        "warm_requests": warm_calls,
        "cold_requests_per_s": cold_rate,
        "warm_requests_per_s": warm_rate,
        "warm_over_cold_speedup": warm_rate / cold_rate,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cold", type=int, default=DEFAULT_COLD,
                        help=f"distinct sessions in the cold burst"
                             f" (default {DEFAULT_COLD})")
    parser.add_argument("--warm-rounds", type=int,
                        default=DEFAULT_WARM_ROUNDS,
                        help=f"replays of the burst for the warm rate"
                             f" (default {DEFAULT_WARM_ROUNDS})")
    parser.add_argument("--smoke", action="store_true",
                        help="PR-tier mode: assert memo correctness and"
                             " byte-identity; writes no report")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_crypto.json"),
                        help="report to merge the serve section into"
                             " (default ./BENCH_crypto.json)")
    parser.add_argument("--check-trend", action="store_true",
                        help="after writing, run the regression gate"
                             " against the committed baseline")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline for --check-trend (default"
                             f" {DEFAULT_BASELINE})")
    args = parser.parse_args()
    if args.cold < 1:
        parser.error("--cold must be positive")
    if args.warm_rounds < 1:
        parser.error("--warm-rounds must be positive")

    if args.smoke:
        _smoke()
        return

    section = _bench(args.cold, args.warm_rounds)
    print(f"cold : {section['cold_requests_per_s']:10.2f} req/s"
          f"  ({section['cold_requests']} full sweeps)")
    print(f"warm : {section['warm_requests_per_s']:10.2f} req/s"
          f"  ({section['warm_requests']} memo hits)")
    print(f"ratio: {section['warm_over_cold_speedup']:10.1f}x")

    report = {}
    if args.out.exists():
        report = json.loads(args.out.read_text())
    report["serve"] = section
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[saved to {args.out}]")
    if args.check_trend:
        raise SystemExit(repro_main([
            "bench", "trend", "--current", str(args.out),
            "--baseline", str(args.baseline),
        ]))


if __name__ == "__main__":
    main()
