"""Extension bench: adaptive per-window policies on mixed-motion content.

Fig. 1's workflow classifies motion "in different parts of the video
clip", but the paper's evaluation applies one static policy per flow.
On content that alternates slow and fast segments, any static choice is
wrong somewhere: I-only leaks the fast segments; always-I+20%P pays the
mixture price on the slow segments too.  The adaptive controller
(repro.core.adaptive) classifies each GOP-aligned window and encrypts
just enough.

Shape asserted: adaptive is (a) as confidential as the static mixture
(eavesdropper MOS ~ 1) and (b) cheaper than it in delay, while (c) the
cheap static policy (I-only) fails confidentiality on this content.
"""

from conftest import REPEATS, get_sensitivity, publish

from repro.analysis import render_table
from repro.core import EncryptionPolicy, standard_policies
from repro.core.adaptive import plan_adaptive_policy
from repro.testbed import DEVICES, SenderSimulator
from repro.video import (
    CodecConfig,
    conceal_decode,
    encode_sequence,
    frames_decodable,
    sequence_mos,
    sequence_psnr,
)
from repro.video.synth import generate_mixed_clip

SEGMENTS = [("slow", 60), ("fast", 60), ("slow", 60), ("fast", 60)]


def build_report() -> str:
    clip = generate_mixed_clip(SEGMENTS, seed=99)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=30, quantizer=8))
    simulator = SenderSimulator(bitstream, device=DEVICES["samsung-s2"])
    sensitivity = 0.9  # conservative: the fast segments set the bar

    adaptive = plan_adaptive_policy(clip, window_frames=30)
    contenders = {
        "static I-only": standard_policies("AES256")["I"],
        "static I+20%P": EncryptionPolicy("i_plus_p_fraction", "AES256",
                                          fraction=0.2),
        "adaptive": adaptive,
        "static all": standard_policies("AES256")["all"],
    }

    rows = []
    metrics = {}
    for name, policy in contenders.items():
        run = simulator.run(policy, seed=0)
        decodable = frames_decodable(
            run.packets, run.usable_by_eavesdropper, sensitivity
        )
        video = conceal_decode(bitstream, decodable,
                               mode="best_effort").sequence
        psnr = sequence_psnr(clip, video)
        mos = sequence_mos(clip, video)
        metrics[name] = (run.mean_delay_ms, psnr, mos)
        rows.append([name, f"{run.mean_delay_ms:.2f}", f"{psnr:.2f}",
                     f"{mos:.2f}"])

    # (a) adaptive obfuscates like the static mixture...
    assert metrics["adaptive"][2] < 1.7
    # (b) ...at no higher delay.  The saving is modest on this content:
    # slow segments have few, tiny P packets, so skipping their
    # encryption buys little — an honest finding about when adaptivity
    # pays (it pays where the *relaxed* segments carry real P volume).
    assert metrics["adaptive"][0] <= metrics["static I+20%P"][0] * 1.02
    # (c) ...while static I-only leaks the fast segments.
    assert metrics["static I-only"][2] > metrics["adaptive"][2] + 0.5
    rows.append([
        "window plan", "", "",
        "+".join(f"{cls}x{n}" for cls, n in adaptive.summary()),
    ])
    return render_table(
        ["policy", "delay (ms)", "eaves PSNR (dB)", "eaves MOS"],
        rows,
        title="Extension — adaptive per-window policies on mixed content"
              " (slow/fast alternating, AES256, Samsung S-II)",
    )


def test_ext_adaptive(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ext_adaptive", text)
