"""Extension bench: the cost of always encrypting the audio flow.

Section 3 defers audio with "we expect that the volume of audio content
is going to be much lower than video and thus, all of it can be
encrypted".  This bench prices that decision on both devices and all
three ciphers, and separates the two cost drivers: payload bytes
(negligible, as the paper expects) vs per-segment setup at the audio
packet rate (the real cost — 5-7% sender load on GPAC-era crypto).
Finding: the paper's expectation holds under AES, but NOT under 3DES,
whose tripled per-segment setup pushes audio encryption to 12-15% load —
a cipher-choice consequence the paper's video-only analysis never sees.
"""

from conftest import publish

from repro.analysis import render_table
from repro.testbed import DEVICES
from repro.testbed.audio import AudioConfig, audio_encryption_overhead


def build_report() -> str:
    rows = []
    for device_key, device in DEVICES.items():
        for algorithm in ("AES128", "AES256", "3DES"):
            overhead = audio_encryption_overhead(device,
                                                 algorithm=algorithm)
            rows.append([
                device.name, algorithm,
                f"{overhead.payload_bytes}",
                f"{overhead.queue_load_increment:.1%}",
                f"{overhead.added_power_w * 1e3:.0f}",
                "yes" if overhead.affordable else "no",
            ])
            if algorithm.startswith("AES"):
                assert overhead.affordable, (
                    f"audio encryption unaffordable on"
                    f" {device.name}/{algorithm}"
                )
            else:
                # The 3DES finding: per-segment setup x3 makes even the
                # tiny audio flow a first-order cost.
                assert not overhead.affordable

    # Driver separation: doubling the bitrate changes costs far less than
    # doubling the packet rate (halving the frame duration).
    base = audio_encryption_overhead(DEVICES["samsung-s2"])
    double_bitrate = audio_encryption_overhead(
        DEVICES["samsung-s2"], audio=AudioConfig(bitrate_bps=192_000)
    )
    double_rate = audio_encryption_overhead(
        DEVICES["samsung-s2"],
        audio=AudioConfig(frame_duration_s=1024.0 / 96_000.0),
    )
    bitrate_delta = (double_bitrate.queue_load_increment
                     - base.queue_load_increment)
    rate_delta = double_rate.queue_load_increment - base.queue_load_increment
    assert rate_delta > 3 * bitrate_delta
    rows.append(["driver check", "", "",
                 f"2x bitrate: +{bitrate_delta:.2%}",
                 f"2x pkt rate: +{rate_delta:.2%}", ""])
    return render_table(
        ["device", "cipher", "payload (B)", "sender load", "power (mW)",
         "affordable"],
        rows,
        title="Extension — always-encrypt-the-audio, priced"
              " (96 kb/s AAC-like flow)",
    )


def test_ext_audio(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ext_audio", text)
