"""Figs. 10 & 11: average power during the transfer, per device.

Paper's panels: for each device, motion level and cipher (AES256, 3DES),
bar groups over GOP size {30, 50} and the four encryption levels.
Shape to reproduce: none < I < P <= all within every group; the
unencrypted stream is cheapest because no CPU cycles are spent on
crypto; P-only costs nearly as much as all (P bytes dominate); and the
Samsung's relative increase is steeper than the HTC's (the HTC has a
higher idle baseline — paper: 140% vs 50% worst-case increases).
"""

from functools import lru_cache

from conftest import REPEATS, get_bitstream, get_clip, get_sensitivity, publish

from repro.analysis import render_table
from repro.core import standard_policies
from repro.testbed import DEVICES, ExperimentConfig, run_repeated

POLICY_ORDER = ("none", "I", "P", "all")


@lru_cache(maxsize=None)
def power_w(device_key: str, algorithm: str, motion: str, gop_size: int,
            policy_name: str) -> float:
    policy = standard_policies(algorithm)[policy_name]
    config = ExperimentConfig(
        policy=policy,
        device=DEVICES[device_key],
        sensitivity_fraction=get_sensitivity(motion),
        decode_video=False,
    )
    result = run_repeated(get_clip(motion), get_bitstream(motion, gop_size),
                          config, repeats=REPEATS)
    return result.power_w.mean


def build_figure(device_key: str, figure_name: str) -> str:
    rows = []
    for motion in ("slow", "fast"):
        for algorithm in ("AES256", "3DES"):
            for gop_size in (30, 50):
                values = {
                    name: power_w(device_key, algorithm, motion, gop_size,
                                  name)
                    for name in POLICY_ORDER
                }
                increase = 100.0 * (values["all"] / values["none"] - 1.0)
                for name in POLICY_ORDER:
                    rows.append([
                        motion, algorithm, gop_size, name,
                        f"{values[name]:.3f}",
                        f"+{increase:.0f}%" if name == "all" else "",
                    ])
                assert (values["none"] < values["I"] < values["P"]
                        <= values["all"] * 1.001), (
                    f"power ordering broken in {motion}/{algorithm}/{gop_size}"
                )
    return render_table(
        ["motion", "cipher", "GOP", "encryption level", "power (W)",
         "all-vs-none"],
        rows,
        title=f"{figure_name} — power consumption"
              f" ({DEVICES[device_key].name})",
    )


def test_fig10_power_samsung(benchmark):
    text = benchmark.pedantic(
        build_figure, args=("samsung-s2", "Fig. 10"), rounds=1, iterations=1
    )
    publish("fig10_power_samsung", text)


def test_fig11_power_htc(benchmark):
    text = benchmark.pedantic(
        build_figure, args=("htc-amaze", "Fig. 11"), rounds=1, iterations=1
    )
    publish("fig11_power_htc", text)


def test_samsung_increase_steeper_than_htc(benchmark):
    """The relative power increase (all vs none) is larger on the Samsung
    (paper: up to 140% vs up to 50%)."""
    def compare():
        def increase(device_key):
            none = power_w(device_key, "3DES", "fast", 30, "none")
            full = power_w(device_key, "3DES", "fast", 30, "all")
            return 100.0 * (full / none - 1.0)
        samsung = increase("samsung-s2")
        htc = increase("htc-amaze")
        assert samsung > htc
        return samsung, htc
    samsung_pct, htc_pct = benchmark.pedantic(compare, rounds=1,
                                              iterations=1)
    publish(
        "fig10_11_increase_comparison",
        "Relative power increase, all-encrypted vs none"
        " (3DES, fast, GOP=30):\n"
        f"  Samsung S-II: +{samsung_pct:.0f}%   (paper: up to +140%)\n"
        f"  HTC Amaze 4G: +{htc_pct:.0f}%   (paper: up to +50%)",
    )
