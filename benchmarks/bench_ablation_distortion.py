"""Ablations on the distortion model (DESIGN.md Section 5).

1. Case-1 GOP distortion: our polynomial-average form vs the eq. (21)
   linear interpolation (the paper's typesetting of eq. 21 is ambiguous;
   both are implemented).
2. Recovery-fraction term on/off: the pure freeze model (strict
   Section 4.3.2) vs the calibrated best-effort model, judged against
   the actual eavesdropper experiment for the fast/I cell where the
   difference is largest.
3. Concealment policy at the decoder: strict freeze vs best effort,
   measured on the real codec.
"""

from conftest import get_bitstream, get_clip, get_framework, get_sensitivity, publish

from repro.analysis import (
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_reference_distance_distortion,
    render_table,
)
from repro.core import standard_policies
from repro.core.distortion import (
    DistortionModel,
    intra_gop_distortion_linear,
)
from repro.testbed import DEVICES, ExperimentConfig, run_experiment
from repro.video import conceal_decode, frames_decodable, packetize, sequence_psnr


def build_case1_comparison() -> str:
    clip = get_clip("medium")
    curve = measure_reference_distance_distortion(clip, max_distance=30)
    poly = fit_distortion_polynomial(curve,
                                     cap=blank_frame_distortion(clip))
    model = DistortionModel(gop_size=30, n_gops=8, polynomial=poly)
    d_min, d_max = poly(1), poly(29)
    rows = []
    for first_loss in (1, 5, 10, 15, 20, 25, 29):
        polynomial_form = model._intra_distortion(first_loss, 1.0)
        linear_form = intra_gop_distortion_linear(30, first_loss,
                                                  d_min, d_max)
        rows.append([first_loss, f"{polynomial_form:.1f}",
                     f"{linear_form:.1f}"])
    # Both readings agree on monotonicity.
    for column in (1, 2):
        values = [float(r[column]) for r in rows]
        assert values == sorted(values, reverse=True)
    return render_table(
        ["first lost P-frame", "polynomial-average form",
         "eq. (21) linear form"],
        rows,
        title="Distortion ablation — Case-1 GOP distortion,"
              " two readings of eq. (21) (medium motion, G=30)",
    )


def build_recovery_comparison() -> str:
    rows = []
    for motion in ("slow", "fast"):
        framework = get_framework(motion, 30, "samsung-s2")
        scenario = framework.scenario
        policy = standard_policies("AES256")["I"]
        fsm = scenario.frame_success_model()
        p_i = fsm.i_frame_success(policy, eavesdropper=True)
        p_p = fsm.p_frame_success(policy, eavesdropper=True)
        with_recovery = scenario.distortion_model().expected(
            p_i, p_p, baseline_distortion=scenario.baseline_distortion
        ).psnr_db
        freeze_model = DistortionModel(
            gop_size=scenario.gop_size, n_gops=scenario.n_gops,
            polynomial=scenario.polynomial, recovery_fraction=None,
        )
        without = freeze_model.expected(
            p_i, p_p, baseline_distortion=scenario.baseline_distortion
        ).psnr_db
        config = ExperimentConfig(
            policy=policy, device=DEVICES["samsung-s2"],
            sensitivity_fraction=get_sensitivity(motion),
        )
        measured = run_experiment(
            get_clip(motion), get_bitstream(motion, 30), config, seed=0
        ).eavesdropper_psnr_db
        rows.append([motion, f"{without:.1f}", f"{with_recovery:.1f}",
                     f"{measured:.1f}"])
    # For fast motion, the freeze model badly underestimates what the
    # eavesdropper recovers; the recovery term closes most of the gap.
    fast = rows[1]
    freeze_err = abs(float(fast[1]) - float(fast[3]))
    recovery_err = abs(float(fast[2]) - float(fast[3]))
    assert recovery_err < freeze_err
    return render_table(
        ["motion", "freeze model PSNR", "recovery model PSNR",
         "experiment PSNR"],
        rows,
        title="Distortion ablation — recovery-fraction term"
              " (policy I, AES256, eavesdropper)",
    )


def build_concealment_comparison() -> str:
    rows = []
    for motion in ("slow", "fast"):
        clip = get_clip(motion)
        bitstream = get_bitstream(motion, 30)
        packets = packetize(bitstream)
        usable = [p.frame_type.value != "I" for p in packets]
        decodable = frames_decodable(packets, usable,
                                     get_sensitivity(motion))
        strict = conceal_decode(bitstream, decodable, mode="strict")
        best = conceal_decode(bitstream, decodable, mode="best_effort")
        rows.append([
            motion,
            f"{sequence_psnr(clip, strict.sequence):.1f}",
            f"{sequence_psnr(clip, best.sequence):.1f}",
        ])
    return render_table(
        ["motion", "strict freeze PSNR", "best-effort PSNR"],
        rows,
        title="Concealment ablation — decoder policy at the eavesdropper"
              " (all I-frames encrypted)",
    )


def test_ablation_case1_forms(benchmark):
    text = benchmark.pedantic(build_case1_comparison, rounds=1, iterations=1)
    publish("ablation_case1_forms", text)


def test_ablation_recovery_term(benchmark):
    text = benchmark.pedantic(build_recovery_comparison, rounds=1,
                              iterations=1)
    publish("ablation_recovery_term", text)


def test_ablation_concealment(benchmark):
    text = benchmark.pedantic(build_concealment_comparison, rounds=1,
                              iterations=1)
    publish("ablation_concealment", text)
