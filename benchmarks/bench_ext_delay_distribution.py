"""Extension bench: the full waiting-time distribution per policy.

Section 4.2.3's algorithm "computes the distribution function and the
moments of the delay"; the paper only plots means.  This bench goes
further: per policy, the analytic P(W = 0), the 90th/99th percentile
waiting times and the standard deviation, validated against the
discrete-event simulation of the same queue.  Tail latency is what a
real-time uploader actually feels, and it grows much faster with the
encrypted volume than the mean does.
"""

import numpy as np
from conftest import get_bitstream, get_framework, publish

from repro.analysis import render_table
from repro.core import simulate_mmpp_g1, standard_policies, waiting_time_distribution


def build_report() -> str:
    framework = get_framework("fast", 30, "samsung-s2")
    scenario = framework.scenario
    rows = []
    tail_99 = {}
    for name, policy in standard_policies("AES256").items():
        service = scenario.service_model(policy)
        dist = waiting_time_distribution(scenario.mmpp, service)
        sim = simulate_mmpp_g1(scenario.mmpp, service,
                               n_packets=150_000, seed=0)
        q90 = dist.quantile(0.90)
        q99 = dist.quantile(0.99)
        tail_99[name] = q99
        rows.append([
            name,
            f"{dist._mass_at_zero():.3f}",
            f"{dist.mean() * 1e3:.3f}",
            f"{np.sqrt(dist.variance()) * 1e3:.3f}",
            f"{q90 * 1e3:.3f} / {np.quantile(sim.waiting_times, 0.90) * 1e3:.3f}",
            f"{q99 * 1e3:.3f} / {np.quantile(sim.waiting_times, 0.99) * 1e3:.3f}",
        ])
        # Analytic tail must track the simulated tail.
        sim_q99 = float(np.quantile(sim.waiting_times, 0.99))
        assert abs(q99 - sim_q99) <= 0.25 * max(sim_q99, 1e-9)
    # Tail latency ordering mirrors (and amplifies) the mean ordering.
    assert tail_99["none"] < tail_99["I"] < tail_99["all"] * 1.001
    return render_table(
        ["policy", "P(W=0)", "mean W (ms)", "std W (ms)",
         "q90 analytic/sim (ms)", "q99 analytic/sim (ms)"],
        rows,
        title="Extension — waiting-time distribution per policy"
              " (fast motion, AES256, Samsung S-II)",
    )



def test_ext_delay_distribution(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ext_delay_distribution", text)
