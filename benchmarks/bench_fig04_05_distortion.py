"""Figs. 4 & 5: eavesdropper distortion (PSNR) and MOS, analysis vs
experiment, for slow/fast motion and GOP sizes 30/50.

Paper's panels: Fig. 4a-d bar groups over the encryption level
{none, P, I, all} comparing the analytical prediction with the Android
measurement; Fig. 5a-b the corresponding MOS.  The shape to reproduce:

- I-frame encryption degrades slow motion far more than fast motion;
- P-frame encryption degrades fast motion far more than slow motion;
- partially encrypted flows drive MOS to ~1;
- the analysis tracks the experiment.
"""

from functools import lru_cache

import pytest
from conftest import (
    REPEATS,
    get_bitstream,
    get_clip,
    get_framework,
    get_sensitivity,
    publish,
)

from repro.analysis import render_table
from repro.core import standard_policies
from repro.testbed import DEVICES, ExperimentConfig, run_repeated

POLICY_ORDER = ("none", "P", "I", "all")
DEVICE = "samsung-s2"


@lru_cache(maxsize=None)
def run_cell(motion: str, gop_size: int, policy_name: str):
    policy = standard_policies("AES256")[policy_name]
    config = ExperimentConfig(
        policy=policy,
        device=DEVICES[DEVICE],
        sensitivity_fraction=get_sensitivity(motion),
    )
    return run_repeated(get_clip(motion), get_bitstream(motion, gop_size),
                        config, repeats=REPEATS)


def build_fig04() -> str:
    rows = []
    for motion in ("slow", "fast"):
        for gop_size in (30, 50):
            model = get_framework(motion, gop_size, DEVICE)
            analytic = model.predict_many(
                standard_policies("AES256"), engine="vector")
            for name in POLICY_ORDER:
                predicted = analytic[name].eavesdropper_psnr_db
                measured = run_cell(motion, gop_size,
                                    name).eavesdropper_psnr_db
                rows.append([
                    motion, gop_size, name,
                    f"{predicted:.2f}",
                    f"{measured.mean:.2f} +/- {measured.ci_halfwidth:.2f}",
                ])
    text = render_table(
        ["motion", "GOP", "encryption level", "analysis PSNR (dB)",
         "experiment PSNR (dB)"],
        rows,
        title="Fig. 4 — eavesdropper distortion, analysis vs experiment"
              " (AES256, Samsung S-II)",
    )
    _assert_shape(rows)
    return text


def _value(rows, motion, gop, name):
    for row in rows:
        if row[0] == motion and row[1] == gop and row[2] == name:
            return float(row[4].split(" ")[0])
    raise KeyError((motion, gop, name))


def _assert_shape(rows) -> None:
    for gop in (30, 50):
        # I-encryption hurts slow motion more than fast motion.
        assert (_value(rows, "slow", gop, "I")
                < _value(rows, "fast", gop, "I") - 5.0)
        # P-encryption hurts fast motion more than slow motion.
        assert (_value(rows, "fast", gop, "P")
                < _value(rows, "slow", gop, "P") - 5.0)
        for motion in ("slow", "fast"):
            none_psnr = _value(rows, motion, gop, "none")
            all_psnr = _value(rows, motion, gop, "all")
            assert all_psnr < none_psnr - 15.0


def build_fig05() -> str:
    rows = []
    for gop_size in (30, 50):
        for motion in ("slow", "fast"):
            for name in POLICY_ORDER:
                measured = run_cell(motion, gop_size, name).eavesdropper_mos
                rows.append([gop_size, motion, name,
                             f"{measured.mean:.2f}"])
    text = render_table(
        ["GOP", "motion", "encryption level", "eavesdropper MOS"],
        rows,
        title="Fig. 5 — Mean Opinion Score at the eavesdropper",
    )
    # Partially encrypted slow-motion flows are unviewable (MOS ~ 1).
    for gop in (30, 50):
        slow_i = next(float(r[3]) for r in rows
                      if r[0] == gop and r[1] == "slow" and r[2] == "I")
        assert slow_i < 1.5
    return text


def test_fig04_distortion(benchmark):
    text = benchmark.pedantic(build_fig04, rounds=1, iterations=1)
    publish("fig04_distortion", text)


def test_fig05_mos(benchmark):
    text = benchmark.pedantic(build_fig05, rounds=1, iterations=1)
    publish("fig05_mos", text)
