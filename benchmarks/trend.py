#!/usr/bin/env python
"""Bench-regression trend gate: BENCH_crypto.json vs the committed baseline.

Thin wrapper over :mod:`repro.analysis.trend` (also reachable as
``python -m repro.cli bench trend``) so the bench workflow can run it
right after ``crypto_microbench.py`` without setting PYTHONPATH::

    python benchmarks/trend.py
    python benchmarks/trend.py --current BENCH_crypto.json \
        --baseline benchmarks/results/bench_baseline.json --threshold 0.3

Exits non-zero when any throughput metric (``*_per_s``) dropped more than
the threshold below the baseline.  Refresh the baseline deliberately::

    cp BENCH_crypto.json benchmarks/results/bench_baseline.json
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.cli import main
except ImportError:  # benches run from the repo root without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", "trend", *sys.argv[1:]]))
