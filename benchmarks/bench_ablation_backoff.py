"""Ablation: the backoff abstraction of eqs. (6)-(7).

The model approximates the 802.11 backoff as a geometric number of
exponential waits.  The substrate's DCF fixed point gives the actual
binary-exponential-backoff structure: stage-dependent uniform windows.
This bench compares the two backoff-time distributions (moments and the
resulting queueing delay) to quantify what the exponential approximation
costs.
"""

import numpy as np
from conftest import publish

from repro.analysis import render_table
from repro.core import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    MMPP2,
    ServiceTimeModel,
    TransmissionComponent,
    solve_mmpp_g1,
)
from repro.wifi import DcfParameters, solve_dcf


def _sample_dcf_backoff(dcf, params, rng, n: int) -> np.ndarray:
    """Sample true binary-exponential-backoff times: per collision, a
    uniform window that doubles per stage."""
    p = dcf.collision_probability
    slot = params.phy.slot_time_s
    samples = np.zeros(n)
    for i in range(n):
        total = 0.0
        stage = 0
        while rng.random() < p and stage < params.max_backoff_stages:
            stage += 1
            window = params.cw_min * (2 ** min(stage,
                                               params.max_backoff_stages))
            total += rng.integers(0, int(window)) * slot
        samples[i] = total
    return samples


def build_report() -> str:
    params = DcfParameters(n_stations=8)
    dcf = solve_dcf(params)
    model = BackoffComponent(p_s=dcf.packet_success_rate,
                             lambda_b=dcf.backoff_rate_per_s)
    rng = np.random.default_rng(0)
    truth = _sample_dcf_backoff(dcf, params, rng, 200_000)

    rows = [
        ["mean backoff (ms)",
         f"{model.mean * 1e3:.4f}",
         f"{truth.mean() * 1e3:.4f}"],
        ["second moment (ms^2)",
         f"{model.second_moment * 1e6:.4f}",
         f"{np.mean(truth ** 2) * 1e6:.4f}"],
        ["P(no backoff)",
         f"{dcf.packet_success_rate:.3f}",
         f"{np.mean(truth == 0.0):.3f}"],
    ]

    # Effect on the queueing delay under a video-like MMPP.
    mmpp = MMPP2(p1=570.0, p2=1.03, lambda1=4000.0, lambda2=30.0)
    def service(backoff):
        return ServiceTimeModel(
            EncryptionComponent(0.2, 0.0, GaussianAtom(1.0e-3, 1e-4),
                                GaussianAtom(0.2e-3, 2e-5)),
            backoff,
            TransmissionComponent(0.2, GaussianAtom(0.4e-3, 1e-5),
                                  GaussianAtom(0.25e-3, 1e-5)),
        )
    exp_model = solve_mmpp_g1(mmpp, service(model))
    # Moment-matched alternative: same mean, heavier second moment taken
    # from the empirical BEB samples via a two-point fit.
    emp_mean = float(truth.mean())
    matched = BackoffComponent(
        p_s=float(np.mean(truth == 0.0)),
        lambda_b=(1.0 - np.mean(truth == 0.0))
        / max(np.mean(truth == 0.0) * emp_mean, 1e-12),
    )
    beb_model = solve_mmpp_g1(mmpp, service(matched))
    rows.append([
        "queueing delay E[W] (ms)",
        f"{exp_model.mean_waiting_time_s * 1e3:.4f}",
        f"{beb_model.mean_waiting_time_s * 1e3:.4f}",
    ])
    # Finding: the single-rate exponential cannot weight the doubling
    # windows, so its mean sits tens of percent below true BEB — in the
    # right ballpark (same order), but a real approximation cost.  Since
    # backoff is a small slice of the total service time, the impact on
    # E[W] (last row) stays small.
    mean_err = abs(model.mean - truth.mean()) / max(truth.mean(), 1e-12)
    assert mean_err < 0.7, f"backoff mean off by {mean_err:.0%}"
    delay_gap = abs(exp_model.mean_waiting_time_s
                    - beb_model.mean_waiting_time_s)
    assert delay_gap < 0.3 * exp_model.mean_waiting_time_s
    return render_table(
        ["quantity", "eq. (6)-(7) exponential model",
         "binary-exponential backoff (DCF)"],
        rows,
        title="Backoff ablation — geometric-exponential abstraction vs"
              " true BEB (8 contending stations)",
    )


def test_ablation_backoff(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ablation_backoff", text)
