#!/usr/bin/env python
"""Mobility benchmark: the AP-handoff frontier through the cached engine.

Sweeps the mobility profiles (parked / pedestrian / vehicular /
waypoint) against the AP-selection policies (strongest / hysteresis /
history) and reports, per point, the received MOS, mean power, mean
delay, and the handoff loss (gap fraction of the trace plus the
packets that arrived inside connectivity gaps).  Every cell runs
through the cached :class:`~repro.testbed.engine.ExperimentEngine`
twice over a fresh cache: the cold pass must simulate, the warm pass
must replay byte-identical summaries with zero simulations — the same
replay contract the static grid pins, now covering mobility cells and
their v3 cache keys.

Results merge into the crypto micro-bench report (``BENCH_crypto.json``
under a ``mobility`` section) so ``repro bench trend`` gates the
``cold_cells_per_s`` / ``warm_cells_per_s`` throughput keys against the
committed baseline; the frontier metrics ride along un-gated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/crypto_microbench.py
    PYTHONPATH=src python benchmarks/bench_ext_mobility.py --check-trend

``--smoke`` is the PR-tier mode: an exact kernel-vs-vector handoff
differential, the parked-equals-static byte-identity, and a gap-drop
sanity check (writes nothing).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.cli import main as repro_main
from repro.core import standard_policies
from repro.mobility import (
    build_scenario,
    default_field,
    linear_trace,
    run_mobility,
)
from repro.testbed import (
    DEVICES,
    ExperimentConfig,
    ExperimentEngine,
    GridCell,
    ResultCache,
)
from repro.testbed.multiflow import run_multiflow
from repro.video import CodecConfig, encode_sequence, generate_clip

# parked is selection-invariant (one AP, zero handoffs): one point
# anchors the frontier, the moving profiles sweep the selection axis.
FRONTIER = ("parked:strongest",) + tuple(
    f"{profile}:{selection}"
    for profile in ("pedestrian", "vehicular", "waypoint")
    for selection in ("strongest", "hysteresis", "history"))
DEFAULT_FRAMES = 24
DEFAULT_REPEATS = 2
DEFAULT_BASELINE = Path("benchmarks/results/bench_baseline.json")
SEED = 2013
MASTER_SEED = 7


def _scenario(frames: int):
    clip = generate_clip("slow", frames, seed=1)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))
    policy = standard_policies("AES256")["I"]
    device = DEVICES["samsung-s2"]
    return clip, bitstream, policy, device


def _trace_rows(result):
    return [
        (t.sequence_number, t.enqueue_time_s, t.service_start_s,
         t.encryption_time_s, t.transmit_time_s, t.departure_time_s,
         t.encrypted, t.delivered, t.attempts)
        for run in result.flows for t in run.trace]


def _smoke(frames: int) -> None:
    """PR-tier check: handoff differential + parked byte-identity."""
    _, bitstream, policy, device = _scenario(frames)
    kwargs = dict(flows=2, policy=policy, device=device, seed=SEED)

    # 1. Kernel vs vector (oracle sampling) across real handoffs.
    scenario = build_scenario(
        linear_trace(25.0, 4.0, timestep_s=0.1),
        default_field(6, spacing_m=15.0),
        handoff_gap_s=0.15, n_stations=3)
    assert scenario.handoffs >= 2, "smoke scenario must hand off"
    kernel = run_mobility(bitstream, mobility=scenario, **kwargs)
    vector = run_mobility(bitstream, mobility=scenario, engine="vector",
                          sampling="oracle", **kwargs)
    assert _trace_rows(kernel.flows_run) == _trace_rows(vector.flows_run), \
        "mobile vector engine diverged from the kernel"
    assert kernel.gap_packets == vector.gap_packets, "gap accounting split"
    print(f"smoke: oracle==kernel over"
          f" {len(_trace_rows(kernel.flows_run))} traces,"
          f" {scenario.handoffs} handoffs,"
          f" {kernel.gap_packets} gap packets agree")

    # 2. Parked mobility is byte-identical to the static simulator: the
    # retune process spawns no RNG and a single segment never fires.
    parked = run_mobility(bitstream, mobility="parked", **kwargs)
    static = run_multiflow(bitstream, **kwargs)
    assert _trace_rows(parked.flows_run) == _trace_rows(static), \
        "parked mobility diverged from the static multiflow run"
    print(f"smoke: parked==static over"
          f" {len(_trace_rows(static))} traces")

    # 3. Handoff gaps must cost delivery, never help it: the dense
    # corridor run from (1) forces arrivals inside gaps.
    assert kernel.gap_packets > 0, "smoke scenario saw no gap packets"
    assert kernel.delivered_fraction <= parked.delivered_fraction, (
        f"handoffs improved delivery: {kernel.delivered_fraction} >"
        f" {parked.delivered_fraction}")
    print(f"smoke: corridor run drops {kernel.gap_packets} gap packets,"
          f" delivery {kernel.delivered_fraction:.3f} <="
          f" parked {parked.delivered_fraction:.3f}")


def _frontier_cells(repeats: int):
    device = DEVICES["samsung-s2"]
    policy = standard_policies("AES256")["I"]
    return [
        GridCell(
            "mobility", ExperimentConfig(
                policy=policy, device=device, sensitivity_fraction=0.55,
                flows=1, decode_video=True, engine="events",
                mobility=spec),
            repeats)
        for spec in FRONTIER
    ]


def _run_grid(cache, clip, bitstream, cells):
    engine = ExperimentEngine(cache=cache, workers=1,
                              master_seed=MASTER_SEED)
    engine.add_scenario("mobility", clip, bitstream)
    start = time.perf_counter()
    summaries = engine.run_grid(cells)
    elapsed = time.perf_counter() - start
    return summaries, elapsed, engine.simulations_run


PACED_READ_RATE_PKTS_PER_S = 4.0


def _handoff_stats(bitstream, policy, device):
    """Per-spec handoff accounting from one paced vector run each.

    The engine cells burst the clip at the disk rate (everything is on
    the air before the first handoff), so the loss axis comes from a
    run paced slowly enough that the transfer spans the trace and
    arrivals land inside the connectivity gaps.
    """
    stats = {}
    for spec in FRONTIER:
        run = run_mobility(
            bitstream, mobility=spec, flows=1, policy=policy,
            device=device, seed=SEED, engine="vector",
            disk_read_rate_pkts_per_s=PACED_READ_RATE_PKTS_PER_S)
        stats[spec] = {
            "handoffs": run.handoffs,
            "gap_fraction": run.scenario.gap_fraction,
            "gap_packets": run.gap_packets,
            "delivered_fraction": run.delivered_fraction,
        }
    return stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=DEFAULT_FRAMES,
                        help=f"clip length in frames (default"
                             f" {DEFAULT_FRAMES})")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help=f"repeats per frontier cell (default"
                             f" {DEFAULT_REPEATS})")
    parser.add_argument("--smoke", action="store_true",
                        help="PR-tier mode: handoff differential, parked"
                             " byte-identity, gap-drop sanity; writes no"
                             " report")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_crypto.json"),
                        help="report to merge the mobility section into"
                             " (default ./BENCH_crypto.json)")
    parser.add_argument("--check-trend", action="store_true",
                        help="after writing, run the regression gate"
                             " against the committed baseline")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline for --check-trend (default"
                             f" {DEFAULT_BASELINE})")
    args = parser.parse_args()
    if args.frames < 6:
        parser.error("--frames must be at least 6")
    if args.repeats < 1:
        parser.error("--repeats must be positive")

    if args.smoke:
        _smoke(args.frames)
        return

    clip, bitstream, policy, device = _scenario(args.frames)
    cells = _frontier_cells(args.repeats)
    with tempfile.TemporaryDirectory(prefix="repro-bench-mob-") as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        try:
            cold, cold_s, cold_sims = _run_grid(cache, clip, bitstream,
                                                cells)
            warm, warm_s, warm_sims = _run_grid(cache, clip, bitstream,
                                                cells)
        finally:
            cache.close()
    expected = len(cells) * args.repeats
    assert cold_sims == expected, (
        f"cold pass ran {cold_sims} simulations, expected {expected}")
    assert warm_sims == 0, (
        f"warm pass ran {warm_sims} simulations, expected a replay")
    assert cold == warm, "warm replay diverged from the cold run"
    assert all(summary.from_cache for summary in warm), \
        "warm summaries not marked from_cache"

    handoffs = _handoff_stats(bitstream, policy, device)
    frontier = {}
    for spec, summary in zip(FRONTIER, cold):
        point = dict(handoffs[spec])
        point.update({
            "mos": summary.receiver_mos.mean,
            "receiver_psnr_db": summary.receiver_psnr_db.mean,
            "power_w": summary.power_w.mean,
            "delay_ms": summary.delay_ms.mean,
        })
        frontier[spec] = point
        print(f"{spec:22s} MOS {point['mos']:4.2f}"
              f"  power {point['power_w']:5.3f} W"
              f"  delay {point['delay_ms']:6.2f} ms"
              f"  handoffs {point['handoffs']:3d}"
              f"  gap {point['gap_fraction'] * 100:5.2f}%"
              f"  delivered {point['delivered_fraction'] * 100:6.2f}%")
    print(f"cold: {len(cells) / cold_s:6.2f} cells/s"
          f" ({cold_sims} sims), warm: {len(cells) / warm_s:6.2f}"
          f" cells/s (0 sims, byte-identical)")

    report = {}
    if args.out.exists():
        report = json.loads(args.out.read_text())
    report["mobility"] = {
        "frames": args.frames,
        "repeats": args.repeats,
        "cells": len(cells),
        "cold_cells_per_s": len(cells) / cold_s,
        "warm_cells_per_s": len(cells) / warm_s,
        "warm_byte_identical": True,
        "frontier": frontier,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[saved to {args.out}]")
    if args.check_trend:
        raise SystemExit(repro_main([
            "bench", "trend", "--current", str(args.out),
            "--baseline", str(args.baseline),
        ]))


if __name__ == "__main__":
    main()
