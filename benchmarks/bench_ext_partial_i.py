"""Extension bench: partial I-frame encryption is inadequate (Section 6.2).

"In order to save on energy consumption and delay, we examined the case
where half of the I-frame packets are encrypted.  We found that the
distortion levels are similar to the case where all the P-frame packets
are encrypted and thus does not provide adequate obfuscation."

This bench sweeps the encrypted I-fraction for slow motion.  Known
deviation (recorded in EXPERIMENTS.md): our codec's frames are atomic
(one DEFLATE stream), so once the encrypted fraction exceeds what the
eq. (20) sensitivity tolerates (~45% here), I-frames die entirely and
partial-I becomes as protective as full-I.  The paper's H.264 I-frames
are slice-decodable — half the packets still paint half the picture —
which is why *their* half-I experiment leaked.  The cliff this bench
shows sits between 25% and 50% instead of between 50% and 100%, but the
qualitative lesson is identical: protection falls off a cliff once
enough I-fragments survive for frames to reconstruct, so a sender must
encrypt enough of every I-frame, not merely half the stream's I bytes.
"""

from conftest import get_bitstream, get_clip, get_sensitivity, publish

from repro.analysis import render_table
from repro.core import EncryptionPolicy, standard_policies
from repro.testbed import DEVICES, SenderSimulator
from repro.video import conceal_decode, frames_decodable, sequence_mos, sequence_psnr

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def build_report() -> str:
    clip = get_clip("slow")
    bitstream = get_bitstream("slow", 30)
    sensitivity = get_sensitivity("slow")
    simulator = SenderSimulator(bitstream, device=DEVICES["samsung-s2"])

    rows = []
    for fraction in FRACTIONS:
        if fraction == 1.0:
            policy = EncryptionPolicy("i_frames", "AES256")
        else:
            policy = EncryptionPolicy("partial_i", "AES256",
                                      fraction=fraction)
        run = simulator.run(policy, seed=0)
        decodable = frames_decodable(
            run.packets, run.usable_by_eavesdropper, sensitivity
        )
        video = conceal_decode(bitstream, decodable,
                               mode="best_effort").sequence
        rows.append([
            f"{fraction:.0%} of I packets",
            f"{sequence_psnr(clip, video):.2f}",
            f"{sequence_mos(clip, video):.2f}",
        ])
    # P-only reference row (what the paper compares half-I against).
    p_policy = standard_policies("AES256")["P"]
    run = simulator.run(p_policy, seed=0)
    decodable = frames_decodable(run.packets, run.usable_by_eavesdropper,
                                 sensitivity)
    video = conceal_decode(bitstream, decodable, mode="best_effort").sequence
    rows.append(["P-only (reference)",
                 f"{sequence_psnr(clip, video):.2f}",
                 f"{sequence_mos(clip, video):.2f}"])

    # Shape: a low encrypted fraction leaks substantially more than full
    # I-encryption (the protection cliff; see module docstring for how
    # its position differs from the paper's slice-decodable H.264).
    psnr_quarter = float(rows[0][1])
    psnr_full = float(rows[3][1])
    assert psnr_quarter > psnr_full + 3.0
    # Past the cliff, partial-I converges to full-I protection.
    psnr_half = float(rows[1][1])
    assert abs(psnr_half - psnr_full) < 5.0
    return render_table(
        ["encryption", "eavesdropper PSNR (dB)", "eavesdropper MOS"],
        rows,
        title="Extension — partial I-frame encryption is inadequate"
              " (slow motion, AES256)",
    )


def test_ext_partial_i(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ext_partial_i", text)
