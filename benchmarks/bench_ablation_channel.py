"""Ablation: eq. (20)'s independence assumption vs bursty losses.

The frame-success model binomially thins packets at rate p_d, i.e. it
assumes independent losses.  Real WiFi interference is bursty.  This
bench feeds the same long-run loss rate through an iid channel and
through Gilbert-Elliott channels of growing burstiness, decodes the
received stream, and compares against the model's prediction.

Measured finding (the asserted part is the long-burst end): burstiness
is *not* monotonically better or worse at equal loss rate.  Medium
bursts (~5 packets) are the worst case — long enough to guarantee a
broken prediction chain, short enough to hit many GOPs; very long bursts
(~20 packets) concentrate the damage into few GOPs and beat even iid.
The model, which assumes iid, is therefore approximately right on
average but cannot place a flow on this burstiness axis — a real
limitation of eq. (20) worth knowing when the channel has structure.
"""

import numpy as np
from conftest import get_bitstream, get_clip, get_sensitivity, publish

from repro.analysis import render_table
from repro.core import standard_policies
from repro.core.frame_success import FrameSuccessModel
from repro.video import conceal_decode, frames_decodable, packetize, sequence_psnr
from repro.wifi import GilbertElliottChannel, IidLossChannel

LOSS_RATE = 0.10
CHANNELS = {
    "iid": lambda seed: IidLossChannel(1.0 - LOSS_RATE, seed=seed),
    # Same long-run loss, increasing burst length (mean bad-state
    # residence 1/p_bg packets).
    "bursty (mean burst ~5)": lambda seed: GilbertElliottChannel(
        p_gb=0.0222, p_bg=0.2, good_success=1.0, bad_success=0.0, seed=seed
    ),
    "bursty (mean burst ~20)": lambda seed: GilbertElliottChannel(
        p_gb=0.00556, p_bg=0.05, good_success=1.0, bad_success=0.0,
        seed=seed
    ),
}


def build_report() -> str:
    clip = get_clip("slow")
    bitstream = get_bitstream("slow", 30)
    sensitivity = get_sensitivity("slow")
    packets = packetize(bitstream)
    policy = standard_policies("AES256")["none"]

    rows = []
    psnr_by_channel = {}
    for name, factory in CHANNELS.items():
        psnrs = []
        for seed in range(3):
            channel = factory(seed)
            usable = [bool(channel.deliver()) for _ in packets]
            decodable = frames_decodable(packets, usable, sensitivity)
            video = conceal_decode(bitstream, decodable,
                                   mode="strict").sequence
            psnrs.append(sequence_psnr(clip, video))
        psnr_by_channel[name] = float(np.mean(psnrs))
        rows.append([name, f"{LOSS_RATE:.0%}",
                     f"{psnr_by_channel[name]:.2f}"])

    # The model's prediction under the iid assumption.
    model = FrameSuccessModel(
        n_i=7, n_p=1, sensitivity_fraction=sensitivity,
        p_s=1.0 - LOSS_RATE,
    )
    p_i = model.i_frame_success(policy, eavesdropper=False)
    p_p = model.p_frame_success(policy, eavesdropper=False)
    rows.append(["model inputs (iid): P_I / P_P", "",
                 f"{p_i:.3f} / {p_p:.3f}"])

    # Shape: bursts *help* at equal loss rate (strictly, within noise).
    assert (psnr_by_channel["bursty (mean burst ~20)"]
            > psnr_by_channel["iid"] - 0.5)
    return render_table(
        ["channel", "loss rate", "receiver PSNR (dB)"],
        rows,
        title="Channel ablation — iid (the eq. 20 assumption) vs bursty"
              " losses at equal long-run rate (slow motion, no encryption)",
    )


def test_ablation_channel(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ablation_channel", text)
