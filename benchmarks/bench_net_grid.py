#!/usr/bin/env python
"""Networked-grid smoke/bench: ``repro cached serve`` + TCP workers.

``--smoke`` is the PR-tier mode (what CI runs): it serves a freshly
submitted grid over a loopback TCP server spawned through the real CLI
(``repro cached serve --port 0``), drains it with two ``repro worker
--queue tcp:...`` subprocesses, and asserts the wire-assembled grid is
**byte-identical** to a purely local ``dispatch="local"`` run with zero
duplicate simulations.  That is the acceptance bar for the networked
tier: N workers on hosts that share no filesystem must produce the same
cache a single process would, byte for byte.  Writes nothing.

Without ``--smoke`` it additionally times raw RPC round-trips against
an in-process server thread and prints pings per second (informational
only; no report files are written).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_net_grid.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.core import standard_policies
from repro.testbed import (
    DEVICES,
    ExperimentConfig,
    ExperimentEngine,
    GridCell,
    NetClient,
    ResultCache,
    parse_tcp_spec,
)
from repro.video import CodecConfig, encode_sequence, generate_clip

POLICIES = ("none", "I", "all")
REPEATS = 2
MASTER_SEED = 7
SEED = 2013

_SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_SRC_ROOT)] + ([env["PYTHONPATH"]] if "PYTHONPATH" in env
                            else []))
    return env


def _scenario():
    clip = generate_clip("slow", 12, seed=1)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))
    return clip, bitstream


def _cells():
    policies = standard_policies("AES256")
    return [
        GridCell("netbench", ExperimentConfig(
            policy=policies[name], device=DEVICES["samsung-s2"],
            sensitivity_fraction=0.55, decode_video=False), REPEATS)
        for name in POLICIES
    ]


def _start_server(root: Path) -> "tuple[subprocess.Popen, str]":
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cached", "serve",
         "--root", str(root), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_child_env())
    line = proc.stdout.readline()  # "serving ROOT on HOST:PORT"
    if "serving" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to announce itself: {line!r}")
    host, _, port = line.strip().rpartition(" ")[2].rpartition(":")
    return proc, f"tcp:{host}:{port}"


def run_smoke() -> int:
    clip, bitstream = _scenario()
    cells = _cells()
    with tempfile.TemporaryDirectory(prefix="repro-netbench-") as tmp:
        tmp = Path(tmp)
        # Local reference grid: one process, no queue, no network.
        local_cache = ResultCache(tmp / "local-cache")
        local = ExperimentEngine(cache=local_cache, workers=1,
                                 master_seed=MASTER_SEED, repeats=REPEATS)
        local.add_scenario("netbench", clip, bitstream)
        reference = local.run_grid(cells)
        keys = [local.cell_key(cell) for cell in cells]

        server_proc, spec = _start_server(tmp / "queue")
        try:
            submitter = ExperimentEngine(dispatch="queue", queue=spec,
                                         master_seed=MASTER_SEED,
                                         repeats=REPEATS)
            submitter.add_scenario("netbench", clip, bitstream)
            submitted = submitter.submit_grid(cells)
            assert len(submitted) == len(cells), submitted

            reports = []
            workers = []
            for i in range(2):
                report_path = tmp / f"worker-{i}.json"
                workers.append((report_path, subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "worker",
                     "--queue", spec, "--report", str(report_path)],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL, env=_child_env())))
            for report_path, proc in workers:
                if proc.wait(timeout=300) != 0:
                    raise RuntimeError(f"worker exited {proc.returncode}")
                reports.append(json.loads(report_path.read_text()))

            total_sims = sum(r["simulations"] for r in reports)
            expected = len(cells) * REPEATS
            assert total_sims == expected, (
                f"{total_sims} simulations over the wire, expected"
                f" {expected} (duplicates or losses)")
            assert sum(r["failed"] for r in reports) == 0, reports

            assembled = submitter.run_grid(cells)
            assert assembled == reference, (
                "TCP-drained grid summaries diverged from local run")

            remote_cache = ResultCache.from_spec(spec)
            try:
                for key in keys:
                    local_bytes = local_cache.backend.read(key)
                    remote_bytes = remote_cache.backend.read(key)
                    assert local_bytes is not None
                    assert local_bytes == remote_bytes, (
                        f"cache entry {key[:16]}… differs over TCP")
            finally:
                remote_cache.close()
            submitter.close()
        finally:
            server_proc.kill()
            server_proc.wait()
            local_cache.close()
    print(f"net-grid smoke: {len(cells)} cells x {REPEATS} repeats,"
          f" {total_sims} simulations across 2 TCP workers,"
          " byte-identical to local")
    return 0


def run_rpc_bench(pings: int) -> None:
    from repro.testbed.server import ServerThread

    with tempfile.TemporaryDirectory(prefix="repro-netbench-") as tmp:
        with ServerThread(Path(tmp) / "queue") as served:
            host, port = parse_tcp_spec(served.spec)
            client = NetClient(host, port)
            try:
                client.call("ping", {})  # connect outside the timed loop
                start = time.perf_counter()
                for _ in range(pings):
                    client.call("ping", {})
                elapsed = time.perf_counter() - start
            finally:
                client.close()
    print(f"rpc round-trips: {pings / elapsed:.0f}/s"
          f" ({elapsed / pings * 1e6:.0f} us/ping over loopback)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: differential assertion only")
    parser.add_argument("--pings", type=int, default=2000,
                        help="RPC round-trips to time (non-smoke)")
    args = parser.parse_args()
    code = run_smoke()
    if not args.smoke:
        run_rpc_bench(args.pings)
    return code


if __name__ == "__main__":
    sys.exit(main())
