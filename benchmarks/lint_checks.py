#!/usr/bin/env python
"""CI entry point for the project-specific static checks.

Thin wrapper so the pipeline (and developers without the package on
their path) can run::

    PYTHONPATH=src python benchmarks/lint_checks.py

which is exactly ``repro lint`` over ``src/``, ``tests/`` and
``benchmarks/`` — see :mod:`repro.lint` for the rule set.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    roots = sys.argv[1:] or [str(REPO_ROOT / root)
                             for root in ("src", "tests", "benchmarks")]
    sys.exit(main(["lint", *roots]))
