"""Ablation: the queueing model's design choices (DESIGN.md Section 5).

1. eq. (19) evaluates the *virtual* waiting time; the per-packet delay
   needs the conditional-PASTA correction.  This bench quantifies how
   wrong the uncorrected formula is for video-like bursty arrivals.
2. Gaussian-jitter service atoms (eqs. 15-18) vs the constant-time
   special case (eqs. 11-14): the paper adopts the Gaussian model; the
   ablation measures what it buys.
Both are judged against discrete-event simulation of the same queue.
"""

from conftest import publish

from repro.analysis import render_table
from repro.core import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    MMPP2,
    ServiceTimeModel,
    TransmissionComponent,
    simulate_mmpp_g1,
    solve_mmpp_g1,
)

# A video-like arrival process: I-bursts at 4000 pkt/s, trickle at 30/s.
VIDEO_MMPP = MMPP2(p1=570.0, p2=1.03, lambda1=4000.0, lambda2=30.0)


def _service(jitter: bool) -> ServiceTimeModel:
    def atom(mu, sigma):
        return GaussianAtom(mu, sigma if jitter else 0.0)
    return ServiceTimeModel(
        EncryptionComponent(0.2, 0.0, atom(1.0e-3, 1.0e-4),
                            atom(0.2e-3, 0.2e-4)),
        BackoffComponent(p_s=0.9, lambda_b=3000.0),
        TransmissionComponent(0.2, atom(0.4e-3, 0.12e-4),
                              atom(0.25e-3, 0.08e-4)),
    )


def build_report() -> str:
    rows = []
    service = _service(jitter=True)
    solution = solve_mmpp_g1(VIDEO_MMPP, service)
    simulated = simulate_mmpp_g1(VIDEO_MMPP, service,
                                 n_packets=400_000, seed=0)
    rows.append([
        "per-packet E[W] (eq. 19 + PASTA correction)",
        f"{solution.mean_waiting_time_s * 1e3:.4f}",
        f"{simulated.mean_waiting_time_s * 1e3:.4f}",
        f"{100 * abs(solution.mean_waiting_time_s / simulated.mean_waiting_time_s - 1):.1f}%",
    ])
    rows.append([
        "virtual E[V] (raw eq. 19)",
        f"{solution.mean_virtual_waiting_time_s * 1e3:.4f}",
        f"{simulated.mean_waiting_time_s * 1e3:.4f}",
        f"{100 * abs(solution.mean_virtual_waiting_time_s / simulated.mean_waiting_time_s - 1):.1f}%",
    ])
    # The correction must matter for bursty video arrivals.
    assert (abs(solution.mean_waiting_time_s
                - simulated.mean_waiting_time_s)
            < abs(solution.mean_virtual_waiting_time_s
                  - simulated.mean_waiting_time_s))

    constant = _service(jitter=False)
    solution_c = solve_mmpp_g1(VIDEO_MMPP, constant)
    simulated_c = simulate_mmpp_g1(VIDEO_MMPP, constant,
                                   n_packets=400_000, seed=1)
    rows.append([
        "constant service times (eqs. 11-14)",
        f"{solution_c.mean_waiting_time_s * 1e3:.4f}",
        f"{simulated_c.mean_waiting_time_s * 1e3:.4f}",
        f"{100 * abs(solution_c.mean_waiting_time_s / simulated_c.mean_waiting_time_s - 1):.1f}%",
    ])
    return render_table(
        ["model variant", "analytic E[W] (ms)", "simulated E[W] (ms)",
         "relative error"],
        rows,
        title="Queueing ablation — eq. (19) variants vs discrete-event"
              " simulation (video-like 2-MMPP)",
    )


def test_ablation_queue(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ablation_queue", text)
