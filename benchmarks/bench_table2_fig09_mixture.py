"""Table 2 & Fig. 9: encrypting all I-frame packets plus a fraction of
the P-frame packets (fast motion, GOP=30).

Table 2 (Samsung S-II, AES256): delay / PSNR / MOS for I-only and
I+{10,15,20,25,30,50}%P.  Shape: delay grows mildly with the fraction;
PSNR and MOS fall; around I+20%P the flow is practically obfuscated
(MOS ~ 1.2), which is the paper's recommendation for fast motion.

Fig. 9a: upload latency vs fraction for five device x cipher series.
Fig. 9b's screenshots are covered by the fig06 bench's PGM dumps.
"""

from functools import lru_cache

from conftest import ENGINE, get_sensitivity, grid_cell, publish, run_cell

from repro.analysis import render_table
from repro.core import EncryptionPolicy
from repro.testbed import DEVICES, ExperimentConfig

FRACTIONS = (0.10, 0.15, 0.20, 0.25, 0.30, 0.50)


def _policy(algorithm: str, fraction: float) -> EncryptionPolicy:
    if fraction == 0.0:
        return EncryptionPolicy("i_frames", algorithm)
    return EncryptionPolicy("i_plus_p_fraction", algorithm,
                            fraction=fraction)


def _cell_config(device_key: str, algorithm: str, fraction: float,
                 decode: bool) -> ExperimentConfig:
    return ExperimentConfig(
        policy=_policy(algorithm, fraction),
        device=DEVICES[device_key],
        sensitivity_fraction=get_sensitivity("fast"),
        decode_video=decode,
    )


@lru_cache(maxsize=None)
def measure_cell(device_key: str, algorithm: str, fraction: float,
                 decode: bool):
    return run_cell("fast", 30,
                    _cell_config(device_key, algorithm, fraction, decode))


@lru_cache(maxsize=None)
def _prefetch(spec: tuple) -> None:
    """One engine fan-out for every cell a figure needs."""
    ENGINE.run_grid([grid_cell("fast", 30, _cell_config(*args))
                     for args in spec])


def build_table2() -> str:
    _prefetch(tuple(("samsung-s2", "AES256", fraction, True)
                    for fraction in (0.0,) + FRACTIONS))
    rows = []
    for fraction in (0.0,) + FRACTIONS:
        cell = measure_cell("samsung-s2", "AES256", fraction, True)
        label = "I" if fraction == 0.0 else f"I+{fraction:.0%} P"
        rows.append([
            label,
            f"{cell.delay_ms.mean:.2f}",
            f"{cell.eavesdropper_psnr_db.mean:.2f}",
            f"{cell.eavesdropper_mos.mean:.2f}",
        ])
    # Shape assertions: delay rises, PSNR/MOS fall with the fraction.
    delays = [float(r[1]) for r in rows]
    psnrs = [float(r[2]) for r in rows]
    assert delays == sorted(delays), "delay must grow with the fraction"
    assert psnrs[0] > psnrs[-1] + 5.0, "distortion must deepen"
    # I+20%P obfuscates: MOS near 1 (paper: 1.20).
    mos_20 = float(rows[3][3])
    assert mos_20 < 1.6
    return render_table(
        ["encryption", "delay (ms)", "PSNR (dB)", "MOS"],
        rows,
        title="Table 2 — delay vs distortion for I + fraction-of-P"
              " (fast motion, AES256, Samsung S-II)",
    )


def build_fig09() -> str:
    series = (
        ("htc-amaze", "AES128"),
        ("htc-amaze", "AES256"),
        ("htc-amaze", "3DES"),
        ("samsung-s2", "AES256"),
        ("samsung-s2", "3DES"),
    )
    _prefetch(tuple((device_key, algorithm, fraction, False)
                    for device_key, algorithm in series
                    for fraction in FRACTIONS))
    rows = []
    for device_key, algorithm in series:
        for fraction in FRACTIONS:
            cell = measure_cell(device_key, algorithm, fraction, False)
            rows.append([
                f"{DEVICES[device_key].name} / {algorithm}",
                f"{fraction:.0%}",
                f"{cell.delay_ms.mean:.2f}",
            ])
    # 3DES series sits above the AES series for the same device.
    def last_delay(device_key, algorithm):
        label = f"{DEVICES[device_key].name} / {algorithm}"
        return max(float(r[2]) for r in rows if r[0] == label)
    assert last_delay("samsung-s2", "3DES") > last_delay("samsung-s2",
                                                         "AES256")
    assert last_delay("htc-amaze", "3DES") > last_delay("htc-amaze",
                                                        "AES256")
    return render_table(
        ["device / cipher", "% of P packets encrypted", "delay (ms)"],
        rows,
        title="Fig. 9a — upload latency vs fraction of P packets"
              " encrypted (fast motion, GOP=30)",
    )


def test_table2_mixture(benchmark):
    text = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    publish("table2_mixture", text)


def test_fig09_fraction_p(benchmark):
    text = benchmark.pedantic(build_fig09, rounds=1, iterations=1)
    publish("fig09_fraction_p", text)
