#!/usr/bin/env python
"""Micro-benchmark: scalar vs vectorized OFB throughput (AES256 and 3DES).

Encrypts a payload the way the paper's sender does — split into MTU-sized
RTP segments, each under its own derived IV (Section 5) — once through
the scalar byte-oriented ciphers and once through the numpy batch paths
(T-table AES, packed-lane 3DES), and emits ``BENCH_crypto.json`` so the
performance trajectory is tracked from PR to PR.

Run from the repo root::

    PYTHONPATH=src python benchmarks/crypto_microbench.py
    PYTHONPATH=src python benchmarks/crypto_microbench.py --check-trend

The scalar ciphers are slow by construction (they are the readable
reference implementations), so by default they are timed on smaller
samples of the same segment stream and reported as bytes/second; pass
``--full-scalar`` to push the entire payload through them.  3DES gets a
smaller default sample than AES because its scalar path is ~7x slower
per byte (which is exactly the paper's Table 1 point).

``--check-trend`` runs the regression gate (``repro bench trend``)
against ``benchmarks/results/bench_baseline.json`` after writing the
report, and exits non-zero on a >30% throughput regression.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import tempfile
import time
from pathlib import Path

from repro.cli import main as repro_main
from repro.crypto import (
    AES,
    OFBMode,
    TripleDES,
    VectorAES,
    VectorTripleDES,
    derive_iv,
)
from repro.testbed.cache import ResultCache, RunMetrics

DEFAULT_PAYLOAD = 1 << 20          # the acceptance target: 1 MiB
DEFAULT_SEGMENT = 1460             # MTU-sized RTP payload
DEFAULT_SCALAR_SAMPLE = 192 * 1024
DEFAULT_SCALAR_SAMPLE_3DES = 24 * 1024
DEFAULT_CACHE_ENTRIES = 10_000     # the grid size the sharded cache targets
DEFAULT_BASELINE = Path("benchmarks/results/bench_baseline.json")
KEY = bytes(range(32))             # AES256, the paper's headline cipher
KEY_3DES = bytes(range(24))        # 3-key 3DES, the paper's slow cipher
SALT = b"crypto-microbench"


def _segments(total_bytes: int, segment_bytes: int, block_size: int = 16):
    """Deterministic odd-and-even sized segment stream summing to
    ``total_bytes`` (RTP payloads are odd-sized by design, so alternate)."""
    payloads = []
    remaining = total_bytes
    index = 0
    while remaining > 0:
        size = min(segment_bytes - (index % 2), remaining)
        payloads.append(bytes((index + offset) & 0xFF
                              for offset in range(size)))
        remaining -= size
        index += 1
    ivs = [derive_iv(SALT, i, block_size) for i in range(len(payloads))]
    return ivs, payloads


def _time_scalar(cipher, ivs, payloads) -> float:
    mode = OFBMode(cipher)
    start = time.perf_counter()
    for iv, payload in zip(ivs, payloads):
        mode.encrypt(iv, payload)
    return time.perf_counter() - start


def _time_vector(cipher, ivs, payloads) -> float:
    mode = OFBMode(cipher)
    start = time.perf_counter()
    mode.encrypt_segments(ivs, payloads)
    return time.perf_counter() - start


def _bench_cipher(label: str, scalar_factory, vector_factory,
                  block_size: int, total_bytes: int, segment_bytes: int,
                  scalar_sample: int) -> dict:
    """Scalar-vs-vector OFB section for one cipher."""
    ivs, payloads = _segments(total_bytes, segment_bytes, block_size)

    # Correctness cross-check before timing anything.
    spot_mode = OFBMode(scalar_factory())
    vec_mode = OFBMode(vector_factory())
    spot = vec_mode.encrypt_segments(ivs[:3], payloads[:3])
    for iv, payload, got in zip(ivs[:3], payloads[:3], spot):
        assert got == spot_mode.encrypt(iv, payload), \
            f"{label} vector path diverged"

    vector_s = _time_vector(vector_factory(), ivs, payloads)

    scalar_ivs, scalar_payloads = _segments(
        min(scalar_sample, total_bytes), segment_bytes, block_size)
    scalar_bytes = sum(len(p) for p in scalar_payloads)
    scalar_s = _time_scalar(scalar_factory(), scalar_ivs, scalar_payloads)

    scalar_rate = scalar_bytes / scalar_s
    vector_rate = total_bytes / vector_s
    return {
        "cipher": label,
        "segments": len(payloads),
        "scalar_sample_bytes": scalar_bytes,
        "scalar_bytes_per_s": scalar_rate,
        "vector_bytes_per_s": vector_rate,
        "speedup": vector_rate / scalar_rate,
    }


def _bench_cache(n_entries: int) -> dict:
    """Cache-layer micro-section: cold puts, warm gets, ``len``/``stats``
    (index-backed, so they must not scale like a directory scan), and a
    gc that evicts half the entries under ``max_entries``."""
    runs = [RunMetrics(mean_delay_ms=1.25, mean_waiting_ms=0.5,
                       average_power_w=2.0, receiver_psnr_db=38.0)]
    keys = [hashlib.sha256(b"cache-bench-%d" % i).hexdigest()
            for i in range(n_entries)]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        start = time.perf_counter()
        for key in keys:
            cache.put_runs(key, runs)
        cold_put_s = time.perf_counter() - start

        start = time.perf_counter()
        for key in keys:
            cache.get_runs(key)
        warm_get_s = time.perf_counter() - start

        start = time.perf_counter()
        entries = len(cache)
        len_s = time.perf_counter() - start
        assert entries == n_entries, "index disagrees with the puts"

        start = time.perf_counter()
        stats = cache.stats()
        stats_s = time.perf_counter() - start
        cache.close()

        capped = ResultCache(tmp, max_entries=max(1, n_entries // 2))
        start = time.perf_counter()
        gc_report = capped.gc()
        gc_s = time.perf_counter() - start
        capped.close()

    return {
        "entries": n_entries,
        "index_backend": stats["index_backend"],
        "cold_put_per_s": n_entries / cold_put_s,
        "warm_get_per_s": n_entries / warm_get_s,
        "len_s": len_s,
        "stats_s": stats_s,
        "gc_s": gc_s,
        "gc_evicted": gc_report["evicted"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bytes", type=int, default=DEFAULT_PAYLOAD,
                        help="total payload size (default 1 MiB)")
    parser.add_argument("--segment-bytes", type=int, default=DEFAULT_SEGMENT,
                        help="RTP segment size (default 1460)")
    parser.add_argument("--full-scalar", action="store_true",
                        help="time the scalar path on the full payload "
                             "instead of a sample")
    parser.add_argument("--out", type=Path, default=Path("BENCH_crypto.json"),
                        help="output JSON path (default ./BENCH_crypto.json)")
    parser.add_argument("--cache-entries", type=int,
                        default=DEFAULT_CACHE_ENTRIES,
                        help="entries for the result-cache micro-section"
                             " (0 skips it; default 10000)")
    parser.add_argument("--check-trend", action="store_true",
                        help="after writing the report, run the regression"
                             " gate against the committed baseline and exit"
                             " non-zero on a >30%% throughput drop")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline for --check-trend (default"
                             f" {DEFAULT_BASELINE})")
    args = parser.parse_args()
    if args.bytes < 1:
        parser.error("--bytes must be at least 1")
    if args.segment_bytes < 3:
        parser.error("--segment-bytes must be at least 3")

    aes_sample = args.bytes if args.full_scalar else DEFAULT_SCALAR_SAMPLE
    aes = _bench_cipher("AES256-OFB", lambda: AES(KEY),
                        lambda: VectorAES(KEY), 16,
                        args.bytes, args.segment_bytes, aes_sample)
    des_sample = (args.bytes if args.full_scalar
                  else DEFAULT_SCALAR_SAMPLE_3DES)
    des3 = _bench_cipher("3DES-OFB", lambda: TripleDES(KEY_3DES),
                         lambda: VectorTripleDES(KEY_3DES), 8,
                         args.bytes, args.segment_bytes, des_sample)

    report = {
        "workload": {
            "payload_bytes": args.bytes,
            "segment_bytes": args.segment_bytes,
            "segments": aes.pop("segments"),
            "cipher": aes.pop("cipher"),
            "scalar_sample_bytes": aes.pop("scalar_sample_bytes"),
        },
        **aes,
        "3des": des3,
    }
    if args.cache_entries > 0:
        report["cache"] = _bench_cache(args.cache_entries)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for label, section in (("AES256", report), ("3DES", des3)):
        print(f"{label:7s}: scalar {section['scalar_bytes_per_s'] / 1e3:8.1f}"
              f" KB/s, vector {section['vector_bytes_per_s'] / 1e3:8.1f} KB/s,"
              f" speedup {section['speedup']:.1f}x")
    print("target : >= 10x (AES256), >= 50x (3DES)")
    if "cache" in report:
        cache = report["cache"]
        print(f"cache  : {cache['entries']} entries"
              f" ({cache['index_backend']} index),"
              f" put {cache['cold_put_per_s']:.0f}/s,"
              f" get {cache['warm_get_per_s']:.0f}/s,"
              f" len {cache['len_s'] * 1e3:.2f} ms,"
              f" stats {cache['stats_s'] * 1e3:.2f} ms,"
              f" gc evicted {cache['gc_evicted']} in {cache['gc_s']:.2f}s")
    print(f"[saved to {args.out}]")
    if args.check_trend:
        raise SystemExit(repro_main([
            "bench", "trend", "--current", str(args.out),
            "--baseline", str(args.baseline),
        ]))


if __name__ == "__main__":
    main()
