#!/usr/bin/env python
"""Micro-benchmark: scalar vs vectorized OFB-AES throughput.

Encrypts a payload the way the paper's sender does — split into MTU-sized
RTP segments, each under its own derived IV (Section 5) — once through
the scalar byte-oriented cipher and once through the numpy T-table batch
path, and emits ``BENCH_crypto.json`` so the performance trajectory is
tracked from PR to PR.

Run from the repo root::

    PYTHONPATH=src python benchmarks/crypto_microbench.py

The scalar cipher is slow by construction (it is the readable reference
implementation), so by default it is timed on a smaller sample of the
same segment stream and reported as bytes/second; pass ``--full-scalar``
to push the entire payload through it.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import tempfile
import time
from pathlib import Path

from repro.crypto import AES, OFBMode, VectorAES, derive_iv
from repro.testbed.cache import ResultCache, RunMetrics

DEFAULT_PAYLOAD = 1 << 20          # the acceptance target: 1 MiB
DEFAULT_SEGMENT = 1460             # MTU-sized RTP payload
DEFAULT_SCALAR_SAMPLE = 192 * 1024
DEFAULT_CACHE_ENTRIES = 10_000     # the grid size the sharded cache targets
KEY = bytes(range(32))             # AES256, the paper's headline cipher
SALT = b"crypto-microbench"


def _segments(total_bytes: int, segment_bytes: int):
    """Deterministic odd-and-even sized segment stream summing to
    ``total_bytes`` (RTP payloads are odd-sized by design, so alternate)."""
    payloads = []
    remaining = total_bytes
    index = 0
    while remaining > 0:
        size = min(segment_bytes - (index % 2), remaining)
        payloads.append(bytes((index + offset) & 0xFF
                              for offset in range(size)))
        remaining -= size
        index += 1
    ivs = [derive_iv(SALT, i, 16) for i in range(len(payloads))]
    return ivs, payloads


def _time_scalar(ivs, payloads) -> float:
    mode = OFBMode(AES(KEY))
    start = time.perf_counter()
    for iv, payload in zip(ivs, payloads):
        mode.encrypt(iv, payload)
    return time.perf_counter() - start


def _time_vector(ivs, payloads) -> float:
    mode = OFBMode(VectorAES(KEY))
    start = time.perf_counter()
    mode.encrypt_segments(ivs, payloads)
    return time.perf_counter() - start


def _bench_cache(n_entries: int) -> dict:
    """Cache-layer micro-section: cold puts, warm gets, ``len``/``stats``
    (index-backed, so they must not scale like a directory scan), and a
    gc that evicts half the entries under ``max_entries``."""
    runs = [RunMetrics(mean_delay_ms=1.25, mean_waiting_ms=0.5,
                       average_power_w=2.0, receiver_psnr_db=38.0)]
    keys = [hashlib.sha256(b"cache-bench-%d" % i).hexdigest()
            for i in range(n_entries)]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        start = time.perf_counter()
        for key in keys:
            cache.put_runs(key, runs)
        cold_put_s = time.perf_counter() - start

        start = time.perf_counter()
        for key in keys:
            cache.get_runs(key)
        warm_get_s = time.perf_counter() - start

        start = time.perf_counter()
        entries = len(cache)
        len_s = time.perf_counter() - start
        assert entries == n_entries, "index disagrees with the puts"

        start = time.perf_counter()
        stats = cache.stats()
        stats_s = time.perf_counter() - start
        cache.close()

        capped = ResultCache(tmp, max_entries=max(1, n_entries // 2))
        start = time.perf_counter()
        gc_report = capped.gc()
        gc_s = time.perf_counter() - start
        capped.close()

    return {
        "entries": n_entries,
        "index_backend": stats["index_backend"],
        "cold_put_per_s": n_entries / cold_put_s,
        "warm_get_per_s": n_entries / warm_get_s,
        "len_s": len_s,
        "stats_s": stats_s,
        "gc_s": gc_s,
        "gc_evicted": gc_report["evicted"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bytes", type=int, default=DEFAULT_PAYLOAD,
                        help="total payload size (default 1 MiB)")
    parser.add_argument("--segment-bytes", type=int, default=DEFAULT_SEGMENT,
                        help="RTP segment size (default 1460)")
    parser.add_argument("--full-scalar", action="store_true",
                        help="time the scalar path on the full payload "
                             "instead of a sample")
    parser.add_argument("--out", type=Path, default=Path("BENCH_crypto.json"),
                        help="output JSON path (default ./BENCH_crypto.json)")
    parser.add_argument("--cache-entries", type=int,
                        default=DEFAULT_CACHE_ENTRIES,
                        help="entries for the result-cache micro-section"
                             " (0 skips it; default 10000)")
    args = parser.parse_args()
    if args.bytes < 1:
        parser.error("--bytes must be at least 1")
    if args.segment_bytes < 2:
        parser.error("--segment-bytes must be at least 2")

    ivs, payloads = _segments(args.bytes, args.segment_bytes)

    # Correctness cross-check before timing anything.
    spot_mode = OFBMode(AES(KEY))
    vec_mode = OFBMode(VectorAES(KEY))
    spot = vec_mode.encrypt_segments(ivs[:3], payloads[:3])
    for iv, payload, got in zip(ivs[:3], payloads[:3], spot):
        assert got == spot_mode.encrypt(iv, payload), "vector path diverged"

    vector_s = _time_vector(ivs, payloads)
    vector_bytes = args.bytes

    if args.full_scalar:
        scalar_ivs, scalar_payloads = ivs, payloads
    else:
        scalar_ivs, scalar_payloads = _segments(
            min(DEFAULT_SCALAR_SAMPLE, args.bytes), args.segment_bytes)
    scalar_bytes = sum(len(p) for p in scalar_payloads)
    scalar_s = _time_scalar(scalar_ivs, scalar_payloads)

    scalar_rate = scalar_bytes / scalar_s
    vector_rate = vector_bytes / vector_s
    report = {
        "workload": {
            "payload_bytes": args.bytes,
            "segment_bytes": args.segment_bytes,
            "segments": len(payloads),
            "cipher": "AES256-OFB",
            "scalar_sample_bytes": scalar_bytes,
        },
        "scalar_bytes_per_s": scalar_rate,
        "vector_bytes_per_s": vector_rate,
        "speedup": vector_rate / scalar_rate,
    }
    if args.cache_entries > 0:
        report["cache"] = _bench_cache(args.cache_entries)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"scalar : {scalar_rate / 1e3:8.1f} KB/s"
          f"  ({scalar_bytes} bytes in {scalar_s:.2f}s)")
    print(f"vector : {vector_rate / 1e3:8.1f} KB/s"
          f"  ({vector_bytes} bytes in {vector_s:.2f}s)")
    print(f"speedup: {report['speedup']:.1f}x  [target >= 10x]")
    if "cache" in report:
        cache = report["cache"]
        print(f"cache  : {cache['entries']} entries"
              f" ({cache['index_backend']} index),"
              f" put {cache['cold_put_per_s']:.0f}/s,"
              f" get {cache['warm_get_per_s']:.0f}/s,"
              f" len {cache['len_s'] * 1e3:.2f} ms,"
              f" stats {cache['stats_s'] * 1e3:.2f} ms,"
              f" gc evicted {cache['gc_evicted']} in {cache['gc_s']:.2f}s")
    print(f"[saved to {args.out}]")


if __name__ == "__main__":
    main()
