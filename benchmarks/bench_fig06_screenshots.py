"""Fig. 6: screenshots of the video at the eavesdropper's site.

Substitution (no display hardware): the reconstructed eavesdropper
frames are dumped as PGM images under benchmarks/results/fig06/, and the
"figure" is a table of per-snapshot luma MSE against the original — a
numerical rendition of what the paper shows visually (slow vs fast,
GOP 30, all four encryption levels).
"""

from pathlib import Path

from conftest import RESULTS_DIR, get_bitstream, get_clip, get_sensitivity, publish

from repro.analysis import render_table
from repro.core import standard_policies
from repro.testbed import DEVICES, SenderSimulator
from repro.video import conceal_decode, frames_decodable, mse, write_pgm

SNAPSHOT = 45  # mid-clip frame, inside the second GOP
POLICY_ORDER = ("none", "P", "I", "all")


def build_figure() -> str:
    out_dir = RESULTS_DIR / "fig06"
    out_dir.mkdir(parents=True, exist_ok=True)
    rows = []
    for motion in ("slow", "fast"):
        clip = get_clip(motion)
        bitstream = get_bitstream(motion, 30)
        simulator = SenderSimulator(bitstream, device=DEVICES["samsung-s2"])
        write_pgm(out_dir / f"{motion}_original.pgm", clip[SNAPSHOT].y)
        for name in POLICY_ORDER:
            policy = standard_policies("AES256")[name]
            run = simulator.run(policy, seed=0)
            decodable = frames_decodable(
                run.packets, run.usable_by_eavesdropper,
                get_sensitivity(motion),
            )
            video = conceal_decode(bitstream, decodable,
                                   mode="best_effort").sequence
            path = out_dir / f"{motion}_{name}.pgm"
            write_pgm(path, video[SNAPSHOT].y)
            rows.append([
                motion, name,
                f"{mse(clip[SNAPSHOT].y, video[SNAPSHOT].y):.0f}",
                str(path.relative_to(RESULTS_DIR.parent)),
            ])
    # Shape: the fast/I screenshot is far closer to the original than the
    # slow/I one (the paper's visual point).
    slow_i = next(float(r[2]) for r in rows
                  if r[0] == "slow" and r[1] == "I")
    fast_i = next(float(r[2]) for r in rows
                  if r[0] == "fast" and r[1] == "I")
    assert fast_i < 0.5 * slow_i
    return render_table(
        ["motion", "encryption level", "snapshot MSE", "screenshot file"],
        rows,
        title="Fig. 6 — eavesdropper screenshots (PGM files + luma MSE,"
              " GOP=30)",
    )


def test_fig06_screenshots(benchmark):
    text = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    publish("fig06_screenshots", text)
