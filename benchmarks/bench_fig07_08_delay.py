"""Figs. 7 & 8: per-packet transfer latency, analysis vs experiment.

Paper's panels: for each device (Fig. 7 Samsung S-II, Fig. 8 HTC Amaze
4G), cipher (AES256, 3DES) and GOP size (30, 50), bars over the
encryption level {none, P, I, all} for slow and fast motion, analysis
beside experiment.  Shape to reproduce:

- none < I << P <= all within every panel (P-frame bytes dominate);
- 3DES >> AES256;
- HTC delays exceed the Samsung's (its crypto path is slower);
- the analysis tracks the experiment.
"""

from functools import lru_cache

from conftest import (
    ENGINE,
    get_framework,
    get_sensitivity,
    grid_cell,
    publish,
    run_cell,
)

from repro.analysis import render_table
from repro.core import standard_policies
from repro.testbed import DEVICES, ExperimentConfig

POLICY_ORDER = ("none", "P", "I", "all")


def _cell_config(device_key: str, algorithm: str, motion: str,
                 policy_name: str) -> ExperimentConfig:
    return ExperimentConfig(
        policy=standard_policies(algorithm)[policy_name],
        device=DEVICES[device_key],
        sensitivity_fraction=get_sensitivity(motion),
        decode_video=False,
    )


@lru_cache(maxsize=None)
def measure(device_key: str, algorithm: str, motion: str, gop_size: int,
            policy_name: str):
    config = _cell_config(device_key, algorithm, motion, policy_name)
    return run_cell(motion, gop_size, config).delay_ms


@lru_cache(maxsize=None)
def _prefetch(device_key: str) -> None:
    """Fan the device's whole 32-cell grid out through the engine once;
    the per-cell ``measure`` calls then replay from its memo/cache."""
    cells = [
        grid_cell(motion, gop_size,
                  _cell_config(device_key, algorithm, motion, name))
        for algorithm in ("AES256", "3DES")
        for gop_size in (30, 50)
        for motion in ("slow", "fast")
        for name in POLICY_ORDER
    ]
    ENGINE.run_grid(cells)


def build_figure(device_key: str, figure_name: str) -> str:
    _prefetch(device_key)
    rows = []
    for algorithm in ("AES256", "3DES"):
        for gop_size in (30, 50):
            for motion in ("slow", "fast"):
                model = get_framework(motion, gop_size, device_key)
                analytic = model.predict_many(
                    standard_policies(algorithm), engine="vector")
                for name in POLICY_ORDER:
                    predicted = analytic[name].delay_ms
                    measured = measure(device_key, algorithm, motion,
                                       gop_size, name)
                    rows.append([
                        algorithm, gop_size, motion, name,
                        f"{predicted:.2f}",
                        f"{measured.mean:.2f} +/- {measured.ci_halfwidth:.2f}",
                    ])
    _assert_shape(rows)
    return render_table(
        ["cipher", "GOP", "motion", "encryption level",
         "analysis delay (ms)", "experiment delay (ms)"],
        rows,
        title=f"{figure_name} — per-packet latency, analysis vs experiment"
              f" ({DEVICES[device_key].name})",
    )


def _measured(rows, algorithm, gop, motion, name) -> float:
    for row in rows:
        if row[:4] == [algorithm, gop, motion, name]:
            return float(row[5].split(" ")[0])
    raise KeyError((algorithm, gop, motion, name))


def _assert_shape(rows) -> None:
    for algorithm in ("AES256", "3DES"):
        for gop in (30, 50):
            for motion in ("slow", "fast"):
                none = _measured(rows, algorithm, gop, motion, "none")
                i_only = _measured(rows, algorithm, gop, motion, "I")
                p_only = _measured(rows, algorithm, gop, motion, "P")
                full = _measured(rows, algorithm, gop, motion, "all")
                assert none < i_only < full * 1.001
                assert none < p_only <= full * 1.1
            # Fast motion: P-encryption costs nearly as much as full
            # encryption and far more than I-only (Section 6.2).  For
            # slow motion the paper itself notes the exception (Samsung
            # with 3DES has delay(I) > delay(P)), so no slow-motion
            # I-vs-P ordering is asserted.
            fast_i = _measured(rows, algorithm, gop, "fast", "I")
            fast_p = _measured(rows, algorithm, gop, "fast", "P")
            fast_all = _measured(rows, algorithm, gop, "fast", "all")
            assert fast_i < fast_p
            assert fast_p > 0.7 * fast_all
    # 3DES costs more than AES256 when everything is encrypted.
    for motion in ("slow", "fast"):
        assert (_measured(rows, "3DES", 30, motion, "all")
                > _measured(rows, "AES256", 30, motion, "all"))


def test_fig07_delay_samsung(benchmark):
    text = benchmark.pedantic(
        build_figure, args=("samsung-s2", "Fig. 7"), rounds=1, iterations=1
    )
    publish("fig07_delay_samsung", text)


def test_fig08_delay_htc(benchmark):
    text = benchmark.pedantic(
        build_figure, args=("htc-amaze", "Fig. 8"), rounds=1, iterations=1
    )
    publish("fig08_delay_htc", text)


def test_fig08_htc_slower_than_samsung(benchmark):
    def compare():
        samsung = measure("samsung-s2", "3DES", "fast", 30, "all")
        htc = measure("htc-amaze", "3DES", "fast", 30, "all")
        assert htc.mean > samsung.mean
        return samsung.mean, htc.mean
    samsung_ms, htc_ms = benchmark.pedantic(compare, rounds=1, iterations=1)
    publish(
        "fig07_08_device_comparison",
        "Device comparison (3DES, fast, GOP=30, all packets encrypted):\n"
        f"  Samsung S-II: {samsung_ms:.2f} ms per packet\n"
        f"  HTC Amaze 4G: {htc_ms:.2f} ms per packet",
    )
