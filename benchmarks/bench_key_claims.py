"""The paper's headline claims (abstract + Section 1 "Key results").

1. Selective encryption preserves confidentiality while cutting transfer
   latency by as much as 75% relative to full encryption.
2. Energy savings of as much as 92% (of the encryption-induced power
   increase) while keeping the flow unviewable at the eavesdropper.
3. I-frame encryption distorts slow motion more than fast motion; pure
   P-frame encryption distorts fast motion more than slow motion.
4. For slow motion, encrypting the I-frames suffices; for fast motion,
   ~20% of the P packets must be encrypted on top.
"""

from conftest import REPEATS, get_bitstream, get_clip, get_sensitivity, publish

from repro.analysis import render_table
from repro.core import EncryptionPolicy, standard_policies
from repro.testbed import DEVICES, ExperimentConfig, run_repeated


def _run(motion, policy, decode, device_key="samsung-s2"):
    config = ExperimentConfig(
        policy=policy,
        device=DEVICES[device_key],
        sensitivity_fraction=get_sensitivity(motion),
        decode_video=decode,
    )
    return run_repeated(get_clip(motion), get_bitstream(motion, 30),
                        config, repeats=REPEATS)


def build_report() -> str:
    lines = []
    policies = standard_policies("AES256")

    # Claim 1: latency reduction of confidential selective policy vs all.
    fast_i = _run("fast", policies["I"], False)
    fast_all = _run("fast", policies["all"], False)
    slow_i = _run("slow", policies["I"], False)
    slow_all = _run("slow", policies["all"], False)
    reduction_fast = 100 * (1 - fast_i.delay_ms.mean
                            / fast_all.delay_ms.mean)
    reduction_slow = 100 * (1 - slow_i.delay_ms.mean
                            / slow_all.delay_ms.mean)
    best_reduction = max(reduction_fast, reduction_slow)
    assert best_reduction > 50.0
    lines.append(
        f"Claim 1 (latency): I-only vs all-encrypted delay reduction: "
        f"slow {reduction_slow:.0f}%, fast {reduction_fast:.0f}% "
        f"(paper: up to 75%)."
    )

    # Claim 2: energy savings of the avoided increase.
    des3 = standard_policies("3DES")
    none_p = _run("fast", des3["none"], False).power_w.mean
    i_p = _run("fast", des3["I"], False).power_w.mean
    all_p = _run("fast", des3["all"], False).power_w.mean
    savings = 100 * (all_p - i_p) / (all_p - none_p)
    assert savings > 70.0
    lines.append(
        f"Claim 2 (energy): I-only avoids {savings:.0f}% of the power "
        f"increase full encryption causes ({none_p:.2f} -> {all_p:.2f} W; "
        f"I-only {i_p:.2f} W; paper: up to 92%)."
    )

    # Claim 3: the motion asymmetry.
    psnr = {}
    for motion in ("slow", "fast"):
        for name in ("I", "P"):
            psnr[(motion, name)] = _run(
                motion, policies[name], True
            ).eavesdropper_psnr_db.mean
    assert psnr[("slow", "I")] < psnr[("fast", "I")] - 5.0
    assert psnr[("fast", "P")] < psnr[("slow", "P")] - 5.0
    lines.append(
        "Claim 3 (asymmetry): eavesdropper PSNR under I-encryption: "
        f"slow {psnr[('slow', 'I')]:.1f} dB << fast "
        f"{psnr[('fast', 'I')]:.1f} dB; under P-encryption: fast "
        f"{psnr[('fast', 'P')]:.1f} dB << slow {psnr[('slow', 'P')]:.1f} dB."
    )

    # Claim 4: I suffices for slow; fast needs I+20%P.
    slow_i_mos = _run("slow", policies["I"], True).eavesdropper_mos.mean
    fast_i_mos = _run("fast", policies["I"], True).eavesdropper_mos.mean
    mixture = EncryptionPolicy("i_plus_p_fraction", "AES256", fraction=0.2)
    fast_mix_mos = _run("fast", mixture, True).eavesdropper_mos.mean
    assert slow_i_mos < 1.5          # slow: I-only is enough
    assert fast_i_mos > 2.5          # fast: I-only leaks
    assert fast_mix_mos < 1.6        # fast: I+20%P obfuscates
    lines.append(
        f"Claim 4 (policy choice): eavesdropper MOS — slow/I-only "
        f"{slow_i_mos:.2f} (unviewable), fast/I-only {fast_i_mos:.2f} "
        f"(leaks), fast/I+20%P {fast_mix_mos:.2f} (unviewable; paper: 1.20)."
    )

    return ("Key claims of the paper, reproduced:\n\n"
            + "\n\n".join(lines))


def test_key_claims(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("key_claims", text)
