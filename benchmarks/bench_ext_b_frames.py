"""Extension bench: selective encryption on IBB..P streams.

The paper's analysis assumes IPP...P and notes B-frames are optional
(Section 2).  This bench runs the policy matrix on an IBBP stream and
shows what B-frames change for the selective-encryption argument:

- encrypting only B-frames is worthless (they are prediction leaves:
  their loss freezes single frames);
- the I-frame policy keeps its power;
- a B-frame-aware mixture (I + P references, B in the clear) obfuscates
  like "all" while encrypting fewer bytes — the natural generalisation
  of the paper's 'encrypt what the prediction tree hangs from'.
"""

from conftest import N_FRAMES, get_clip, publish

from repro.analysis import render_table
from repro.core.policies import EncryptionPolicy
from repro.testbed import DEVICES, SenderSimulator
from repro.video import (
    CodecConfig,
    conceal_decode,
    encode_sequence,
    frames_decodable,
    sequence_mos,
    sequence_psnr,
)
from repro.video.gop import FrameType


class TypeSetPolicy:
    """Encrypt exactly the packets of the given frame types (bench-local
    helper for B-aware policies the core policy set does not enumerate)."""

    def __init__(self, types, algorithm="AES256"):
        self.types = frozenset(types)
        self.algorithm = algorithm
        self.mode = "type-set"

    def encrypts(self, packet):
        return packet.frame_type.value in self.types

    @property
    def label(self):
        return "+".join(sorted(self.types)) or "none"


def build_report() -> str:
    clip = get_clip("slow")
    config = CodecConfig(gop_size=30, quantizer=8, b_frames=2)
    bitstream = encode_sequence(clip, config)
    simulator = SenderSimulator(bitstream, device=DEVICES["samsung-s2"])
    sensitivity = 0.55

    policies = {
        "none": TypeSetPolicy(()),
        "B only": TypeSetPolicy(("B",)),
        "I only": TypeSetPolicy(("I",)),
        "I+P refs": TypeSetPolicy(("I", "P")),
        "all": TypeSetPolicy(("I", "P", "B")),
    }
    rows = []
    metrics = {}
    for name, policy in policies.items():
        run = simulator.run(policy, seed=0)
        decodable = frames_decodable(
            run.packets, run.usable_by_eavesdropper, sensitivity
        )
        video = conceal_decode(bitstream, decodable, config,
                               mode="best_effort").sequence
        encrypted_bytes = sum(
            t.payload_bytes for t in run.trace if t.encrypted
        )
        psnr = sequence_psnr(clip, video)
        metrics[name] = (psnr, run.mean_delay_ms, encrypted_bytes)
        rows.append([
            name, f"{run.mean_delay_ms:.2f}",
            f"{encrypted_bytes / 1024:.0f}",
            f"{psnr:.2f}",
            f"{sequence_mos(clip, video):.2f}",
        ])

    # B-only encryption is worthless protection...
    assert metrics["B only"][0] > 30.0
    # ...while I-only keeps its power on a B-frame stream...
    assert metrics["I only"][0] < 15.0
    # ...and leaving B-frames in the clear costs nothing vs "all".
    assert abs(metrics["I+P refs"][0] - metrics["all"][0]) < 3.0
    assert metrics["I+P refs"][2] < metrics["all"][2]
    return render_table(
        ["policy", "delay (ms)", "encrypted KiB", "eaves PSNR (dB)",
         "eaves MOS"],
        rows,
        title="Extension — selective encryption on an IBBP stream"
              " (slow motion, AES256, Samsung S-II)",
    )


def test_ext_b_frames(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ext_b_frames", text)
