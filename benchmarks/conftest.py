"""Shared infrastructure for the figure/table benches.

Every bench regenerates one of the paper's tables or figures: it runs
the simulated testbed (and, where the figure shows "Analysis", the
analytical framework) and renders the figure as an aligned text table,
printed and written under ``benchmarks/results/``.

Knobs (environment variables):

- ``REPRO_BENCH_REPEATS``  repetitions per experimental cell (default 3;
  the paper uses 20 — set 20 for paper-grade confidence intervals);
- ``REPRO_BENCH_FRAMES``   clip length in frames (default 240; the paper
  uses 300);
- ``REPRO_CACHE``          set 0 to disable the on-disk result cache
  (default: cache under ``benchmarks/results/cache``);
- ``REPRO_CACHE_DIR``      override the cache directory;
- ``REPRO_CACHE_BACKEND``  cache store: ``dir`` (sharded files, the
  default), ``sqlite`` (single-file WAL store), or a full
  ``backend:location`` spec;
- ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_ENTRIES``  size caps for
  the cache (LRU eviction; default: unbounded);
- ``REPRO_ENGINE_WORKERS`` worker processes for the experiment engine
  (default: CPU count; 1 = serial).

Experiment-backed benches go through the shared :data:`ENGINE`, so
already-computed grid cells replay from the content-addressed cache
with zero new simulations (see EXPERIMENTS.md "Result cache").
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.analysis import (
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_recovery_fraction,
    measure_reference_distance_distortion,
)
from repro.core import FrameworkModel, calibrate_scenario
from repro.testbed import (
    DEVICES,
    CellSummary,
    ExperimentConfig,
    ExperimentEngine,
    GridCell,
    ResultCache,
    backend_from_env,
)
from repro.video import (
    CodecConfig,
    analyze_motion,
    decode_bitstream,
    encode_sequence,
    generate_clip,
    sensitivity_for,
    sequence_mse,
)

REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
N_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "240"))
RESULTS_DIR = Path(__file__).parent / "results"

_SEEDS = {"slow": 2013, "medium": 2015, "fast": 2014}

_CACHE_ENABLED = os.environ.get("REPRO_CACHE", "1").lower() not in (
    "0", "false", "no")
CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR",
                                str(RESULTS_DIR / "cache")))


def _env_int(name: str):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(f"{name} must be an integer, got {raw!r}")


ENGINE = ExperimentEngine(
    cache=ResultCache(
        backend=backend_from_env(CACHE_DIR),
        max_bytes=_env_int("REPRO_CACHE_MAX_BYTES"),
        max_entries=_env_int("REPRO_CACHE_MAX_ENTRIES"),
    ) if _CACHE_ENABLED else None,
    master_seed=int(os.environ.get("REPRO_BENCH_SEED", "0")),
    repeats=REPEATS,
)


def scenario_key(motion: str, gop_size: int) -> str:
    """Register the clip/bitstream for one cell and return its key."""
    key = f"{motion}/gop{gop_size}/{N_FRAMES}f"
    ENGINE.add_scenario(
        key, get_clip(motion), get_bitstream(motion, gop_size),
        meta={"motion": motion, "gop_size": gop_size, "frames": N_FRAMES},
    )
    return key


def grid_cell(motion: str, gop_size: int,
              config: ExperimentConfig) -> GridCell:
    """A :class:`GridCell` for the shared engine (scenario auto-registered)."""
    return GridCell(scenario_key(motion, gop_size), config)


def run_cell(motion: str, gop_size: int,
             config: ExperimentConfig) -> CellSummary:
    """Run (or replay from cache) one experiment cell via the engine."""
    return ENGINE.run_cell(scenario_key(motion, gop_size), config)


@lru_cache(maxsize=None)
def get_clip(motion: str):
    return generate_clip(motion, n_frames=N_FRAMES, seed=_SEEDS[motion])


@lru_cache(maxsize=None)
def get_bitstream(motion: str, gop_size: int):
    return encode_sequence(get_clip(motion),
                           CodecConfig(gop_size=gop_size, quantizer=8))


@lru_cache(maxsize=None)
def get_sensitivity(motion: str) -> float:
    return sensitivity_for(analyze_motion(get_clip(motion)).motion_class)


@lru_cache(maxsize=None)
def get_framework(motion: str, gop_size: int, device_key: str
                  ) -> FrameworkModel:
    """Calibrated analytical model for one clip/GOP/device cell."""
    clip = get_clip(motion)
    bitstream = get_bitstream(motion, gop_size)
    sensitivity = get_sensitivity(motion)
    curve = measure_reference_distance_distortion(clip, max_distance=30)
    polynomial = fit_distortion_polynomial(
        curve, cap=blank_frame_distortion(clip)
    )
    recovery = measure_recovery_fraction(
        clip, gop_size=gop_size, sensitivity_fraction=sensitivity
    )
    baseline = sequence_mse(clip, decode_bitstream(bitstream))
    scenario = calibrate_scenario(
        bitstream,
        cipher_costs=DEVICES[device_key].cipher_costs,
        polynomial=polynomial,
        sensitivity_fraction=sensitivity,
        recovery_fraction=recovery,
        baseline_distortion=baseline,
    )
    return FrameworkModel(scenario)


def publish(name: str, text: str) -> None:
    """Print a rendered figure and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")


@pytest.fixture(scope="session")
def repeats() -> int:
    return REPEATS


@pytest.fixture(scope="session", autouse=True)
def _engine_lifecycle():
    """Release the engine's worker pool when the bench session ends."""
    yield
    stats = ENGINE.stats()
    parts = [f"simulations run: {stats['simulations_run']}"]
    cache_stats = stats["cache"]
    if cache_stats is not None:
        parts.append(f"cache hits: {cache_stats['hits']}")
        parts.append(f"misses: {cache_stats['misses']}")
        parts.append(f"evictions: {cache_stats['evictions']}")
        parts.append(f"corrupt: {cache_stats['corrupt']}")
        parts.append(
            f"entries: {cache_stats['entries']}"
            f" ({cache_stats['total_bytes']} B,"
            f" {cache_stats['index_backend']} index)")
    print(f"\n[experiment engine] {', '.join(parts)}")
    ENGINE.close()
