"""Shared infrastructure for the figure/table benches.

Every bench regenerates one of the paper's tables or figures: it runs
the simulated testbed (and, where the figure shows "Analysis", the
analytical framework) and renders the figure as an aligned text table,
printed and written under ``benchmarks/results/``.

Knobs (environment variables):

- ``REPRO_BENCH_REPEATS``  repetitions per experimental cell (default 3;
  the paper uses 20 — set 20 for paper-grade confidence intervals);
- ``REPRO_BENCH_FRAMES``   clip length in frames (default 240; the paper
  uses 300).
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.analysis import (
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_recovery_fraction,
    measure_reference_distance_distortion,
)
from repro.core import FrameworkModel, calibrate_scenario
from repro.testbed import DEVICES
from repro.video import (
    CodecConfig,
    analyze_motion,
    decode_bitstream,
    encode_sequence,
    generate_clip,
    sensitivity_for,
    sequence_mse,
)

REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
N_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "240"))
RESULTS_DIR = Path(__file__).parent / "results"

_SEEDS = {"slow": 2013, "medium": 2015, "fast": 2014}


@lru_cache(maxsize=None)
def get_clip(motion: str):
    return generate_clip(motion, n_frames=N_FRAMES, seed=_SEEDS[motion])


@lru_cache(maxsize=None)
def get_bitstream(motion: str, gop_size: int):
    return encode_sequence(get_clip(motion),
                           CodecConfig(gop_size=gop_size, quantizer=8))


@lru_cache(maxsize=None)
def get_sensitivity(motion: str) -> float:
    return sensitivity_for(analyze_motion(get_clip(motion)).motion_class)


@lru_cache(maxsize=None)
def get_framework(motion: str, gop_size: int, device_key: str
                  ) -> FrameworkModel:
    """Calibrated analytical model for one clip/GOP/device cell."""
    clip = get_clip(motion)
    bitstream = get_bitstream(motion, gop_size)
    sensitivity = get_sensitivity(motion)
    curve = measure_reference_distance_distortion(clip, max_distance=30)
    polynomial = fit_distortion_polynomial(
        curve, cap=blank_frame_distortion(clip)
    )
    recovery = measure_recovery_fraction(
        clip, gop_size=gop_size, sensitivity_fraction=sensitivity
    )
    baseline = sequence_mse(clip, decode_bitstream(bitstream))
    scenario = calibrate_scenario(
        bitstream,
        cipher_costs=DEVICES[device_key].cipher_costs,
        polynomial=polynomial,
        sensitivity_fraction=sensitivity,
        recovery_fraction=recovery,
        baseline_distortion=baseline,
    )
    return FrameworkModel(scenario)


def publish(name: str, text: str) -> None:
    """Print a rendered figure and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")


@pytest.fixture(scope="session")
def repeats() -> int:
    return REPEATS
