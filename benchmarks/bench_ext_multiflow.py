"""Extension: multi-flow contention on the event-kernel transport.

The paper's testbed ran two phones against one AP, but its sender model
(eq. 19) is single-flow; the discrete-event kernel makes the contention
scenario expressible.  This bench sweeps the contender count and
reports *per-flow delay percentiles* — the tail behaviour per-packet
retry/contention dynamics create and a mean-service-time model cannot:

- mean per-packet delay grows with the number of contending flows (the
  DCF fixed point yields a lower packet success rate, so more backoff,
  plus head-of-line blocking on the shared medium);
- the flows are fair: identical offered load sees similar delays;
- tails amplify contention (p99 >> p50 for every flow count).

Grid cells run through the shared cached engine — a warm re-run of the
whole multi-flow grid performs zero new simulations.
"""

from conftest import ENGINE, get_bitstream, get_sensitivity, grid_cell, publish

from repro.analysis import render_table
from repro.core import standard_policies
from repro.testbed import DEVICES, ExperimentConfig, run_multiflow

FLOW_COUNTS = (1, 2, 4)
MOTION = "slow"
GOP = 30
DEVICE = "samsung-s2"


def _config(flows: int) -> ExperimentConfig:
    return ExperimentConfig(
        policy=standard_policies("AES256")["I"],
        device=DEVICES[DEVICE],
        sensitivity_fraction=get_sensitivity(MOTION),
        decode_video=False,
        flows=flows,
        engine="events",
    )


def build_percentile_figure() -> str:
    """Direct kernel runs: one table row per (flow count, flow)."""
    rows = []
    means = {}
    for flows in FLOW_COUNTS:
        run = run_multiflow(
            get_bitstream(MOTION, GOP),
            flows=flows,
            policy=standard_policies("AES256")["I"],
            device=DEVICES[DEVICE],
            seed=0,
        )
        means[flows] = run.mean_delay_ms
        for flow_id, row in enumerate(run.delay_percentiles_ms()):
            rows.append([
                flows, flow_id, f"{row['mean']:.2f}", f"{row['p50']:.2f}",
                f"{row['p90']:.2f}", f"{row['p99']:.2f}",
            ])
            assert row["p99"] >= row["p90"] >= row["p50"]
        per_flow = [row["mean"] for row in run.delay_percentiles_ms()]
        # Fairness: same offered load, similar delays.
        assert max(per_flow) < 2.0 * min(per_flow)
    # Contention grows delay: 4 contenders are strictly worse than 1.
    assert means[4] > means[1]
    assert means[2] > means[1]
    return render_table(
        ["flows", "flow", "mean (ms)", "p50 (ms)", "p90 (ms)", "p99 (ms)"],
        rows,
        title="ext: per-flow delay percentiles vs contender count"
              f" ({DEVICES[DEVICE].name}, {MOTION} motion, I(AES256))",
    )


def test_ext_multiflow_percentiles(benchmark):
    text = benchmark.pedantic(build_percentile_figure, rounds=1,
                              iterations=1)
    publish("ext_multiflow", text)


def test_ext_multiflow_grid_cached(benchmark):
    """The flows sweep as engine grid cells: cached, and a warm re-run
    performs zero new simulations."""
    def sweep():
        cells = [grid_cell(MOTION, GOP, _config(flows))
                 for flows in FLOW_COUNTS]
        first = ENGINE.run_grid(cells)
        before = ENGINE.simulations_run
        second = ENGINE.run_grid(cells)
        assert ENGINE.simulations_run == before, \
            "warm multi-flow grid re-run must perform 0 simulations"
        assert [s.delay_ms for s in first] == [s.delay_ms for s in second]
        delays = {flows: summary.delay_ms
                  for flows, summary in zip(FLOW_COUNTS, first)}
        assert delays[4].mean > delays[1].mean
        return delays
    delays = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(
        "ext_multiflow_grid",
        "Engine grid (cached) — mean per-packet delay vs contenders:\n"
        + "\n".join(f"  {flows} flow(s): {delay.mean:.2f}"
                    f" +/- {delay.ci_halfwidth:.2f} ms"
                    for flows, delay in sorted(delays.items())),
    )
