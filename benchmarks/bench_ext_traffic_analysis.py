"""Extension bench: the traffic-analysis arms race the paper defers.

Section 3: "The eavesdropper may be able to distinguish packets as
belonging to either I-frames or P-frames based on their size ... the
sender can obfuscate these features by using techniques such as padding
the payload; we do not consider these possibilities in this work."

This bench quantifies both sides: the size-threshold classifier's
advantage on the raw flow, and what each padding defence costs in
delay, power and bandwidth to take that advantage away.
"""

from conftest import get_bitstream, get_clip, publish

from repro.analysis import render_table
from repro.core import standard_policies
from repro.testbed import DEVICES, SenderSimulator
from repro.testbed.traffic_analysis import (
    SizePacketClassifier,
    evaluate_classifier,
    pad_packets,
)
from repro.video.packetizer import packetize


def build_report() -> str:
    bitstream = get_bitstream("slow", 30)
    policy = standard_policies("AES256")["I"]
    raw_packets = packetize(bitstream, carry_payload=False)
    classifier = SizePacketClassifier().fit(raw_packets)

    rows = []
    for mode in ("none", "buckets", "mtu"):
        flow = pad_packets(raw_packets, mode)
        report = evaluate_classifier(classifier, flow)
        simulator = SenderSimulator(
            bitstream, device=DEVICES["samsung-s2"], padding=mode
        )
        run = simulator.run(policy, seed=0)
        total_bytes = sum(p.payload_size for p in flow)
        rows.append([
            mode,
            f"{report.advantage:.3f}",
            f"{report.i_recall:.2f}",
            f"{run.mean_delay_ms:.2f}",
            f"{total_bytes / 1024:.0f}",
        ])
    # Shape: padding monotonically removes the attacker's advantage and
    # monotonically costs bandwidth/delay.
    advantages = [float(r[1]) for r in rows]
    assert advantages[0] > 0.4
    assert advantages[0] >= advantages[1] >= advantages[2]
    assert advantages[2] < 0.05
    delays = [float(r[3]) for r in rows]
    assert delays[0] < delays[2]
    return render_table(
        ["padding", "attacker advantage", "I-fragment recall",
         "delay (ms)", "flow size (KiB)"],
        rows,
        title="Extension — packet-size traffic analysis vs padding"
              " (slow motion, policy I, AES256, Samsung S-II)",
    )


def test_ext_traffic_analysis(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ext_traffic_analysis", text)
