"""Extension bench: GOP size as a security/cost knob.

The paper evaluates two GOP sizes (30, 50) as given.  The GOP size is
actually a tuning knob of the selective-encryption trade-off: shorter
GOPs mean more I-frames, i.e. more bytes to encrypt under the I-policy
(higher delay/energy) but also faster recovery from losses for the
legitimate receiver.  This bench sweeps G with the analytical framework
(no simulation needed) and reports both sides.
"""

from conftest import get_clip, publish

from repro.analysis import (
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_recovery_fraction,
    measure_reference_distance_distortion,
    render_table,
)
from repro.core import FrameworkModel, calibrate_scenario, standard_policies
from repro.testbed import DEVICES
from repro.video import CodecConfig, encode_sequence

GOP_SIZES = (10, 20, 30, 50, 60)


def build_report() -> str:
    clip = get_clip("slow")
    curve = measure_reference_distance_distortion(clip, max_distance=30)
    polynomial = fit_distortion_polynomial(
        curve, cap=blank_frame_distortion(clip)
    )
    policy = standard_policies("AES256")["I"]

    rows = []
    encrypted_fractions = []
    receiver_psnrs = []
    for gop_size in GOP_SIZES:
        bitstream = encode_sequence(
            clip, CodecConfig(gop_size=gop_size, quantizer=8)
        )
        recovery = measure_recovery_fraction(
            clip, gop_size=gop_size, sensitivity_fraction=0.55
        )
        scenario = calibrate_scenario(
            bitstream,
            cipher_costs=DEVICES["samsung-s2"].cipher_costs,
            polynomial=polynomial,
            sensitivity_fraction=0.55,
            recovery_fraction=recovery,
        )
        # Evaluate the receiver under a mildly lossy link to expose the
        # recovery-speed benefit of short GOPs.
        lossy = scenario.with_delivery_rate(0.97)
        model = FrameworkModel(lossy)
        prediction = model.predict(policy)
        q = policy.encrypted_fraction(scenario.p_i)
        encrypted_fractions.append(q)
        receiver_psnrs.append(prediction.receiver_psnr_db)
        rows.append([
            gop_size,
            f"{q:.1%}",
            f"{prediction.delay_ms:.2f}",
            f"{prediction.receiver_psnr_db:.2f}",
            f"{prediction.eavesdropper_psnr_db:.2f}",
        ])
    # Shape: shorter GOPs encrypt a larger packet fraction...
    assert encrypted_fractions == sorted(encrypted_fractions, reverse=True)
    # ...but give the receiver better quality under loss (more frequent
    # resync points).
    assert receiver_psnrs[0] > receiver_psnrs[-1]
    return render_table(
        ["GOP size", "packets encrypted (policy I)", "delay (ms)",
         "receiver PSNR @ 3% loss (dB)", "eavesdropper PSNR (dB)"],
        rows,
        title="Extension — GOP size as a security/cost knob"
              " (slow motion, policy I, AES256, model)",
    )


def test_ext_gop_sweep(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ext_gop_sweep", text)
