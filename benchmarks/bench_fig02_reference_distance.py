"""Fig. 2: average distortion vs reference-frame distance, per motion class.

Paper: three panels (low / medium / high motion) showing how the MSE of
substituting a d-frames-old reference grows with d, plus the degree-5
polynomial fit the distortion model consumes.
"""

from conftest import get_clip, publish

from repro.analysis import (
    fit_distortion_polynomial,
    measure_reference_distance_distortion,
    render_table,
)

DISTANCES = (1, 2, 3, 4, 6, 8)


def build_figure() -> str:
    rows = []
    fits = {}
    for motion in ("slow", "medium", "fast"):
        clip = get_clip(motion)
        curve = measure_reference_distance_distortion(
            clip, max_distance=max(DISTANCES)
        )
        poly = fit_distortion_polynomial(curve)
        fits[motion] = poly
        lookup = dict(zip(curve.distances, curve.mean_distortion))
        for distance in DISTANCES:
            rows.append([
                motion, distance,
                f"{lookup[distance]:.1f}",
                f"{poly(distance):.1f}",
            ])
    text = render_table(
        ["motion class", "distance (frames)", "measured MSE",
         "degree-5 fit"],
        rows,
        title="Fig. 2 — distortion vs reference distance"
              " (low/medium/high motion)",
    )
    # Shape assertions: distortion grows with motion class at every
    # distance, and grows with distance for moving content.
    for distance in DISTANCES:
        values = [
            next(float(r[2]) for r in rows
                 if r[0] == m and r[1] == distance)
            for m in ("slow", "medium", "fast")
        ]
        assert values[0] < values[1] < values[2], (
            f"motion ordering broken at distance {distance}"
        )
    return text


def test_fig02_reference_distance(benchmark):
    text = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    publish("fig02_reference_distance", text)
