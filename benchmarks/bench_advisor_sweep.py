#!/usr/bin/env python
"""Model benchmark: batched vector policy sweeps vs the scalar oracle.

Times one cold advisor recommendation — G-matrix fixed point, waiting-
time inversion, distortion/PSNR mapping, selection — over growing
candidate ladders (9 / 27 / 81 policies) on both model backends:

* **scalar** — the per-policy oracle stack (one full solve per lane);
* **vector** — :mod:`repro.core.vector_models`, every lane in one
  struct-of-arrays numpy pass.

Each engine is timed in its own phase (interleaving them lets the
scalar path evict the vector path's working set and inflates its
times); the reported figure per point is the best of several repeats.

Results merge into the crypto micro-bench report (``BENCH_crypto.json``
under an ``advisor_sweep`` section) so ``repro bench trend`` gates the
``*_per_s`` throughput keys against the committed baseline; the
speedups ride along un-gated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/crypto_microbench.py
    PYTHONPATH=src python benchmarks/bench_advisor_sweep.py --check-trend

``--smoke`` is the PR-tier mode: the 9-policy ladder through both
engines, asserting they select the same policy and agree on every
sweep scalar to tight tolerance (writes nothing).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.cli import main as repro_main
from repro.core.advisor import (
    PolicyAdvisor,
    choice_payload,
    default_candidates,
)
from repro.testbed.advisor_service import ServiceRequest, build_scenario

DEFAULT_BASELINE = Path("benchmarks/results/bench_baseline.json")
FRAMES, GOP = 12, 6          # the fast cold path; the model is exact
SEED0 = 500
LADDERS = (9, 27, 81)
SCALAR_REPEATS = 7
VECTOR_REPEATS = 50
TARGET_SPEEDUP = 20.0        # acceptance gate, 9-policy ladder


def _ladder(size: int):
    """A candidate ladder of exactly ``size`` policies: the paper's
    I / I+fraction-of-P / P / all shape with a denser fraction grid."""
    if size == 9:
        return default_candidates()
    fractions = np.linspace(0.01, 0.99, size - 3)
    return default_candidates(fractions=[float(f) for f in fractions])


def _scenario():
    return build_scenario(ServiceRequest(frames=FRAMES, gop=GOP,
                                         seed=SEED0))


def _time_recommend(scenario, candidates, engine: str,
                    repeats: int) -> float:
    """Best-of-``repeats`` seconds for one cold recommendation: a fresh
    advisor (empty memo) swept over ``candidates`` on ``engine``."""
    best = float("inf")
    for _ in range(repeats):
        advisor = PolicyAdvisor(scenario, engine=engine)
        start = time.perf_counter()
        advisor.recommend(candidates=candidates)
        best = min(best, time.perf_counter() - start)
    return best


def _assert_engines_agree(scenario, candidates) -> None:
    """Same selection, same sweep scalars to float tolerance."""
    scalar = choice_payload(PolicyAdvisor(scenario, engine="scalar")
                            .recommend(candidates=candidates))
    vector = choice_payload(PolicyAdvisor(scenario, engine="vector")
                            .recommend(candidates=candidates))
    assert scalar["recommended"] == vector["recommended"], (
        scalar["recommended"], vector["recommended"])
    assert scalar["satisfied"] == vector["satisfied"]
    assert scalar["sweep"].keys() == vector["sweep"].keys()
    for label, entry in scalar["sweep"].items():
        other = vector["sweep"][label]
        assert entry["policy"] == other["policy"], label
        for key in ("delay_ms", "waiting_ms", "traffic_intensity",
                    "receiver_psnr_db", "eavesdropper_psnr_db",
                    "eavesdropper_mos"):
            reference = entry[key]
            tolerance = 1e-7 * max(1.0, abs(reference))
            assert abs(other[key] - reference) <= tolerance, (
                label, key, other[key], reference)


def _smoke() -> None:
    """PR-tier check: the engines are interchangeable on the default
    ladder, and the vector pass actually runs batched."""
    scenario = _scenario()
    candidates = _ladder(9)
    _assert_engines_agree(scenario, candidates)
    advisor = PolicyAdvisor(scenario, engine="vector")
    advisor.recommend(candidates=candidates)
    assert advisor.evaluations == len(candidates)
    # Re-selection over the memo must not re-solve any lane.
    advisor.recommend(target_psnr_db=25.0, candidates=candidates)
    assert advisor.evaluations == len(candidates)
    print(f"smoke: scalar and vector engines agree over"
          f" {len(candidates)} policies (selection + sweep scalars),"
          f" memo reused on re-selection")


def _bench() -> dict:
    scenario = _scenario()
    ladders = {size: _ladder(size) for size in LADDERS}
    for candidates in ladders.values():
        _assert_engines_agree(scenario, candidates)

    # Phase-separate the engines: all scalar points, then all vector.
    scalar_s = {size: _time_recommend(scenario, candidates, "scalar",
                                      SCALAR_REPEATS)
                for size, candidates in ladders.items()}
    vector_s = {size: _time_recommend(scenario, candidates, "vector",
                                      VECTOR_REPEATS)
                for size, candidates in ladders.items()}

    section = {"frames": FRAMES, "ladders": {}}
    for size in LADDERS:
        section["ladders"][str(size)] = {
            "policies": size,
            "scalar_ms": scalar_s[size] * 1e3,
            "vector_ms": vector_s[size] * 1e3,
            "scalar_policy_ms": scalar_s[size] * 1e3 / size,
            "vector_policy_ms": vector_s[size] * 1e3 / size,
            "vector_recommendations_per_s": 1.0 / vector_s[size],
            "vector_policies_per_s": size / vector_s[size],
            "speedup": scalar_s[size] / vector_s[size],
        }
    return section


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="PR-tier mode: assert engine agreement on"
                             " the default ladder; writes no report")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_crypto.json"),
                        help="report to merge the advisor_sweep section"
                             " into (default ./BENCH_crypto.json)")
    parser.add_argument("--check-trend", action="store_true",
                        help="after writing, run the regression gate"
                             " against the committed baseline")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline for --check-trend (default"
                             f" {DEFAULT_BASELINE})")
    args = parser.parse_args()

    if args.smoke:
        _smoke()
        return

    section = _bench()
    for size, point in section["ladders"].items():
        print(f"{size:>3} policies: scalar {point['scalar_ms']:8.2f} ms,"
              f" vector {point['vector_ms']:7.2f} ms"
              f" ({point['vector_recommendations_per_s']:7.1f} cold"
              f" rec/s), speedup {point['speedup']:6.1f}x")
    print(f"target : >= {TARGET_SPEEDUP:.0f}x on the 9-policy ladder")

    report = {}
    if args.out.exists():
        report = json.loads(args.out.read_text())
    report["advisor_sweep"] = section
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[saved to {args.out}]")
    if args.check_trend:
        raise SystemExit(repro_main([
            "bench", "trend", "--current", str(args.out),
            "--baseline", str(args.baseline),
        ]))


if __name__ == "__main__":
    main()
