"""Figs. 12-15: the HTTP/TCP experiments of Section 6.4.

On a hotspot with residual loss, HTTP/TCP transfers pay retransmission
latency (Figs. 12/13 show higher delays than the UDP Figs. 7/8) but the
selective-encryption trends survive unchanged: the eavesdropper
distortion (Fig. 14) and MOS (Fig. 15) orderings match the RTP/UDP case.
"""

from functools import lru_cache

from conftest import REPEATS, get_bitstream, get_clip, get_sensitivity, publish

from repro.analysis import render_table
from repro.core import standard_policies
from repro.testbed import (
    DEVICES,
    ExperimentConfig,
    HTTP_TCP,
    LinkConfig,
    run_repeated,
)

POLICY_ORDER = ("none", "P", "I", "all")


@lru_cache(maxsize=None)
def tcp_link() -> LinkConfig:
    """Contended hotspot with residual loss for TCP to repair."""
    base = LinkConfig.default(n_stations=4, channel_error_rate=0.08)
    return LinkConfig(phy=base.phy, dcf=base.dcf, retry_limit=1)


@lru_cache(maxsize=None)
def run_cell(device_key: str, algorithm: str, motion: str, gop_size: int,
             policy_name: str, decode: bool):
    policy = standard_policies(algorithm)[policy_name]
    config = ExperimentConfig(
        policy=policy,
        device=DEVICES[device_key],
        sensitivity_fraction=get_sensitivity(motion),
        transport=HTTP_TCP,
        link=tcp_link(),
        decode_video=decode,
    )
    return run_repeated(get_clip(motion), get_bitstream(motion, gop_size),
                        config, repeats=REPEATS)


def build_delay_figure(device_key: str, figure_name: str) -> str:
    rows = []
    for algorithm in ("AES256", "3DES"):
        for gop_size in (30, 50):
            for motion in ("slow", "fast"):
                for name in POLICY_ORDER:
                    cell = run_cell(device_key, algorithm, motion, gop_size,
                                    name, False)
                    rows.append([
                        algorithm, gop_size, motion, name,
                        f"{cell.delay_ms.mean:.2f}"
                        f" +/- {cell.delay_ms.ci_halfwidth:.2f}",
                    ])
    # Shape: none < all under every cipher/GOP/motion.
    def delay(algorithm, gop, motion, name):
        for row in rows:
            if row[:4] == [algorithm, gop, motion, name]:
                return float(row[4].split(" ")[0])
        raise KeyError
    for algorithm in ("AES256", "3DES"):
        for gop in (30, 50):
            for motion in ("slow", "fast"):
                assert (delay(algorithm, gop, motion, "none")
                        < delay(algorithm, gop, motion, "all"))
    return render_table(
        ["cipher", "GOP", "motion", "encryption level",
         "experiment delay (ms)"],
        rows,
        title=f"{figure_name} — HTTP/TCP per-packet latency"
              f" ({DEVICES[device_key].name})",
    )


def build_fig14() -> str:
    rows = []
    for gop_size in (30, 50):
        for motion in ("slow", "fast"):
            for name in POLICY_ORDER:
                cell = run_cell("samsung-s2", "AES256", motion, gop_size,
                                name, True)
                rows.append([
                    gop_size, motion, name,
                    f"{cell.eavesdropper_psnr_db.mean:.2f}",
                ])
    # The UDP orderings survive TCP (Section 6.4's claim).
    def psnr(gop, motion, name):
        return next(float(r[3]) for r in rows
                    if r[0] == gop and r[1] == motion and r[2] == name)
    for gop in (30, 50):
        assert psnr(gop, "slow", "I") < psnr(gop, "fast", "I") - 5.0
        assert psnr(gop, "fast", "P") < psnr(gop, "slow", "P") - 5.0
        for motion in ("slow", "fast"):
            assert psnr(gop, motion, "all") < psnr(gop, motion, "none") - 15.0
    return render_table(
        ["GOP", "motion", "encryption level", "eavesdropper PSNR (dB)"],
        rows,
        title="Fig. 14 — eavesdropper distortion with HTTP/TCP"
              " (AES256, Samsung S-II)",
    )


def build_fig15() -> str:
    rows = []
    for gop_size in (30, 50):
        for motion in ("slow", "fast"):
            for name in POLICY_ORDER:
                cell = run_cell("samsung-s2", "AES256", motion, gop_size,
                                name, True)
                rows.append([
                    gop_size, motion, name,
                    f"{cell.eavesdropper_mos.mean:.2f}",
                ])
    return render_table(
        ["GOP", "motion", "encryption level", "eavesdropper MOS"],
        rows,
        title="Fig. 15 — Mean Opinion Score with HTTP/TCP"
              " (AES256, Samsung S-II)",
    )


def test_fig12_tcp_delay_samsung(benchmark):
    text = benchmark.pedantic(
        build_delay_figure, args=("samsung-s2", "Fig. 12"),
        rounds=1, iterations=1,
    )
    publish("fig12_tcp_delay_samsung", text)


def test_fig13_tcp_delay_htc(benchmark):
    text = benchmark.pedantic(
        build_delay_figure, args=("htc-amaze", "Fig. 13"),
        rounds=1, iterations=1,
    )
    publish("fig13_tcp_delay_htc", text)


def test_fig14_tcp_distortion(benchmark):
    text = benchmark.pedantic(build_fig14, rounds=1, iterations=1)
    publish("fig14_tcp_distortion", text)


def test_fig15_tcp_mos(benchmark):
    text = benchmark.pedantic(build_fig15, rounds=1, iterations=1)
    publish("fig15_tcp_mos", text)


def test_tcp_slower_than_udp(benchmark):
    """Figs. 12/13 vs Figs. 7/8: TCP latency exceeds UDP latency under
    the same conditions (retransmissions)."""
    def compare():
        policy = standard_policies("AES256")["none"]
        from repro.testbed import UDP_RTP
        common = dict(
            device=DEVICES["samsung-s2"],
            sensitivity_fraction=get_sensitivity("fast"),
            link=tcp_link(), decode_video=False,
        )
        udp = run_repeated(
            get_clip("fast"), get_bitstream("fast", 30),
            ExperimentConfig(policy=policy, transport=UDP_RTP, **common),
            repeats=REPEATS,
        ).delay_ms.mean
        tcp = run_repeated(
            get_clip("fast"), get_bitstream("fast", 30),
            ExperimentConfig(policy=policy, transport=HTTP_TCP, **common),
            repeats=REPEATS,
        ).delay_ms.mean
        assert tcp > udp
        return udp, tcp
    udp_ms, tcp_ms = benchmark.pedantic(compare, rounds=1, iterations=1)
    publish(
        "fig12_15_tcp_vs_udp",
        "Transport comparison (fast, GOP=30, no encryption, lossy link):\n"
        f"  RTP/UDP:  {udp_ms:.2f} ms per packet (losses final)\n"
        f"  HTTP/TCP: {tcp_ms:.2f} ms per packet (losses retransmitted)",
    )
