"""Ablation: eq. (10)'s independence assumption.

The paper multiplies the component LSTs — "Assuming the random variables
T_e, T_b and T_t are mutually independent" (eq. 10).  In reality T_e and
T_t are *positively correlated*: both are driven by the same packet's
size (an MTU-sized I-fragment takes longer to encrypt AND to transmit).
Positive correlation raises Var(T) and therefore the queueing delay.

This bench simulates the same queue twice — once sampling the components
independently (the model's world) and once sampling them coupled through
a single per-packet frame-type draw (the physical world) — and compares
both against the analytic eq. (19) pipeline.  The asserted finding: the
error of the independence assumption is visible but second-order at the
paper's parameters (a few percent of E[W]).
"""

import numpy as np
from conftest import publish

from repro.analysis import render_table
from repro.core import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    MMPP2,
    ServiceTimeModel,
    TransmissionComponent,
    simulate_mmpp_g1,
    solve_mmpp_g1,
)


class CorrelatedService:
    """Same marginals as a ServiceTimeModel, but T_e and T_t share one
    per-packet frame-type draw (policy: encrypt everything)."""

    def __init__(self, model: ServiceTimeModel, p_i: float) -> None:
        self.model = model
        self.p_i = p_i
        self.mean = model.mean

    def sample(self, rng: np.random.Generator) -> float:
        is_i_packet = rng.random() < self.p_i
        enc = self.model.encryption
        atom_e = enc.atom_i if is_i_packet else enc.atom_p
        tx = self.model.transmission
        atom_t = tx.atom_i if is_i_packet else tx.atom_p
        return (atom_e.sample(rng)
                + self.model.backoff.sample(rng)
                + atom_t.sample(rng))


def build_report() -> str:
    p_i = 0.2
    service = ServiceTimeModel(
        # Policy "all": every packet encrypted, size-dependent times.
        EncryptionComponent(p_i, 1.0 - p_i,
                            GaussianAtom(1.9e-3, 1.9e-4),
                            GaussianAtom(0.95e-3, 0.95e-4)),
        BackoffComponent(p_s=0.9, lambda_b=3000.0),
        # Transmission also depends on the packet size.
        TransmissionComponent(
            p_i, GaussianAtom(0.42e-3, 1.2e-5), GaussianAtom(0.3e-3, 1e-5)
        ),
    )
    mmpp = MMPP2(p1=570.0, p2=1.03, lambda1=600.0, lambda2=30.0)

    analytic = solve_mmpp_g1(mmpp, service)
    independent = simulate_mmpp_g1(mmpp, service, n_packets=400_000, seed=0)
    correlated_model = CorrelatedService(service, p_i)
    correlated = simulate_mmpp_g1(mmpp, correlated_model,
                                  n_packets=400_000, seed=0)

    rows = [
        ["analytic eq. (19) (assumes independence)",
         f"{analytic.mean_waiting_time_s * 1e3:.4f}"],
        ["simulated, components independent",
         f"{independent.mean_waiting_time_s * 1e3:.4f}"],
        ["simulated, T_e/T_t coupled by packet size",
         f"{correlated.mean_waiting_time_s * 1e3:.4f}"],
    ]
    w_analytic = analytic.mean_waiting_time_s
    w_ind = independent.mean_waiting_time_s
    w_cor = correlated.mean_waiting_time_s
    # The analytic result matches its own (independent) world closely...
    assert abs(w_analytic - w_ind) < 0.1 * w_ind
    # ...and the physical coupling raises the delay, but only mildly.
    assert w_cor > 0.95 * w_ind
    assert abs(w_cor - w_ind) < 0.25 * w_ind
    rows.append(["independence error on E[W]",
                 f"{100 * abs(w_cor - w_ind) / w_cor:.1f}%"])
    return render_table(
        ["variant", "E[W] (ms)"],
        rows,
        title="Independence ablation — eq. (10)'s product form vs"
              " size-coupled service components (policy all)",
    )


def test_ablation_independence(benchmark):
    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ablation_independence", text)
