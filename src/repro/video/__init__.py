"""Video substrate: YUV frames, synthetic clips, a predictive codec,
MTU packetization, quality metrics and loss concealment.

Together these replace the paper's x264/FFmpeg/GPAC/EvalVid toolchain
(Sections 5-6) while preserving the structural properties the analytical
framework depends on: large fragmented I-frames, small content-dependent
P-frames, predictive decode dependencies and freeze-frame concealment.
"""

from .codec import CodecConfig, Decoder, Encoder, decode_bitstream, encode_sequence
from .concealment import ConcealedFrame, ConcealmentResult, conceal_decode
from .gop import Bitstream, EncodedFrame, FrameType, GopLayout
from .motion import (
    MotionClass,
    MotionReport,
    analyze_motion,
    block_motion_magnitude,
    frame_activity,
    sensitivity_for,
)
from .packetizer import (
    DEFAULT_MTU,
    Packet,
    frames_decodable,
    packetize,
    packetize_frame,
    required_packets,
)
from .quality import (
    MAX_PSNR_DB,
    distortion_from_psnr,
    frame_psnr,
    mos_from_psnr,
    mse,
    psnr_from_distortion,
    sequence_mos,
    sequence_mse,
    sequence_psnr,
)
from .synth import (
    FAST_MOTION,
    MEDIUM_MOTION,
    SLOW_MOTION,
    MotionProfile,
    SceneConfig,
    generate_clip,
    generate_mixed_clip,
    make_reference_clips,
)
from .yuv import CIF_HEIGHT, CIF_WIDTH, Frame, Sequence420, write_pgm

__all__ = [
    "CodecConfig", "Decoder", "Encoder", "decode_bitstream", "encode_sequence",
    "ConcealedFrame", "ConcealmentResult", "conceal_decode",
    "Bitstream", "EncodedFrame", "FrameType", "GopLayout",
    "MotionClass", "MotionReport", "analyze_motion",
    "block_motion_magnitude", "frame_activity", "sensitivity_for",
    "DEFAULT_MTU", "Packet", "frames_decodable", "packetize",
    "packetize_frame", "required_packets",
    "MAX_PSNR_DB", "distortion_from_psnr", "frame_psnr", "mos_from_psnr",
    "mse", "psnr_from_distortion", "sequence_mos", "sequence_mse",
    "sequence_psnr",
    "FAST_MOTION", "MEDIUM_MOTION", "SLOW_MOTION", "MotionProfile",
    "SceneConfig", "generate_clip", "generate_mixed_clip",
    "make_reference_clips",
    "CIF_HEIGHT", "CIF_WIDTH", "Frame", "Sequence420", "write_pgm",
]
