"""GOP/frame/bitstream structure types shared across the video pipeline.

The paper assumes an ``IPP...P`` GOP (Section 2): one intra-coded I-frame
followed by ``G-1`` predictively coded P-frames, with the "GOP size" G
being the distance between consecutive I-frames (30 or 50 in Table 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

__all__ = ["FrameType", "EncodedFrame", "GopLayout", "Bitstream"]


class FrameType(enum.Enum):
    """Frame role inside a GOP."""

    I = "I"
    P = "P"
    B = "B"


@dataclass(frozen=True)
class GopLayout:
    """Static description of the encoding structure.

    The paper assumes ``IPP...P`` (``b_frames = 0``).  With
    ``b_frames = n`` the layout becomes ``I BB..B P BB..B P ...``: every
    (n+1)-th position after the I-frame is a P reference and the frames
    between references are bidirectionally predicted B-frames (Section 2
    notes B-frames are optional in the standards; the extension benches
    study what they change).
    """

    gop_size: int
    b_frames: int = 0

    def __post_init__(self) -> None:
        if self.gop_size < 1:
            raise ValueError("GOP size must be >= 1")
        if self.b_frames < 0:
            raise ValueError("b_frames must be >= 0")
        if self.b_frames and self.gop_size <= self.b_frames + 1:
            raise ValueError("GOP too small for the B-frame pattern")

    def frame_type(self, frame_index: int) -> FrameType:
        """Type of the frame at absolute index ``frame_index``."""
        if frame_index < 0:
            raise ValueError("frame index must be non-negative")
        position = frame_index % self.gop_size
        if position == 0:
            return FrameType.I
        if self.b_frames == 0:
            return FrameType.P
        if position % (self.b_frames + 1) == 0:
            return FrameType.P
        # Trailing positions with no later reference in the GOP are coded
        # as P (a B-frame needs a future reference).
        next_reference = ((position // (self.b_frames + 1)) + 1) * (
            self.b_frames + 1
        )
        if next_reference >= self.gop_size:
            return FrameType.P
        return FrameType.B

    def gop_index(self, frame_index: int) -> int:
        return frame_index // self.gop_size

    def position_in_gop(self, frame_index: int) -> int:
        """0 for the I-frame, 1..G-1 for the P-frames."""
        return frame_index % self.gop_size

    def n_gops(self, n_frames: int) -> int:
        return (n_frames + self.gop_size - 1) // self.gop_size


@dataclass
class EncodedFrame:
    """One compressed frame: its bytes plus its place in the GOP grid."""

    index: int
    frame_type: FrameType
    payload: bytes
    gop_index: int
    position_in_gop: int

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    @property
    def is_intra(self) -> bool:
        return self.frame_type is FrameType.I


@dataclass
class Bitstream:
    """A whole encoded clip: ordered frames plus geometry metadata."""

    frames: List[EncodedFrame]
    width: int
    height: int
    fps: float
    gop_layout: GopLayout
    quantizer: int
    name: str = "clip"

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[EncodedFrame]:
        return iter(self.frames)

    @property
    def total_bytes(self) -> int:
        return sum(frame.size_bytes for frame in self.frames)

    @property
    def duration_s(self) -> float:
        return len(self.frames) / self.fps

    def frames_of_type(self, frame_type: FrameType) -> List[EncodedFrame]:
        return [f for f in self.frames if f.frame_type is frame_type]

    def size_summary(self) -> Dict[str, float]:
        """Mean I- and P-frame sizes — the asymmetry Section 4.2 leans on."""
        i_sizes = [f.size_bytes for f in self.frames if f.is_intra]
        p_sizes = [f.size_bytes for f in self.frames if not f.is_intra]
        return {
            "mean_i_bytes": float(sum(i_sizes)) / len(i_sizes) if i_sizes else 0.0,
            "mean_p_bytes": float(sum(p_sizes)) / len(p_sizes) if p_sizes else 0.0,
            "n_i": float(len(i_sizes)),
            "n_p": float(len(p_sizes)),
        }

    def gops(self) -> List[List[EncodedFrame]]:
        """Frames grouped by GOP, in display order."""
        grouped: Dict[int, List[EncodedFrame]] = {}
        for frame in self.frames:
            grouped.setdefault(frame.gop_index, []).append(frame)
        return [grouped[key] for key in sorted(grouped)]
