"""Motion-level estimation and classification (the AForge substitute).

In the paper's workflow (Fig. 1) a motion-detection tool (AForge) estimates
the motion level of the clip about to be sent; the level picks the
distortion polynomial (Fig. 2) and the decoder sensitivity used by the
analytical framework.  This module plays that role: a block-matching
estimator measures how much each frame moves relative to its predecessor
and maps the clip onto the paper's {low, medium, high} classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .yuv import Sequence420

__all__ = [
    "MotionClass",
    "MotionReport",
    "frame_activity",
    "block_motion_magnitude",
    "analyze_motion",
    "sensitivity_for",
]


class MotionClass(enum.Enum):
    """The paper's three content classes (Fig. 2)."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class MotionReport:
    """Result of analysing a clip."""

    motion_class: MotionClass
    mean_activity: float        # mean abs luma change per pixel per frame
    mean_displacement: float    # mean best-match displacement, pixels/frame
    activity_series: Tuple[float, ...]


def frame_activity(previous: np.ndarray, current: np.ndarray) -> float:
    """Mean absolute luma difference between consecutive frames."""
    diff = np.abs(current.astype(np.int16) - previous.astype(np.int16))
    return float(np.mean(diff))


def block_motion_magnitude(
    previous: np.ndarray,
    current: np.ndarray,
    block: int = 16,
    search: int = 6,
) -> float:
    """Mean motion-vector magnitude from exhaustive block matching.

    A coarse grid of blocks is matched against the previous frame within
    ``±search`` pixels; the average winning displacement approximates the
    motion AForge's optical-flow detector would report.  ``search`` must be
    even so the zero displacement is on the search grid.
    """
    if search % 2:
        raise ValueError("search radius must be even (grid must include 0)")
    height, width = current.shape
    magnitudes: List[float] = []
    for top in range(0, height - block + 1, block * 2):
        for left in range(0, width - block + 1, block * 2):
            target = current[top:top + block, left:left + block].astype(np.int16)
            best_cost = None
            best_mag = 0.0
            for dy in range(-search, search + 1, 2):
                for dx in range(-search, search + 1, 2):
                    y0, x0 = top + dy, left + dx
                    if y0 < 0 or x0 < 0 or y0 + block > height or x0 + block > width:
                        continue
                    candidate = previous[y0:y0 + block, x0:x0 + block].astype(np.int16)
                    cost = float(np.mean(np.abs(target - candidate)))
                    if best_cost is None or cost < best_cost - 1e-9:
                        best_cost = cost
                        best_mag = float(np.hypot(dy, dx))
            magnitudes.append(best_mag)
    return float(np.mean(magnitudes)) if magnitudes else 0.0


# Activity thresholds separating the classes, in mean-abs-diff units.
# Calibrated on the synthetic reference clips (tests pin the classifier
# to the generator profiles).
_LOW_THRESHOLD = 2.0
_HIGH_THRESHOLD = 10.0


def analyze_motion(sequence: Sequence420, *, stride: int = 1,
                   with_displacement: bool = False) -> MotionReport:
    """Classify a clip's motion level.

    ``stride`` subsamples frame pairs for speed; ``with_displacement``
    additionally runs block matching (slower, finer-grained signal).
    """
    if len(sequence) < 2:
        raise ValueError("motion analysis needs at least two frames")
    activities: List[float] = []
    displacements: List[float] = []
    lumas = sequence.luma_stack()
    for i in range(stride, len(sequence), stride):
        activities.append(frame_activity(lumas[i - stride], lumas[i]))
        if with_displacement:
            displacements.append(
                block_motion_magnitude(lumas[i - stride], lumas[i])
            )
    mean_activity = float(np.mean(activities))
    if mean_activity < _LOW_THRESHOLD:
        motion_class = MotionClass.LOW
    elif mean_activity < _HIGH_THRESHOLD:
        motion_class = MotionClass.MEDIUM
    else:
        motion_class = MotionClass.HIGH
    return MotionReport(
        motion_class=motion_class,
        mean_activity=mean_activity,
        mean_displacement=float(np.mean(displacements)) if displacements else 0.0,
        activity_series=tuple(activities),
    )


def sensitivity_for(motion_class: MotionClass) -> float:
    """Decoder sensitivity fraction for a motion class (Section 4.3).

    The paper: "When a video flow is characterized by high (or fast)
    motion, the sensitivity s has a higher value compared to a low (or
    slow) motion video."  We express s as the fraction of the remaining
    ``n-1`` packets of a frame the decoder must receive; the absolute
    ``s`` used in eq. (20) is ``ceil(fraction * (n-1))``.
    """
    return {
        MotionClass.LOW: 0.55,
        MotionClass.MEDIUM: 0.75,
        MotionClass.HIGH: 0.90,
    }[motion_class]
