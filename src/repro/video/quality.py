"""Video quality metrics: MSE, PSNR (paper eq. 28) and EvalVid's MOS map.

The paper reports eavesdropper quality as luma PSNR computed by EvalVid
and as the Mean Opinion Score EvalVid derives from PSNR.  Both metrics are
reproduced here with the same definitions.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from .yuv import Frame, Sequence420

__all__ = [
    "mse",
    "psnr_from_distortion",
    "distortion_from_psnr",
    "frame_psnr",
    "sequence_mse",
    "sequence_psnr",
    "mos_from_psnr",
    "sequence_mos",
    "MAX_PSNR_DB",
]

# PSNR of a bit-exact frame is infinite; EvalVid caps it for averaging.
MAX_PSNR_DB = 100.0


def mse(reference: np.ndarray, degraded: np.ndarray) -> float:
    """Mean squared error between two luma planes."""
    if reference.shape != degraded.shape:
        raise ValueError(
            f"shape mismatch {reference.shape} vs {degraded.shape}"
        )
    diff = reference.astype(np.float64) - degraded.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr_from_distortion(distortion: float) -> float:
    """Paper eq. (28): ``PSNR = 20*log10(255 / sqrt(D))`` in dB."""
    if distortion < 0:
        raise ValueError("distortion must be non-negative")
    if distortion == 0:
        return MAX_PSNR_DB
    return min(20.0 * math.log10(255.0 / math.sqrt(distortion)), MAX_PSNR_DB)


def distortion_from_psnr(psnr_db: float) -> float:
    """Inverse of eq. (28): the MSE corresponding to a PSNR value."""
    return (255.0 / (10.0 ** (psnr_db / 20.0))) ** 2


def frame_psnr(reference: Frame, degraded: Frame) -> float:
    """Luma PSNR of one frame pair."""
    return psnr_from_distortion(mse(reference.y, degraded.y))


def sequence_mse(reference: Sequence420, degraded: Sequence420) -> float:
    """Mean per-frame luma MSE across a clip (the paper's average distortion,
    eq. 27, measured instead of modelled)."""
    if len(reference) != len(degraded):
        raise ValueError(
            f"length mismatch: {len(reference)} vs {len(degraded)} frames"
        )
    total = 0.0
    for ref_frame, deg_frame in zip(reference, degraded):
        total += mse(ref_frame.y, deg_frame.y)
    return total / len(reference)


def sequence_psnr(reference: Sequence420, degraded: Sequence420) -> float:
    """Clip-level PSNR: average distortion mapped through eq. (28).

    The paper converts its *average* distortion to PSNR (Section 4.3.4),
    so we do the same rather than averaging per-frame PSNRs (which would
    overweight pristine frames).
    """
    return psnr_from_distortion(sequence_mse(reference, degraded))


def mos_from_psnr(psnr_db: float) -> int:
    """EvalVid's PSNR-to-MOS bucket map (ITU-R heuristic).

    > 37 dB -> 5 (excellent), 31-37 -> 4, 25-31 -> 3, 20-25 -> 2,
    < 20 dB -> 1 (bad).  The paper's Figs. 5/15 use this scale.
    """
    if psnr_db > 37.0:
        return 5
    if psnr_db > 31.0:
        return 4
    if psnr_db > 25.0:
        return 3
    if psnr_db > 20.0:
        return 2
    return 1


def sequence_mos(reference: Sequence420, degraded: Sequence420) -> float:
    """Mean per-frame MOS across a clip, as EvalVid reports it.

    Per-frame PSNRs are bucketed individually and averaged, which is why
    the paper's MOS values are fractional (e.g. 1.26 in Table 2).
    """
    if len(reference) != len(degraded):
        raise ValueError("sequences must have equal length")
    scores: List[int] = []
    for ref_frame, deg_frame in zip(reference, degraded):
        scores.append(mos_from_psnr(frame_psnr(ref_frame, deg_frame)))
    return float(np.mean(scores))
