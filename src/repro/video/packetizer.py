"""MTU fragmentation and the RTP-like packet format of Section 5.

Each encoded frame is segmented at the network MTU: an I-frame becomes a
burst of MTU-sized packets, a P-frame typically a single small packet
(Section 4.2.1).  The RTP header carries a Marker bit the sender sets on
encrypted payloads so the legitimate receiver knows to decrypt them —
exactly the mechanism of Fig. 3.

This module also implements the frame-success rule the distortion model
formalises in eq. (20): a frame is decodable iff its *first* packet and at
least ``s`` of its remaining ``n-1`` packets arrive (and are decryptable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .gop import Bitstream, EncodedFrame, FrameType

__all__ = [
    "DEFAULT_MTU",
    "RTP_HEADER_BYTES",
    "UDP_IP_HEADER_BYTES",
    "Packet",
    "packetize",
    "packetize_frame",
    "frames_decodable",
    "required_packets",
]

DEFAULT_MTU = 1500
RTP_HEADER_BYTES = 12
UDP_IP_HEADER_BYTES = 28  # IPv4 (20) + UDP (8)


@dataclass(frozen=True)
class Packet:
    """One RTP packet of the video flow.

    ``encrypted`` mirrors the RTP Marker bit of Section 5; ``payload`` is
    the carried fragment (possibly ciphertext).  ``payload_size`` is kept
    explicit so size-only simulations can drop the bytes.
    """

    sequence_number: int
    frame_index: int
    frame_type: FrameType
    gop_index: int
    position_in_gop: int
    fragment_index: int
    n_fragments: int
    payload_size: int
    encrypted: bool = False
    payload: bytes = b""
    timestamp: float = 0.0

    @property
    def wire_bytes(self) -> int:
        """Bytes on the air including RTP/UDP/IP headers."""
        return self.payload_size + RTP_HEADER_BYTES + UDP_IP_HEADER_BYTES

    @property
    def is_first_fragment(self) -> bool:
        return self.fragment_index == 0

    def with_encryption(self, payload: bytes) -> "Packet":
        """The encrypted twin of this packet (Marker bit set)."""
        return replace(self, encrypted=True, payload=payload,
                       payload_size=len(payload))


def packetize_frame(frame: EncodedFrame, *, mtu: int = DEFAULT_MTU,
                    first_sequence_number: int = 0,
                    carry_payload: bool = True) -> List[Packet]:
    """Fragment one encoded frame at the MTU."""
    max_payload = mtu - RTP_HEADER_BYTES - UDP_IP_HEADER_BYTES
    if max_payload <= 0:
        raise ValueError(f"MTU {mtu} cannot fit the protocol headers")
    data = frame.payload
    n_fragments = max(1, math.ceil(len(data) / max_payload))
    packets = []
    for fragment in range(n_fragments):
        chunk = data[fragment * max_payload:(fragment + 1) * max_payload]
        packets.append(Packet(
            sequence_number=first_sequence_number + fragment,
            frame_index=frame.index,
            frame_type=frame.frame_type,
            gop_index=frame.gop_index,
            position_in_gop=frame.position_in_gop,
            fragment_index=fragment,
            n_fragments=n_fragments,
            payload_size=len(chunk),
            payload=chunk if carry_payload else b"",
        ))
    return packets


def packetize(bitstream: Bitstream, *, mtu: int = DEFAULT_MTU,
              carry_payload: bool = True) -> List[Packet]:
    """Fragment a whole bitstream into its transmission-order packet list."""
    packets: List[Packet] = []
    for frame in bitstream:
        packets.extend(packetize_frame(
            frame, mtu=mtu, first_sequence_number=len(packets),
            carry_payload=carry_payload,
        ))
    return packets


def required_packets(n_fragments: int, sensitivity_fraction: float) -> int:
    """Absolute sensitivity ``s`` of eq. (20) for a frame of ``n`` packets.

    ``s = ceil(fraction * (n-1))`` additional packets beyond the mandatory
    first one.
    """
    if not 0.0 <= sensitivity_fraction <= 1.0:
        raise ValueError("sensitivity fraction must be in [0, 1]")
    if n_fragments < 1:
        raise ValueError("a frame has at least one packet")
    return math.ceil(sensitivity_fraction * (n_fragments - 1))


def frames_decodable(
    packets: Sequence[Packet],
    usable: Iterable[bool],
    sensitivity_fraction: float,
) -> Set[int]:
    """Apply the eq. (20) frame-success rule to a received packet set.

    ``usable[i]`` says whether packet ``i`` both survived the channel and
    is decryptable by the observer (always true for plaintext packets; for
    an eavesdropper, false for every encrypted packet).  Returns the set
    of frame indices the observer can decode.
    """
    got_first: Dict[int, bool] = {}
    got_rest: Dict[int, int] = {}
    fragments: Dict[int, int] = {}
    for packet, ok in zip(packets, usable):
        fragments[packet.frame_index] = packet.n_fragments
        if not ok:
            continue
        if packet.is_first_fragment:
            got_first[packet.frame_index] = True
        else:
            got_rest[packet.frame_index] = got_rest.get(packet.frame_index, 0) + 1

    decodable: Set[int] = set()
    for frame_index, n_fragments in fragments.items():
        if not got_first.get(frame_index, False):
            continue
        needed = required_packets(n_fragments, sensitivity_fraction)
        if got_rest.get(frame_index, 0) >= needed:
            decodable.add(frame_index)
    return decodable
