"""YUV 4:2:0 frames and sequence containers.

The paper's pipeline starts from uncompressed YUV CIF (352x288) clips from
the TKN reference set, converts them with FFmpeg/x264, and measures
distortion on the decoded YUV.  This module provides the uncompressed
representation: a luma plane plus half-resolution chroma planes, all uint8,
with helpers to load/store the planar ``.yuv`` layout those tools use.

Distortion (Section 4.3.4) is computed on the luma plane, as EvalVid does.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

__all__ = ["CIF_WIDTH", "CIF_HEIGHT", "Frame", "Sequence420", "write_pgm"]

CIF_WIDTH = 352
CIF_HEIGHT = 288


@dataclass
class Frame:
    """One YUV 4:2:0 picture.  ``y`` is (H, W); ``u``/``v`` are (H/2, W/2)."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        if self.y.dtype != np.uint8 or self.u.dtype != np.uint8 or self.v.dtype != np.uint8:
            raise ValueError("YUV planes must be uint8")
        h, w = self.y.shape
        if h % 2 or w % 2:
            raise ValueError("frame dimensions must be even for 4:2:0")
        if self.u.shape != (h // 2, w // 2) or self.v.shape != (h // 2, w // 2):
            raise ValueError("chroma planes must be half resolution")

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @classmethod
    def blank(cls, width: int = CIF_WIDTH, height: int = CIF_HEIGHT,
              luma: int = 16) -> "Frame":
        """A uniform frame (the decoder's bootstrap reference)."""
        return cls(
            y=np.full((height, width), luma, dtype=np.uint8),
            u=np.full((height // 2, width // 2), 128, dtype=np.uint8),
            v=np.full((height // 2, width // 2), 128, dtype=np.uint8),
        )

    def copy(self) -> "Frame":
        return Frame(self.y.copy(), self.u.copy(), self.v.copy())

    def to_planar_bytes(self) -> bytes:
        """Serialize in the standard planar I420 order (Y then U then V)."""
        return self.y.tobytes() + self.u.tobytes() + self.v.tobytes()

    @classmethod
    def from_planar_bytes(cls, data: bytes, width: int, height: int) -> "Frame":
        y_size = width * height
        c_size = y_size // 4
        if len(data) != y_size + 2 * c_size:
            raise ValueError(
                f"expected {y_size + 2 * c_size} bytes for {width}x{height} I420,"
                f" got {len(data)}"
            )
        y = np.frombuffer(data, np.uint8, y_size).reshape(height, width)
        u = np.frombuffer(data, np.uint8, c_size, y_size).reshape(
            height // 2, width // 2
        )
        v = np.frombuffer(data, np.uint8, c_size, y_size + c_size).reshape(
            height // 2, width // 2
        )
        return cls(y.copy(), u.copy(), v.copy())


class Sequence420:
    """An in-memory uncompressed 4:2:0 sequence (the ``.yuv`` file analogue)."""

    def __init__(self, frames: Sequence[Frame], fps: float = 30.0,
                 name: str = "clip") -> None:
        if not frames:
            raise ValueError("a sequence needs at least one frame")
        width, height = frames[0].width, frames[0].height
        for frame in frames:
            if frame.width != width or frame.height != height:
                raise ValueError("all frames must share one geometry")
        self.frames: List[Frame] = list(frames)
        self.fps = float(fps)
        self.name = name

    @property
    def width(self) -> int:
        return self.frames[0].width

    @property
    def height(self) -> int:
        return self.frames[0].height

    @property
    def duration_s(self) -> float:
        return len(self.frames) / self.fps

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    def luma_stack(self) -> np.ndarray:
        """All luma planes as one (N, H, W) uint8 array."""
        return np.stack([frame.y for frame in self.frames])

    def save(self, path: Union[str, Path]) -> None:
        """Write the raw planar YUV file (what FFmpeg calls ``yuv420p``)."""
        with open(path, "wb") as handle:
            for frame in self.frames:
                handle.write(frame.to_planar_bytes())

    @classmethod
    def load(cls, path: Union[str, Path], width: int, height: int,
             fps: float = 30.0) -> "Sequence420":
        frame_bytes = width * height * 3 // 2
        frames = []
        with open(path, "rb") as handle:
            while True:
                chunk = handle.read(frame_bytes)
                if not chunk:
                    break
                if len(chunk) != frame_bytes:
                    raise ValueError("truncated YUV file")
                frames.append(Frame.from_planar_bytes(chunk, width, height))
        return cls(frames, fps=fps, name=Path(path).stem)


def write_pgm(path: Union[str, Path], luma: np.ndarray) -> None:
    """Dump one luma plane as a binary PGM (the Fig. 6 screenshot substitute)."""
    if luma.dtype != np.uint8 or luma.ndim != 2:
        raise ValueError("PGM dump expects a 2-D uint8 plane")
    height, width = luma.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(luma.tobytes())
