"""A from-scratch predictive video codec (the x264/GPAC substitute).

The analytical framework does not depend on H.264's coding tools — only on
the structure predictive coding induces (Section 2): intra-coded I-frames
that are large and get fragmented at the MTU, differential P-frames that
are small and content-dependent (tiny for slow motion, large for fast
motion), and the decode dependency of every P-frame on its predecessors
within the GOP.

This codec reproduces exactly that structure:

- **I-frames** quantize all three planes and entropy-code them with
  DEFLATE (zlib), giving content-dependent sizes two orders of magnitude
  above P-frames for slow content;
- **P-frames** quantize the residual against the previously *reconstructed*
  frame (closed-loop prediction, so encoder and decoder stay in sync) and
  entropy-code that; slow content yields near-empty residuals;
- the decoder reconstructs bit-exactly what the encoder's reconstruction
  loop produced, so a cleanly received stream has only quantization loss.

DEFLATE stands in for CAVLC/CABAC: both are entropy coders whose output
size tracks the information content of the residual, which is the property
the paper's delay/distortion trade-off rests on.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .gop import Bitstream, EncodedFrame, FrameType, GopLayout
from .yuv import Frame, Sequence420

__all__ = ["CodecConfig", "Encoder", "Decoder", "encode_sequence", "decode_bitstream"]

_MAGIC_I = 0x49  # 'I': intra frame
_MAGIC_P = 0x50  # 'P': predicted frame, residual-coded
_MAGIC_PI = 0x51  # 'P' frame whose content is intra-coded (intra fallback)
_MAGIC_B = 0x42  # 'B': bidirectionally predicted frame
# coding mode, width, height, frame index, global motion vector (dy, dx)
_HEADER = struct.Struct(">BHHIbb")

_MOTION_SEARCH_RANGE = 6  # pixels


@dataclass(frozen=True)
class CodecConfig:
    """Encoder parameters.

    ``quantizer`` is the uniform step applied to intra samples and
    residuals; larger values give smaller frames and more quantization
    distortion (it plays the role of H.264's QP).
    """

    gop_size: int = 30
    quantizer: int = 8
    compression_level: int = 6
    b_frames: int = 0

    def __post_init__(self) -> None:
        if self.gop_size < 1:
            raise ValueError("GOP size must be >= 1")
        if not 1 <= self.quantizer <= 64:
            raise ValueError("quantizer must be in [1, 64]")
        if not 1 <= self.compression_level <= 9:
            raise ValueError("zlib level must be in [1, 9]")
        # Delegate the pattern validation to GopLayout.
        GopLayout(self.gop_size, self.b_frames)


def _quantize_intra(plane: np.ndarray, q: int) -> np.ndarray:
    return (plane.astype(np.int16) // q).astype(np.uint8)


def _dequantize_intra(levels: np.ndarray, q: int) -> np.ndarray:
    return np.clip(levels.astype(np.int16) * q + q // 2, 0, 255).astype(np.uint8)


def _estimate_global_motion(current: np.ndarray,
                            reference: np.ndarray) -> Tuple[int, int]:
    """Global-pan motion estimation: the cheap core of H.264's motion
    compensation, enough to cancel camera pans.

    Searches integer (dy, dx) shifts on a subsampled grid, minimising
    the sum of absolute differences.  Chroma planes are half resolution
    and roll by floor(d/2): exact for even shifts, half-sample off for
    odd ones (invisible on 4:2:0 chroma).  Shifts wrap (np.roll),
    matching the toroidal synthetic scenes; for real content a wrapped
    edge strip simply stays in the residual.
    """
    best = (0, 0)
    current_coarse = current[::4, ::4].astype(np.int16)
    best_cost = None
    r = _MOTION_SEARCH_RANGE
    for dy in range(-r, r + 1):
        rolled_rows = np.roll(reference, dy, axis=0)
        for dx in range(-r, r + 1):
            candidate = np.roll(rolled_rows, dx, axis=1)
            cost = float(np.mean(np.abs(
                current_coarse - candidate[::4, ::4].astype(np.int16)
            )))
            if best_cost is None or cost < best_cost - 1e-9:
                best_cost = cost
                best = (dy, dx)
    return best


def _shift_frame(frame: Frame, dy: int, dx: int) -> Frame:
    """Apply a global motion vector to a reference frame (wrapping)."""
    if dy == 0 and dx == 0:
        return frame
    return Frame(
        y=np.roll(frame.y, (dy, dx), axis=(0, 1)),
        u=np.roll(frame.u, (dy // 2, dx // 2), axis=(0, 1)),
        v=np.roll(frame.v, (dy // 2, dx // 2), axis=(0, 1)),
    )


def _quantize_residual(residual: np.ndarray, q: int) -> np.ndarray:
    # Residuals live in [-255, 255]; symmetric mid-tread quantizer.
    levels = np.round(residual / q).astype(np.int16)
    return np.clip(levels, -127, 127).astype(np.int8)


def _dequantize_residual(levels: np.ndarray, q: int) -> np.ndarray:
    return levels.astype(np.int16) * q


class Encoder:
    """Stateful closed-loop encoder producing an ``IPP...P`` bitstream."""

    def __init__(self, config: CodecConfig) -> None:
        self.config = config
        self._reference: Optional[Frame] = None
        self._frame_index = 0

    def _encode_planes_intra(self, frame: Frame) -> Tuple[bytes, Frame]:
        q = self.config.quantizer
        parts = []
        recon_planes = []
        for plane in (frame.y, frame.u, frame.v):
            levels = _quantize_intra(plane, q)
            parts.append(levels.tobytes())
            recon_planes.append(_dequantize_intra(levels, q))
        raw = b"".join(parts)
        recon = Frame(*recon_planes)
        return raw, recon

    def _encode_planes_predicted(
        self, frame: Frame, reference: Frame
    ) -> Tuple[bytes, Frame, Tuple[int, int]]:
        q = self.config.quantizer
        dy, dx = _estimate_global_motion(frame.y, reference.y)
        shifted = _shift_frame(reference, dy, dx)
        parts = []
        recon_planes = []
        for plane, ref_plane in (
            (frame.y, shifted.y), (frame.u, shifted.u), (frame.v, shifted.v)
        ):
            residual = plane.astype(np.int16) - ref_plane.astype(np.int16)
            levels = _quantize_residual(residual, q)
            parts.append(levels.tobytes())
            recon = np.clip(
                ref_plane.astype(np.int16) + _dequantize_residual(levels, q),
                0, 255,
            ).astype(np.uint8)
            recon_planes.append(recon)
        raw = b"".join(parts)
        recon = Frame(*recon_planes)
        return raw, recon, (dy, dx)

    def encode_reference(self, frame: Frame, frame_index: int,
                         layout: GopLayout) -> Tuple[EncodedFrame, Frame]:
        """Encode an I- or P-reference frame at an explicit index.

        Returns the encoded frame and its reconstruction (the next
        reference for the prediction chain).  Used by the B-frame path,
        where references are coded against each other while B-frames in
        between are coded separately.
        """
        frame_type = layout.frame_type(frame_index)
        if frame_type is FrameType.B:
            # Promoted trailing frame: coded (and labelled) as a P
            # reference because no future anchor exists.
            frame_type = FrameType.P
        motion = (0, 0)
        if frame_type is FrameType.I or self._reference is None:
            raw, recon = self._encode_planes_intra(frame)
            magic = _MAGIC_I if frame_type is FrameType.I else _MAGIC_PI
            compressed = zlib.compress(raw, self.config.compression_level)
        else:
            raw, recon, motion = self._encode_planes_predicted(
                frame, self._reference
            )
            magic = _MAGIC_P
            compressed = zlib.compress(raw, self.config.compression_level)
            raw_intra, recon_intra = self._encode_planes_intra(frame)
            compressed_intra = zlib.compress(
                raw_intra, self.config.compression_level
            )
            if len(compressed_intra) < len(compressed):
                magic = _MAGIC_PI
                compressed = compressed_intra
                recon = recon_intra
                motion = (0, 0)
        header = _HEADER.pack(magic, frame.width, frame.height,
                              frame_index, motion[0], motion[1])
        encoded = EncodedFrame(
            index=frame_index,
            frame_type=frame_type,
            payload=header + compressed,
            gop_index=layout.gop_index(frame_index),
            position_in_gop=layout.position_in_gop(frame_index),
        )
        self._reference = recon
        return encoded, recon

    def encode_bidirectional(self, frame: Frame, frame_index: int,
                             previous_reference: Frame,
                             next_reference: Frame,
                             layout: GopLayout) -> EncodedFrame:
        """Encode a B-frame against the average of its two references.

        B-frames are never referenced themselves, so they update no
        reconstruction state.
        """
        q = self.config.quantizer
        predictor_planes = []
        for prev_plane, next_plane in (
            (previous_reference.y, next_reference.y),
            (previous_reference.u, next_reference.u),
            (previous_reference.v, next_reference.v),
        ):
            predictor_planes.append((
                (prev_plane.astype(np.int16) + next_plane.astype(np.int16))
                // 2
            ).astype(np.uint8))
        parts = []
        for plane, ref_plane in zip((frame.y, frame.u, frame.v),
                                    predictor_planes):
            residual = plane.astype(np.int16) - ref_plane.astype(np.int16)
            parts.append(_quantize_residual(residual, q).tobytes())
        compressed = zlib.compress(b"".join(parts),
                                   self.config.compression_level)
        header = _HEADER.pack(_MAGIC_B, frame.width, frame.height,
                              frame_index, 0, 0)
        return EncodedFrame(
            index=frame_index,
            frame_type=FrameType.B,
            payload=header + compressed,
            gop_index=layout.gop_index(frame_index),
            position_in_gop=layout.position_in_gop(frame_index),
        )

    def encode_frame(self, frame: Frame) -> EncodedFrame:
        """Encode the next frame in display order.

        P-frames carry an intra fallback: when the residual against the
        reference compresses worse than intra-coding the frame (rapid
        motion, scene cuts), the frame content is intra-coded while the
        frame keeps its P role in the GOP.  Real encoders do the same with
        per-macroblock intra modes; this is why fast-motion P-frames carry
        enough standalone information for an eavesdropper to partially
        recover content when only I-frames are encrypted (Section 6.2).
        """
        layout = GopLayout(self.config.gop_size)
        frame_type = layout.frame_type(self._frame_index)
        motion = (0, 0)
        if frame_type is FrameType.I or self._reference is None:
            frame_type = FrameType.I
            raw, recon = self._encode_planes_intra(frame)
            magic = _MAGIC_I
            compressed = zlib.compress(raw, self.config.compression_level)
        else:
            raw, recon, motion = self._encode_planes_predicted(
                frame, self._reference
            )
            magic = _MAGIC_P
            compressed = zlib.compress(raw, self.config.compression_level)
            raw_intra, recon_intra = self._encode_planes_intra(frame)
            compressed_intra = zlib.compress(
                raw_intra, self.config.compression_level
            )
            if len(compressed_intra) < len(compressed):
                magic = _MAGIC_PI
                compressed = compressed_intra
                recon = recon_intra
                motion = (0, 0)
        header = _HEADER.pack(magic, frame.width, frame.height,
                              self._frame_index, motion[0], motion[1])
        encoded = EncodedFrame(
            index=self._frame_index,
            frame_type=frame_type,
            payload=header + compressed,
            gop_index=layout.gop_index(self._frame_index),
            position_in_gop=layout.position_in_gop(self._frame_index),
        )
        self._reference = recon
        self._frame_index += 1
        return encoded


class Decoder:
    """Stateful decoder mirroring the encoder's reconstruction loop.

    The decoder assumes it is fed decodable frames in order; loss handling
    (freezing, reference substitution) lives in
    :mod:`repro.video.concealment`, which drives this class.
    """

    def __init__(self, config: CodecConfig) -> None:
        self.config = config
        self._reference: Optional[Frame] = None

    @property
    def reference(self) -> Optional[Frame]:
        """The most recently reconstructed frame."""
        return self._reference

    def set_reference(self, frame: Frame) -> None:
        """Override the prediction reference (used by concealment)."""
        self._reference = frame.copy()

    def decode_frame(self, encoded: EncodedFrame) -> Frame:
        """Decode one frame, updating the prediction reference."""
        magic, width, height, _index, motion_dy, motion_dx = (
            _HEADER.unpack_from(encoded.payload)
        )
        raw = zlib.decompress(encoded.payload[_HEADER.size:])
        q = self.config.quantizer
        y_size = width * height
        c_size = y_size // 4
        shapes = ((height, width), (height // 2, width // 2),
                  (height // 2, width // 2))
        offsets = (0, y_size, y_size + c_size)

        if magic == _MAGIC_B:
            raise ValueError(
                "B-frames need both references; use decode_b_frame"
            )
        if magic in (_MAGIC_I, _MAGIC_PI):
            planes = []
            for shape, offset in zip(shapes, offsets):
                levels = np.frombuffer(
                    raw, np.uint8, shape[0] * shape[1], offset
                ).reshape(shape)
                planes.append(_dequantize_intra(levels, q))
            frame = Frame(*planes)
        elif magic == _MAGIC_P:
            if self._reference is None:
                raise ValueError("P-frame received before any reference frame")
            shifted = _shift_frame(self._reference, motion_dy, motion_dx)
            ref_planes = (shifted.y, shifted.u, shifted.v)
            planes = []
            for shape, offset, ref_plane in zip(shapes, offsets, ref_planes):
                levels = np.frombuffer(
                    raw, np.int8, shape[0] * shape[1], offset
                ).reshape(shape)
                recon = np.clip(
                    ref_plane.astype(np.int16) + _dequantize_residual(levels, q),
                    0, 255,
                ).astype(np.uint8)
                planes.append(recon)
            frame = Frame(*planes)
        else:
            raise ValueError(f"corrupt frame header (magic {magic:#x})")

        self._reference = frame
        return frame

    def decode_b_frame(self, encoded: EncodedFrame,
                       previous_reference: Frame,
                       next_reference: Frame) -> Frame:
        """Decode a B-frame given both of its references.

        Does not touch the prediction reference (B-frames are never
        referenced).
        """
        magic, width, height, _index, _dy, _dx = _HEADER.unpack_from(
            encoded.payload
        )
        if magic != _MAGIC_B:
            raise ValueError("decode_b_frame called on a non-B frame")
        raw = zlib.decompress(encoded.payload[_HEADER.size:])
        q = self.config.quantizer
        y_size = width * height
        c_size = y_size // 4
        shapes = ((height, width), (height // 2, width // 2),
                  (height // 2, width // 2))
        offsets = (0, y_size, y_size + c_size)
        prev_planes = (previous_reference.y, previous_reference.u,
                       previous_reference.v)
        next_planes = (next_reference.y, next_reference.u, next_reference.v)
        planes = []
        for shape, offset, prev_plane, next_plane in zip(
                shapes, offsets, prev_planes, next_planes):
            predictor = ((prev_plane.astype(np.int16)
                          + next_plane.astype(np.int16)) // 2)
            levels = np.frombuffer(
                raw, np.int8, shape[0] * shape[1], offset
            ).reshape(shape)
            recon = np.clip(
                predictor + _dequantize_residual(levels, q), 0, 255
            ).astype(np.uint8)
            planes.append(recon)
        return Frame(*planes)


def encode_sequence(sequence: Sequence420,
                    config: Optional[CodecConfig] = None) -> Bitstream:
    """Encode a whole uncompressed sequence into a :class:`Bitstream`.

    With ``config.b_frames > 0`` the references (I/P) are coded first in
    chain order and the B-frames between them against the average of
    their surrounding reconstructions; the returned bitstream is in
    display order regardless.
    """
    config = config or CodecConfig()
    layout = GopLayout(config.gop_size, config.b_frames)
    encoder = Encoder(config)
    if config.b_frames == 0:
        frames = [encoder.encode_frame(frame) for frame in sequence]
    else:
        frames_by_index: dict = {}
        reconstructions: dict = {}
        reference_indices = [
            i for i in range(len(sequence))
            if layout.frame_type(i) is not FrameType.B
        ]
        # Frames after the clip's last reference have no future anchor;
        # promote them to P references (what real encoders do at the end
        # of a stream).
        last_reference = reference_indices[-1]
        for index in range(last_reference + 1, len(sequence)):
            reference_indices.append(index)
        for index in reference_indices:
            encoded, recon = encoder.encode_reference(
                sequence[index], index, layout
            )
            frames_by_index[index] = encoded
            reconstructions[index] = recon
        reference_set = set(reference_indices)
        for index in range(len(sequence)):
            if index in reference_set:
                continue
            previous_ref = max(i for i in reference_indices if i < index)
            next_ref = min(i for i in reference_indices if i > index)
            frames_by_index[index] = encoder.encode_bidirectional(
                sequence[index], index,
                reconstructions[previous_ref], reconstructions[next_ref],
                layout,
            )
        frames = [frames_by_index[i] for i in range(len(sequence))]
    return Bitstream(
        frames=frames,
        width=sequence.width,
        height=sequence.height,
        fps=sequence.fps,
        gop_layout=layout,
        quantizer=config.quantizer,
        name=sequence.name,
    )


def decode_bitstream(bitstream: Bitstream,
                     config: Optional[CodecConfig] = None) -> Sequence420:
    """Decode a loss-free bitstream back to YUV (quantization loss only)."""
    layout = bitstream.gop_layout
    config = config or CodecConfig(
        gop_size=layout.gop_size, quantizer=bitstream.quantizer,
        b_frames=layout.b_frames,
    )
    decoder = Decoder(config)
    if layout.b_frames == 0:
        frames = [decoder.decode_frame(encoded) for encoded in bitstream]
        return Sequence420(frames, fps=bitstream.fps, name=bitstream.name)

    encoded_frames = list(bitstream)
    reference_indices = [f.index for f in encoded_frames
                         if f.frame_type is not FrameType.B]
    decoded: dict = {}
    for index in reference_indices:
        decoded[index] = decoder.decode_frame(encoded_frames[index])
    for encoded in encoded_frames:
        if encoded.frame_type is not FrameType.B:
            continue
        previous_ref = max(i for i in reference_indices if i < encoded.index)
        next_ref = min(i for i in reference_indices if i > encoded.index)
        decoded[encoded.index] = decoder.decode_b_frame(
            encoded, decoded[previous_ref], decoded[next_ref]
        )
    frames = [decoded[i] for i in range(len(encoded_frames))]
    return Sequence420(frames, fps=bitstream.fps, name=bitstream.name)
