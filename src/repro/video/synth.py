"""Synthetic YUV clip generators with controllable motion level.

The paper evaluates on slow-motion and fast-motion CIF clips from the TKN
reference set (Section 6.1) and classifies motion with AForge.  We cannot
ship those clips, so this module synthesizes sequences whose *structural*
properties match what the paper exploits:

- slow motion  -> consecutive frames nearly identical -> tiny P-frames,
  I-frames carrying almost all information;
- fast motion  -> large inter-frame changes and occasional scene cuts ->
  large P-frames that carry real content.

Each generator is deterministic given a seed, so experiments and their
analytical counterparts see the same content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .yuv import CIF_HEIGHT, CIF_WIDTH, Frame, Sequence420

__all__ = [
    "MotionProfile",
    "SLOW_MOTION",
    "MEDIUM_MOTION",
    "FAST_MOTION",
    "SceneConfig",
    "generate_clip",
    "make_reference_clips",
]


@dataclass(frozen=True)
class MotionProfile:
    """Knobs that set how violently the scene changes frame to frame.

    ``pan_speed``        background translation in pixels/frame;
    ``object_speed``     foreground object speed in pixels/frame;
    ``cut_probability``  per-frame probability of a full scene change;
    ``texture_churn``    fraction of background texture re-randomised per
                         frame (models detail appearing/disappearing).
    """

    name: str
    pan_speed: float
    object_speed: float
    cut_probability: float
    texture_churn: float


# Slow motion has a static camera: a fractional pan would cross integer
# rounding boundaries every few dozen frames, producing whole-frame 1-px
# jumps that an MC-less codec intra-codes (and that would leak content to
# an eavesdropper through re-keyed prediction chains).
SLOW_MOTION = MotionProfile(
    name="slow", pan_speed=0.0, object_speed=0.2,
    cut_probability=0.0, texture_churn=0.0,
)
MEDIUM_MOTION = MotionProfile(
    name="medium", pan_speed=0.8, object_speed=2.0,
    cut_probability=0.004, texture_churn=0.004,
)
FAST_MOTION = MotionProfile(
    name="fast", pan_speed=2.0, object_speed=5.0,
    cut_probability=0.02, texture_churn=0.005,
)

_PROFILES = {p.name: p for p in (SLOW_MOTION, MEDIUM_MOTION, FAST_MOTION)}


@dataclass
class SceneConfig:
    """Geometry and content parameters for the synthetic scene."""

    width: int = CIF_WIDTH
    height: int = CIF_HEIGHT
    n_objects: int = 4
    object_size: int = 40
    fps: float = 30.0


def _textured_background(rng: np.random.Generator, height: int,
                         width: int) -> np.ndarray:
    """Smooth low-frequency texture so I-frames have realistic entropy."""
    coarse = rng.integers(40, 216, size=(height // 8 + 2, width // 8 + 2))
    # Bilinear-ish upsample by repetition then box blur keeps it cheap.
    up = np.repeat(np.repeat(coarse, 8, axis=0), 8, axis=1)[:height, :width]
    blurred = up.astype(np.float32)
    for axis in (0, 1):
        blurred = (
            np.roll(blurred, 1, axis=axis)
            + blurred
            + np.roll(blurred, -1, axis=axis)
        ) / 3.0
    return blurred.astype(np.uint8)


def _render(background: np.ndarray, pan: Tuple[float, float],
            objects: List[dict], luma_offset: int) -> np.ndarray:
    height, width = background.shape
    dy, dx = int(round(pan[0])) % height, int(round(pan[1])) % width
    canvas = np.roll(background, (dy, dx), axis=(0, 1)).copy()
    for obj in objects:
        top = int(round(obj["y"])) % height
        left = int(round(obj["x"])) % width
        size = obj["size"]
        rows = (np.arange(top, top + size)) % height
        cols = (np.arange(left, left + size)) % width
        canvas[np.ix_(rows, cols)] = obj["luma"]
    if luma_offset:
        canvas = np.clip(canvas.astype(np.int16) + luma_offset, 0, 255)
    return canvas.astype(np.uint8)


def generate_clip(
    motion: "MotionProfile | str",
    n_frames: int = 300,
    *,
    scene: Optional[SceneConfig] = None,
    seed: int = 2013,
    name: Optional[str] = None,
) -> Sequence420:
    """Generate a deterministic synthetic clip at the given motion level.

    Defaults mirror the paper's clips: 300 frames at 30 fps, CIF geometry.
    """
    if isinstance(motion, str):
        try:
            motion = _PROFILES[motion]
        except KeyError:
            raise ValueError(
                f"unknown motion profile {motion!r}; expected one of"
                f" {sorted(_PROFILES)}"
            ) from None
    scene = scene or SceneConfig()
    rng = np.random.default_rng(seed)

    background = _textured_background(rng, scene.height, scene.width)
    objects = [
        {
            "y": float(rng.integers(0, scene.height)),
            "x": float(rng.integers(0, scene.width)),
            "vy": float(rng.uniform(-1, 1)) * motion.object_speed,
            "vx": float(rng.uniform(-1, 1)) * motion.object_speed,
            "size": scene.object_size,
            "luma": int(rng.integers(0, 256)),
        }
        for _ in range(scene.n_objects)
    ]
    pan = [0.0, 0.0]
    pan_velocity = [motion.pan_speed, motion.pan_speed * 0.6]

    frames: List[Frame] = []
    for index in range(n_frames):
        if index > 0 and rng.random() < motion.cut_probability:
            background = _textured_background(rng, scene.height, scene.width)
            for obj in objects:
                obj["y"] = float(rng.integers(0, scene.height))
                obj["x"] = float(rng.integers(0, scene.width))
                obj["luma"] = int(rng.integers(0, 256))
        if motion.texture_churn > 0:
            # Transient per-frame detail churn: the noise does not persist
            # into later frames (otherwise the clip would degenerate into
            # accumulated salt-and-pepper noise), but every frame pair
            # differs by two churn layers, keeping P-frames large.
            frame_background = background.copy()
            churn_mask = rng.random(background.shape) < motion.texture_churn
            frame_background[churn_mask] = rng.integers(
                0, 256, size=int(churn_mask.sum()), dtype=np.uint8
            )
        else:
            frame_background = background
        luma = _render(frame_background, (pan[0], pan[1]), objects,
                       luma_offset=0)
        chroma_shape = (scene.height // 2, scene.width // 2)
        u = np.full(chroma_shape, 128, dtype=np.uint8)
        v = np.full(chroma_shape, 128, dtype=np.uint8)
        frames.append(Frame(luma, u, v))

        pan[0] += pan_velocity[0]
        pan[1] += pan_velocity[1]
        for obj in objects:
            obj["y"] += obj["vy"]
            obj["x"] += obj["vx"]

    clip_name = name or f"synthetic-{motion.name}"
    return Sequence420(frames, fps=scene.fps, name=clip_name)


def generate_mixed_clip(
    segments: "List[Tuple[str, int]]",
    *,
    scene: Optional[SceneConfig] = None,
    seed: int = 2013,
    name: str = "synthetic-mixed",
) -> Sequence420:
    """A clip whose motion level changes over time.

    ``segments`` is a list of (profile name, frame count) pairs, e.g.
    ``[("slow", 90), ("fast", 90), ("slow", 60)]`` — the content an
    adaptive policy controller (Fig. 1's dynamic motion categorisation)
    is built for.  Segment boundaries behave like scene cuts, which is
    realistic (a camera switching from an interview to a chase).
    """
    if not segments:
        raise ValueError("need at least one segment")
    frames: List[Frame] = []
    for offset, (profile_name, n_frames) in enumerate(segments):
        if n_frames < 1:
            raise ValueError("each segment needs at least one frame")
        part = generate_clip(profile_name, n_frames, scene=scene,
                             seed=seed + offset)
        frames.extend(frame.copy() for frame in part)
    fps = (scene or SceneConfig()).fps
    return Sequence420(frames, fps=fps, name=name)


def make_reference_clips(
    n_frames: int = 300, seed: int = 2013,
    scene: Optional[SceneConfig] = None,
) -> dict:
    """The three motion classes of Fig. 2 as a name->clip mapping."""
    return {
        profile.name: generate_clip(
            profile, n_frames, seed=seed + offset, scene=scene
        )
        for offset, profile in enumerate(
            (SLOW_MOTION, MEDIUM_MOTION, FAST_MOTION)
        )
    }
