"""Loss concealment exactly as the distortion model assumes (Section 4.3.2).

The paper's decoder policy, which EvalVid implements and eqs. (21)-(27)
model:

- *Case 1 (intra-GOP)*: the GOP's I-frame decodes; if the i-th P-frame is
  the first loss, frame i and **all** its successors in the GOP are
  replaced by frame i-1 (their prediction chain is broken even if their
  packets arrived).
- *Case 2 (inter-GOP)*: the I-frame is lost; the entire GOP is replaced by
  the most recent correctly decoded frame of a previous GOP.
- *Case 3 (initial GOP)*: nothing has ever decoded; the display shows a
  blank frame and distortion is maximal.

``conceal_decode`` drives the real codec with this policy and reports, per
frame, whether it was decoded or frozen and at what reference distance —
the quantity Fig. 2's polynomials are fitted over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from .codec import CodecConfig, Decoder
from .gop import Bitstream, FrameType
from .yuv import Frame, Sequence420

__all__ = ["ConcealedFrame", "ConcealmentResult", "conceal_decode"]


@dataclass(frozen=True)
class ConcealedFrame:
    """Bookkeeping for one displayed frame."""

    index: int
    decoded: bool
    # Display distance (in frames) between the shown substitute and the
    # frame that should have been shown; 0 when decoded.
    reference_distance: int


@dataclass
class ConcealmentResult:
    """Output of a lossy decode."""

    sequence: Sequence420
    frames: List[ConcealedFrame]

    @property
    def n_decoded(self) -> int:
        return sum(1 for frame in self.frames if frame.decoded)

    @property
    def n_frozen(self) -> int:
        return len(self.frames) - self.n_decoded

    def freeze_distances(self) -> List[int]:
        """Reference distances of all frozen frames (Fig. 2's x-axis)."""
        return [f.reference_distance for f in self.frames if not f.decoded]


def conceal_decode(
    bitstream: Bitstream,
    decodable: Set[int],
    config: Optional[CodecConfig] = None,
    *,
    mode: str = "strict",
) -> ConcealmentResult:
    """Decode a bitstream given the set of decodable frame indices.

    ``decodable`` comes from :func:`repro.video.packetizer.frames_decodable`
    (channel losses + encryption visibility).  Frames in the set are decoded
    with the real codec; the rest follow the freeze policy above.

    ``mode`` selects the decoder's attitude to broken prediction chains:

    - ``"strict"`` — the paper's policy (Section 4.3.2, quoted above);
      this is what the distortion model assumes and what EvalVid's
      reconstruction does.
    - ``"best_effort"`` — what a real eavesdropper running ffmpeg gets:
      every arriving frame is decoded against whatever reference is
      available (a blank frame, a stale frame, garbage).  Fast-motion
      P-frames, which are largely intra-coded, recover real content this
      way even when every I-frame is encrypted — the mechanism behind the
      paper's observation that I-frame encryption distorts slow-motion
      video far more than fast-motion video (Section 6.2, Fig. 4).

    Note: when the eq. (20) rule declares a frame decodable despite a
    missing non-essential packet, we decode it from the intact payload.
    This emulates the model's abstraction that a decoder of sensitivity
    ``s`` reconstructs acceptably from ``s`` packets, which our DEFLATE
    codec cannot literally do (documented in DESIGN.md).
    """
    config = config or CodecConfig(
        gop_size=bitstream.gop_layout.gop_size, quantizer=bitstream.quantizer
    )
    if mode not in ("strict", "best_effort"):
        raise ValueError(f"unknown concealment mode {mode!r}")
    if any(frame.frame_type is FrameType.B for frame in bitstream):
        return _conceal_decode_b(bitstream, decodable, config, mode)
    if mode == "best_effort":
        return _best_effort_decode(bitstream, decodable, config)
    decoder = Decoder(config)

    displayed: List[Frame] = []
    records: List[ConcealedFrame] = []

    last_good: Optional[Frame] = None
    # Index of the source frame last_good corresponds to.
    last_good_index: Optional[int] = None

    for gop in bitstream.gops():
        i_frame = gop[0]
        if i_frame.frame_type is not FrameType.I:
            raise ValueError(
                f"GOP {i_frame.gop_index} does not start with an I-frame"
            )
        gop_broken = i_frame.index not in decodable

        if gop_broken:
            # Case 2 / Case 3: freeze the whole GOP.
            for frame in gop:
                if last_good is None:
                    displayed.append(Frame.blank(bitstream.width,
                                                 bitstream.height))
                    distance = frame.index + 1  # "infinite"; bounded by clip
                else:
                    displayed.append(last_good.copy())
                    distance = frame.index - last_good_index
                records.append(ConcealedFrame(
                    index=frame.index, decoded=False,
                    reference_distance=distance,
                ))
            continue

        # Case 1: decode until the first unrecoverable P-frame.
        frozen = False
        for frame in gop:
            if not frozen and frame.index in decodable:
                reconstructed = decoder.decode_frame(frame)
                displayed.append(reconstructed)
                records.append(ConcealedFrame(
                    index=frame.index, decoded=True, reference_distance=0,
                ))
                last_good = reconstructed
                last_good_index = frame.index
            else:
                frozen = True
                if last_good is None:
                    displayed.append(Frame.blank(bitstream.width,
                                                 bitstream.height))
                    distance = frame.index + 1
                else:
                    displayed.append(last_good.copy())
                    distance = frame.index - last_good_index
                records.append(ConcealedFrame(
                    index=frame.index, decoded=False,
                    reference_distance=distance,
                ))

    sequence = Sequence420(displayed, fps=bitstream.fps,
                           name=f"{bitstream.name}-concealed")
    return ConcealmentResult(sequence=sequence, frames=records)


def _best_effort_decode(
    bitstream: Bitstream,
    decodable: Set[int],
    config: CodecConfig,
) -> ConcealmentResult:
    """ffmpeg-style decode: use whatever reference exists, freeze otherwise."""
    decoder = Decoder(config)
    displayed: List[Frame] = []
    records: List[ConcealedFrame] = []
    last_shown: Optional[Frame] = None
    last_decoded_index: Optional[int] = None

    for frame in bitstream:
        if frame.index in decodable:
            if decoder.reference is None:
                # Prediction with no reference at all: decode against blank,
                # as real decoders do when joining mid-stream.
                decoder.set_reference(
                    Frame.blank(bitstream.width, bitstream.height)
                )
            reconstructed = decoder.decode_frame(frame)
            displayed.append(reconstructed)
            records.append(ConcealedFrame(
                index=frame.index, decoded=True, reference_distance=0,
            ))
            last_shown = reconstructed
            last_decoded_index = frame.index
        else:
            if last_shown is None:
                displayed.append(Frame.blank(bitstream.width,
                                             bitstream.height))
                distance = frame.index + 1
            else:
                displayed.append(last_shown.copy())
                distance = frame.index - last_decoded_index
            records.append(ConcealedFrame(
                index=frame.index, decoded=False,
                reference_distance=distance,
            ))

    sequence = Sequence420(displayed, fps=bitstream.fps,
                           name=f"{bitstream.name}-best-effort")
    return ConcealmentResult(sequence=sequence, frames=records)


def _conceal_decode_b(
    bitstream: Bitstream,
    decodable: Set[int],
    config: CodecConfig,
    mode: str,
) -> ConcealmentResult:
    """Concealment for IBB..P streams (extension beyond the paper's IPP).

    References (I/P) follow the chosen reference policy; a B-frame
    displays iff its own packets decode *and* both surrounding references
    decoded (B-frames are leaves of the prediction tree, so their loss
    freezes only themselves).
    """
    decoder = Decoder(config)
    frames = list(bitstream)
    reference_indices = [f.index for f in frames
                         if f.frame_type is not FrameType.B]
    reference_set = set(reference_indices)

    # Pass 1: decode the reference chain under the chosen policy.
    decoded_refs: dict = {}
    if mode == "best_effort":
        for index in reference_indices:
            if index not in decodable:
                continue
            if (frames[index].frame_type is not FrameType.I
                    and decoder.reference is None):
                decoder.set_reference(
                    Frame.blank(bitstream.width, bitstream.height)
                )
            decoded_refs[index] = decoder.decode_frame(frames[index])
    else:
        # Strict: within each GOP, references decode until the first
        # unrecoverable one; an unrecoverable I kills the GOP's refs.
        by_gop: dict = {}
        for index in reference_indices:
            by_gop.setdefault(frames[index].gop_index, []).append(index)
        for gop_index in sorted(by_gop):
            chain_alive = True
            for index in by_gop[gop_index]:
                if not chain_alive or index not in decodable:
                    chain_alive = False
                    continue
                if (frames[index].frame_type is FrameType.P
                        and decoder.reference is None):
                    chain_alive = False
                    continue
                decoded_refs[index] = decoder.decode_frame(frames[index])

    # Pass 2: display order with per-frame concealment.
    displayed: List[Frame] = []
    records: List[ConcealedFrame] = []
    last_shown: Optional[Frame] = None
    last_shown_index: Optional[int] = None

    def freeze(frame_index: int) -> None:
        nonlocal last_shown, last_shown_index
        if last_shown is None:
            displayed.append(Frame.blank(bitstream.width, bitstream.height))
            distance = frame_index + 1
        else:
            displayed.append(last_shown.copy())
            distance = frame_index - last_shown_index
        records.append(ConcealedFrame(
            index=frame_index, decoded=False, reference_distance=distance,
        ))

    def show(frame_index: int, picture: Frame) -> None:
        nonlocal last_shown, last_shown_index
        displayed.append(picture)
        records.append(ConcealedFrame(
            index=frame_index, decoded=True, reference_distance=0,
        ))
        last_shown = picture
        last_shown_index = frame_index

    for frame in frames:
        if frame.index in reference_set:
            if frame.index in decoded_refs:
                show(frame.index, decoded_refs[frame.index])
            else:
                freeze(frame.index)
            continue
        previous_candidates = [i for i in reference_indices
                               if i < frame.index]
        next_candidates = [i for i in reference_indices if i > frame.index]
        previous_ref = max(previous_candidates) if previous_candidates else None
        next_ref = min(next_candidates) if next_candidates else None
        if (frame.index in decodable
                and previous_ref in decoded_refs
                and next_ref in decoded_refs):
            picture = decoder.decode_b_frame(
                frame, decoded_refs[previous_ref], decoded_refs[next_ref]
            )
            show(frame.index, picture)
        else:
            freeze(frame.index)

    sequence = Sequence420(displayed, fps=bitstream.fps,
                           name=f"{bitstream.name}-concealed")
    return ConcealmentResult(sequence=sequence, frames=records)
