"""repro — reproduction of "Resource Thrifty Secure Mobile Video Transfers
on Open WiFi Networks" (Papageorgiou et al., CoNEXT 2013).

The paper shows that encrypting only well-chosen parts of a video flow
(e.g. the I-frame packets, or I-frames plus a small fraction of P-frame
packets) distorts the stream enough at a WiFi eavesdropper to preserve
confidentiality while cutting the sender's encryption delay by up to 75%
and its energy use by up to 92%.

Subpackages
-----------
- :mod:`repro.core`     — the analytical framework: encryption policies,
  the 2-MMPP/G/1 delay model (eq. 19), the frame-success and distortion
  models (eqs. 20-28), calibration, and the Fig. 1 policy advisor.
- :mod:`repro.video`    — the video substrate: synthetic YUV clips, a
  predictive I/P codec, MTU packetization, PSNR/MOS, loss concealment.
- :mod:`repro.crypto`   — from-scratch AES-128/256 and 3DES in OFB mode,
  plus encryption-cost models.
- :mod:`repro.wifi`     — 802.11g PHY timing, the DCF fixed point
  (packet success rate p_s), loss channels.
- :mod:`repro.testbed`  — the simulated Android testbed: device profiles,
  the Fig. 3 sender pipeline, transports, energy, experiments.
- :mod:`repro.analysis` — the Fig. 2 regression, statistics, tables.

Quickstart
----------
>>> from repro.video import generate_clip, encode_sequence, CodecConfig
>>> from repro.core import standard_policies
>>> from repro.testbed import (ExperimentConfig, GALAXY_S2, run_experiment)
>>> clip = generate_clip("slow", 60, seed=1)
>>> bitstream = encode_sequence(clip, CodecConfig(gop_size=30))
>>> config = ExperimentConfig(policy=standard_policies()["I"],
...                           device=GALAXY_S2, sensitivity_fraction=0.55)
>>> result = run_experiment(clip, bitstream, config, seed=0)
"""

__version__ = "1.0.0"

__all__ = ["core", "video", "crypto", "wifi", "testbed", "analysis"]
