"""Deterministic mobility traces: time -> position.

A :class:`MobilityTrace` is a dense, fixed-timestep sampling of a
client's 2D position.  Three builders cover the profile shapes the
scenario layer names:

- :func:`parked_trace` — the zero-speed anchor (one position for the
  whole run; the byte-identity bridge to the static simulator);
- :func:`linear_trace` — constant velocity along a heading (the
  pedestrian/vehicular drive-by shapes);
- :func:`waypoint_trace` — the classic random-waypoint walk, with
  waypoints drawn from a ``SeedSequence``-seeded ``default_rng`` so a
  trace is a pure function of its seed.

Simulated time only: positions are functions of the trace clock, never
the wall (``repro lint`` bans ``time.time`` under ``repro/mobility/``),
and nothing here touches global RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np
from numpy.random import SeedSequence, default_rng

__all__ = ["MobilityTrace", "linear_trace", "parked_trace",
           "waypoint_trace"]


@dataclass(frozen=True, eq=False)
class MobilityTrace:
    """A sampled client path: ``positions_m[i]`` at ``times_s[i]``.

    ``times_s`` starts at 0 and is strictly increasing; positions are
    metres in a 2D plane.  Between samples the client moves linearly
    (:meth:`position_at` interpolates).
    """

    times_s: np.ndarray       # (T,) float, t[0] == 0, strictly increasing
    positions_m: np.ndarray   # (T, 2) float
    speed_mps: float          # nominal profile speed (0 when parked)

    def __post_init__(self) -> None:
        times = np.asarray(self.times_s, dtype=float)
        positions = np.asarray(self.positions_m, dtype=float)
        if times.ndim != 1 or times.size < 1:
            raise ValueError("a trace needs at least one time sample")
        if times[0] != 0.0:
            raise ValueError("traces must start at t = 0")
        if times.size > 1 and not np.all(np.diff(times) > 0.0):
            raise ValueError("trace times must be strictly increasing")
        if positions.shape != (times.size, 2):
            raise ValueError(
                f"positions must be ({times.size}, 2),"
                f" got {positions.shape}")
        if self.speed_mps < 0.0:
            raise ValueError("speed must be non-negative")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "positions_m", positions)

    @property
    def n_samples(self) -> int:
        return int(self.times_s.size)

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1])

    def position_at(self, times: Union[float, Sequence[float], np.ndarray],
                    ) -> np.ndarray:
        """Linearly interpolated positions; clamps outside the trace."""
        query = np.atleast_1d(np.asarray(times, dtype=float))
        x = np.interp(query, self.times_s, self.positions_m[:, 0])
        y = np.interp(query, self.times_s, self.positions_m[:, 1])
        return np.stack([x, y], axis=-1)


def _timeline(duration_s: float, timestep_s: float) -> np.ndarray:
    if duration_s < 0.0:
        raise ValueError("duration must be non-negative")
    if timestep_s <= 0.0:
        raise ValueError("timestep must be positive")
    steps = int(np.ceil(duration_s / timestep_s)) if duration_s > 0 else 0
    return np.arange(steps + 1, dtype=float) * timestep_s


def parked_trace(duration_s: float, *,
                 position_m: Tuple[float, float] = (0.0, 2.0),
                 timestep_s: float = 1.0) -> MobilityTrace:
    """A stationary client: one position, zero speed."""
    times = _timeline(duration_s, timestep_s)
    positions = np.tile(np.asarray(position_m, dtype=float),
                        (times.size, 1))
    return MobilityTrace(times, positions, 0.0)


def linear_trace(speed_mps: float, duration_s: float, *,
                 start_m: Tuple[float, float] = (0.0, 2.0),
                 heading_deg: float = 0.0,
                 timestep_s: float = 1.0) -> MobilityTrace:
    """Constant-velocity motion along ``heading_deg`` (0 = +x)."""
    if speed_mps < 0.0:
        raise ValueError("speed must be non-negative")
    times = _timeline(duration_s, timestep_s)
    heading = np.deg2rad(heading_deg)
    velocity = speed_mps * np.array([np.cos(heading), np.sin(heading)])
    positions = (np.asarray(start_m, dtype=float)[np.newaxis, :]
                 + times[:, np.newaxis] * velocity[np.newaxis, :])
    return MobilityTrace(times, positions, float(speed_mps))


def waypoint_trace(speed_mps: float, duration_s: float, *,
                   area_m: Tuple[float, float] = (240.0, 60.0),
                   start_m: Optional[Tuple[float, float]] = None,
                   seed: Union[int, SeedSequence, None] = 2013,
                   timestep_s: float = 1.0) -> MobilityTrace:
    """Random-waypoint walk inside ``area_m``, seeded deterministically.

    Waypoints are uniform in the area; the client moves toward each at
    constant ``speed_mps``, with no pause time.  The waypoint stream
    comes from a ``SeedSequence``-derived generator, so equal seeds
    yield byte-equal traces.
    """
    if speed_mps <= 0.0:
        raise ValueError("waypoint traces need a positive speed")
    entropy = seed if isinstance(seed, SeedSequence) else SeedSequence(seed)
    rng = default_rng(entropy)
    area = np.asarray(area_m, dtype=float)
    if area.shape != (2,) or np.any(area <= 0.0):
        raise ValueError("area must be two positive extents")
    here = (np.asarray(start_m, dtype=float) if start_m is not None
            else area / 2.0)

    leg_times = [0.0]
    leg_positions = [here]
    elapsed = 0.0
    while elapsed < duration_s:
        target = rng.random(2) * area
        distance = float(np.linalg.norm(target - here))
        if distance < 1e-9:
            continue
        elapsed += distance / speed_mps
        here = target
        leg_times.append(elapsed)
        leg_positions.append(target)

    times = _timeline(duration_s, timestep_s)
    legs = np.asarray(leg_positions)
    x = np.interp(times, leg_times, legs[:, 0])
    y = np.interp(times, leg_times, legs[:, 1])
    return MobilityTrace(times, np.stack([x, y], axis=-1),
                         float(speed_mps))
