"""Mobility + AP-handoff scenario layer.

The paper's advisor picks encryption policies on a *static* open-WiFi
link; this package opens the ROADMAP's vehicular workload: a client
moving through a field of APs, per-AP RSSI/datarate varying along a
deterministic mobility trace, AP-selection policies with handoff gaps,
and both execution engines (coroutine kernel and struct-of-arrays
vector path) retuning the flow's PHY/DCF parameters along the way.

Layers, bottom up:

- :mod:`~repro.mobility.trace` — time -> position traces (parked,
  linear, random-waypoint), ``SeedSequence``-seeded;
- :mod:`~repro.mobility.field` — AP placements, log-distance path
  loss, RSSI -> 802.11g rate/residual-error mapping;
- :mod:`~repro.mobility.selection` — strongest-RSSI / hysteresis /
  history AP-selection policies;
- :mod:`~repro.mobility.scenario` — the merged piecewise-constant
  :class:`LinkSegment` timeline (links, handoffs, connectivity gaps)
  plus the named profile registry (``"vehicular:hysteresis"`` specs);
- :mod:`~repro.mobility.process` — the event-kernel integration
  (:class:`MobilityProcess`, :class:`MobileFlowProcess`) and the
  :func:`run_mobility` entry point;
- :mod:`~repro.mobility.sampling` / :mod:`~repro.mobility.vector` —
  pre-sampling and the vectorized fast path (kernel stays the
  differential oracle, exactly like the static engines).
"""

from .field import AccessPoint, ApField, default_field
from .scenario import (
    LinkSegment,
    MOBILITY_PROFILES,
    MobilityScenario,
    build_profile,
    build_scenario,
    parse_mobility_spec,
)
from .selection import SELECTION_POLICIES, select_aps
from .trace import MobilityTrace, linear_trace, parked_trace, waypoint_trace
from .process import MobilityProcess, MobilityRun, run_mobility

__all__ = [
    "AccessPoint",
    "ApField",
    "LinkSegment",
    "MOBILITY_PROFILES",
    "MobilityProcess",
    "MobilityRun",
    "MobilityScenario",
    "MobilityTrace",
    "SELECTION_POLICIES",
    "build_profile",
    "build_scenario",
    "default_field",
    "linear_trace",
    "parked_trace",
    "parse_mobility_spec",
    "run_mobility",
    "select_aps",
    "waypoint_trace",
]
