"""Event-kernel integration: mobile flows on the coroutine engine.

Two processes extend the static contention machinery:

- :class:`MobilityProcess` — one per kernel: sleeps until each segment
  boundary (``WaitUntil``), advances the shared :class:`MobileLink`
  cursor, and counts retunes/handoffs as simulation facts.  It spawns
  **no** RNG, so adding it leaves every flow's ``SeedSequence`` spawn
  order — and therefore every sampled draw — untouched: a zero-speed
  scenario (one segment, no boundaries) is byte-identical to the
  static :func:`~repro.testbed.multiflow.run_multiflow` path.
- :class:`MobileFlowProcess` — the Fig. 3 sender pipeline with one
  twist: each packet latches the :class:`LinkSegment` active at its
  *arrival* instant and draws backoff/delivery/airtime from that
  segment's link (delivery rate 0 inside handoff gaps).  The per-packet
  draw order — encryption, backoff, delivery, transmission — and every
  float operation mirror :class:`~repro.testbed.multiflow.FlowProcess`
  exactly; that is the contract the vector engine's oracle sampler
  replays.

:func:`run_mobility` wires N mobile flows plus the mobility process
into a kernel (or routes to the vector fast path) and returns a
:class:`MobilityRun`: the familiar ``MultiFlowRun`` plus handoff/gap
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.policies import EncryptionPolicy
from ..video.gop import Bitstream
from ..video.packetizer import DEFAULT_MTU, Packet
from ..testbed.devices import DeviceProfile
from ..testbed.events import (
    EventKernel,
    Request,
    Resource,
    Timeout,
    WaitUntil,
)
from ..testbed.multiflow import (
    MULTIFLOW_ENGINES,
    MultiFlowRun,
    _packetize_flows,
    _service_for,
)
from ..testbed.simulator import PacketService, sample_backoff_time
from ..testbed.tracing import PacketTrace, TraceLog
from ..testbed.transport import (
    UDP_RTP,
    TransportConfig,
    delivery_outcome,
)
from .scenario import MobilityScenario, build_profile

__all__ = ["MobileLink", "MobilityProcess", "MobileFlowProcess",
           "MobilityRun", "run_mobility"]


class MobileLink:
    """Shared view of the scenario's segment timeline.

    ``segment_at`` is a pure time lookup (flows latch their packet's
    segment by arrival instant, wherever the schedule has drifted);
    ``cursor`` is the *kernel-time* segment index the
    :class:`MobilityProcess` advances — the "currently tuned" state
    the retune/handoff counters derive from.
    """

    def __init__(self, scenario: MobilityScenario) -> None:
        self.scenario = scenario
        self.segments = scenario.segments
        self.cursor = 0
        self.retunes = 0
        self.handoffs_seen = 0

    def segment_at(self, time_s: float):
        return self.scenario.segment_at(time_s)

    @property
    def boundaries(self) -> np.ndarray:
        return self.scenario.segment_starts[1:]


class MobilityProcess:
    """Advance the shared link cursor at every segment boundary."""

    def __init__(self, link: MobileLink) -> None:
        self.link = link

    def process(self, kernel: EventKernel):
        previous_ap = self.link.segments[0].ap_index
        for index, boundary in enumerate(self.link.boundaries, start=1):
            yield WaitUntil(float(boundary))
            self.link.cursor = index
            self.link.retunes += 1
            segment = self.link.segments[index]
            if segment.ap_index >= 0 and previous_ap >= 0 \
                    and segment.ap_index != previous_ap:
                self.link.handoffs_seen += 1
            if segment.ap_index >= 0:
                previous_ap = segment.ap_index


class MobileFlowProcess:
    """One mobile sender flow (FlowProcess with arrival-latched links)."""

    def __init__(self, flow_id: int, packets: Sequence[Packet],
                 arrivals: np.ndarray, *, medium: Resource,
                 link: MobileLink, services: Sequence[PacketService],
                 base_service: PacketService,
                 rng: np.random.Generator,
                 start_offset_s: float = 0.0) -> None:
        if len(packets) != len(arrivals):
            raise ValueError("one arrival instant per packet required")
        if start_offset_s < 0:
            raise ValueError("start offset must be non-negative")
        self.flow_id = flow_id
        self.packets = list(packets)
        self.arrivals = np.asarray(arrivals, dtype=float)
        self.medium = medium
        self.link = link
        self.services = list(services)   # one PacketService per segment
        self.base_service = base_service
        self.rng = rng
        self.start_offset_s = start_offset_s
        self.traces: List[PacketTrace] = []
        self.usable_by_receiver: List[bool] = []
        self.usable_by_eavesdropper: List[bool] = []
        self.gap_packets = 0

    def process(self, kernel: EventKernel):
        scenario = self.link.scenario
        for packet, base_arrival in zip(self.packets, self.arrivals):
            arrival = float(base_arrival) + self.start_offset_s
            if kernel.now < arrival:
                yield WaitUntil(arrival)
            start = kernel.now  # max(arrival, previous departure)

            # Latch the segment at the arrival instant — the rate the
            # driver stamped when handing the packet to the MAC queue.
            index = int(scenario.segment_index_at(arrival)[0])
            segment = self.link.segments[index]
            service = self.services[index]

            # CPU work (encryption) is segment-independent and runs
            # concurrently across flows, exactly as in FlowProcess.
            encryption = service.encryption_time(packet, self.rng)
            if encryption > 0.0:
                yield Timeout(encryption)

            yield Request(self.medium)
            backoff = sample_backoff_time(service.link.dcf, self.rng)
            if backoff > 0.0:
                yield Timeout(backoff)
            outcome = delivery_outcome(
                service.transport, segment.delivery_rate, self.rng)
            if outcome.extra_delay_s > 0.0:
                yield Timeout(outcome.extra_delay_s)
            transmit_at = kernel.now
            transmission = (service.transmission_time(packet, self.rng)
                            * outcome.attempts)
            yield Timeout(transmission)
            departure = kernel.now
            self.medium.release()

            if segment.in_gap:
                self.gap_packets += 1
            encrypted = bool(encryption > 0.0
                             or service.encrypts(packet))
            self.traces.append(PacketTrace(
                sequence_number=packet.sequence_number,
                frame_index=packet.frame_index,
                frame_type=packet.frame_type,
                payload_bytes=packet.payload_size,
                encrypted=encrypted,
                enqueue_time_s=arrival,
                service_start_s=float(start),
                encryption_time_s=float(encryption),
                transmit_time_s=float(transmit_at),
                departure_time_s=float(departure),
                delivered=outcome.delivered,
                attempts=outcome.attempts,
            ))
            self.usable_by_receiver.append(outcome.delivered)
            self.usable_by_eavesdropper.append(
                outcome.delivered and not encrypted)

    def as_run(self):
        from ..testbed.simulator import SimulationRun
        if len(self.traces) != len(self.packets):
            raise RuntimeError(
                f"flow {self.flow_id} finished {len(self.traces)} of"
                f" {len(self.packets)} packets; run the kernel to"
                " completion first")
        return SimulationRun(
            trace=TraceLog(self.traces),
            packets=self.packets,
            usable_by_receiver=self.usable_by_receiver,
            usable_by_eavesdropper=self.usable_by_eavesdropper,
        )


@dataclass
class MobilityRun:
    """One mobile contention run: flow results + mobility accounting."""

    flows_run: MultiFlowRun
    scenario: MobilityScenario
    engine: str
    retunes: int
    handoffs: int
    gap_packets: int

    @property
    def n_flows(self) -> int:
        return self.flows_run.n_flows

    @property
    def delivered_fraction(self) -> float:
        total = sum(len(run.usable_by_receiver)
                    for run in self.flows_run.flows)
        if total == 0:
            raise ValueError("no packets in this run")
        good = sum(sum(run.usable_by_receiver)
                   for run in self.flows_run.flows)
        return good / total

    def describe(self) -> dict:
        summary = self.scenario.describe()
        summary.update({
            "engine": self.engine,
            "flows": self.n_flows,
            "retunes": self.retunes,
            "handoffs_in_run": self.handoffs,
            "gap_packets": self.gap_packets,
            "delivered_fraction": round(self.delivered_fraction, 6),
        })
        return summary


def segment_services(scenario: MobilityScenario,
                     base_service: PacketService
                     ) -> List[PacketService]:
    """One ``PacketService`` per segment: the base service with the
    segment's link swapped in (policy/cost/transport unchanged)."""
    cache = {}
    services = []
    for segment in scenario.segments:
        key = id(segment.link)
        if key not in cache:
            cache[key] = replace(base_service, link=segment.link)
        services.append(cache[key])
    return services


def run_mobility(
    bitstream: "Union[Bitstream, Sequence[Bitstream]]",
    *,
    mobility: "Union[str, MobilityScenario]",
    flows: Optional[int] = None,
    policy: EncryptionPolicy,
    device: DeviceProfile,
    transport: TransportConfig = UDP_RTP,
    retry_limit: int = 7,
    background_stations: int = 1,
    mtu: int = DEFAULT_MTU,
    disk_read_rate_pkts_per_s: float = 600.0,
    stagger_s: float = 0.0,
    seed: "Optional[int | np.random.SeedSequence]" = None,
    engine: str = "events",
    sampling: str = "batch",
) -> MobilityRun:
    """Run N contending senders along a mobility scenario.

    ``mobility`` is a profile spec string (``"vehicular:hysteresis"``)
    or a pre-built :class:`MobilityScenario` (whose station count must
    match ``flows + background_stations``).  Everything else mirrors
    :func:`~repro.testbed.multiflow.run_multiflow`, including the
    engine split: ``"events"`` is the coroutine-kernel oracle,
    ``"vector"`` the pre-sampled struct-of-arrays fast path
    (``sampling="oracle"`` replays the kernel's exact streams).
    """
    if engine not in MULTIFLOW_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of"
            f" {MULTIFLOW_ENGINES}")
    if isinstance(bitstream, Bitstream):
        n_flows = 2 if flows is None else flows
        streams: List[Bitstream] = [bitstream] * n_flows
    else:
        streams = list(bitstream)
        if flows is not None and flows != len(streams):
            raise ValueError(
                f"flows={flows} but {len(streams)} bitstreams were"
                " given")
        n_flows = len(streams)
    if n_flows < 1:
        raise ValueError(f"need at least one flow, got {n_flows}")
    if stagger_s < 0:
        raise ValueError("stagger must be non-negative")

    n_stations = n_flows + background_stations
    if isinstance(mobility, MobilityScenario):
        scenario = mobility
        if scenario.n_stations != n_stations:
            raise ValueError(
                f"scenario was built for {scenario.n_stations} stations"
                f" but this run has {n_stations} (flows +"
                " background_stations); rebuild it")
    else:
        scenario = build_profile(mobility, n_stations=n_stations,
                                 retry_limit=retry_limit)

    base_service = _service_for(policy, device, scenario.segments[0].link,
                                transport)
    flow_streams, flow_arrivals = _packetize_flows(
        streams, mtu=mtu,
        disk_read_rate_pkts_per_s=disk_read_rate_pkts_per_s,
        stagger_s=stagger_s)

    if engine == "vector":
        from .vector import run_mobile_vector
        vrun, gap_packets = run_mobile_vector(
            flow_streams, flow_arrivals, scenario=scenario,
            base_service=base_service, seed=seed, sampling=sampling)
        return MobilityRun(
            flows_run=vrun.to_multiflow_run(), scenario=scenario,
            engine="vector", retunes=scenario.n_segments - 1,
            handoffs=scenario.handoffs, gap_packets=gap_packets)

    kernel = EventKernel(seed=seed)
    medium = Resource(kernel, capacity=1)
    link = MobileLink(scenario)
    services = segment_services(scenario, base_service)

    flow_processes: List[MobileFlowProcess] = []
    for index in range(n_flows):
        flow = MobileFlowProcess(
            index, flow_streams[index], flow_arrivals[index],
            medium=medium, link=link, services=services,
            base_service=base_service, rng=kernel.spawn_rng(),
        )
        kernel.add_process(flow.process(kernel), name=f"flow-{index}")
        flow_processes.append(flow)
    # Added last and RNG-free: the retune process shifts no flow's
    # stream and a single-segment scenario makes it a no-op.
    mobility_process = MobilityProcess(link)
    kernel.add_process(mobility_process.process(kernel), name="mobility")

    kernel.run()
    return MobilityRun(
        flows_run=MultiFlowRun(
            flows=[flow.as_run() for flow in flow_processes]),
        scenario=scenario, engine="events", retunes=link.retunes,
        handoffs=link.handoffs_seen,
        gap_packets=sum(f.gap_packets for f in flow_processes))
