"""Per-packet sampling for the vectorized mobility engine.

The arrival-latch contract (:mod:`repro.mobility.scenario`) makes a
packet's segment — and hence every distribution parameter of its
service draws — a pure function of its arrival instant.  So the static
engine's pre-sampling argument still holds under mobility: the draws
can be taken before any scheduling, they just use *per-packet*
parameter arrays instead of one scalar set.

Two modes, mirroring :mod:`repro.testbed.flow_sampling`:

- :func:`mobile_oracle_sample` — replay
  :class:`~repro.mobility.process.MobileFlowProcess`'s exact per-packet
  draw sequence (encryption, backoff, delivery, transmission) against a
  per-flow spawned stream.  Bit-identical to the kernel.
- :func:`mobile_batch_sample` — one counter-based stream filling whole
  matrices; numpy's distribution methods all accept array parameters,
  so per-packet success rates, backoff rates and airtime means cost no
  Python loop.  Gap packets (delivery rate exactly 0) need one guard:
  ``Generator.geometric`` rejects ``p == 0``, so the reliable-transport
  branch draws with a placeholder rate there and overwrites the result
  with the deterministic full-loss outcome (``cap + 1`` attempts), the
  same special case the static ``batch_sample`` applies to dead links.

This module owns the per-packet Python work (oracle replay); the
matrix assembly and scheduling in :mod:`repro.mobility.vector` must
stay loop-free (``repro lint`` enforces it there).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..testbed.flow_sampling import FlowSamples
from ..testbed.simulator import PacketService, sample_backoff_time
from ..testbed.transport import TransportConfig, delivery_outcome
from ..video.packetizer import Packet
from .scenario import MobilityScenario

__all__ = ["mobile_batch_sample", "mobile_oracle_sample",
           "segment_parameters", "segment_airtime_table"]


def segment_parameters(scenario: MobilityScenario
                       ) -> "dict[str, np.ndarray]":
    """Per-segment distribution parameters as ``(S,)`` arrays."""
    segments = scenario.segments
    return {
        "p_success": np.array(
            [s.link.dcf.packet_success_rate for s in segments]),
        "backoff_rate_per_s": np.array(
            [s.link.dcf.backoff_rate_per_s for s in segments]),
        "delivery_rate": np.array(
            [s.delivery_rate for s in segments]),
        "in_gap": np.array([s.in_gap for s in segments], dtype=bool),
    }


def segment_airtime_table(scenario: MobilityScenario,
                          wire_sizes: np.ndarray) -> np.ndarray:
    """Mean airtime per (segment, distinct wire size): ``(S, U)``.

    Each segment's PHY prices each distinct on-wire packet size once;
    the vector path then gathers per-packet means with one fancy-index
    instead of a per-packet Python loop.
    """
    sizes = [int(size) for size in np.asarray(wire_sizes).ravel()]
    table = np.empty((len(scenario.segments), len(sizes)))
    for row, segment in enumerate(scenario.segments):
        phy = segment.link.phy
        table[row, :] = [phy.packet_transmission_time_s(size)
                         for size in sizes]
    return table


def mobile_oracle_sample(packets: Sequence[Packet],
                         segment_index: np.ndarray,
                         services: Sequence[PacketService],
                         scenario: MobilityScenario,
                         rng: np.random.Generator) -> FlowSamples:
    """Replay the mobile kernel's exact draw sequence for one flow.

    Must stay call-for-call identical to
    :meth:`repro.mobility.process.MobileFlowProcess.process`: per
    packet — encryption, backoff (from the latched segment's DCF),
    delivery (against the segment's gap-aware rate), transmission
    (the segment's PHY airtime) — all from the flow's own stream.
    """
    n = len(packets)
    encryption = np.empty(n)
    backoff = np.empty(n)
    extra = np.empty(n)
    transmission = np.empty(n)
    attempts = np.empty(n, dtype=np.int64)
    delivered = np.empty(n, dtype=bool)
    for index, packet in enumerate(packets):
        seg = int(segment_index[index])
        service = services[seg]
        segment = scenario.segments[seg]
        encryption[index] = service.encryption_time(packet, rng)
        backoff[index] = sample_backoff_time(service.link.dcf, rng)
        outcome = delivery_outcome(service.transport,
                                   segment.delivery_rate, rng)
        extra[index] = outcome.extra_delay_s
        attempts[index] = outcome.attempts
        delivered[index] = outcome.delivered
        transmission[index] = (service.transmission_time(packet, rng)
                               * outcome.attempts)
    return FlowSamples(
        encryption_s=encryption, backoff_s=backoff, extra_delay_s=extra,
        transmission_s=transmission, attempts=attempts,
        delivered=delivered,
    )


def mobile_batch_sample(enc_mean: np.ndarray, enc_sigma: np.ndarray,
                        encrypted: np.ndarray,
                        trans_mean: np.ndarray,
                        p_success: np.ndarray,
                        backoff_rate: np.ndarray,
                        delivery_rate: np.ndarray,
                        transport: TransportConfig,
                        rng: np.random.Generator
                        ) -> "dict[str, np.ndarray]":
    """Sample service components with per-packet parameter matrices.

    All arguments are ``(F, P)`` matrices (padding slots must carry
    benign parameters: ``p_success`` and ``backoff_rate`` positive,
    ``trans_mean``/``delivery_rate`` anything in range).  Matches the
    static :func:`repro.testbed.flow_sampling.batch_sample`
    distributions draw-for-draw when every packet shares one segment.
    """
    shape = enc_mean.shape
    encryption = np.where(
        enc_sigma > 0.0,
        np.maximum(0.0, rng.normal(enc_mean, enc_sigma)),
        enc_mean,
    )
    encryption = np.where(encrypted, encryption, 0.0)

    collisions = rng.geometric(p_success, size=shape) - 1
    backoff = rng.standard_gamma(collisions) / backoff_rate

    dead = delivery_rate <= 0.0
    if transport.reliable:
        cap = transport.max_retransmissions
        # geometric rejects p == 0: draw gap slots at a placeholder
        # rate, then force the deterministic full-loss outcome.
        safe_rate = np.where(dead, 0.5, delivery_rate)
        fails = rng.geometric(safe_rate, size=shape) - 1
        fails = np.where(dead, cap + 1, fails)
        delivered = fails <= cap
        attempts = np.minimum(fails + 1, cap + 1)
        extra = (attempts - 1) * transport.rto_s
    else:
        delivered = rng.random(shape) < delivery_rate
        attempts = np.ones(shape, dtype=np.int64)
        extra = np.zeros(shape)

    unit = np.maximum(0.0, rng.normal(trans_mean, 0.03 * trans_mean))
    transmission = unit * attempts

    return {
        "encryption_s": encryption, "backoff_s": backoff,
        "extra_delay_s": extra, "transmission_s": transmission,
        "attempts": attempts, "delivered": delivered,
    }
