"""AP fields: placements, path loss, and the RSSI -> rate/error map.

The static engines reduce the channel to one Bianchi fixed point; under
mobility the client's distance to each AP sets a received signal level,
which picks an 802.11g modulation rate and a residual channel error
rate — the two knobs the existing models already expose
(:class:`~repro.wifi.phy.Phy80211g` carries the rate,
:class:`~repro.wifi.dcf.DcfParameters.channel_error_rate` the loss the
MAC retries see).

Propagation is the standard log-distance model,

    RSSI(d) = P_tx - PL(d0) - 10 n log10(d / d0),

the deterministic mean path the i.i.d. loss channel in
:mod:`repro.wifi.channel` rides on (shadowing/fading shows up as the
residual error rate, not as RSSI noise — traces must stay
deterministic).  The rate ladder maps RSSI to the *highest* 802.11g
rate whose receiver sensitivity is met; the margin above that
sensitivity sets the residual packet error rate, floored to integer dB
so the distinct ``(rate, error)`` pairs — and hence the DCF fixed
points solved per scenario — stay countable and memoizable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple, Union

import numpy as np

from ..wifi.dcf import DcfParameters, solve_dcf
from ..wifi.phy import Phy80211g
from ..testbed.simulator import LinkConfig

__all__ = ["AccessPoint", "ApField", "RATE_SENSITIVITY_DBM",
           "default_field", "error_rate_for_margin", "link_for",
           "rates_and_errors"]

# 802.11g receiver sensitivities (dBm) per modulation rate, typical
# commodity-chipset values; descending rate order.  The set of rates
# must match Phy80211g's validation ladder.
RATE_SENSITIVITY_DBM: Tuple[Tuple[float, float], ...] = (
    (54.0, -65.0),
    (48.0, -68.0),
    (36.0, -73.0),
    (24.0, -78.0),
    (18.0, -81.0),
    (12.0, -84.0),
    (9.0, -87.0),
    (6.0, -90.0),
)

_SENS_ASC = np.array([s for _, s in reversed(RATE_SENSITIVITY_DBM)])
_RATES_ASC = np.array([r for r, _ in reversed(RATE_SENSITIVITY_DBM)])

# Above this margin (dB over sensitivity) the residual error rate is
# exactly 0.0 — which is what makes a parked client beside its AP
# reproduce the static engines' error-free link byte-for-byte.
CLEAN_MARGIN_DB = 30.0
# Cap: at zero margin the link is barely decodable, not dead — the MAC
# retry fold still delivers most packets.
MAX_ERROR_RATE = 0.25


def error_rate_for_margin(margin_db: Union[float, np.ndarray]
                          ) -> np.ndarray:
    """Residual channel error rate from the dB margin over sensitivity.

    A smooth log-linear roll-off, quantized on integer-dB margins:
    0.25 at zero margin, one decade per 10 dB, exactly 0.0 from
    :data:`CLEAN_MARGIN_DB` up.
    """
    margin = np.floor(np.atleast_1d(np.asarray(margin_db, dtype=float)))
    error = np.minimum(MAX_ERROR_RATE, 0.25 * 10.0 ** (-margin / 10.0))
    return np.where(margin >= CLEAN_MARGIN_DB, 0.0, np.round(error, 6))


def rates_and_errors(rssi_dbm: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Map RSSI samples to (rate Mb/s, residual error rate).

    Rate 0.0 marks out-of-range samples (below the 6 Mb/s
    sensitivity) — a coverage hole the scenario layer turns into a
    connectivity gap.
    """
    rssi = np.asarray(rssi_dbm, dtype=float)
    index = np.searchsorted(_SENS_ASC, rssi, side="right") - 1
    in_range = index >= 0
    clamped = np.maximum(index, 0)
    rate = np.where(in_range, _RATES_ASC[clamped], 0.0)
    margin = rssi - _SENS_ASC[clamped]
    error = np.where(in_range, error_rate_for_margin(margin), 0.0)
    return rate, error


@dataclass(frozen=True)
class AccessPoint:
    """One AP: a name and a 2D position."""

    name: str
    position_m: Tuple[float, float]


@dataclass(frozen=True)
class ApField:
    """A set of APs plus the propagation constants they share."""

    aps: Tuple[AccessPoint, ...]
    tx_power_dbm: float = 20.0
    reference_loss_db: float = 40.0   # free-space PL at d0 = 1 m, 2.4 GHz
    path_loss_exponent: float = 3.0   # open outdoor with clutter
    min_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if not self.aps:
            raise ValueError("a field needs at least one AP")
        if self.path_loss_exponent <= 0.0:
            raise ValueError("path loss exponent must be positive")
        if self.min_distance_m <= 0.0:
            raise ValueError("minimum distance must be positive")
        object.__setattr__(self, "aps", tuple(self.aps))

    @property
    def n_aps(self) -> int:
        return len(self.aps)

    def positions(self) -> np.ndarray:
        return np.array([ap.position_m for ap in self.aps], dtype=float)

    def rssi_dbm(self, positions_m: np.ndarray) -> np.ndarray:
        """Log-distance RSSI, shape ``(T, n_aps)``."""
        client = np.atleast_2d(np.asarray(positions_m, dtype=float))
        ap_pos = self.positions()
        distance = np.linalg.norm(
            client[:, np.newaxis, :] - ap_pos[np.newaxis, :, :], axis=-1)
        distance = np.maximum(distance, self.min_distance_m)
        return (self.tx_power_dbm - self.reference_loss_db
                - 10.0 * self.path_loss_exponent * np.log10(distance))


def default_field(n_aps: int = 4, *, spacing_m: float = 40.0,
                  first_at_m: Tuple[float, float] = (0.0, 0.0)
                  ) -> ApField:
    """A corridor of APs along the +x axis (the drive-by geometry)."""
    if n_aps < 1:
        raise ValueError("need at least one AP")
    x0, y0 = first_at_m
    aps = tuple(
        AccessPoint(name=f"ap-{index}",
                    position_m=(x0 + index * spacing_m, y0))
        for index in range(n_aps))
    return ApField(aps=aps)


@lru_cache(maxsize=None)
def link_for(rate_mbps: float, error_rate: float, n_stations: int,
             retry_limit: int = 7) -> LinkConfig:
    """The DCF fixed point for one (rate, residual error) operating
    point — memoized, since a scenario revisits few distinct points."""
    phy = Phy80211g(data_rate_bps=rate_mbps * 1e6)
    params = DcfParameters(n_stations=n_stations,
                           channel_error_rate=error_rate, phy=phy)
    return LinkConfig(phy=phy, dcf=solve_dcf(params),
                      retry_limit=retry_limit)
