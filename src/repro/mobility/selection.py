"""AP-selection policies over a sampled RSSI matrix.

Input: ``rssi_dbm`` of shape ``(T, n_aps)`` — the field's signal
levels along the trace.  Output: the associated AP index per sample.
Three policies, mirroring the ap-selection studies the ROADMAP cites:

- ``"strongest"`` — greedy argmax per sample.  Optimal rate, maximal
  handoff churn: the client ping-pongs wherever coverage overlaps.
- ``"hysteresis"`` — switch only when a challenger beats the current
  AP by ``hysteresis_db``.  The classic flap damper: between two APs
  of equal strength the client *never* moves (the property the tests
  pin), at the cost of riding a fading AP a little longer.
- ``"history"`` — hysteresis applied to a trailing-window mean of the
  RSSI (the throughput-history estimate of the related work): slower
  to chase a transient peak, faster to abandon a consistently fading
  AP.

These run once per scenario build over a (short) trace, so plain
Python iteration over timesteps is fine *here* — the per-packet hot
paths in :mod:`repro.mobility.vector` are the loops ``repro lint``
bans.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SELECTION_POLICIES", "handoff_count", "select_aps"]

SELECTION_POLICIES = ("strongest", "hysteresis", "history")


def _rolling_mean(rssi: np.ndarray, window: int) -> np.ndarray:
    """Trailing mean over up to ``window`` samples (shorter at start)."""
    cumulative = np.cumsum(rssi, axis=0)
    total = np.empty_like(cumulative)
    total[:window] = cumulative[:window]
    total[window:] = cumulative[window:] - cumulative[:-window]
    counts = np.minimum(np.arange(1, rssi.shape[0] + 1), window)
    return total / counts[:, np.newaxis]


def _with_hysteresis(rssi: np.ndarray, margin_db: float) -> np.ndarray:
    choice = np.empty(rssi.shape[0], dtype=np.int64)
    current = int(np.argmax(rssi[0]))
    choice[0] = current
    for step in range(1, rssi.shape[0]):
        row = rssi[step]
        best = int(np.argmax(row))
        if best != current and row[best] > row[current] + margin_db:
            current = best
        choice[step] = current
    return choice


def select_aps(rssi_dbm: np.ndarray, policy: str, *,
               hysteresis_db: float = 4.0,
               history_window: int = 3) -> np.ndarray:
    """The associated AP index at every trace sample, shape ``(T,)``."""
    rssi = np.atleast_2d(np.asarray(rssi_dbm, dtype=float))
    if rssi.ndim != 2 or rssi.shape[0] < 1 or rssi.shape[1] < 1:
        raise ValueError("rssi must be a (T, n_aps) matrix")
    if policy not in SELECTION_POLICIES:
        raise ValueError(
            f"unknown selection policy {policy!r}; expected one of"
            f" {SELECTION_POLICIES}")
    if policy == "strongest":
        return np.argmax(rssi, axis=1).astype(np.int64)
    if hysteresis_db <= 0.0:
        raise ValueError("hysteresis margin must be positive")
    if policy == "history":
        if history_window < 1:
            raise ValueError("history window must be >= 1")
        rssi = _rolling_mean(rssi, history_window)
    return _with_hysteresis(rssi, hysteresis_db)


def handoff_count(selection: np.ndarray) -> int:
    """Number of AP changes along a selection sequence."""
    selection = np.asarray(selection)
    if selection.size < 2:
        return 0
    return int(np.count_nonzero(selection[1:] != selection[:-1]))
