"""The piecewise-constant link timeline a mobile transfer rides.

Composition point of the package: trace x field x selection policy
collapse into a sorted tuple of :class:`LinkSegment` — each a
half-open interval with one DCF fixed point (rate + residual error
solved through :func:`repro.mobility.field.link_for`), an associated
AP, and an ``in_gap`` flag for the intervals where nothing is
deliverable (handoff re-association, coverage holes).

The contract both execution engines share: **a packet's link is the
segment active at its arrival instant** (real drivers latch the rate
when the packet is handed to the MAC queue).  That makes the segment
assignment a pure function of the arrival times — independent of how
the medium schedule plays out — which is exactly what lets the vector
engine pre-sample every draw and still match the coroutine kernel
bit-for-bit.

Gap semantics: a handoff between APs opens a ``handoff_gap_s``-long
segment in which the delivery rate is 0.0 (UDP packets die, TCP
packets burn their full retransmission budget) while CPU-side work
proceeds normally.  A zero-speed parked profile produces exactly one
error-free 54 Mb/s segment — the static engines' link — so mobility
with no motion is byte-identical to no mobility at all.

Named profiles keep the wire format simple: ``ExperimentConfig`` and
the advisor carry a spec string ``"<profile>[:<selection>]"``
(e.g. ``"vehicular:hysteresis"``), parsed by
:func:`parse_mobility_spec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..testbed.simulator import LinkConfig
from .field import ApField, default_field, link_for, rates_and_errors
from .selection import SELECTION_POLICIES, select_aps
from .trace import (
    MobilityTrace,
    linear_trace,
    parked_trace,
    waypoint_trace,
)

__all__ = ["LinkSegment", "MOBILITY_PROFILES", "MobilityScenario",
           "build_profile", "build_scenario", "parse_mobility_spec"]


@dataclass(frozen=True)
class LinkSegment:
    """One constant-link interval ``[start_s, end_s)``.

    ``link`` always holds a solved :class:`LinkConfig` (during gaps:
    the link being joined, so backoff/airtime draws stay well defined);
    ``delivery_rate`` is what the transport actually sees — zero while
    ``in_gap``.
    """

    start_s: float
    end_s: float              # math.inf on the final segment
    link: LinkConfig
    ap_index: int             # -1 while disconnected
    rate_mbps: float
    error_rate: float
    in_gap: bool

    @property
    def delivery_rate(self) -> float:
        return 0.0 if self.in_gap else self.link.delivery_rate

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True, eq=False)
class MobilityScenario:
    """A fully resolved mobility timeline for one station count."""

    profile: str
    selection: str
    trace: MobilityTrace
    field: ApField
    handoff_gap_s: float
    n_stations: int
    retry_limit: int
    segments: Tuple[LinkSegment, ...]
    handoffs: int
    gap_time_s: float

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a scenario needs at least one segment")
        starts = np.array([s.start_s for s in self.segments])
        if starts[0] != 0.0 or np.any(np.diff(starts) <= 0.0):
            raise ValueError("segments must start at 0 and be sorted")
        if not math.isinf(self.segments[-1].end_s):
            raise ValueError("the final segment must extend to infinity")
        object.__setattr__(self, "_starts", starts)

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def segment_starts(self) -> np.ndarray:
        return self._starts  # type: ignore[attr-defined]

    def segment_index_at(self, times_s) -> np.ndarray:
        """Segment index for each (non-negative) instant — the
        arrival-latch lookup both engines share."""
        times = np.atleast_1d(np.asarray(times_s, dtype=float))
        index = np.searchsorted(self.segment_starts, times,
                                side="right") - 1
        return np.maximum(index, 0)

    def segment_at(self, time_s: float) -> LinkSegment:
        return self.segments[int(self.segment_index_at(time_s)[0])]

    @property
    def gap_fraction(self) -> float:
        """Fraction of the (finite) trace window spent in gaps."""
        horizon = self.trace.duration_s
        if horizon <= 0.0:
            return 0.0
        return min(1.0, self.gap_time_s / horizon)

    def describe(self) -> dict:
        """A small JSON-friendly summary (CLI / bench reporting)."""
        return {
            "profile": self.profile,
            "selection": self.selection,
            "speed_mps": self.trace.speed_mps,
            "duration_s": self.trace.duration_s,
            "n_aps": self.field.n_aps,
            "segments": self.n_segments,
            "handoffs": self.handoffs,
            "gap_time_s": round(self.gap_time_s, 6),
            "gap_fraction": round(self.gap_fraction, 6),
        }


def build_scenario(trace: MobilityTrace, field: ApField, *,
                   selection: str = "strongest",
                   handoff_gap_s: float = 0.0,
                   n_stations: int = 2,
                   retry_limit: int = 7,
                   hysteresis_db: float = 4.0,
                   history_window: int = 3,
                   profile: str = "custom") -> MobilityScenario:
    """Collapse trace + field + selection into merged link segments."""
    if handoff_gap_s < 0.0:
        raise ValueError("handoff gap must be non-negative")
    if n_stations < 1:
        raise ValueError("need at least one station")
    rssi = field.rssi_dbm(trace.position_at(trace.times_s))
    chosen = select_aps(rssi, selection, hysteresis_db=hysteresis_db,
                        history_window=history_window)
    chosen_rssi = rssi[np.arange(rssi.shape[0]), chosen]
    rate, error = rates_and_errors(chosen_rssi)

    # Per-sample connection state; rate 0 marks a coverage hole.
    states = []
    for step in range(trace.n_samples):
        if rate[step] <= 0.0:
            states.append((-1, 6.0, 0.25))
        else:
            states.append((int(chosen[step]), float(rate[step]),
                           float(error[step])))

    # Merge consecutive identical states into intervals.
    times = trace.times_s
    intervals = []  # (start, end, state)
    run_start = 0.0
    current = states[0]
    for step in range(1, trace.n_samples):
        if states[step] != current:
            intervals.append((run_start, float(times[step]), current))
            run_start = float(times[step])
            current = states[step]
    intervals.append((run_start, math.inf, current))

    segments = []
    handoffs = 0
    gap_time = 0.0
    previous_ap: Optional[int] = None
    for start, end, (ap, seg_rate, seg_error) in intervals:
        link = link_for(seg_rate, seg_error, n_stations, retry_limit)
        hole = ap < 0
        joined = not hole and previous_ap is not None and ap != previous_ap
        if joined:
            handoffs += 1
        gap_until = start
        if joined and handoff_gap_s > 0.0:
            gap_until = min(end, start + handoff_gap_s)
        if hole:
            gap_until = end
        if gap_until > start:
            segments.append(LinkSegment(
                start_s=start, end_s=gap_until, link=link, ap_index=-1,
                rate_mbps=seg_rate, error_rate=seg_error, in_gap=True))
            if math.isfinite(gap_until):
                gap_time += gap_until - start
        if gap_until < end:
            segments.append(LinkSegment(
                start_s=gap_until, end_s=end, link=link, ap_index=ap,
                rate_mbps=seg_rate, error_rate=seg_error, in_gap=False))
        if not hole:
            previous_ap = ap

    # A gap that swallowed its whole interval can leave the last
    # segment finite; extend it.
    last = segments[-1]
    if not math.isinf(last.end_s):
        segments[-1] = LinkSegment(
            start_s=last.start_s, end_s=math.inf, link=last.link,
            ap_index=last.ap_index, rate_mbps=last.rate_mbps,
            error_rate=last.error_rate, in_gap=last.in_gap)

    return MobilityScenario(
        profile=profile, selection=selection, trace=trace, field=field,
        handoff_gap_s=handoff_gap_s, n_stations=n_stations,
        retry_limit=retry_limit, segments=tuple(segments),
        handoffs=handoffs, gap_time_s=gap_time)


# Named profiles: trace shape + speed + handoff gap + field geometry.
# Speeds follow the usual mobility-trace conventions (pedestrian
# ~1.4 m/s, urban vehicular ~14 m/s); AP spacing is the drive-by
# corridor of default_field.  Timesteps are fine enough that a segment
# boundary lands within ~0.25 s of the true crossing.
MOBILITY_PROFILES = {
    "parked": {"kind": "parked", "speed_mps": 0.0, "gap_s": 0.0,
               "duration_s": 10.0, "timestep_s": 1.0, "n_aps": 1},
    "pedestrian": {"kind": "linear", "speed_mps": 1.4, "gap_s": 0.25,
                   "duration_s": 60.0, "timestep_s": 0.5, "n_aps": 4},
    "vehicular": {"kind": "linear", "speed_mps": 14.0, "gap_s": 0.35,
                  "duration_s": 30.0, "timestep_s": 0.25, "n_aps": 12},
    "waypoint": {"kind": "waypoint", "speed_mps": 8.0, "gap_s": 0.35,
                 "duration_s": 45.0, "timestep_s": 0.25, "n_aps": 4},
}

DEFAULT_SELECTION = "strongest"


def parse_mobility_spec(spec: str) -> Tuple[str, str]:
    """``"<profile>[:<selection>]"`` -> validated (profile, selection)."""
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"mobility spec must be a non-empty string,"
                         f" got {spec!r}")
    profile, _, selection = spec.partition(":")
    selection = selection or DEFAULT_SELECTION
    if profile not in MOBILITY_PROFILES:
        raise ValueError(
            f"unknown mobility profile {profile!r}; expected one of"
            f" {tuple(MOBILITY_PROFILES)}")
    if selection not in SELECTION_POLICIES:
        raise ValueError(
            f"unknown selection policy {selection!r}; expected one of"
            f" {SELECTION_POLICIES}")
    return profile, selection


def build_profile(spec: str, *, n_stations: int = 2,
                  retry_limit: int = 7,
                  seed: int = 2013) -> MobilityScenario:
    """Build the named scenario a spec string describes.

    Deterministic: equal ``(spec, n_stations, retry_limit, seed)``
    yield segment-for-segment equal scenarios — the property the
    selftest pins and the experiment cache key relies on.
    """
    profile, selection = parse_mobility_spec(spec)
    recipe = MOBILITY_PROFILES[profile]
    kind = recipe["kind"]
    if kind == "parked":
        # Beside the first AP: full margin, the static engines' link.
        trace = parked_trace(recipe["duration_s"],
                             position_m=(0.0, 2.0),
                             timestep_s=recipe["timestep_s"])
    elif kind == "linear":
        trace = linear_trace(recipe["speed_mps"], recipe["duration_s"],
                             start_m=(0.0, 2.0),
                             timestep_s=recipe["timestep_s"])
    else:
        trace = waypoint_trace(recipe["speed_mps"], recipe["duration_s"],
                               area_m=(recipe["n_aps"] * 40.0, 60.0),
                               seed=seed,
                               timestep_s=recipe["timestep_s"])
    field = default_field(recipe["n_aps"], spacing_m=40.0)
    return build_scenario(
        trace, field, selection=selection,
        handoff_gap_s=recipe["gap_s"], n_stations=n_stations,
        retry_limit=retry_limit, profile=profile)
