"""Struct-of-arrays fast path for mobile contention grids.

Mobility adds one ingredient to the static vector engine
(:mod:`repro.testbed.vector_flows`): piecewise-constant link segments.
Because packets latch their segment at the *arrival* instant, the
whole latch is one ``searchsorted`` of the arrival matrix against the
segment starts — after which every distribution parameter is a fancy
index into per-segment arrays and the existing exact/batch Lindley
schedulers run unchanged.  The coroutine kernel
(:mod:`repro.mobility.process`) stays the differential oracle.

``repro lint`` bans per-timestep/per-segment Python loops in this
file: trace time must never be walked step by step here.  Per-packet
and per-segment Python work (oracle replay, airtime tables) lives in
:mod:`repro.mobility.sampling`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..testbed.flow_sampling import PacketColumns, packet_columns
from ..testbed.simulator import PacketService
from ..testbed.vector_flows import (
    _SCHEDULE_FNS,
    SAMPLING_MODES,
    SCHEDULERS,
    FlowTables,
    VectorFlowRun,
)
from .process import segment_services
from .sampling import (
    mobile_batch_sample,
    mobile_oracle_sample,
    segment_airtime_table,
    segment_parameters,
)
from .scenario import MobilityScenario

__all__ = ["build_mobile_tables", "run_mobile_vector"]


def build_mobile_tables(flow_streams: "List[Sequence]",
                        flow_arrivals: List[np.ndarray], *,
                        scenario: MobilityScenario,
                        base_service: PacketService,
                        seed: "Optional[int | np.random.SeedSequence]" = None,
                        sampling: str = "batch",
                        ) -> "Tuple[FlowTables, List[PacketColumns], int]":
    """Latch segments, sample services, assemble padded SoA tables.

    Returns the tables, the shared per-flow columns, and the number of
    (real) packets that arrived inside connectivity gaps.
    """
    if sampling not in SAMPLING_MODES:
        raise ValueError(
            f"unknown sampling mode {sampling!r}; expected one of"
            f" {SAMPLING_MODES}")
    if len(flow_streams) != len(flow_arrivals):
        raise ValueError("one arrival array per flow required")
    n_flows = len(flow_streams)
    counts = np.array([len(group) for group in flow_streams],
                      dtype=np.int64)
    for flow in range(n_flows):
        if counts[flow] != len(flow_arrivals[flow]):
            raise ValueError(
                f"flow {flow}: {counts[flow]} packets but"
                f" {len(flow_arrivals[flow])} arrival instants")
    width = int(counts.max()) if n_flows else 0

    columns_by_id = {}
    flow_columns: List[PacketColumns] = []
    for flow in range(n_flows):
        key = id(flow_streams[flow])
        if key not in columns_by_id:
            columns_by_id[key] = packet_columns(flow_streams[flow],
                                                base_service)
        flow_columns.append(columns_by_id[key])

    arrival = np.full((n_flows, width), np.inf)
    encrypted = np.zeros((n_flows, width), dtype=bool)
    enc_mean = np.zeros((n_flows, width))
    enc_sigma = np.zeros((n_flows, width))
    wire = np.zeros((n_flows, width), dtype=np.int64)
    header = base_service.transport.header_bytes
    for flow in range(n_flows):
        count = int(counts[flow])
        cols = flow_columns[flow]
        arrival[flow, :count] = flow_arrivals[flow]
        encrypted[flow, :count] = cols.encrypted
        enc_mean[flow, :count] = cols.enc_mean_s
        enc_sigma[flow, :count] = cols.enc_sigma_s
        wire[flow, :count] = cols.payload_bytes + header

    mask = np.arange(width)[np.newaxis, :] < counts[:, np.newaxis]

    # The arrival latch: one searchsorted against the segment starts.
    # Padding arrivals are +inf and land on the final segment, whose
    # parameters are valid; the mask zeroes those slots afterwards.
    finite_arrival = np.where(mask, arrival, 0.0)
    seg_index = scenario.segment_index_at(finite_arrival.ravel())
    seg_index = seg_index.reshape(arrival.shape)
    params = segment_parameters(scenario)
    gap_packets = int(np.count_nonzero(params["in_gap"][seg_index]
                                       & mask))

    # Per-packet airtime means: per-(segment, size) table, gathered.
    unique_sizes = np.unique(wire[mask]) if mask.any() \
        else np.array([header], dtype=np.int64)
    airtime = segment_airtime_table(scenario, unique_sizes)
    size_index = np.searchsorted(unique_sizes,
                                 np.where(mask, wire, unique_sizes[0]))
    trans_mean = airtime[seg_index, size_index]

    encryption = np.zeros((n_flows, width))
    backoff = np.zeros((n_flows, width))
    extra = np.zeros((n_flows, width))
    transmission = np.zeros((n_flows, width))
    attempts = np.ones((n_flows, width), dtype=np.int64)
    delivered = np.zeros((n_flows, width), dtype=bool)

    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)

    if sampling == "oracle":
        # One spawned child per flow, spawn order = flow order — the
        # exact streams the mobile kernel coroutines receive.
        services = segment_services(scenario, base_service)
        for flow in range(n_flows):
            rng = np.random.default_rng(root.spawn(1)[0])
            count = int(counts[flow])
            samples = mobile_oracle_sample(
                flow_streams[flow], seg_index[flow, :count], services,
                scenario, rng)
            encryption[flow, :count] = samples.encryption_s
            backoff[flow, :count] = samples.backoff_s
            extra[flow, :count] = samples.extra_delay_s
            transmission[flow, :count] = samples.transmission_s
            attempts[flow, :count] = samples.attempts
            delivered[flow, :count] = samples.delivered
    else:
        rng = np.random.Generator(np.random.Philox(root))
        drawn = mobile_batch_sample(
            enc_mean, enc_sigma, encrypted, trans_mean,
            params["p_success"][seg_index],
            params["backoff_rate_per_s"][seg_index],
            params["delivery_rate"][seg_index],
            base_service.transport, rng)
        encryption = np.where(mask, drawn["encryption_s"], 0.0)
        backoff = np.where(mask, drawn["backoff_s"], 0.0)
        extra = np.where(mask, drawn["extra_delay_s"], 0.0)
        transmission = np.where(mask, drawn["transmission_s"], 0.0)
        attempts = np.where(mask, drawn["attempts"], 1)
        delivered = mask & drawn["delivered"]

    tables = FlowTables(
        arrival_s=arrival, encryption_s=encryption, backoff_s=backoff,
        extra_delay_s=extra, transmission_s=transmission,
        attempts=attempts, delivered=delivered, encrypted=encrypted,
        n_packets=counts,
    )
    return tables, flow_columns, gap_packets


def run_mobile_vector(flow_streams: "List[Sequence]",
                      flow_arrivals: List[np.ndarray], *,
                      scenario: MobilityScenario,
                      base_service: PacketService,
                      seed: "Optional[int | np.random.SeedSequence]" = None,
                      sampling: str = "batch",
                      scheduler: Optional[str] = None,
                      ) -> "Tuple[VectorFlowRun, int]":
    """Sample and schedule a mobile grid; returns (run, gap packets).

    Scheduler defaults follow the static engine: oracle sampling pairs
    with the exact (kernel-bit-identical) scheduler, batch with batch.
    """
    if scheduler is None:
        scheduler = "exact" if sampling == "oracle" else "batch"
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected one of"
            f" {SCHEDULERS}")
    tables, flow_columns, gap_packets = build_mobile_tables(
        flow_streams, flow_arrivals, scenario=scenario,
        base_service=base_service, seed=seed, sampling=sampling)
    start, transmit, depart = _SCHEDULE_FNS[scheduler](tables)
    run = VectorFlowRun(
        tables=tables, start_s=start, transmit_s=transmit,
        depart_s=depart, sampling=sampling, scheduler=scheduler,
        flow_streams=list(flow_streams), flow_columns=flow_columns,
    )
    return run, gap_packets
