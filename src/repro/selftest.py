"""Fast end-to-end self-check: ``repro selftest``.

CI runs this before anything else (and developers run it after a
checkout) to answer "is this tree fundamentally sound?" in a few
seconds.  It exercises one representative slice of each load-bearing
subsystem:

- **crypto** — FIPS-197 known answers on the vectorized AES, plus
  vector-vs-scalar agreement for AES-256 and 3DES over random blocks
  (the property the whole perf story rests on: fast path, same bytes);
- **engine** — a tiny grid through the cached
  :class:`~repro.testbed.engine.ExperimentEngine` twice: the cold pass
  must simulate, the warm pass must replay every cell from cache with
  zero simulations and identical summaries;
- **events** — a 2-flow contention run through the discrete-event
  kernel with basic sanity invariants (positive makespan, all packets
  accounted for);
- **vector** — the struct-of-arrays fast path replayed against the
  coroutine kernel on the same tiny grid: oracle sampling must match
  the kernel trace-for-trace, and batch sampling must produce a sane
  delay profile (the property the 10^4-flow story rests on);
- **models** — the batched analytic-model engine
  (:mod:`repro.core.vector_models`) swept against the scalar oracle on
  a tiny calibrated scenario: same recommended policy, every sweep
  scalar within tight float tolerance (the property the cold-advisor
  speedup rests on);
- **mobility** — the handoff layer: a profile built twice must yield
  byte-identical segment timelines (trace determinism), and a
  handoff-rich custom scenario run through the event kernel and the
  vectorized fast path (oracle sampling) must agree packet-for-packet
  (the arrival-latch contract the mobility engine split rests on);
- **net** — a loopback ``repro cached serve`` instance driven through
  the ``tcp:`` queue and cache clients: submit/claim/renew/complete
  plus a cache write/read round-trip, all over the framed wire
  protocol;
- **serve** — a loopback ``repro serve`` advisor instance asked the
  same question twice: the first answer must be a cold evaluation, the
  second a memo hit with identical bytes and zero extra model sweeps.

Each check returns a row; any failure makes ``repro selftest`` exit 1.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

__all__ = ["CheckResult", "run_selftest"]


@dataclass(frozen=True)
class CheckResult:
    name: str
    ok: bool
    detail: str


def _check_crypto_kat() -> str:
    from .crypto import AES, TripleDES, VectorAES, VectorTripleDES

    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    key256 = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f")
    expected = "8ea2b7ca516745bfeafc49904b496089"  # FIPS-197 C.3
    got = VectorAES(key256).encrypt_block(plaintext).hex()
    if got != expected:
        raise AssertionError(f"AES-256 FIPS vector mismatch: {got}")

    rng = np.random.default_rng(20130927)
    blocks = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
    scalar = AES(key256)
    batch = VectorAES(key256).encrypt_blocks(blocks)
    for i in range(blocks.shape[0]):
        if batch[i].tobytes() != scalar.encrypt_block(blocks[i].tobytes()):
            raise AssertionError(f"AES-256 vector/scalar split at block {i}")

    des_key = bytes(range(24))
    des_blocks = rng.integers(0, 256, size=(32, 8), dtype=np.uint8)
    des_scalar = TripleDES(des_key)
    des_batch = VectorTripleDES(des_key).encrypt_blocks(des_blocks)
    for i in range(des_blocks.shape[0]):
        if des_batch[i].tobytes() != des_scalar.encrypt_block(
                des_blocks[i].tobytes()):
            raise AssertionError(f"3DES vector/scalar split at block {i}")
    return "FIPS-197 KAT + 64 vector/scalar blocks agree"


def _tiny_scenario():
    from .video import CodecConfig, encode_sequence, generate_clip

    clip = generate_clip("slow", 12, seed=1)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=6, quantizer=8))
    return clip, bitstream


def _check_cached_engine() -> str:
    from .core import standard_policies
    from .testbed import (DEVICES, ExperimentConfig, ExperimentEngine,
                          GridCell, ResultCache)

    clip, bitstream = _tiny_scenario()
    policies = standard_policies("AES256")
    cells = [
        GridCell("selftest", ExperimentConfig(
            policy=policies[name], device=DEVICES["samsung-s2"],
            sensitivity_fraction=0.55, decode_video=False), 2)
        for name in ("none", "I")
    ]
    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        try:
            cold = ExperimentEngine(cache=cache, workers=1, master_seed=7)
            cold.add_scenario("selftest", clip, bitstream)
            first = cold.run_grid(cells)
            cold_sims = cold.simulations_run
            warm = ExperimentEngine(cache=cache, workers=1, master_seed=7)
            warm.add_scenario("selftest", clip, bitstream)
            second = warm.run_grid(cells)
            if cold_sims != 4:
                raise AssertionError(
                    f"cold pass ran {cold_sims} simulations, expected 4")
            if warm.simulations_run != 0:
                raise AssertionError(
                    f"warm pass ran {warm.simulations_run} simulations,"
                    " expected a full cache replay")
            if first != second:
                raise AssertionError("warm replay diverged from cold run")
            if not all(summary.from_cache for summary in second):
                raise AssertionError("warm summaries not marked from_cache")
        finally:
            cache.close()
    return "cold=4 sims, warm=0 sims, identical summaries"


def _check_event_kernel() -> str:
    from .core import standard_policies
    from .testbed import DEVICES, run_multiflow

    _, bitstream = _tiny_scenario()
    result = run_multiflow(
        bitstream, flows=2, policy=standard_policies("AES256")["I"],
        device=DEVICES["samsung-s2"], seed=2013,
    )
    if len(result.flows) != 2:
        raise AssertionError(f"expected 2 flows, got {len(result.flows)}")
    if not result.makespan_s > 0:
        raise AssertionError(f"non-positive makespan {result.makespan_s}")
    for flow_id, run in enumerate(result.flows):
        if len(run.packets) == 0:
            raise AssertionError(f"flow {flow_id} produced no packets")
        if not any(run.usable_by_receiver):
            raise AssertionError(f"flow {flow_id} delivered nothing")
    return (f"2 flows, {sum(len(r.packets) for r in result.flows)} packets,"
            f" makespan {result.makespan_s:.2f}s")


def _check_vector_flows() -> str:
    from .core import standard_policies
    from .testbed import DEVICES, run_multiflow

    _, bitstream = _tiny_scenario()
    kwargs = dict(flows=2, policy=standard_policies("AES256")["I"],
                  device=DEVICES["samsung-s2"], seed=2013)
    kernel = run_multiflow(bitstream, **kwargs)
    vector = run_multiflow(bitstream, engine="vector", sampling="oracle",
                           **kwargs)

    def rows(result):
        return [
            (t.sequence_number, t.enqueue_time_s, t.service_start_s,
             t.encryption_time_s, t.transmit_time_s, t.departure_time_s,
             t.encrypted, t.delivered, t.attempts)
            for run in result.flows for t in run.trace
        ]

    if rows(kernel) != rows(vector):
        raise AssertionError(
            "vector engine (oracle sampling) diverged from the event"
            " kernel on the selftest grid")
    batch = run_multiflow(bitstream, engine="vector", **kwargs)
    mean = batch.mean_delay_ms
    if not 0.0 < mean < 1e4:
        raise AssertionError(f"batch sampling mean delay insane: {mean}")
    return (f"oracle==kernel over {len(rows(kernel))} packet traces,"
            f" batch mean delay {mean:.2f}ms")


def _check_vector_models() -> str:
    from .core import calibrate_scenario, default_candidates
    from .core.advisor import PolicyAdvisor, choice_payload
    from .core.distortion import DistortionPolynomial
    from .crypto.timing import reference_cipher_cost

    _, bitstream = _tiny_scenario()
    scenario = calibrate_scenario(
        bitstream,
        cipher_costs={name: reference_cipher_cost(name)
                      for name in ("AES128", "AES256", "3DES")},
        polynomial=DistortionPolynomial(coefficients=(0.0, 40.0, 4.0),
                                        cap=8000.0),
        sensitivity_fraction=0.55, recovery_fraction=0.9,
        baseline_distortion=6.0)
    candidates = default_candidates()
    scalar = choice_payload(PolicyAdvisor(scenario, engine="scalar")
                            .recommend(candidates=candidates))
    vector = choice_payload(PolicyAdvisor(scenario, engine="vector")
                            .recommend(candidates=candidates))
    if scalar["recommended"] != vector["recommended"]:
        raise AssertionError(
            f"engines disagree on the selection: scalar"
            f" {scalar['recommended']!r}, vector"
            f" {vector['recommended']!r}")
    worst = 0.0
    for label, entry in scalar["sweep"].items():
        other = vector["sweep"][label]
        for key in ("delay_ms", "waiting_ms", "traffic_intensity",
                    "receiver_psnr_db", "eavesdropper_psnr_db"):
            error = abs(other[key] - entry[key]) / max(1.0,
                                                       abs(entry[key]))
            worst = max(worst, error)
            if error > 1e-7:
                raise AssertionError(
                    f"vector engine diverged from the scalar oracle:"
                    f" {label} {key} off by {error:.2e}")
    return (f"scalar==vector over {len(candidates)} policies,"
            f" max rel err {worst:.1e},"
            f" both recommend {scalar['recommended']}")


def _check_mobility() -> str:
    from .core import standard_policies
    from .mobility import (build_profile, build_scenario, default_field,
                           linear_trace, run_mobility)
    from .testbed import DEVICES

    # Trace determinism: two builds of the same profile spec must agree
    # segment-for-segment (same floats, same AP indices, same gaps).
    def timeline(scenario):
        return [(s.start_s, s.end_s, s.ap_index, s.rate_mbps,
                 s.error_rate, s.in_gap) for s in scenario.segments]

    first = build_profile("vehicular:hysteresis", n_stations=3)
    again = build_profile("vehicular:hysteresis", n_stations=3)
    if timeline(first) != timeline(again):
        raise AssertionError("profile build is not deterministic")

    # Kernel-vs-vector differential on a handoff-rich scenario: a fast
    # pass down a dense corridor forces frequent retunes and gaps.
    scenario = build_scenario(
        linear_trace(25.0, 4.0, timestep_s=0.1),
        default_field(6, spacing_m=15.0),
        handoff_gap_s=0.15, n_stations=3)
    if scenario.handoffs < 2:
        raise AssertionError(
            f"selftest scenario only {scenario.handoffs} handoffs;"
            " differential would not exercise retunes")
    _, bitstream = _tiny_scenario()
    kwargs = dict(mobility=scenario, flows=2,
                  policy=standard_policies("AES256")["I"],
                  device=DEVICES["samsung-s2"], seed=2013)
    kernel = run_mobility(bitstream, **kwargs)
    vector = run_mobility(bitstream, engine="vector", sampling="oracle",
                          **kwargs)

    def rows(result):
        return [
            (t.sequence_number, t.enqueue_time_s, t.service_start_s,
             t.encryption_time_s, t.transmit_time_s, t.departure_time_s,
             t.encrypted, t.delivered, t.attempts)
            for run in result.flows_run.flows for t in run.trace
        ]

    if rows(kernel) != rows(vector):
        raise AssertionError(
            "mobile vector engine (oracle sampling) diverged from the"
            " event kernel on the selftest scenario")
    if kernel.gap_packets != vector.gap_packets:
        raise AssertionError(
            f"gap accounting split: kernel {kernel.gap_packets},"
            f" vector {vector.gap_packets}")
    return (f"deterministic build, oracle==kernel over"
            f" {len(rows(kernel))} packet traces across"
            f" {scenario.handoffs} handoffs,"
            f" {kernel.gap_packets} gap packets agree")


def _check_net_queue() -> str:
    from .testbed import RemoteWorkQueue, ResultCache
    from .testbed.queue import QueueTask
    from .testbed.server import ServerThread

    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        root = Path(tmp) / "queue"
        with ServerThread(root) as served:
            remote = RemoteWorkQueue.from_spec(served.spec)
            task = QueueTask(
                key="selftest-cell", scenario="selftest",
                scenario_fingerprint="f" * 64, scenario_meta={},
                config={"policy": "none"}, repeats=1, master_seed=7,
                schema=0, code="c" * 64)
            if not remote.submit(task):
                raise AssertionError("remote submit refused a fresh task")
            claimed = remote.claim()
            if claimed is None or claimed.key != task.key:
                raise AssertionError(f"remote claim returned {claimed!r}")
            remote.renew(task.key)
            remote.complete(task.key)
            counts = remote.counts()
            if counts["done"] != 1 or counts["pending"] or counts["leased"]:
                raise AssertionError(f"queue counts wrong: {counts}")
            cache = ResultCache.from_spec(served.spec)
            try:
                payload = b"net-queue selftest payload"
                cache.backend.write("selftest-cell", payload)
                back = cache.backend.read("selftest-cell")
                if back != payload:
                    raise AssertionError("cache bytes mutated over TCP")
            finally:
                cache.close()
            served_ops = served.server.requests_served
    return (f"submit/claim/complete + cache round-trip over"
            f" tcp ({served_ops} RPCs)")


def _check_advise_serve() -> str:
    from .testbed import AdvisorClient, ServiceRequest
    from .testbed.server import AdvisorServer, ServerThread

    request = ServiceRequest(motion="slow", frames=12, gop=6, seed=1)
    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        server = AdvisorServer(Path(tmp) / "memo")
        with ServerThread(server=server) as served:
            with AdvisorClient(served.host, served.port) as client:
                cold = client.recommend(request)
                warm = client.recommend(request)
                stats = client.stats()
        if cold.source != "cold":
            raise AssertionError(
                f"first request answered from {cold.source!r}")
        if warm.source != "memo":
            raise AssertionError(
                f"repeated request answered from {warm.source!r},"
                " expected a memo hit")
        if warm.data != cold.data:
            raise AssertionError("memo answer diverged from cold answer")
        if stats["evaluations"] != 1:
            raise AssertionError(
                f"{stats['evaluations']} model evaluations for 2"
                " requests, expected exactly 1 (warm path must sweep"
                " nothing)")
        recommended = cold.payload["recommended"]
    return (f"cold+warm over tcp, 1 evaluation, memo hit,"
            f" recommended {recommended}")


_CHECKS: List[tuple] = [
    ("crypto-kat", _check_crypto_kat),
    ("cached-engine", _check_cached_engine),
    ("event-kernel", _check_event_kernel),
    ("vector-flows", _check_vector_flows),
    ("vector-models", _check_vector_models),
    ("mobility", _check_mobility),
    ("net-queue", _check_net_queue),
    ("advise-serve", _check_advise_serve),
]


def run_selftest(
    checks: Optional[List[str]] = None,
) -> List[CheckResult]:
    """Run the named checks (default: all); never raises — failures are
    rows with ``ok=False``."""
    selected = [(name, fn) for name, fn in _CHECKS
                if checks is None or name in checks]
    if checks is not None:
        unknown = set(checks) - {name for name, _ in _CHECKS}
        if unknown:
            raise ValueError(
                f"unknown selftest check(s): {sorted(unknown)};"
                f" available: {[name for name, _ in _CHECKS]}"
            )
    results: List[CheckResult] = []
    for name, fn in selected:
        fn: Callable[[], str]
        try:
            results.append(CheckResult(name, True, fn()))
        except Exception as exc:  # the whole point is to catch anything
            results.append(CheckResult(
                name, False, f"{type(exc).__name__}: {exc}"))
    return results
