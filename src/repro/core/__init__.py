"""The paper's analytical framework (Section 4).

- :mod:`policies` — which packets a policy encrypts (Section 3);
- :mod:`mmpp` — the 2-MMPP arrival process (Section 4.2.1);
- :mod:`service` — the T = T_e + T_b + T_t service time (Section 4.2.2);
- :mod:`queueing` — the 2-MMPP/G/1 solver and eq. (19) (Section 4.2.3);
- :mod:`frame_success` — eq. (20) (Section 4.3.1);
- :mod:`distortion` — eqs. (21)-(28) (Sections 4.3.2-4.3.4);
- :mod:`calibration` / :mod:`scenario` — parameter estimation (Section 6.1);
- :mod:`delay` — the FrameworkModel facade;
- :mod:`advisor` — the Fig. 1 policy-selection workflow.
"""

from .adaptive import (
    AdaptivePolicy,
    WindowPlan,
    classify_windows,
    plan_adaptive_policy,
)
from .advisor import (
    DEFAULT_PSNR_TARGET_DB,
    AdvisorChoice,
    PolicyAdvisor,
    choice_payload,
    default_candidates,
    encode_choice,
    encode_payload,
    prediction_payload,
    psnr_target_for_mos,
    select_cheapest,
)
from .calibration import (
    estimate_success_rate,
    fit_gaussian_atom,
    fit_mmpp_from_trace,
)
from .delay import FrameworkModel, PolicyPrediction
from .distortion import (
    DistortionEstimate,
    DistortionModel,
    DistortionPolynomial,
    gop_state_probabilities,
    intra_gop_distortion_linear,
)
from .frame_success import (
    FrameSuccessModel,
    decryption_rate,
    frame_success_probability,
)
from .mmpp import MMPP2, MmppSample
from .policies import EncryptionPolicy, standard_policies
from .queueing import (
    QueueSolution,
    SimulationResult,
    compute_g_matrix,
    idle_phase_vector,
    mean_waiting_time,
    pollaczek_khinchine,
    simulate_mmpp_g1,
    solve_mmpp_g1,
)
from .scenario import Scenario, calibrate_scenario
from .waiting_distribution import (
    WaitingTimeDistribution,
    waiting_time_distribution,
)
from .service import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    ServiceTimeModel,
    TransmissionComponent,
)

__all__ = [
    "AdaptivePolicy", "WindowPlan", "classify_windows",
    "plan_adaptive_policy",
    "AdvisorChoice", "PolicyAdvisor", "default_candidates",
    "DEFAULT_PSNR_TARGET_DB", "choice_payload", "encode_choice",
    "encode_payload", "prediction_payload", "psnr_target_for_mos",
    "select_cheapest",
    "estimate_success_rate", "fit_gaussian_atom", "fit_mmpp_from_trace",
    "FrameworkModel", "PolicyPrediction",
    "DistortionEstimate", "DistortionModel", "DistortionPolynomial",
    "gop_state_probabilities", "intra_gop_distortion_linear",
    "FrameSuccessModel", "decryption_rate", "frame_success_probability",
    "MMPP2", "MmppSample",
    "EncryptionPolicy", "standard_policies",
    "QueueSolution", "SimulationResult", "compute_g_matrix",
    "idle_phase_vector", "mean_waiting_time", "pollaczek_khinchine",
    "simulate_mmpp_g1", "solve_mmpp_g1",
    "Scenario", "calibrate_scenario",
    "BackoffComponent", "EncryptionComponent", "GaussianAtom",
    "ServiceTimeModel", "TransmissionComponent",
    "WaitingTimeDistribution", "waiting_time_distribution",
]
