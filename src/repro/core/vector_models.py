"""Struct-of-arrays fast path over the analytic model stack.

The scalar modules (:mod:`service`, :mod:`queueing`,
:mod:`waiting_distribution`, :mod:`distortion`) solve one policy at a
time: a scipy ``expm`` per G-matrix iteration, a Python complex loop per
Euler-inversion term, a 200+80-step bracket/bisection per quantile, and
a dict-based age dynamic program per distortion estimate.  The advisor
sweeps the whole candidate ladder through that stack on every cold
recommendation, which is what caps ``repro serve`` at a handful of cold
requests per second.

This module is the batched twin, built exactly like the crypto and
flow-kernel fast paths (scalar oracle + differentially tested numpy
lanes): per-policy ``ServiceTimeModel`` parameters are stacked along a
leading *lane* axis (:class:`ServiceBatch`), the G-matrix fixed point
iterates every lane at once with per-lane convergence masks
(:func:`batch_g_matrix`), eq. (19) is evaluated with closed-form 2x2
inverses and stationary vectors (:func:`batch_solve_mmpp_g1`), the
complex waiting-time LST is evaluated as ``(lanes, terms)`` matrices so
Euler inversion and the quantile bracket run simultaneously over every
lane (:class:`BatchWaitingDistribution`), and the frame-success →
distortion → PSNR → MOS mapping is one array pass
(:func:`batch_frame_success` / :func:`batch_distortion`).

The batch also handles a grid of *scenario cells*: pass one
:class:`~repro.core.mmpp.MMPP2` to broadcast it across lanes, or a
sequence of them to give each lane its own arrival process.

Saturated lanes (utilization >= 1) are never silently solved: they are
excluded from the fixed point and come back flagged ``stable == False``
with infinite waiting times, so a sweep over a grid that crosses the
stability boundary reports the crossing instead of astronomical floats.

Everything here stays in arrays; the project linter bans per-policy
Python loops from this file the same way it bans per-packet loops from
``vector_flows.py``.  Object assembly (policies to lanes, lanes back to
:class:`~repro.core.queueing.QueueSolution` /
:class:`~repro.core.distortion.DistortionEstimate`) belongs to the
facade in :mod:`repro.core.delay`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import List, Sequence, Union

import numpy as np

from .distortion import DistortionEstimate, DistortionModel
from .mmpp import MMPP2
from .queueing import QueueSolution
from .service import ServiceTimeModel
from ..video.quality import MAX_PSNR_DB

__all__ = [
    "expm2",
    "inv2",
    "ServiceBatch",
    "BatchQueueSolution",
    "batch_g_matrix",
    "batch_solve_mmpp_g1",
    "BatchWaitingDistribution",
    "batch_waiting_distribution",
    "batch_frame_success",
    "BatchDistortion",
    "batch_distortion",
    "batch_psnr_from_distortion",
    "batch_mos_from_psnr",
]

_EYE2 = np.eye(2)


# -- closed-form batched 2x2 linear algebra -----------------------------------


def expm2(m: np.ndarray) -> np.ndarray:
    """Matrix exponential of a ``(..., 2, 2)`` stack, in closed form.

    Every 2x2 matrix satisfies ``expm(M) = e^{tr/2} (cosh(q) I +
    sinhc(q) (M - (tr/2) I))`` with ``q = sqrt((tr/2)^2 - det)``; the
    ``q -> 0`` limit uses the ``sinh(q)/q`` series.  Equivalent to
    ``scipy.linalg.expm`` per slice, minus the per-call overhead that
    dominates the scalar G-matrix iteration.
    """
    m = np.asarray(m)
    half_trace = 0.5 * (m[..., 0, 0] + m[..., 1, 1])
    det = (m[..., 0, 0] * m[..., 1, 1] - m[..., 0, 1] * m[..., 1, 0])
    disc = (half_trace * half_trace - det).astype(complex)
    q = np.sqrt(disc)
    small = np.abs(q) < 1e-6
    q_safe = np.where(small, 1.0, q)
    sinhc = np.where(small, 1.0 + disc / 6.0, np.sinh(q_safe) / q_safe)
    deviation = m - half_trace[..., None, None] * _EYE2
    out = np.exp(half_trace)[..., None, None] * (
        np.cosh(q)[..., None, None] * _EYE2
        + sinhc[..., None, None] * deviation
    )
    if np.isrealobj(m):
        return out.real
    return out


def inv2(m: np.ndarray) -> np.ndarray:
    """Inverse of a ``(..., 2, 2)`` stack via the adjugate formula."""
    det = (m[..., 0, 0] * m[..., 1, 1] - m[..., 0, 1] * m[..., 1, 0])
    out = np.empty_like(m)
    out[..., 0, 0] = m[..., 1, 1]
    out[..., 1, 1] = m[..., 0, 0]
    out[..., 0, 1] = -m[..., 0, 1]
    out[..., 1, 0] = -m[..., 1, 0]
    return out / det[..., None, None]


def _stationary2(chain: np.ndarray) -> np.ndarray:
    """Left stationary vector of ``(..., 2, 2)`` stochastic matrices.

    Detailed balance of a 2-state chain gives ``alpha = (K_21, K_12) /
    (K_12 + K_21)``; a (numerically impossible for our chains) identity
    chain falls back to ``e_1``, matching the scalar eigensolver's pick.
    """
    up = chain[..., 0, 1]
    down = chain[..., 1, 0]
    total = up + down
    safe = np.where(total > 0.0, total, 1.0)
    first = np.where(total > 0.0, down / safe, 1.0)
    second = np.where(total > 0.0, up / safe, 0.0)
    return np.stack([first, second], axis=-1)


# -- the service-time batch ----------------------------------------------------


@dataclass(frozen=True)
class ServiceBatch:
    """Per-lane ``ServiceTimeModel`` parameters stacked along axis 0.

    One row per lane; every closed form of :mod:`repro.core.service`
    (moments, complex scalar LST, 2x2 matrix LST) evaluates across all
    rows in one numpy expression.
    """

    enc_q_i: np.ndarray        # effective I-packet selection probability
    enc_q_p: np.ndarray        # effective P-packet selection probability
    enc_mu_i: np.ndarray
    enc_sigma_i: np.ndarray
    enc_mu_p: np.ndarray
    enc_sigma_p: np.ndarray
    backoff_p_s: np.ndarray
    backoff_lambda_b: np.ndarray
    tx_p_i: np.ndarray
    tx_mu_i: np.ndarray
    tx_sigma_i: np.ndarray
    tx_mu_p: np.ndarray
    tx_sigma_p: np.ndarray

    @classmethod
    def from_models(cls, models: Sequence[ServiceTimeModel]
                    ) -> "ServiceBatch":
        """Stack the parameters of the given scalar service models."""
        if len(models) == 0:
            raise ValueError("need at least one service model")

        def column(getter) -> np.ndarray:
            return np.array([getter(m) for m in models], dtype=float)

        return cls(
            enc_q_i=column(lambda m: m.encryption.q_i_effective),
            enc_q_p=column(lambda m: m.encryption.q_p_effective),
            enc_mu_i=column(lambda m: m.encryption.atom_i.mu),
            enc_sigma_i=column(lambda m: m.encryption.atom_i.sigma),
            enc_mu_p=column(lambda m: m.encryption.atom_p.mu),
            enc_sigma_p=column(lambda m: m.encryption.atom_p.sigma),
            backoff_p_s=column(lambda m: m.backoff.p_s),
            backoff_lambda_b=column(lambda m: m.backoff.lambda_b),
            tx_p_i=column(lambda m: m.transmission.p_i),
            tx_mu_i=column(lambda m: m.transmission.atom_i.mu),
            tx_sigma_i=column(lambda m: m.transmission.atom_i.sigma),
            tx_mu_p=column(lambda m: m.transmission.atom_p.mu),
            tx_sigma_p=column(lambda m: m.transmission.atom_p.sigma),
        )

    def __len__(self) -> int:
        return self.enc_q_i.shape[0]

    def __getitem__(self, index) -> "ServiceBatch":
        """A sub-batch over the given lane indices / boolean mask."""
        return ServiceBatch(*(getattr(self, field.name)[index]
                              for field in fields(self)))

    # -- moments (same closed forms as the scalar components) -----------------

    @property
    def mean(self) -> np.ndarray:
        enc = self.enc_q_i * self.enc_mu_i + self.enc_q_p * self.enc_mu_p
        backoff = ((1.0 - self.backoff_p_s)
                   / (self.backoff_p_s * self.backoff_lambda_b))
        tx = (self.tx_p_i * self.tx_mu_i
              + (1.0 - self.tx_p_i) * self.tx_mu_p)
        return enc + backoff + tx

    @property
    def second_moment(self) -> np.ndarray:
        enc_mean = self.enc_q_i * self.enc_mu_i + self.enc_q_p * self.enc_mu_p
        enc_m2 = (self.enc_q_i * (self.enc_mu_i ** 2 + self.enc_sigma_i ** 2)
                  + self.enc_q_p * (self.enc_mu_p ** 2
                                    + self.enc_sigma_p ** 2))
        p = self.backoff_p_s
        ek = (1.0 - p) / p
        ek2 = (1.0 - p) * (2.0 - p) / (p * p)
        backoff_mean = ek / self.backoff_lambda_b
        backoff_m2 = (ek2 + ek) / self.backoff_lambda_b ** 2
        tx_mean = (self.tx_p_i * self.tx_mu_i
                   + (1.0 - self.tx_p_i) * self.tx_mu_p)
        tx_m2 = (self.tx_p_i * (self.tx_mu_i ** 2 + self.tx_sigma_i ** 2)
                 + (1.0 - self.tx_p_i) * (self.tx_mu_p ** 2
                                          + self.tx_sigma_p ** 2))
        total = enc_m2 + backoff_m2 + tx_m2
        total += 2.0 * (enc_mean * backoff_mean + enc_mean * tx_mean
                        + backoff_mean * tx_mean)
        return total

    # -- transforms ------------------------------------------------------------

    def _per_lane(self, values: np.ndarray, ndim: int) -> np.ndarray:
        """Reshape a lane column to broadcast against an (L, ...) grid."""
        return values.reshape(values.shape + (1,) * (ndim - 1))

    def lst(self, s: np.ndarray) -> np.ndarray:
        """``H(s)`` (eq. 10) on a complex grid with lanes along axis 0."""
        s = np.asarray(s)
        col = lambda values: self._per_lane(values, s.ndim)  # noqa: E731

        def atom(mu, sigma):
            return np.exp(-col(mu) * s + 0.5 * (col(sigma) * s) ** 2)

        q_i, q_p = col(self.enc_q_i), col(self.enc_q_p)
        h_e = ((1.0 - q_i - q_p)
               + q_i * atom(self.enc_mu_i, self.enc_sigma_i)
               + q_p * atom(self.enc_mu_p, self.enc_sigma_p))
        p_s, lam_b = col(self.backoff_p_s), col(self.backoff_lambda_b)
        h_b = p_s * (lam_b + s) / (s + p_s * lam_b)
        p_i = col(self.tx_p_i)
        h_t = (p_i * atom(self.tx_mu_i, self.tx_sigma_i)
               + (1.0 - p_i) * atom(self.tx_mu_p, self.tx_sigma_p))
        return h_e * h_b * h_t

    def matrix_lst(self, m: np.ndarray) -> np.ndarray:
        """``E[e^{MT}]`` per lane over an ``(L, 2, 2)`` matrix stack."""
        mm = m @ m
        col = lambda values: values[:, None, None]  # noqa: E731

        def atom(mu, sigma):
            return expm2(col(mu) * m + 0.5 * col(sigma) ** 2 * mm)

        q_i, q_p = col(self.enc_q_i), col(self.enc_q_p)
        h_e = ((1.0 - q_i - q_p) * _EYE2
               + q_i * atom(self.enc_mu_i, self.enc_sigma_i)
               + q_p * atom(self.enc_mu_p, self.enc_sigma_p))
        p_s, lam_b = col(self.backoff_p_s), col(self.backoff_lambda_b)
        h_b = p_s * ((lam_b * _EYE2 - m) @ inv2(p_s * lam_b * _EYE2 - m))
        p_i = col(self.tx_p_i)
        h_t = (p_i * atom(self.tx_mu_i, self.tx_sigma_i)
               + (1.0 - p_i) * atom(self.tx_mu_p, self.tx_sigma_p))
        return h_e @ h_b @ h_t


# -- the batched 2-MMPP/G/1 solver ---------------------------------------------


MmppSpec = Union[MMPP2, Sequence[MMPP2]]


def _mmpp_matrices(mmpp: MmppSpec, lanes: int):
    """``(L, 2, 2)`` generator and rate-matrix stacks (broadcasting a
    single MMPP across every lane)."""
    if isinstance(mmpp, MMPP2):
        generators = np.broadcast_to(mmpp.generator, (lanes, 2, 2))
        rates = np.broadcast_to(mmpp.rate_matrix, (lanes, 2, 2))
        return generators, rates
    processes = list(mmpp)
    if len(processes) != lanes:
        raise ValueError(
            f"{len(processes)} arrival processes do not match"
            f" {lanes} service lanes")
    generators = np.stack([p.generator for p in processes])
    rates = np.stack([p.rate_matrix for p in processes])
    return generators, rates


class _LaneKernel:
    """The fused fixed-point step ``F(G) = Omega(D0 + Lambda G)``.

    The step matrix ``m = D0 + Lambda G`` has non-negative off-diagonal
    entries, so its discriminant ``((a - d)/2)^2 + bc`` is non-negative
    and its eigenvalues are real.  By Cayley-Hamilton every matrix
    function of a 2x2 matrix is ``beta m + alpha I``, and the eigenvalue
    map of ``Omega(m) = E[e^{mT}]`` is the scalar service LST at ``-l``:
    one batched evaluation of ``H`` at the two eigenvalues of every lane
    replaces the four matrix exponentials of :meth:`ServiceBatch.
    matrix_lst` per step.  Lanes whose eigenvalues nearly coincide (the
    divided difference would cancel catastrophically) fall back to the
    exact ``expm``-based form, which is confluent-safe.

    All lane constants are hoisted out of the iteration; ``step`` is a
    fixed, short sequence of whole-batch array operations.
    """

    def __init__(self, generators: np.ndarray, rates: np.ndarray,
                 batch: ServiceBatch) -> None:
        self.batch = batch
        self.d0 = generators - rates
        # Lambda is diagonal, so `Lambda @ G` is a broadcast multiply.
        self.lam_col = np.ascontiguousarray(
            np.diagonal(rates, axis1=1, axis2=2))[:, :, None]
        col = lambda v: v[:, None]  # noqa: E731
        self.neg_mu4 = -np.stack([batch.enc_mu_i, batch.enc_mu_p,
                                  batch.tx_mu_i, batch.tx_mu_p])[:, :, None]
        self.halfsig4 = 0.5 * np.stack(
            [batch.enc_sigma_i, batch.enc_sigma_p,
             batch.tx_sigma_i, batch.tx_sigma_p])[:, :, None] ** 2
        self.q0 = col(1.0 - batch.enc_q_i - batch.enc_q_p)
        self.qi = col(batch.enc_q_i)
        self.qp = col(batch.enc_q_p)
        self.pti = col(batch.tx_p_i)
        self.ptp = col(1.0 - batch.tx_p_i)
        self.p_s = col(batch.backoff_p_s)
        self.lam_b = col(batch.backoff_lambda_b)
        self.pslam = self.p_s * self.lam_b
        # Constants of the stochastic parameterization used by
        # `off_diagonal`: with G = [[1-x, x], [y, 1-y]], the entries of
        # m = D0 + Lambda G are affine in (x, y).
        lam0 = self.lam_col[:, 0, 0]
        lam1 = self.lam_col[:, 1, 0]
        self.lam0, self.lam1 = lam0, lam1
        self.c01 = self.d0[:, 0, 1]
        self.c10 = self.d0[:, 1, 0]
        self.k00 = self.d0[:, 0, 0] + lam0
        self.k11 = self.d0[:, 1, 1] + lam1

    def step(self, g: np.ndarray) -> np.ndarray:
        m = self.d0 + self.lam_col * g
        half_trace = 0.5 * (m[:, 0, 0] + m[:, 1, 1])
        half_gap = 0.5 * (m[:, 0, 0] - m[:, 1, 1])
        q = np.sqrt(np.maximum(half_gap * half_gap
                               + m[:, 0, 1] * m[:, 1, 0], 0.0))
        top = half_trace + q
        s = np.stack([-top, q - half_trace], axis=1)   # (L, 2): -l1, -l2
        atoms = np.exp(self.neg_mu4 * s + self.halfsig4 * (s * s))
        values = ((self.q0 + self.qi * atoms[0] + self.qp * atoms[1])
                  * (self.p_s * (self.lam_b + s) / (s + self.pslam))
                  * (self.pti * atoms[2] + self.ptp * atoms[3]))
        gap = 2.0 * q
        # Divided-difference cancellation grows as 1/gap; hand lanes
        # with (nearly) confluent eigenvalues to the exact matrix form.
        tight = gap < 1e-4 * (np.abs(half_trace) + 1.0)
        safe_gap = np.where(tight, 1.0, gap)
        beta = (values[:, 0] - values[:, 1]) / safe_gap
        alpha = values[:, 0] - beta * top
        out = beta[:, None, None] * m + alpha[:, None, None] * _EYE2
        if tight.any():
            idx = np.flatnonzero(tight)
            out[idx] = self.batch[idx].matrix_lst(m[idx])
        return out

    def off_diagonal(self, x: np.ndarray, y: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray] | None":
        """``(F(G)_12, F(G)_21)`` for stochastic ``G`` parameterized by
        its off-diagonals — the Newton residual evaluation.

        ``x``/``y`` may carry extra leading axes over the lane axis
        (Newton stacks the base point and both finite-difference
        perturbations as one ``(3, L)`` call); the lane constants
        broadcast from the right.  Skips the diagonal/identity assembly
        of :meth:`step`; returns ``None`` when any lane is
        near-confluent (the caller falls back to the exact iteration).
        """
        a = self.lam0 * x
        b = self.lam1 * y
        m01 = self.c01 + a
        m10 = self.c10 + b
        half_trace = 0.5 * ((self.k00 + self.k11) - (a + b))
        half_gap = 0.5 * ((self.k00 - self.k11) - (a - b))
        q = np.sqrt(np.maximum(half_gap * half_gap + m01 * m10, 0.0))
        s = np.stack([-(half_trace + q), q - half_trace], axis=-1)
        atoms = np.exp(self.neg_mu4[:, None] * s
                       + self.halfsig4[:, None] * (s * s))
        values = ((self.q0 + self.qi * atoms[0] + self.qp * atoms[1])
                  * (self.p_s * (self.lam_b + s) / (s + self.pslam))
                  * (self.pti * atoms[2] + self.ptp * atoms[3]))
        gap = 2.0 * q
        if np.any(gap < 1e-4 * (np.abs(half_trace) + 1.0)):
            return None
        beta = (values[..., 0] - values[..., 1]) / gap
        return beta * m01, beta * m10


def _iterate_g(generators: np.ndarray, rates: np.ndarray,
               batch: ServiceBatch, *, tolerance: float,
               max_iterations: int, active: np.ndarray) -> np.ndarray:
    """The fixed point ``G = Omega(R - Lambda + Lambda G)`` on every
    active lane at once, with per-lane convergence masks.

    The iteration is adaptively over-relaxed: the per-lane contraction
    ratio estimated from successive residuals extrapolates the dominant
    error mode away (``omega = 1 / (1 - mu)``, as in the damped Bianchi
    solver of :mod:`repro.wifi.dcf` but in the accelerating direction),
    which cuts the step count by roughly a quarter without changing the
    fixed point.  A lane retires the moment its residual
    ``|F(G) - G|_inf`` drops below ``tolerance`` — exactly the scalar
    solver's stopping rule — and freezes at its ``F``-image.
    """
    lanes = len(batch)
    g = np.zeros((lanes, 2, 2))
    if not active.any():
        return g
    idx = np.flatnonzero(active)
    sub = batch[idx] if idx.size < lanes else batch
    kernel = _LaneKernel(generators[idx], rates[idx], sub)
    work = np.zeros((idx.size, 2, 2))
    pending = np.ones(idx.size, dtype=bool)
    prev_delta = np.full(idx.size, np.inf)
    for _ in range(max_iterations):
        image = kernel.step(work)
        residual = image - work
        delta = np.max(np.abs(residual), axis=(1, 2))
        newly_done = pending & (delta < tolerance)
        pending &= ~newly_done
        work = np.where(newly_done[:, None, None], image, work)
        if not pending.any():
            g[idx] = work
            return g
        # Accelerate only while the residual is shrinking; a lane whose
        # residual grew takes a plain (omega = 1) step.
        ratio = np.minimum(delta / prev_delta, 0.4)
        omega = np.where(delta < prev_delta, 1.0 / (1.0 - ratio), 1.0)
        advance = pending[:, None, None]
        work = np.where(advance, work + omega[:, None, None] * residual,
                        work)
        prev_delta = np.maximum(delta, 1e-300)
    raise RuntimeError(
        "G-matrix iteration did not converge on"
        f" {int(pending.sum())} lane(s); the queue may be unstable"
        f" (first stuck lane {int(np.flatnonzero(pending)[0])})")


def _newton_g(generators: np.ndarray, rates: np.ndarray,
              batch: ServiceBatch, *, tolerance: float,
              active: np.ndarray) -> "np.ndarray | None":
    """Newton fast path for the G fixed point; ``None`` when it fails.

    G is stochastic, so each lane has only two unknowns ``u = (G_12,
    G_21)``.  The residual ``F(u) - u`` is driven to zero by Newton
    steps whose 2x2 Jacobians come from finite differences — the base
    point and both perturbations evaluate as one stacked (3L-lane)
    fused step, so a Newton step costs one :meth:`_LaneKernel.step`
    call and converges in ~4 evaluations where the fixed point needs
    ~13-17.  Stops at the scalar solver's criterion (residual below
    ``tolerance``, return the F-image); any non-finite intermediate or
    slow progress abandons the attempt and the caller falls back to the
    globally convergent masked iteration.
    """
    lanes = len(batch)
    g = np.zeros((lanes, 2, 2))
    if not active.any():
        return g
    idx = np.flatnonzero(active)
    if idx.size < lanes:
        kernel = _LaneKernel(generators[idx], rates[idx], batch[idx])
    else:
        kernel = _LaneKernel(generators, rates, batch)
    n = idx.size
    ux = np.full(n, 0.5)
    uy = np.full(n, 0.5)
    eps = 1e-7
    # Base point and both finite-difference perturbations evaluate as a
    # single (3, n)-shaped kernel call per Newton iteration.
    off_x = np.array([[0.0], [eps], [0.0]])
    off_y = np.array([[0.0], [0.0], [eps]])
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for _ in range(25):
            result = kernel.off_diagonal(ux + off_x, uy + off_y)
            if result is None:
                return None
            fx, fy = result
            rx = fx[0] - ux
            ry = fy[0] - uy
            if max(np.max(np.abs(rx)), np.max(np.abs(ry))) < tolerance:
                g[idx, 0, 1] = fx[0]
                g[idx, 0, 0] = 1.0 - fx[0]
                g[idx, 1, 0] = fy[0]
                g[idx, 1, 1] = 1.0 - fy[0]
                return g
            # Jacobian columns d/dx and d/dy from the perturbed rows; a
            # singular or diverging step surfaces as a non-finite u and
            # abandons the attempt.
            j11 = (fx[1] - fx[0]) / eps - 1.0
            j21 = (fy[1] - fy[0]) / eps
            j12 = (fx[2] - fx[0]) / eps
            j22 = (fy[2] - fy[0]) / eps - 1.0
            det = j11 * j22 - j12 * j21
            ux = ux - (j22 * rx - j12 * ry) / det
            uy = uy - (j11 * ry - j21 * rx) / det
            if not (np.all(np.isfinite(ux)) and np.all(np.isfinite(uy))):
                return None
            np.clip(ux, 0.0, 1.0, out=ux)
            np.clip(uy, 0.0, 1.0, out=uy)
    return None


def batch_g_matrix(mmpp: MmppSpec, batch: ServiceBatch, *,
                   tolerance: float = 1e-12,
                   max_iterations: int = 20_000) -> np.ndarray:
    """Per-lane fundamental-period matrices, ``(L, 2, 2)``.

    The batched twin of :func:`repro.core.queueing.compute_g_matrix`:
    identical fixed point, identical tolerance, but a single numpy
    expression advances every lane per iteration and converged lanes
    drop out of the working set.
    """
    generators, rates = _mmpp_matrices(mmpp, len(batch))
    return _iterate_g(generators, rates, batch, tolerance=tolerance,
                      max_iterations=max_iterations,
                      active=np.ones(len(batch), dtype=bool))


@dataclass(frozen=True)
class BatchQueueSolution:
    """Per-lane eq. (19) solutions with an explicit stability mask.

    Saturated lanes (``traffic_intensity >= 1``) are *flagged*, not
    solved: their waiting times are ``inf`` and their G/idle internals
    ``NaN``.  The scalar solver raises for them; a batch spanning a
    parameter grid instead reports exactly which cells crossed the
    stability boundary.
    """

    mean_waiting_time_s: np.ndarray
    mean_virtual_waiting_time_s: np.ndarray
    mean_sojourn_time_s: np.ndarray
    traffic_intensity: np.ndarray
    mean_service_time_s: np.ndarray
    service_second_moment: np.ndarray
    g_matrix: np.ndarray           # (L, 2, 2), NaN on unstable lanes
    idle_phase_vector: np.ndarray  # (L, 2), NaN on unstable lanes
    stable: np.ndarray             # bool (L,): utilization < 1

    def __len__(self) -> int:
        return self.mean_waiting_time_s.shape[0]

    def solution(self, index: int) -> QueueSolution:
        """One lane as a scalar :class:`QueueSolution` (raises for a
        saturated lane, exactly like the scalar solver)."""
        if not self.stable[index]:
            rho = float(self.traffic_intensity[index])
            raise ValueError(f"unstable queue (rho = {rho:.3f})")
        return QueueSolution(
            mean_waiting_time_s=float(self.mean_waiting_time_s[index]),
            mean_virtual_waiting_time_s=float(
                self.mean_virtual_waiting_time_s[index]),
            mean_sojourn_time_s=float(self.mean_sojourn_time_s[index]),
            traffic_intensity=float(self.traffic_intensity[index]),
            mean_service_time_s=float(self.mean_service_time_s[index]),
            service_second_moment=float(self.service_second_moment[index]),
            g_matrix=self.g_matrix[index].copy(),
            idle_phase_vector=self.idle_phase_vector[index].copy(),
        )


def batch_solve_mmpp_g1(mmpp: MmppSpec, batch: ServiceBatch, *,
                        tolerance: float = 1e-12,
                        max_iterations: int = 20_000
                        ) -> BatchQueueSolution:
    """Eq. (19) and its per-packet counterpart on every lane at once."""
    lanes = len(batch)
    generators, rates = _mmpp_matrices(mmpp, lanes)
    lam_vec = np.diagonal(rates, axis1=1, axis2=2)          # (L, 2)
    flip_up = generators[:, 0, 1]                            # p1
    flip_down = generators[:, 1, 0]                          # p2
    pi = np.stack([flip_down, flip_up], axis=-1)
    pi = pi / pi.sum(axis=-1, keepdims=True)                 # (L, 2)
    lam_bar = (pi * lam_vec).sum(axis=1)
    mu1 = batch.mean
    mu2 = batch.second_moment
    rho = lam_bar * mu1
    stable = rho < 1.0

    g = _newton_g(generators, rates, batch, tolerance=tolerance,
                  active=stable)
    if g is None:
        g = _iterate_g(generators, rates, batch, tolerance=tolerance,
                       max_iterations=max_iterations, active=stable)

    all_stable = bool(stable.all())
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        neg_d0_inv = inv2(rates - generators)
        lam_col = lam_vec[:, :, None]
        emptying = neg_d0_inv @ (lam_col * g)
        alpha = _stationary2(emptying)
        occupancy = (alpha[:, :, None] * neg_d0_inv).sum(axis=1)
        idle = ((1.0 - rho)[:, None] * occupancy
                / occupancy.sum(axis=-1, keepdims=True))

        outer_e_pi = np.broadcast_to(pi[:, None, :], (lanes, 2, 2))
        correction = inv2(generators + outer_e_pi)
        row = idle + (mu1[:, None] * pi) * lam_vec
        # Both eq. (19) quadratic forms share the vector (R + e pi)^-1 l.
        corrected_rates = (correction @ lam_col)[:, :, 0]
        bracket = (2.0 * rho + lam_bar * mu2
                   - 2.0 * mu1 * (row * corrected_rates).sum(axis=1))
        virtual = bracket / (2.0 * (1.0 - rho))
        s_term = ((row - pi) * corrected_rates).sum(axis=1)
        per_packet = virtual - s_term / lam_bar

    if not all_stable:
        per_packet = np.where(stable, per_packet, np.inf)
        virtual = np.where(stable, virtual, np.inf)
        g = np.where(stable[:, None, None], g, np.nan)
        idle = np.where(stable[:, None], idle, np.nan)
    return BatchQueueSolution(
        mean_waiting_time_s=per_packet,
        mean_virtual_waiting_time_s=virtual,
        mean_sojourn_time_s=per_packet + mu1,
        traffic_intensity=rho,
        mean_service_time_s=mu1,
        service_second_moment=mu2,
        g_matrix=g,
        idle_phase_vector=idle,
        stable=stable,
    )


# -- the batched waiting-time distribution -------------------------------------


# Classical central finite-difference weights on the symmetric 5-point
# stencil, shared with the scalar module.
_CENTRAL_WEIGHTS = {
    1: np.array([1.0, -8.0, 0.0, 8.0, -1.0]) / 12.0,
    2: np.array([-1.0, 16.0, -30.0, 16.0, -1.0]) / 12.0,
    3: np.array([-1.0, 2.0, 0.0, -2.0, 1.0]) / 2.0,
    4: np.array([1.0, -4.0, 6.0, -4.0, 1.0]),
}


@dataclass(frozen=True)
class BatchWaitingDistribution:
    """Per-lane waiting-time transforms inverted simultaneously.

    The scalar :class:`~repro.core.waiting_distribution.
    WaitingTimeDistribution` evaluates one complex transform point per
    Python call; here :meth:`transform` takes a ``(lanes, points)``
    complex grid, so one Euler inversion (and one quantile bracket
    sweep) covers every lane at once.
    """

    generators: np.ndarray    # (L, 2, 2)
    rates: np.ndarray         # (L, 2, 2)
    batch: ServiceBatch
    idle_vector: np.ndarray   # (L, 2)

    def __len__(self) -> int:
        return self.idle_vector.shape[0]

    def __getitem__(self, index) -> "BatchWaitingDistribution":
        return BatchWaitingDistribution(
            generators=self.generators[index],
            rates=self.rates[index],
            batch=self.batch[index],
            idle_vector=self.idle_vector[index],
        )

    @property
    def _rate_vector(self) -> np.ndarray:
        return np.diagonal(self.rates, axis1=1, axis2=2)

    @property
    def _mean_rate(self) -> np.ndarray:
        flip_up = self.generators[:, 0, 1]
        flip_down = self.generators[:, 1, 0]
        pi = np.stack([flip_down, flip_up], axis=-1)
        pi = pi / pi.sum(axis=-1, keepdims=True)
        return np.einsum("li,li->l", pi, self._rate_vector)

    def transform(self, s: np.ndarray) -> np.ndarray:
        """``E[e^{-sW}]`` on a complex grid with lanes along axis 0."""
        s = np.asarray(s, dtype=complex)
        zero = s == 0
        s_safe = np.where(zero, 1.0, s)
        h = self.batch.lst(s_safe)
        expand = (slice(None),) + (None,) * (s.ndim - 1)
        d0 = (self.generators - self.rates)[expand]
        d1 = self.rates[expand]
        matrix = (s_safe[..., None, None] * _EYE2
                  + d0 + d1 * h[..., None, None])
        idle = self.idle_vector.astype(complex)[expand]
        workload = s_safe[..., None] * np.einsum(
            "...i,...ij->...j", idle, inv2(matrix))
        lam_vec = self._rate_vector[expand]
        lam_bar = self._mean_rate.reshape(
            self._mean_rate.shape + (1,) * (s.ndim - 1))
        out = np.einsum("...j,...j->...", workload, lam_vec) / lam_bar
        return np.where(zero, 1.0, out)

    def mass_at_zero(self) -> np.ndarray:
        """P(W = 0) per lane: arrival-biased empty-system probability."""
        return (np.einsum("li,li->l", self.idle_vector, self._rate_vector)
                / self._mean_rate)

    def survival(self, t: np.ndarray, *, terms: int = 40,
                 euler_terms: int = 12) -> np.ndarray:
        """P(W > t) per lane by one batched Abate-Whitt Euler inversion.

        ``t`` is per-lane, shape ``(L,)``; same ``a = 18.4``
        discretisation and binomial averaging as the scalar module, but
        the ``(lanes, terms)`` transform grid replaces the per-k loop.
        """
        t = np.asarray(t, dtype=float)
        if np.any(t < 0):
            raise ValueError("time must be non-negative")
        positive = t > 0
        t_safe = np.where(positive, t, 1.0)

        a = 18.4  # controls the discretisation error (~1e-8)
        x = a / (2.0 * t_safe)
        step = math.pi / t_safe
        k = np.arange(terms + euler_terms + 1)
        s = x[:, None] + 1j * (k[None, :] * step[:, None])
        values = ((1.0 - self.transform(s)) / s).real
        signs = np.where(k % 2 == 0, 1.0, -1.0)
        series = values * signs[None, :]
        series[:, 0] *= 0.5
        partial_sums = np.cumsum(series, axis=1)[:, terms:]
        weights = np.array([math.comb(euler_terms, j)
                            for j in range(euler_terms + 1)])
        averaged = partial_sums @ weights / 2.0 ** euler_terms
        result = np.clip((np.exp(a / 2.0) / t_safe) * averaged, 0.0, 1.0)
        return np.where(positive, result, 1.0 - self.mass_at_zero())

    def cdf(self, t: np.ndarray, **kwargs) -> np.ndarray:
        """P(W <= t) per lane."""
        return 1.0 - self.survival(t, **kwargs)

    def moment(self, order: int) -> np.ndarray:
        """Per-lane n-th moment via the same 5-point stencil as the
        scalar module (orders 1-4)."""
        if not 1 <= order <= 4:
            raise ValueError("moments implemented for orders 1-4")
        scale = np.maximum(self.batch.mean, 1e-9)
        h = 1e-3 / scale
        offsets = np.arange(-2, 3)
        s = (offsets[None, :] * h[:, None]).astype(complex)
        values = self.transform(s).real
        derivative = values @ _CENTRAL_WEIGHTS[order] / h ** order
        return ((-1.0) ** order) * derivative

    def mean(self) -> np.ndarray:
        return self.moment(1)

    def quantile(self, probability: float, *,
                 upper_bound_factor: float = 200.0) -> np.ndarray:
        """Per-lane quantiles with one simultaneous bracket/bisection.

        The scalar path runs up to 200 doubling steps plus 80 bisection
        steps *per policy per level*; here each step is one batched
        ``cdf`` over every still-active lane.
        """
        if not 0.0 < probability < 1.0:
            raise ValueError("probability must be in (0, 1)")
        lanes = len(self)
        out = np.zeros(lanes)
        at_zero = self.cdf(np.zeros(lanes)) >= probability
        idx = np.flatnonzero(~at_zero)
        if idx.size == 0:
            return out
        sub = self[idx]
        low = np.zeros(idx.size)
        high = upper_bound_factor * np.maximum(sub.batch.mean, 1e-9)
        for _ in range(200):
            need = sub.cdf(high) < probability
            if not need.any():
                break
            high = np.where(need, high * 2.0, high)
        for _ in range(80):
            mid = 0.5 * (low + high)
            above = sub.cdf(mid) >= probability
            high = np.where(above, mid, high)
            low = np.where(above, low, mid)
        out[idx] = high
        return out


def batch_waiting_distribution(mmpp: MmppSpec, batch: ServiceBatch, *,
                               solution: "BatchQueueSolution" = None
                               ) -> BatchWaitingDistribution:
    """Build the batched distribution (raises if any lane is saturated,
    matching the scalar constructor; pass a precomputed ``solution`` to
    reuse its G matrices and idle vectors)."""
    if solution is None:
        solution = batch_solve_mmpp_g1(mmpp, batch)
    if not bool(np.all(solution.stable)):
        lane = int(np.flatnonzero(~solution.stable)[0])
        rho = float(solution.traffic_intensity[lane])
        raise ValueError(f"unstable queue (rho = {rho:.3f})")
    generators, rates = _mmpp_matrices(mmpp, len(batch))
    return BatchWaitingDistribution(
        generators=np.array(generators),
        rates=np.array(rates),
        batch=batch,
        idle_vector=solution.idle_phase_vector,
    )


# -- batched frame success and distortion --------------------------------------


_BINOMIAL_TAILS: dict = {}


def batch_frame_success(n_packets: int, sensitivity: int,
                        p_d: np.ndarray) -> np.ndarray:
    """Eq. (20) evaluated over a lane vector of decryption rates."""
    if n_packets < 1:
        raise ValueError("a frame has at least one packet")
    if not 0 <= sensitivity <= max(n_packets - 1, 0):
        raise ValueError(
            f"sensitivity must be in [0, {n_packets - 1}],"
            f" got {sensitivity}")
    p_d = np.asarray(p_d, dtype=float)
    if np.any((p_d < 0.0) | (p_d > 1.0)):
        raise ValueError("p_d must be in [0, 1]")
    rest = n_packets - 1
    cached = _BINOMIAL_TAILS.get((rest, sensitivity))
    if cached is None:
        j = np.arange(sensitivity, rest + 1)
        coefficients = np.array([math.comb(rest, int(jj)) for jj in j],
                                dtype=float)
        cached = _BINOMIAL_TAILS[(rest, sensitivity)] = (j, coefficients)
    j, coefficients = cached
    tail = np.einsum(
        "j,lj->l", coefficients,
        p_d[:, None] ** j[None, :]
        * (1.0 - p_d)[:, None] ** (rest - j)[None, :])
    return p_d * tail


def batch_psnr_from_distortion(distortion: np.ndarray) -> np.ndarray:
    """Eq. (28) over an array (zero distortion maps to the PSNR cap)."""
    distortion = np.asarray(distortion, dtype=float)
    if np.any(distortion < 0):
        raise ValueError("distortion must be non-negative")
    # Flooring the MSE keeps the log finite; any distortion small enough
    # to hit the floor maps above MAX_PSNR_DB and is capped anyway,
    # which is exactly the scalar zero-distortion convention.
    raw = 20.0 * np.log10(255.0 / np.sqrt(np.maximum(distortion, 1e-300)))
    return np.minimum(raw, MAX_PSNR_DB)


def batch_mos_from_psnr(psnr_db: np.ndarray) -> np.ndarray:
    """EvalVid's PSNR-to-MOS bucket map over an array."""
    psnr_db = np.asarray(psnr_db, dtype=float)
    return (1 + (psnr_db > 20.0).astype(int) + (psnr_db > 25.0)
            + (psnr_db > 31.0) + (psnr_db > 37.0))


@dataclass(frozen=True)
class BatchDistortion:
    """Per-lane distortion estimates (the arrays behind
    :class:`~repro.core.distortion.DistortionEstimate`)."""

    average_distortion: np.ndarray   # (L,)
    psnr_db: np.ndarray              # (L,)
    p_i_success: np.ndarray          # (L,)
    p_p_success: np.ndarray          # (L,)
    per_gop_distortion: np.ndarray   # (L, n_gops)

    def __len__(self) -> int:
        return self.average_distortion.shape[0]

    def estimate(self, index: int) -> DistortionEstimate:
        return DistortionEstimate(
            average_distortion=float(self.average_distortion[index]),
            psnr_db=float(self.psnr_db[index]),
            p_i_success=float(self.p_i_success[index]),
            p_p_success=float(self.p_p_success[index]),
            per_gop_distortion=tuple(self.per_gop_distortion[index].tolist()),
        )


def _polynomial_table(model: DistortionModel, max_distance: int
                      ) -> np.ndarray:
    """``D(d)`` for integer distances 0..max_distance (0 maps to 0)."""
    distances = np.arange(max_distance + 1, dtype=float)
    values = np.zeros_like(distances)
    power = np.ones_like(distances)
    for coefficient in model.polynomial.coefficients:
        values += coefficient * power
        power *= distances
    values = np.clip(values, 0.0, model.polynomial.cap)
    values[0] = 0.0
    return values


_DISTORTION_TABLES: dict = {}


def _distortion_tables(model: DistortionModel) -> dict:
    """The lane-independent pieces of the age DP, cached module-wide.

    Everything here depends only on the GOP geometry and the motion
    polynomial — not on the lanes and not on ``n_gops`` — so every
    advisor sharing a motion class pays the table construction once,
    even though each one builds its own :class:`DistortionModel`.
    """
    key = (model.gop_size, model.max_reference_age, model.polynomial)
    cached = _DISTORTION_TABLES.get(key)
    if cached is not None:
        return cached
    size = model.gop_size
    oldest = model.max_reference_age
    table = _polynomial_table(model, oldest + size)
    prefix = np.concatenate([[0.0], np.cumsum(table)])  # prefix[i] = sum <i
    k_idx = np.arange(1, size)
    ages = np.arange(oldest + 1)
    intra_ages = np.minimum(size - (k_idx - 1), oldest)
    # One-hot scatter replacing np.add.at: column j of `scatter` collects
    # the intra-loss states whose new reference age is j.
    scatter = np.zeros((size - 1, oldest + 1))
    scatter[np.arange(size - 1), intra_ages] = 1.0
    case2_tail = prefix[ages + size] - prefix[ages + 1]
    tables = {
        "table": table,
        "intra_tail": prefix[size - k_idx + 1] - prefix[2],
        # Contiguous age-1.. slices: the per-step case-2 contraction is
        # two matvecs against these instead of a dense (L, ages) build.
        "table_age1": np.ascontiguousarray(table[1:oldest + 1]),
        "case2_tail1": np.ascontiguousarray(case2_tail[1:]),
        "k_idx": k_idx,
        "scatter": scatter,
    }
    _DISTORTION_TABLES[key] = tables
    return tables


def batch_distortion(model: DistortionModel, p_i: np.ndarray,
                     p_p: np.ndarray, *,
                     baseline_distortion: float = 0.0) -> BatchDistortion:
    """Eqs. (21)-(28) over lane vectors of frame success probabilities.

    The exact age dynamic program of
    :meth:`DistortionModel.expected`, with the age distribution held as
    an ``(L, max_reference_age + 1)`` array instead of per-lane dicts
    and the per-age distortion sums taken from a prefix-sum table of the
    motion polynomial.
    """
    p_i = np.asarray(p_i, dtype=float)
    p_p = np.asarray(p_p, dtype=float)
    if p_i.shape != p_p.shape:
        raise ValueError("p_i and p_p must have matching shapes")
    lanes = p_i.shape[0]
    size = model.gop_size
    oldest = model.max_reference_age
    tables = _distortion_tables(model)
    table = tables["table"]
    k_idx = tables["k_idx"]

    if model.recovery_fraction is None:
        factor = np.ones(lanes)
    else:
        factor = 1.0 - p_p * (1.0 - model.recovery_fraction)

    # Case 1 (intra-GOP loss at k): (D(1) + factor * sum_{d=2}^{G-k} D(d)) / G
    intra = (table[1] + factor[:, None] * tables["intra_tail"][None, :]) / size

    # Case 2 (I-loss at reference age a): (D(a) + factor *
    # sum_{j=1}^{G-1} D(a+j)) / G.  Its contraction against the age
    # distribution separates into two fixed matvecs, so the dense
    # (L, ages) table is never materialized.
    table_age1 = tables["table_age1"]
    case2_tail1 = tables["case2_tail1"]

    # Case 3 (no reference ever): the cap everywhere.
    cap = model.polynomial.cap
    case3 = (cap + (size - 1) * factor * cap) / size

    # GOP state probabilities (eq. 24) per lane.
    states = np.empty((lanes, size + 1))
    states[:, 0] = 1.0 - p_i
    states[:, 1:size] = (p_i[:, None]
                         * p_p[:, None] ** (k_idx - 1)[None, :]
                         * (1.0 - p_p)[:, None])
    states[:, size] = p_i * p_p ** (size - 1)

    state_zero = states[:, 0]
    state_clean = states[:, size]
    intra_mass = states[:, 1:size]
    intra_mean = np.einsum("lk,lk->l", intra_mass, intra)

    prob = np.zeros((lanes, oldest + 1))
    prob[:, 0] = 1.0
    per_gop = np.empty((lanes, model.n_gops))
    scatter = tables["scatter"]
    shift_start = oldest - size + 1  # first age that clamps to `oldest`
    for step in range(model.n_gops):
        total = prob.sum(axis=1)
        aged = prob[:, 1:]
        case2_mean = (aged @ table_age1
                      + factor * (aged @ case2_tail1)) / size
        per_gop[:, step] = (
            state_zero * (prob[:, 0] * case3 + case2_mean)
            + total * intra_mean)

        advanced = (total[:, None] * intra_mass) @ scatter
        advanced[:, 0] += prob[:, 0] * state_zero
        if shift_start > 1:
            advanced[:, size + 1:] += (prob[:, 1:shift_start]
                                       * state_zero[:, None])
        tail_from = max(shift_start, 1)
        advanced[:, oldest] += (prob[:, tail_from:].sum(axis=1)
                                * state_zero)
        advanced[:, min(1, oldest)] += total * state_clean
        prob = advanced

    average = per_gop.mean(axis=1) + baseline_distortion
    return BatchDistortion(
        average_distortion=average,
        psnr_db=batch_psnr_from_distortion(average),
        p_i_success=p_i,
        p_p_success=p_p,
        per_gop_distortion=per_gop,
    )
