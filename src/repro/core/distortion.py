"""The distortion model of Section 4.3.2-4.3.4 (eqs. 21-28).

Given the frame success probabilities ``P_I``/``P_P`` (eq. 20), the GOP
size G, and a motion-class distortion-vs-reference-distance polynomial
(Fig. 2), this module computes the expected average distortion of the
video at an observer and maps it to PSNR.

GOP state space (eq. 23): ``S = 0`` if the I-frame is unrecoverable,
``S = k`` if the k-th P-frame is the first unrecoverable frame,
``S = G`` if nothing is lost; probabilities per eq. (24).

GOP distortion:

- *Case 1 (intra-GOP, S = k >= 1)*: frames k..G-1 freeze at frame k-1;
  the GOP's mean-square distortion is the average of D(d) over the freeze
  distances d = 1..G-k.  Eq. (21) is a linear interpolation of the same
  quantity between d_min/d_max; both forms are implemented and compared
  in an ablation bench (eq. 21's typesetting is ambiguous in the source
  text — see DESIGN.md).
- *Case 2 (inter-GOP, S = 0)*: the whole GOP freezes at the last good
  frame of an earlier GOP, at an age that grows by G per consecutive
  I-loss; distortion saturates at ``d_cap``.
- *Case 3 (initial)*: no reference ever decoded: distortion is ``d_cap``.

The chain over GOPs (eqs. 25-26) factorises because GOP states are
independent; the only coupling is the age of the reference frame, handled
with an exact dynamic program over the age distribution.  Eq. (27)
averages over GOPs; eq. (28) maps to PSNR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..video.quality import psnr_from_distortion

__all__ = [
    "DistortionPolynomial",
    "gop_state_probabilities",
    "intra_gop_distortion_linear",
    "DistortionModel",
    "DistortionEstimate",
]


@dataclass(frozen=True)
class DistortionPolynomial:
    """Degree-5 polynomial D(d): distortion of showing a frame that is
    ``d`` frames older than the one intended (Fig. 2).

    ``cap`` bounds the extrapolation: real distortion saturates once the
    substitute is entirely unrelated to the content (it cannot exceed the
    blank-frame MSE).  Coefficients are lowest-order first.
    """

    coefficients: Tuple[float, ...]
    cap: float

    def __post_init__(self) -> None:
        if len(self.coefficients) == 0:
            raise ValueError("need at least one coefficient")
        if self.cap <= 0:
            raise ValueError("cap must be positive")

    def __call__(self, distance: float) -> float:
        if distance <= 0:
            return 0.0
        value = 0.0
        power = 1.0
        for coefficient in self.coefficients:
            value += coefficient * power
            power *= distance
        return float(min(max(value, 0.0), self.cap))

    def mean_over(self, distances: Sequence[float]) -> float:
        if len(distances) == 0:
            return 0.0
        return float(np.mean([self(d) for d in distances]))


def gop_state_probabilities(gop_size: int, p_i: float, p_p: float
                            ) -> np.ndarray:
    """Eq. (24): probabilities of states 0..G for one GOP.

    index 0: I-frame lost; index k in 1..G-1: k-th P-frame is the first
    loss; index G: whole GOP received.
    """
    if gop_size < 2:
        raise ValueError("GOP size must be >= 2")
    for name, value in (("p_i", p_i), ("p_p", p_p)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    probabilities = np.empty(gop_size + 1)
    probabilities[0] = 1.0 - p_i
    for k in range(1, gop_size):
        probabilities[k] = p_i * p_p ** (k - 1) * (1.0 - p_p)
    probabilities[gop_size] = p_i * p_p ** (gop_size - 1)
    return probabilities


def intra_gop_distortion_linear(gop_size: int, first_loss: int,
                                d_min: float, d_max: float) -> float:
    """Eq. (21) in our reading (see DESIGN.md):

        d_i = (G - i) (i d_min + (G - i - 1) d_max) / (G (G - 1))

    Monotone decreasing in i, ~d_max when the first P-frame of a long GOP
    is lost, proportional to d_min when only the last frame is lost.
    """
    g = gop_size
    i = first_loss
    if not 1 <= i <= g - 1:
        raise ValueError(f"first_loss must be in [1, {g - 1}]")
    return (g - i) * (i * d_min + (g - i - 1) * d_max) / (g * (g - 1.0))


@dataclass(frozen=True)
class DistortionEstimate:
    """Model output for one observer/policy."""

    average_distortion: float     # eq. (27), MSE units
    psnr_db: float                # eq. (28)
    p_i_success: float
    p_p_success: float
    per_gop_distortion: Tuple[float, ...]


class DistortionModel:
    """Expected distortion of an observed flow (eqs. 21-28).

    ``recovery_fraction`` is an empirically calibrated constant (per
    motion class, like the polynomial): the fraction of the freeze
    distortion that *survives* when a best-effort decoder reconstructs a
    frame across a broken prediction chain (a P-frame decoded against the
    wrong reference).  Real decoders (ffmpeg at the paper's eavesdropper)
    decode whatever arrives rather than freezing; fast-motion P-frames are
    largely intra-coded, so almost none of the reference error survives
    (fraction ~0), while slow-motion P-frames carry near-empty residuals,
    so nearly all of it does (fraction ~1).  This single constant is what
    makes the model reproduce the paper's central asymmetry: I-frame
    encryption devastates slow motion but only dents fast motion (Fig. 4b
    vs 4a).  With ``recovery_fraction=None`` the model is the pure freeze
    model (the strict Section 4.3.2 policy); the ablation bench compares
    both.
    """

    def __init__(self, *, gop_size: int, n_gops: int,
                 polynomial: DistortionPolynomial,
                 recovery_fraction: Optional[float] = None,
                 max_reference_age: int = 600) -> None:
        if gop_size < 2:
            raise ValueError("GOP size must be >= 2")
        if n_gops < 1:
            raise ValueError("need at least one GOP")
        if recovery_fraction is not None and not 0.0 <= recovery_fraction <= 1.0:
            raise ValueError("recovery fraction must be in [0, 1]")
        self.gop_size = gop_size
        self.n_gops = n_gops
        self.polynomial = polynomial
        self.recovery_fraction = recovery_fraction
        # Ages beyond this are lumped together (the polynomial has long
        # since saturated at its cap).
        self.max_reference_age = max_reference_age

    def _per_frame_loss(self, p_p_success: float, freeze_distance: float,
                        *, freeze_value: Optional[float] = None) -> float:
        """Expected distortion of one frame past a broken chain.

        With probability ``p_p_success`` the frame's own packets arrive
        and a best-effort decoder attenuates the reference error to the
        calibrated ``recovery_fraction`` of the freeze distortion;
        otherwise the viewer sees the frozen reference at
        ``freeze_distance``.
        """
        freeze = (self.polynomial(freeze_distance) if freeze_value is None
                  else freeze_value)
        if self.recovery_fraction is None:
            return freeze
        return freeze * (1.0 - p_p_success * (1.0 - self.recovery_fraction))

    def _intra_distortion(self, first_loss: int, p_p_success: float) -> float:
        """Case 1: GOP mean distortion when the first loss is P-frame
        ``first_loss`` (frames before it are pristine)."""
        g = self.gop_size
        total = 0.0
        # Frame at first_loss is known lost (freeze at distance 1);
        # later frames arrive independently.
        total += self.polynomial(1)
        for j in range(first_loss + 1, g):
            total += self._per_frame_loss(p_p_success, j - first_loss + 1)
        return total / g

    def _case2_distortion(self, age: int, p_p_success: float) -> float:
        """Case 2: the GOP's I-frame is unrecoverable; reference is ``age``
        frames before the GOP start."""
        g = self.gop_size
        total = self.polynomial(age)  # the I-frame slot itself
        for j in range(1, g):
            total += self._per_frame_loss(p_p_success, age + j)
        return total / g

    def _case3_distortion(self, p_p_success: float) -> float:
        """Case 3: no reference has ever decoded; frozen frames show blank."""
        g = self.gop_size
        cap = self.polynomial.cap
        total = cap  # the I-frame slot
        for _ in range(1, g):
            total += self._per_frame_loss(p_p_success, 0.0, freeze_value=cap)
        return total / g

    def expected(self, p_i_success: float, p_p_success: float,
                 *, baseline_distortion: float = 0.0) -> DistortionEstimate:
        """Run the age DP over the GOP chain and average (eqs. 25-27).

        ``baseline_distortion`` is the codec's loss-free quantization MSE;
        the model's loss distortion adds to it.  The paper's model ignores
        it (their "none" PSNR is the encoder's own quality); we expose it
        so model and experiment share a common zero point.
        """
        g = self.gop_size
        states = gop_state_probabilities(g, p_i_success, p_p_success)
        intra = np.zeros(g + 1)
        for k in range(1, g):
            intra[k] = self._intra_distortion(k, p_p_success)

        # Age distribution: age = distance from the *start* of the current
        # GOP back to the last correctly displayed frame.  Age 0 encodes
        # "no reference has ever been decoded" (Case 3).
        ages: Dict[int, float] = {0: 1.0}
        per_gop: List[float] = []

        for _ in range(self.n_gops):
            gop_distortion = 0.0
            next_ages: Dict[int, float] = {}

            def credit(age: int, probability: float) -> None:
                if probability <= 0.0:
                    return
                age = min(age, self.max_reference_age)
                next_ages[age] = next_ages.get(age, 0.0) + probability

            for age, age_probability in ages.items():
                if age_probability <= 0.0:
                    continue
                # State 0: I-frame unrecoverable.
                p0 = states[0]
                if age == 0:
                    gop_distortion += (age_probability * p0
                                       * self._case3_distortion(p_p_success))
                else:
                    gop_distortion += (age_probability * p0
                                       * self._case2_distortion(age, p_p_success))
                credit((age + g) if age > 0 else 0, age_probability * p0)

                # States 1..G-1: intra-GOP loss at position k; the last
                # good frame is k-1, i.e. age G-(k-1) for the next GOP.
                for k in range(1, g):
                    pk = states[k]
                    if pk == 0.0:
                        continue
                    gop_distortion += age_probability * pk * intra[k]
                    credit(g - (k - 1), age_probability * pk)

                # State G: clean GOP, reference is its last frame.
                gop_distortion += 0.0
                credit(1, age_probability * states[g])

            per_gop.append(gop_distortion)
            ages = next_ages

        average = float(np.mean(per_gop)) + baseline_distortion
        return DistortionEstimate(
            average_distortion=average,
            psnr_db=psnr_from_distortion(average),
            p_i_success=p_i_success,
            p_p_success=p_p_success,
            per_gop_distortion=tuple(per_gop),
        )
