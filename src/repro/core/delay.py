"""DelayModel / DistortionModel facades: policy in, predictions out.

This is the programmatic surface of the paper's framework: given a
calibrated :class:`~repro.core.scenario.Scenario`, predict for any
encryption policy the per-packet delay at the sender (Section 4.2) and
the PSNR at the legitimate receiver and at an eavesdropper (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .distortion import DistortionEstimate
from .policies import EncryptionPolicy
from .queueing import QueueSolution, solve_mmpp_g1
from .scenario import Scenario

__all__ = ["PolicyPrediction", "FrameworkModel"]


@dataclass(frozen=True)
class PolicyPrediction:
    """Model outputs for one policy."""

    policy: EncryptionPolicy
    queue: QueueSolution
    receiver: DistortionEstimate
    eavesdropper: DistortionEstimate

    @property
    def delay_ms(self) -> float:
        """Per-packet delay at the sender (queueing + service), in ms."""
        return self.queue.mean_sojourn_time_s * 1e3

    @property
    def eavesdropper_psnr_db(self) -> float:
        return self.eavesdropper.psnr_db

    @property
    def receiver_psnr_db(self) -> float:
        return self.receiver.psnr_db


class FrameworkModel:
    """The complete analytical framework over a calibrated scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self._distortion_model = scenario.distortion_model()
        self._frame_success = scenario.frame_success_model()

    def delay(self, policy: EncryptionPolicy) -> QueueSolution:
        """Section 4.2: solve the 2-MMPP/G/1 queue under the policy."""
        service = self.scenario.service_model(policy)
        return solve_mmpp_g1(self.scenario.mmpp, service)

    def distortion(self, policy: EncryptionPolicy, *,
                   eavesdropper: bool) -> DistortionEstimate:
        """Section 4.3: expected distortion for an observer."""
        p_i = self._frame_success.i_frame_success(
            policy, eavesdropper=eavesdropper
        )
        p_p = self._frame_success.p_frame_success(
            policy, eavesdropper=eavesdropper
        )
        return self._distortion_model.expected(
            p_i, p_p, baseline_distortion=self.scenario.baseline_distortion
        )

    def predict(self, policy: EncryptionPolicy) -> PolicyPrediction:
        """Everything the Fig. 1 workflow needs for one policy."""
        return PolicyPrediction(
            policy=policy,
            queue=self.delay(policy),
            receiver=self.distortion(policy, eavesdropper=False),
            eavesdropper=self.distortion(policy, eavesdropper=True),
        )

    def predict_many(self, policies: Dict[str, EncryptionPolicy]
                     ) -> Dict[str, PolicyPrediction]:
        return {name: self.predict(policy)
                for name, policy in policies.items()}
