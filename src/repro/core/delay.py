"""DelayModel / DistortionModel facades: policy in, predictions out.

This is the programmatic surface of the paper's framework: given a
calibrated :class:`~repro.core.scenario.Scenario`, predict for any
encryption policy the per-packet delay at the sender (Section 4.2) and
the PSNR at the legitimate receiver and at an eavesdropper (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .distortion import DistortionEstimate
from .policies import EncryptionPolicy
from .queueing import QueueSolution, solve_mmpp_g1
from .scenario import Scenario
from . import vector_models

__all__ = ["PolicyPrediction", "FrameworkModel"]


@dataclass(frozen=True)
class PolicyPrediction:
    """Model outputs for one policy."""

    policy: EncryptionPolicy
    queue: QueueSolution
    receiver: DistortionEstimate
    eavesdropper: DistortionEstimate

    @property
    def delay_ms(self) -> float:
        """Per-packet delay at the sender (queueing + service), in ms."""
        return self.queue.mean_sojourn_time_s * 1e3

    @property
    def eavesdropper_psnr_db(self) -> float:
        return self.eavesdropper.psnr_db

    @property
    def receiver_psnr_db(self) -> float:
        return self.receiver.psnr_db


class FrameworkModel:
    """The complete analytical framework over a calibrated scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self._distortion_model = scenario.distortion_model()
        self._frame_success = scenario.frame_success_model()

    def delay(self, policy: EncryptionPolicy) -> QueueSolution:
        """Section 4.2: solve the 2-MMPP/G/1 queue under the policy."""
        service = self.scenario.service_model(policy)
        return solve_mmpp_g1(self.scenario.mmpp, service)

    def distortion(self, policy: EncryptionPolicy, *,
                   eavesdropper: bool) -> DistortionEstimate:
        """Section 4.3: expected distortion for an observer."""
        p_i = self._frame_success.i_frame_success(
            policy, eavesdropper=eavesdropper
        )
        p_p = self._frame_success.p_frame_success(
            policy, eavesdropper=eavesdropper
        )
        return self._distortion_model.expected(
            p_i, p_p, baseline_distortion=self.scenario.baseline_distortion
        )

    def predict(self, policy: EncryptionPolicy) -> PolicyPrediction:
        """Everything the Fig. 1 workflow needs for one policy."""
        return PolicyPrediction(
            policy=policy,
            queue=self.delay(policy),
            receiver=self.distortion(policy, eavesdropper=False),
            eavesdropper=self.distortion(policy, eavesdropper=True),
        )

    def predict_batch(self, policies: Sequence[EncryptionPolicy]
                      ) -> List[PolicyPrediction]:
        """One batched numpy pass over every policy (the vector engine).

        Queue, frame-success, and distortion lanes are stacked along a
        leading policy axis and solved together; the receiver and the
        eavesdropper ride as a second block of lanes in the same
        frame-success/distortion call.  Matches :meth:`predict` within
        floating-point tolerance (the scalar path stays the oracle).
        """
        policies = list(policies)
        count = len(policies)
        if count == 0:
            return []
        services = [self.scenario.service_model(p) for p in policies]
        batch = vector_models.ServiceBatch.from_models(services)
        solution = vector_models.batch_solve_mmpp_g1(
            self.scenario.mmpp, batch)
        if not solution.stable.all():
            index = int(np.flatnonzero(~solution.stable)[0])
            raise ValueError(
                "unstable queue (rho ="
                f" {solution.traffic_intensity[index]:.3f})")

        success = self._frame_success
        q_i = np.array([p.q_i for p in policies])
        q_p = np.array([p.q_p for p in policies])
        receiver_rate = np.full(count, success.p_s)
        p_d_i = np.concatenate([receiver_rate, (1.0 - q_i) * success.p_s])
        p_d_p = np.concatenate([receiver_rate, (1.0 - q_p) * success.p_s])
        p_i = vector_models.batch_frame_success(
            success.n_i, success._sensitivity(success.n_i), p_d_i)
        p_p = vector_models.batch_frame_success(
            success.n_p, success._sensitivity(success.n_p), p_d_p)
        distortion = vector_models.batch_distortion(
            self._distortion_model, p_i, p_p,
            baseline_distortion=self.scenario.baseline_distortion)

        return [
            PolicyPrediction(
                policy=policy,
                queue=solution.solution(i),
                receiver=distortion.estimate(i),
                eavesdropper=distortion.estimate(count + i),
            )
            for i, policy in enumerate(policies)
        ]

    def predict_many(self, policies: Dict[str, EncryptionPolicy],
                     *, engine: str = "scalar"
                     ) -> Dict[str, PolicyPrediction]:
        if engine == "vector":
            names = list(policies)
            predictions = self.predict_batch(
                [policies[name] for name in names])
            return dict(zip(names, predictions))
        if engine != "scalar":
            raise ValueError(f"unknown engine {engine!r}")
        return {name: self.predict(policy)
                for name, policy in policies.items()}
