"""Adaptive per-window policy selection (an extension of Fig. 1).

The paper's workflow uses AForge "to dynamically categorize the motion
level in different parts of the video clip", but its evaluation applies
one policy to the whole flow.  For mixed content that forces a bad
choice: I-only leaks the fast parts, I+20%P over-pays on the slow parts.

This module closes the loop: classify the clip window by window, give
each window the cheapest policy its motion class needs, and wrap the
result in an :class:`AdaptivePolicy` the sender (and the testbed
simulator) can apply per packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..video.motion import MotionClass, frame_activity
from ..video.packetizer import Packet
from ..video.yuv import Sequence420
from .policies import EncryptionPolicy

__all__ = [
    "WindowPlan",
    "AdaptivePolicy",
    "classify_windows",
    "plan_adaptive_policy",
    "DEFAULT_CLASS_POLICIES",
]

# The per-class recommendations Section 6.2 arrives at: I-frames suffice
# for slow motion; fast motion needs a fraction of the P packets too.
DEFAULT_CLASS_POLICIES: Dict[MotionClass, EncryptionPolicy] = {
    MotionClass.LOW: EncryptionPolicy("i_frames", "AES256"),
    MotionClass.MEDIUM: EncryptionPolicy("i_plus_p_fraction", "AES256",
                                         fraction=0.10),
    MotionClass.HIGH: EncryptionPolicy("i_plus_p_fraction", "AES256",
                                       fraction=0.20),
}


@dataclass(frozen=True)
class WindowPlan:
    """One window's classification and assigned policy."""

    start_frame: int
    end_frame: int  # exclusive
    motion_class: MotionClass
    policy: EncryptionPolicy
    mean_activity: float


@dataclass(frozen=True)
class AdaptivePolicy:
    """A frame-indexed composition of per-window policies.

    Duck-types the parts of :class:`EncryptionPolicy` the sender pipeline
    uses (``algorithm``, ``mode``, ``encrypts``), so it can drive
    :class:`repro.testbed.simulator.SenderSimulator` directly.
    """

    windows: Tuple[WindowPlan, ...]
    algorithm: str

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("an adaptive policy needs at least one window")
        previous_end = 0
        for window in self.windows:
            if window.start_frame != previous_end:
                raise ValueError("windows must be contiguous from frame 0")
            if window.end_frame <= window.start_frame:
                raise ValueError("windows must be non-empty")
            previous_end = window.end_frame

    @property
    def mode(self) -> str:
        return "adaptive"

    @property
    def n_frames(self) -> int:
        return self.windows[-1].end_frame

    def policy_for_frame(self, frame_index: int) -> EncryptionPolicy:
        """The window policy covering ``frame_index`` (last window covers
        any overrun, e.g. trailing frames)."""
        if frame_index < 0:
            raise ValueError("frame index must be non-negative")
        for window in self.windows:
            if window.start_frame <= frame_index < window.end_frame:
                return window.policy
        return self.windows[-1].policy

    def encrypts(self, packet: Packet) -> bool:
        return self.policy_for_frame(packet.frame_index).encrypts(packet)

    @property
    def label(self) -> str:
        parts = ",".join(
            f"{w.motion_class.value}:{w.policy.label}" for w in self.windows
        )
        return f"adaptive[{parts}]"

    def summary(self) -> List[Tuple[str, int]]:
        """(class, frame-count) run-length view for reporting."""
        return [(w.motion_class.value, w.end_frame - w.start_frame)
                for w in self.windows]


def classify_windows(sequence: Sequence420, *, window_frames: int = 30,
                     low_threshold: float = 2.0,
                     high_threshold: float = 10.0
                     ) -> List[Tuple[int, int, MotionClass, float]]:
    """Per-window motion classification (the dynamic AForge step).

    Returns (start, end, class, mean activity) per window.  Thresholds
    match :mod:`repro.video.motion`'s clip-level classifier.
    """
    if window_frames < 2:
        raise ValueError("windows need at least 2 frames")
    if len(sequence) < 2:
        raise ValueError("need at least two frames")
    lumas = sequence.luma_stack()
    results = []
    for start in range(0, len(sequence), window_frames):
        end = min(start + window_frames, len(sequence))
        if end - start < 2:
            # Fold a trailing sliver into the previous window.
            if results:
                prev = results.pop()
                results.append((prev[0], end, prev[2], prev[3]))
            break
        activities = [
            frame_activity(lumas[i - 1], lumas[i])
            for i in range(start + 1, end)
        ]
        mean_activity = float(np.mean(activities))
        if mean_activity < low_threshold:
            motion_class = MotionClass.LOW
        elif mean_activity < high_threshold:
            motion_class = MotionClass.MEDIUM
        else:
            motion_class = MotionClass.HIGH
        results.append((start, end, motion_class, mean_activity))
    return results


def plan_adaptive_policy(
    sequence: Sequence420,
    *,
    algorithm: str = "AES256",
    window_frames: int = 30,
    class_policies: Optional[Dict[MotionClass, EncryptionPolicy]] = None,
) -> AdaptivePolicy:
    """Classify the clip and assign each window its class policy.

    ``window_frames`` defaults to one GOP so policy switches align with
    GOP boundaries (switching mid-GOP would leave a GOP half-protected).
    """
    table = class_policies or DEFAULT_CLASS_POLICIES
    windows = []
    for start, end, motion_class, activity in classify_windows(
            sequence, window_frames=window_frames):
        base = table[motion_class]
        if base.algorithm != algorithm:
            base = EncryptionPolicy(base.mode, algorithm,
                                    fraction=base.fraction)
        windows.append(WindowPlan(
            start_frame=start, end_frame=end,
            motion_class=motion_class, policy=base,
            mean_activity=activity,
        ))
    return AdaptivePolicy(windows=tuple(windows), algorithm=algorithm)
