"""Frame success probabilities (Section 4.3.1, eq. 20).

A frame fragmented into ``n`` packets decodes iff its *first* packet is
received and decryptable and at least ``s`` of the remaining ``n - 1``
are too:

    P_f = p_d * sum_{j=s}^{n-1} C(n-1, j) p_d^j (1 - p_d)^{n-1-j}

``p_d`` is the packet decryption rate: ``p_s`` for the legitimate receiver
and ``(1 - q) p_s`` for an eavesdropper facing a policy that encrypts a
fraction ``q`` of the packets of that frame type (encrypted packets are
erasures for the eavesdropper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .policies import EncryptionPolicy

__all__ = [
    "frame_success_probability",
    "decryption_rate",
    "FrameSuccessModel",
]


def frame_success_probability(n_packets: int, sensitivity: int,
                              p_d: float) -> float:
    """Eq. (20) for a frame of ``n_packets`` total packets."""
    if n_packets < 1:
        raise ValueError("a frame has at least one packet")
    if not 0 <= sensitivity <= max(n_packets - 1, 0):
        raise ValueError(
            f"sensitivity must be in [0, {n_packets - 1}], got {sensitivity}"
        )
    if not 0.0 <= p_d <= 1.0:
        raise ValueError("p_d must be in [0, 1]")
    rest = n_packets - 1
    tail = sum(
        math.comb(rest, j) * p_d ** j * (1.0 - p_d) ** (rest - j)
        for j in range(sensitivity, rest + 1)
    )
    return p_d * tail


def decryption_rate(p_s: float, encrypted_fraction: float,
                    *, eavesdropper: bool) -> float:
    """Packet decryption rate (Section 4.3).

    Legitimate receiver: ``p_d = p_s`` (it can decrypt everything).
    Eavesdropper: ``p_d = (1 - q) p_s`` — encrypted packets are useless.
    """
    if not 0.0 <= p_s <= 1.0:
        raise ValueError("p_s must be in [0, 1]")
    if not 0.0 <= encrypted_fraction <= 1.0:
        raise ValueError("encrypted fraction must be in [0, 1]")
    if not eavesdropper:
        return p_s
    return (1.0 - encrypted_fraction) * p_s


@dataclass(frozen=True)
class FrameSuccessModel:
    """Per-frame-type success rates for one observer and one policy.

    ``n_i``/``n_p`` are the packet counts of I- and P-frames (P-frames are
    typically a single packet, Section 4.2.1); ``sensitivity_fraction``
    maps to the absolute ``s`` of eq. (20) as ``ceil(f * (n - 1))``.
    """

    n_i: int
    n_p: int
    sensitivity_fraction: float
    p_s: float

    def __post_init__(self) -> None:
        if self.n_i < 1 or self.n_p < 1:
            raise ValueError("packet counts must be >= 1")
        if not 0.0 <= self.sensitivity_fraction <= 1.0:
            raise ValueError("sensitivity fraction must be in [0, 1]")
        if not 0.0 <= self.p_s <= 1.0:
            raise ValueError("p_s must be in [0, 1]")

    def _sensitivity(self, n: int) -> int:
        return math.ceil(self.sensitivity_fraction * (n - 1))

    def i_frame_success(self, policy: EncryptionPolicy,
                        *, eavesdropper: bool) -> float:
        """P_I: success probability of an I-frame for this observer."""
        p_d = decryption_rate(self.p_s, policy.q_i, eavesdropper=eavesdropper)
        return frame_success_probability(self.n_i, self._sensitivity(self.n_i), p_d)

    def p_frame_success(self, policy: EncryptionPolicy,
                        *, eavesdropper: bool) -> float:
        """P_P: success probability of a P-frame for this observer."""
        p_d = decryption_rate(self.p_s, policy.q_p, eavesdropper=eavesdropper)
        return frame_success_probability(self.n_p, self._sensitivity(self.n_p), p_d)
