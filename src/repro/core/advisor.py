"""The policy advisor: the user-facing workflow of Fig. 1.

"The UI prompts her with the choices available with respect to privacy ...
A third choice would allow the user to minimize performance penalties
while largely preserving confidentiality.  If this option is chosen, the
analytical framework is used to determine the appropriate encryption
policy."

Given a calibrated scenario, the advisor sweeps a candidate policy set
and returns the cheapest policy (by modelled per-packet delay) whose
predicted eavesdropper PSNR falls below a confidentiality target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .delay import FrameworkModel, PolicyPrediction
from .policies import EncryptionPolicy
from .scenario import Scenario

__all__ = ["AdvisorChoice", "PolicyAdvisor", "default_candidates"]

# An eavesdropper PSNR at or below this is "practically unviewable"
# (MOS ~= 1; the paper's partially encrypted flows land here, Section 6.2).
DEFAULT_PSNR_TARGET_DB = 19.0


def default_candidates(algorithm: str = "AES256",
                       fractions: Sequence[float] = (0.1, 0.15, 0.2, 0.25,
                                                     0.3, 0.5)
                       ) -> List[EncryptionPolicy]:
    """The policy ladder the paper explores, cheapest-first intent:
    I-only, I plus increasing fractions of P packets, P-only, all."""
    candidates = [EncryptionPolicy("i_frames", algorithm)]
    candidates.extend(
        EncryptionPolicy("i_plus_p_fraction", algorithm, fraction=f)
        for f in fractions
    )
    candidates.append(EncryptionPolicy("p_frames", algorithm))
    candidates.append(EncryptionPolicy("all", algorithm))
    return candidates


@dataclass(frozen=True)
class AdvisorChoice:
    """The advisor's recommendation plus the full sweep for transparency."""

    recommended: Optional[PolicyPrediction]
    target_psnr_db: float
    sweep: Dict[str, PolicyPrediction]

    @property
    def satisfied(self) -> bool:
        return self.recommended is not None


class PolicyAdvisor:
    """Sweep candidate policies and pick the cheapest confidential one."""

    def __init__(self, scenario: Scenario) -> None:
        self.model = FrameworkModel(scenario)

    def recommend(
        self,
        *,
        target_psnr_db: float = DEFAULT_PSNR_TARGET_DB,
        candidates: Optional[Sequence[EncryptionPolicy]] = None,
    ) -> AdvisorChoice:
        """Cheapest policy whose predicted eavesdropper PSNR <= target.

        "Cheapest" is by modelled per-packet delay, the proxy the paper
        uses for the encryption penalty (energy tracks encrypted bytes,
        which delay also tracks).
        """
        candidates = list(candidates) if candidates is not None else (
            default_candidates()
        )
        sweep: Dict[str, PolicyPrediction] = {}
        best: Optional[PolicyPrediction] = None
        for policy in candidates:
            prediction = self.model.predict(policy)
            sweep[policy.label] = prediction
            if prediction.eavesdropper_psnr_db <= target_psnr_db:
                if best is None or prediction.delay_ms < best.delay_ms:
                    best = prediction
        return AdvisorChoice(
            recommended=best,
            target_psnr_db=target_psnr_db,
            sweep=sweep,
        )
