"""The policy advisor: the user-facing workflow of Fig. 1.

"The UI prompts her with the choices available with respect to privacy ...
A third choice would allow the user to minimize performance penalties
while largely preserving confidentiality.  If this option is chosen, the
analytical framework is used to determine the appropriate encryption
policy."

Given a calibrated scenario, the advisor sweeps a candidate policy set
and returns the cheapest policy (by modelled per-packet delay) whose
predicted eavesdropper PSNR falls below a confidentiality target.

Predictions are memoized per policy: the model is a pure function of
(scenario, policy), so re-running :meth:`PolicyAdvisor.recommend` with a
different target or candidate subset re-selects over cached evaluations
instead of re-solving the queueing model.  This is the in-process twin
of the service-side memo layer (:mod:`repro.testbed.advisor_service`).

:func:`choice_payload` / :func:`encode_choice` define the canonical wire
form of an :class:`AdvisorChoice` — scalar summaries only, serialized as
sorted-key JSON — so a recommendation served over TCP can be compared
byte-for-byte against a local evaluation.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..video.quality import MAX_PSNR_DB, mos_from_psnr
from .delay import FrameworkModel, PolicyPrediction
from .policies import EncryptionPolicy
from .scenario import Scenario

__all__ = [
    "AdvisorChoice", "PolicyAdvisor", "default_candidates",
    "select_cheapest", "prediction_payload", "choice_payload",
    "encode_payload", "encode_choice", "psnr_target_for_mos",
    "DEFAULT_PSNR_TARGET_DB",
]

# An eavesdropper PSNR at or below this is "practically unviewable"
# (MOS ~= 1; the paper's partially encrypted flows land here, Section 6.2).
DEFAULT_PSNR_TARGET_DB = 19.0

# Upper PSNR edge of each EvalVid MOS bucket (video.quality.mos_from_psnr):
# demanding "eavesdropper MOS <= m" is demanding "PSNR <= edge of m".
_MOS_BUCKET_TOP_DB = {1: 20.0, 2: 25.0, 3: 31.0, 4: 37.0, 5: MAX_PSNR_DB}


def psnr_target_for_mos(target_mos: float) -> float:
    """The PSNR threshold equivalent to an eavesdropper-MOS target.

    ``mos_from_psnr`` buckets PSNR; a MOS target of ``m`` (fractional
    values floor to the containing bucket) holds exactly when the
    eavesdropper PSNR stays at or below that bucket's upper edge.
    """
    if not 1.0 <= target_mos <= 5.0 or not math.isfinite(target_mos):
        raise ValueError(
            f"target MOS must be in [1, 5], got {target_mos}")
    return _MOS_BUCKET_TOP_DB[int(target_mos)]


def default_candidates(algorithm: str = "AES256",
                       fractions: Sequence[float] = (0.1, 0.15, 0.2, 0.25,
                                                     0.3, 0.5)
                       ) -> List[EncryptionPolicy]:
    """The policy ladder the paper explores, cheapest-first intent:
    I-only, I plus increasing fractions of P packets, P-only, all."""
    candidates = [EncryptionPolicy("i_frames", algorithm)]
    candidates.extend(
        EncryptionPolicy("i_plus_p_fraction", algorithm, fraction=f)
        for f in fractions
    )
    candidates.append(EncryptionPolicy("p_frames", algorithm))
    candidates.append(EncryptionPolicy("all", algorithm))
    return candidates


@dataclass(frozen=True)
class AdvisorChoice:
    """The advisor's recommendation plus the full sweep for transparency."""

    recommended: Optional[PolicyPrediction]
    target_psnr_db: float
    sweep: Dict[str, PolicyPrediction]

    @property
    def satisfied(self) -> bool:
        return self.recommended is not None


def select_cheapest(predictions: Sequence[PolicyPrediction],
                    target_psnr_db: float) -> Optional[PolicyPrediction]:
    """The pure selection rule: the delay-minimal prediction among those
    whose eavesdropper PSNR meets the target (``None`` if none does).
    Ties break toward the earlier candidate, matching sweep order."""
    best: Optional[PolicyPrediction] = None
    for prediction in predictions:
        if prediction.eavesdropper_psnr_db <= target_psnr_db:
            if best is None or prediction.delay_ms < best.delay_ms:
                best = prediction
    return best


class PolicyAdvisor:
    """Sweep candidate policies and pick the cheapest confidential one.

    ``engine`` selects the model backend: ``"scalar"`` (the per-policy
    oracle stack) or ``"vector"`` (one batched numpy pass over every
    not-yet-memoized candidate, :mod:`repro.core.vector_models`).  The
    memo and every payload are engine-agnostic — the engines agree
    within floating-point tolerance and always select the same policy.
    """

    def __init__(self, scenario: Scenario, *,
                 engine: str = "scalar") -> None:
        if engine not in ("scalar", "vector"):
            raise ValueError(f"unknown engine {engine!r}")
        self.model = FrameworkModel(scenario)
        self.engine = engine
        self._predictions: Dict[EncryptionPolicy, PolicyPrediction] = {}

    @property
    def evaluations(self) -> int:
        """Distinct policies actually run through the model so far."""
        return len(self._predictions)

    def _predict(self, policy: EncryptionPolicy) -> PolicyPrediction:
        prediction = self._predictions.get(policy)
        if prediction is None:
            prediction = self.model.predict(policy)
            self._predictions[policy] = prediction
        return prediction

    def _sweep(self, candidates: Sequence[EncryptionPolicy]
               ) -> Dict[str, PolicyPrediction]:
        if self.engine == "vector":
            missing = [policy for policy in candidates
                       if policy not in self._predictions]
            if missing:
                self._predictions.update(
                    zip(missing, self.model.predict_batch(missing)))
            return {policy.label: self._predictions[policy]
                    for policy in candidates}
        return {policy.label: self._predict(policy)
                for policy in candidates}

    def recommend(
        self,
        *,
        target_psnr_db: float = DEFAULT_PSNR_TARGET_DB,
        candidates: Optional[Sequence[EncryptionPolicy]] = None,
    ) -> AdvisorChoice:
        """Cheapest policy whose predicted eavesdropper PSNR <= target.

        "Cheapest" is by modelled per-packet delay, the proxy the paper
        uses for the encryption penalty (energy tracks encrypted bytes,
        which delay also tracks).
        """
        candidates = list(candidates) if candidates is not None else (
            default_candidates()
        )
        sweep = self._sweep(candidates)
        return AdvisorChoice(
            recommended=select_cheapest(list(sweep.values()),
                                        target_psnr_db),
            target_psnr_db=target_psnr_db,
            sweep=sweep,
        )


# -- the canonical wire form ---------------------------------------------------


def prediction_payload(prediction: PolicyPrediction) -> Dict[str, Any]:
    """One sweep entry as plain JSON-able scalars."""
    policy = prediction.policy
    return {
        "policy": {
            "mode": policy.mode,
            "algorithm": policy.algorithm,
            "fraction": policy.fraction,
            "label": policy.label,
        },
        "delay_ms": prediction.delay_ms,
        "waiting_ms": prediction.queue.mean_waiting_time_s * 1e3,
        "traffic_intensity": prediction.queue.traffic_intensity,
        "receiver_psnr_db": prediction.receiver_psnr_db,
        "eavesdropper_psnr_db": prediction.eavesdropper_psnr_db,
        "eavesdropper_mos": mos_from_psnr(prediction.eavesdropper_psnr_db),
    }


def choice_payload(choice: AdvisorChoice) -> Dict[str, Any]:
    """An :class:`AdvisorChoice` as plain JSON-able data: the shape the
    advisor service returns on the wire and memoizes in the cache."""
    return {
        "target_psnr_db": choice.target_psnr_db,
        "satisfied": choice.satisfied,
        "recommended": (None if choice.recommended is None
                        else choice.recommended.policy.label),
        "sweep": {label: prediction_payload(prediction)
                  for label, prediction in choice.sweep.items()},
    }


def encode_payload(payload: Dict[str, Any]) -> bytes:
    """Canonical bytes of a choice payload: sorted-key compact JSON.

    Equal payloads produce equal bytes (``repr``-based float encoding is
    deterministic), which is what lets tests assert a served answer is
    byte-identical to a local evaluation.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def encode_choice(choice: AdvisorChoice) -> bytes:
    """Canonical wire bytes of a locally computed choice."""
    return encode_payload(choice_payload(choice))
