"""The 2-MMPP/G/1 queue of Section 4.2.3, solved matrix-analytically.

The solver follows the Heffes-Lucantoni / Fischer-Meier-Hellstern ("MMPP
cookbook") programme the paper cites:

1. compute the fundamental-period matrix G, the minimal non-negative
   solution of ``G = E[exp((R - Lambda + Lambda G) T)]`` where T is the
   service time — iterated to a fixed point using the service model's
   *matrix* Laplace-Stieltjes transform;
2. identify the idle-phase vector ``y`` of the paper's eq. (19): the
   time-stationary probability the system is empty in phase j.  Departures
   that leave the system empty have phase distribution ``alpha``, the
   stationary vector of ``K = (-D0)^{-1} Lambda G`` (idle transition, then
   one fundamental period), and the time the idle period spends in each
   phase integrates to ``alpha (-D0)^{-1}``, so

       y = (1 - rho) * alpha (-D0)^{-1} / (alpha (-D0)^{-1} e),

   with ``D0 = R - Lambda``;
3. evaluate eq. (19),

       E[V] = [2 rho + lam_bar mu2
               - 2 mu1 (y + mu1 pi Lambda)(R + e pi)^{-1} lam] / (2(1-rho)),

   which is the mean *virtual* waiting time (workload).  The mean waiting
   time of an arriving packet differs for non-Poisson input; by
   conditional PASTA (arrivals are Poisson given the phase) it is

       E[W] = E[V] - S / lam_bar,
       S = (y - pi + mu1 pi Lambda)(R + e pi)^{-1} lam.

Both are exposed; the experiment comparisons use the per-packet E[W],
which is what the Android app measured.

Three exactness anchors validate the implementation: when
lambda_1 = lambda_2 the MMPP degenerates to Poisson and both formulas
collapse *exactly* to Pollaczek-Khinchine (proved in the tests); the
module ships a discrete-event simulator of the very same queue
(:func:`simulate_mmpp_g1`) that the solver matches within Monte-Carlo
noise for strongly bursty MMPPs; and the eq. (19) bracket form is shown
(tests) to equal the direct moment-expansion derivation it came from.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .mmpp import MMPP2
from .service import ServiceTimeModel

__all__ = [
    "QueueSolution",
    "solve_mmpp_g1",
    "compute_g_matrix",
    "mean_waiting_time",
    "pollaczek_khinchine",
    "SimulationResult",
    "simulate_mmpp_g1",
]


@dataclass(frozen=True)
class QueueSolution:
    """Analytical solution of the 2-MMPP/G/1 queue.

    ``mean_waiting_time_s`` is the per-packet (customer-average) queueing
    delay; ``mean_virtual_waiting_time_s`` is the time-average workload
    that eq. (19) itself yields.  For Poisson input the two coincide.
    """

    mean_waiting_time_s: float
    mean_virtual_waiting_time_s: float
    mean_sojourn_time_s: float   # per-packet waiting + service
    traffic_intensity: float     # rho
    mean_service_time_s: float
    service_second_moment: float
    g_matrix: np.ndarray
    idle_phase_vector: np.ndarray  # the y of eq. (19)


def pollaczek_khinchine(arrival_rate: float, mean_service: float,
                        second_moment: float) -> float:
    """M/G/1 mean waiting time: the special case eq. (19) must reduce to."""
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        raise ValueError(f"unstable queue (rho = {rho:.3f})")
    return arrival_rate * second_moment / (2.0 * (1.0 - rho))


def compute_g_matrix(mmpp: MMPP2, service: ServiceTimeModel, *,
                     tolerance: float = 1e-12,
                     max_iterations: int = 20_000) -> np.ndarray:
    """Fixed point G = Omega(R - Lambda + Lambda G).

    ``Omega(M) = E[exp(M T)]`` is supplied by the service model.  The
    iteration starts from the zero matrix and increases monotonically to
    the minimal solution; for a stable queue G is stochastic.
    """
    generator = mmpp.generator
    rate_matrix = mmpp.rate_matrix
    g = np.zeros((2, 2))
    for _ in range(max_iterations):
        m = generator - rate_matrix + rate_matrix @ g
        g_next = service.matrix_lst(m)
        if np.max(np.abs(g_next - g)) < tolerance:
            return g_next
        g = g_next
    raise RuntimeError(
        "G-matrix iteration did not converge; the queue may be unstable"
        f" (rho = {mmpp.mean_rate * service.mean:.3f})"
    )


def _stationary_vector(g: np.ndarray) -> np.ndarray:
    """Left Perron vector of a (sub)stochastic matrix, normalised to 1."""
    eigenvalues, eigenvectors = np.linalg.eig(g.T)
    index = int(np.argmin(np.abs(eigenvalues - 1.0)))
    vector = np.real(eigenvectors[:, index])
    if vector.sum() < 0:
        vector = -vector
    vector = np.clip(vector, 0.0, None)
    return vector / vector.sum()


def idle_phase_vector(mmpp: MMPP2, service: ServiceTimeModel,
                      g: np.ndarray) -> np.ndarray:
    """The ``y`` of eq. (19): P(system empty, phase j), time-stationary.

    Departures leaving the system empty have phase distribution ``alpha``
    (stationary vector of the emptying-epoch chain ``(-D0)^{-1} Lambda G``);
    an idle period started in that distribution spends
    ``alpha (-D0)^{-1}`` expected time in each phase; normalising the
    total to the empty probability ``1 - rho`` gives y.
    """
    rho = mmpp.mean_rate * service.mean
    d0 = mmpp.generator - mmpp.rate_matrix
    neg_d0_inv = np.linalg.inv(-d0)
    emptying_chain = neg_d0_inv @ mmpp.rate_matrix @ g
    alpha = _stationary_vector(emptying_chain)
    occupancy = alpha @ neg_d0_inv
    return (1.0 - rho) * occupancy / occupancy.sum()


def mean_waiting_time(mmpp: MMPP2, service: ServiceTimeModel,
                      g: Optional[np.ndarray] = None
                      ) -> Tuple[float, float, np.ndarray]:
    """Evaluate eq. (19) and its per-packet counterpart.

    Returns ``(E[W] per packet, E[V] virtual, G matrix)``.
    """
    mu1 = service.mean
    mu2 = service.second_moment
    lam_vec = mmpp.rate_vector
    pi = mmpp.stationary_distribution
    lam_bar = float(pi @ lam_vec)
    rho = lam_bar * mu1
    if rho >= 1.0:
        raise ValueError(f"unstable queue (rho = {rho:.3f})")

    if g is None:
        g = compute_g_matrix(mmpp, service)
    y = idle_phase_vector(mmpp, service, g)

    e = np.ones(2)
    correction_matrix = np.linalg.inv(mmpp.generator + np.outer(e, pi))
    row = y + mu1 * (pi @ mmpp.rate_matrix)
    bracket = (2.0 * rho + lam_bar * mu2
               - 2.0 * mu1 * float(row @ correction_matrix @ lam_vec))
    virtual = bracket / (2.0 * (1.0 - rho))

    # Per-packet waiting via conditional PASTA: arrivals in phase j sample
    # the workload at rate lambda_j.
    u = y - pi + mu1 * (pi @ mmpp.rate_matrix)
    s_term = float(u @ correction_matrix @ lam_vec)
    per_packet = virtual - s_term / lam_bar
    return per_packet, virtual, g


def solve_mmpp_g1(mmpp: MMPP2, service: ServiceTimeModel) -> QueueSolution:
    """Full analytical solution: waiting time, sojourn time, and the
    internals useful for diagnostics."""
    per_packet, virtual, g = mean_waiting_time(mmpp, service)
    return QueueSolution(
        mean_waiting_time_s=per_packet,
        mean_virtual_waiting_time_s=virtual,
        mean_sojourn_time_s=per_packet + service.mean,
        traffic_intensity=mmpp.mean_rate * service.mean,
        mean_service_time_s=service.mean,
        service_second_moment=service.second_moment,
        g_matrix=g,
        idle_phase_vector=idle_phase_vector(mmpp, service, g),
    )


@dataclass(frozen=True)
class SimulationResult:
    """Estimates from discrete-event simulation of the same queue."""

    mean_waiting_time_s: float
    mean_sojourn_time_s: float
    n_packets: int
    waiting_times: np.ndarray


def simulate_mmpp_g1(mmpp: MMPP2, service: ServiceTimeModel, *,
                     n_packets: int = 200_000,
                     warmup_fraction: float = 0.1,
                     seed: Optional[int] = None) -> SimulationResult:
    """FIFO single-server simulation fed by sampled MMPP arrivals.

    This is the ground truth the analytical eq. (19) is checked against
    (and the basis of the queueing ablation bench).
    """
    if n_packets < 100:
        raise ValueError("simulate at least 100 packets")
    rng = np.random.default_rng(seed)
    trace = mmpp.sample(n_packets, rng=rng)

    waits = np.empty(n_packets)
    sojourns = np.empty(n_packets)
    server_free_at = 0.0
    for i, arrival in enumerate(trace.arrival_times):
        start = max(arrival, server_free_at)
        service_time = service.sample(rng)
        waits[i] = start - arrival
        server_free_at = start + service_time
        sojourns[i] = server_free_at - arrival

    skip = int(warmup_fraction * n_packets)
    return SimulationResult(
        mean_waiting_time_s=float(np.mean(waits[skip:])),
        mean_sojourn_time_s=float(np.mean(sojourns[skip:])),
        n_packets=n_packets - skip,
        waiting_times=waits[skip:],
    )
