"""Service-time model of Section 4.2.2.

The service time of a packet at the sender is

    T = T_e^(P) + T_b + T_t                                   (eq. 3)

- ``T_e``: encryption time; zero unless the policy selects the packet,
  and a Gaussian around a type-dependent typical value when it does
  (eqs. 4-5, 15, 17);
- ``T_b``: 802.11 backoff, a geometric number of exponential waits
  (eqs. 6-7);
- ``T_t``: transmission time, a Gaussian mixture over the I/P packet
  sizes (eqs. 8-9, 16, 18).

Every component exposes its Laplace-Stieltjes transform both as a scalar
function (for direct comparison with the paper's formulas) and as a
*matrix* function, because the MMPP/G/1 solver needs ``E[exp(M T)]`` for
2x2 generator-like matrices M.  All components also know how to sample
themselves so the analytical solution can be validated against discrete-
event simulation of the very same service process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.linalg import expm

from .policies import EncryptionPolicy

__all__ = [
    "GaussianAtom",
    "EncryptionComponent",
    "BackoffComponent",
    "TransmissionComponent",
    "ServiceTimeModel",
]


@dataclass(frozen=True)
class GaussianAtom:
    """A typical duration with small Gaussian variation (eq. 15/16).

    With ``sigma = 0`` this degenerates to the constant-time special case
    (eqs. 11-14).  The Gaussian can formally go negative; the paper uses it
    regardless because sigma << mu in practice, and sampling clamps at 0.
    """

    mu: float
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.mu < 0.0:
            raise ValueError("mean duration must be non-negative")
        if self.sigma < 0.0:
            raise ValueError("sigma must be non-negative")

    def scalar_lst(self, s: float) -> float:
        """E[e^{-sT}] = exp(-mu s + sigma^2 s^2 / 2)."""
        return math.exp(-self.mu * s + 0.5 * (self.sigma * s) ** 2)

    def matrix_lst(self, m: np.ndarray) -> np.ndarray:
        """E[e^{MT}] = expm(mu M + sigma^2 M^2 / 2)."""
        return expm(self.mu * m + 0.5 * self.sigma ** 2 * (m @ m))

    def sample(self, rng: np.random.Generator) -> float:
        if self.sigma == 0.0:
            return self.mu
        return max(0.0, rng.normal(self.mu, self.sigma))

    @property
    def second_moment(self) -> float:
        return self.mu ** 2 + self.sigma ** 2


@dataclass(frozen=True)
class EncryptionComponent:
    """T_e^(P): zero w.p. 1 - q_I' - q_P', else the I or P Gaussian atom.

    ``q_i_effective`` = P(packet is I-frame packet AND selected) = q_I p_I;
    ``q_p_effective`` = q_P (1 - p_I)  (notation of eq. 4).
    """

    q_i_effective: float
    q_p_effective: float
    atom_i: GaussianAtom
    atom_p: GaussianAtom

    def __post_init__(self) -> None:
        if self.q_i_effective < 0 or self.q_p_effective < 0:
            raise ValueError("selection probabilities must be non-negative")
        if self.q_i_effective + self.q_p_effective > 1.0 + 1e-12:
            raise ValueError("selection probabilities exceed 1")

    @classmethod
    def from_policy(cls, policy: EncryptionPolicy, p_i: float,
                    atom_i: GaussianAtom, atom_p: GaussianAtom
                    ) -> "EncryptionComponent":
        """Assemble eq. (4)'s mixture from a policy and P(I-packet)=p_i."""
        return cls(
            q_i_effective=policy.q_i * p_i,
            q_p_effective=policy.q_p * (1.0 - p_i),
            atom_i=atom_i,
            atom_p=atom_p,
        )

    @property
    def mean(self) -> float:
        return (self.q_i_effective * self.atom_i.mu
                + self.q_p_effective * self.atom_p.mu)

    @property
    def second_moment(self) -> float:
        return (self.q_i_effective * self.atom_i.second_moment
                + self.q_p_effective * self.atom_p.second_moment)

    def scalar_lst(self, s: float) -> float:
        """Eq. (17)."""
        q0 = 1.0 - self.q_i_effective - self.q_p_effective
        return (q0
                + self.q_i_effective * self.atom_i.scalar_lst(s)
                + self.q_p_effective * self.atom_p.scalar_lst(s))

    def matrix_lst(self, m: np.ndarray) -> np.ndarray:
        q0 = 1.0 - self.q_i_effective - self.q_p_effective
        identity = np.eye(m.shape[0])
        return (q0 * identity
                + self.q_i_effective * self.atom_i.matrix_lst(m)
                + self.q_p_effective * self.atom_p.matrix_lst(m))

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        if u < self.q_i_effective:
            return self.atom_i.sample(rng)
        if u < self.q_i_effective + self.q_p_effective:
            return self.atom_p.sample(rng)
        return 0.0


@dataclass(frozen=True)
class BackoffComponent:
    """T_b: sum of K iid Exp(lambda_b) waits, K geometric (eqs. 6-7).

    ``P{K = k} = (1 - p_s)^k p_s``: with probability ``p_s`` the packet
    goes out without collision and T_b = 0.
    """

    p_s: float
    lambda_b: float

    def __post_init__(self) -> None:
        if not 0.0 < self.p_s <= 1.0:
            raise ValueError("p_s must be in (0, 1]")
        if self.lambda_b <= 0.0:
            raise ValueError("lambda_b must be positive")

    @property
    def mean(self) -> float:
        # E[K]/lambda_b with E[K] = (1 - p_s)/p_s.
        return (1.0 - self.p_s) / (self.p_s * self.lambda_b)

    @property
    def second_moment(self) -> float:
        # E[T_b^2] = E[K(K+1)] / lambda_b^2 for a sum of K iid exponentials.
        p = self.p_s
        ek = (1.0 - p) / p
        ek2 = (1.0 - p) * (2.0 - p) / (p * p)
        return (ek2 + ek) / self.lambda_b ** 2

    def scalar_lst(self, s: float) -> float:
        """Eq. (7): H_b(s) = p_s (lambda_b + s) / (s + p_s lambda_b)."""
        return (self.p_s * (self.lambda_b + s)) / (s + self.p_s * self.lambda_b)

    def matrix_lst(self, m: np.ndarray) -> np.ndarray:
        identity = np.eye(m.shape[0])
        numerator = self.lambda_b * identity - m
        denominator = self.p_s * self.lambda_b * identity - m
        return self.p_s * numerator @ np.linalg.inv(denominator)

    def sample(self, rng: np.random.Generator) -> float:
        collisions = rng.geometric(self.p_s) - 1  # numpy: support {1,2,..}
        if collisions == 0:
            return 0.0
        return float(rng.exponential(1.0 / self.lambda_b, collisions).sum())


@dataclass(frozen=True)
class TransmissionComponent:
    """T_t: Gaussian mixture over I- and P-frame packet sizes (eqs. 8/18)."""

    p_i: float
    atom_i: GaussianAtom
    atom_p: GaussianAtom

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_i <= 1.0:
            raise ValueError("p_i must be in [0, 1]")

    @property
    def mean(self) -> float:
        return self.p_i * self.atom_i.mu + (1.0 - self.p_i) * self.atom_p.mu

    @property
    def second_moment(self) -> float:
        return (self.p_i * self.atom_i.second_moment
                + (1.0 - self.p_i) * self.atom_p.second_moment)

    def scalar_lst(self, s: float) -> float:
        """Eq. (18)."""
        return (self.p_i * self.atom_i.scalar_lst(s)
                + (1.0 - self.p_i) * self.atom_p.scalar_lst(s))

    def matrix_lst(self, m: np.ndarray) -> np.ndarray:
        return (self.p_i * self.atom_i.matrix_lst(m)
                + (1.0 - self.p_i) * self.atom_p.matrix_lst(m))

    def sample(self, rng: np.random.Generator) -> float:
        atom = self.atom_i if rng.random() < self.p_i else self.atom_p
        return atom.sample(rng)


@dataclass(frozen=True)
class ServiceTimeModel:
    """T = T_e + T_b + T_t with the three parts mutually independent.

    The paper's eq. (10): the LST of T is the product of the component
    LSTs.  Moments follow from independence; the matrix LST is the product
    of commuting matrix functions of the same argument.
    """

    encryption: EncryptionComponent
    backoff: BackoffComponent
    transmission: TransmissionComponent

    @property
    def mean(self) -> float:
        """mu^(1): first moment of the service time."""
        return self.encryption.mean + self.backoff.mean + self.transmission.mean

    @property
    def second_moment(self) -> float:
        """mu^(2): second moment about the origin."""
        parts = (self.encryption, self.backoff, self.transmission)
        total = sum(part.second_moment for part in parts)
        # Cross terms 2 E[X]E[Y] from independence.
        means = [part.mean for part in parts]
        for i in range(3):
            for j in range(i + 1, 3):
                total += 2.0 * means[i] * means[j]
        return total

    @property
    def variance(self) -> float:
        return self.second_moment - self.mean ** 2

    def scalar_lst(self, s: float) -> float:
        """Eq. (10): H(s) = H_e(s) H_b(s) H_t(s)."""
        return (self.encryption.scalar_lst(s)
                * self.backoff.scalar_lst(s)
                * self.transmission.scalar_lst(s))

    def matrix_lst(self, m: np.ndarray) -> np.ndarray:
        """E[e^{MT}]: the matrix version of eq. (10).

        The three factors are analytic functions of the same matrix M, so
        they commute and their product equals the transform of the sum.
        """
        return (self.encryption.matrix_lst(m)
                @ self.backoff.matrix_lst(m)
                @ self.transmission.matrix_lst(m))

    def sample(self, rng: np.random.Generator) -> float:
        return (self.encryption.sample(rng)
                + self.backoff.sample(rng)
                + self.transmission.sample(rng))
