"""Waiting-time distribution of the 2-MMPP/G/1 queue (Section 4.2.3).

The paper: "The algorithm computes the distribution function and the
moments of the delay seen by the video packets."  This module supplies
both beyond the mean of eq. (19):

The stationary workload (virtual waiting time) row vector transform
``W(s) = (E[e^{-sV}; phase 1], E[e^{-sV}; phase 2])`` of a MAP/G/1 queue
satisfies the matrix Pollaczek-Khinchine equation

    W(s) (sI + D0 + D1 H(s)) = s y,

where ``D0 = R - Lambda``, ``D1 = Lambda``, ``H`` is the service-time
LST and ``y`` the idle-phase vector of eq. (19).  The waiting time of an
*arriving* packet follows by conditional PASTA: arrivals in phase j
sample the workload at rate lambda_j, so

    W_arr(s) = W(s) Lambda e / lambda_bar.

The complementary CDF is recovered by numerical transform inversion with
the Euler/Abate-Whitt algorithm, and moments by high-order numerical
differentiation of the transform at 0.  Both are validated against the
discrete-event simulator in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from .mmpp import MMPP2
from .queueing import compute_g_matrix, idle_phase_vector
from .service import ServiceTimeModel

__all__ = [
    "WaitingTimeDistribution",
    "waiting_time_distribution",
]


def _complex_service_lst(service: ServiceTimeModel, s: complex) -> complex:
    """H(s) for complex s, assembled from the component closed forms.

    Mirrors :meth:`ServiceTimeModel.scalar_lst` but accepts complex
    arguments, which the scalar code paths (math.exp) cannot.
    """
    enc = service.encryption
    q0 = 1.0 - enc.q_i_effective - enc.q_p_effective

    def atom(a, s):
        return np.exp(-a.mu * s + 0.5 * (a.sigma * s) ** 2)

    h_e = (q0
           + enc.q_i_effective * atom(enc.atom_i, s)
           + enc.q_p_effective * atom(enc.atom_p, s))
    b = service.backoff
    h_b = b.p_s * (b.lambda_b + s) / (s + b.p_s * b.lambda_b)
    t = service.transmission
    h_t = (t.p_i * atom(t.atom_i, s)
           + (1.0 - t.p_i) * atom(t.atom_p, s))
    return complex(h_e * h_b * h_t)


@dataclass(frozen=True)
class WaitingTimeDistribution:
    """Callable transform plus inversion helpers for the per-packet wait."""

    mmpp: MMPP2
    service: ServiceTimeModel
    idle_vector: np.ndarray

    def transform(self, s: complex) -> complex:
        """E[e^{-sW}] for an arriving packet (complex s, Re(s) >= 0)."""
        if s == 0:
            return complex(1.0)
        d0 = self.mmpp.generator - self.mmpp.rate_matrix
        d1 = self.mmpp.rate_matrix
        h = _complex_service_lst(self.service, s)
        matrix = s * np.eye(2, dtype=complex) + d0 + d1 * h
        workload = s * (self.idle_vector.astype(complex)
                        @ np.linalg.inv(matrix))
        lam = self.mmpp.rate_vector
        return complex((workload @ lam) / self.mmpp.mean_rate)

    # -- tail probabilities by Euler inversion --------------------------------

    def survival(self, t: float, *, terms: int = 40,
                 euler_terms: int = 12) -> float:
        """P(W > t) by Abate-Whitt Euler inversion of (1 - W(s))/s."""
        if t < 0:
            raise ValueError("time must be non-negative")
        if t == 0.0:
            # P(W > 0) = 1 - P(system empty at a biased arrival instant).
            atom = self._mass_at_zero()
            return 1.0 - atom
        def transform(s: complex) -> complex:
            return (1.0 - self.transform(s)) / s

        a = 18.4  # controls the discretisation error (~1e-8)
        x = a / (2.0 * t)
        h = math.pi / t
        total = 0.5 * transform(complex(x, 0.0)).real
        partial_sums: List[float] = []
        running = total
        for k in range(1, terms + euler_terms + 1):
            term = ((-1.0) ** k) * transform(complex(x, k * h)).real
            running += term
            if k >= terms:
                partial_sums.append(running)
        # Euler (binomial) averaging of the last partial sums.
        m = euler_terms
        averaged = sum(math.comb(m, j) * partial_sums[j] for j in range(m + 1)
                       if j < len(partial_sums)) / 2 ** m
        value = (math.exp(a / 2.0) / t) * averaged
        return float(min(max(value, 0.0), 1.0))

    def cdf(self, t: float, **kwargs) -> float:
        """P(W <= t)."""
        return 1.0 - self.survival(t, **kwargs)

    def _mass_at_zero(self) -> float:
        """P(W = 0): the arriving packet finds the system empty.

        Arrivals in phase j occur at rate lambda_j and see the empty
        system with (time-stationary) probability y_j, so the Palm
        probability is y . lambda / lambda_bar.
        """
        lam = self.mmpp.rate_vector
        return float((self.idle_vector @ lam) / self.mmpp.mean_rate)

    # -- moments by numerical differentiation ----------------------------------

    def moment(self, order: int, *, step: float = None) -> float:
        """n-th moment of W via central differences of the transform.

        ``E[W^n] = (-1)^n d^n/ds^n W(s) |_{s=0}``.  Accurate for the low
        orders the delay analysis needs (1-3).
        """
        if not 1 <= order <= 4:
            raise ValueError("moments implemented for orders 1-4")
        scale = max(self.service.mean, 1e-9)
        h = step if step is not None else 1e-3 / scale
        # All derivatives use the same symmetric 5-point stencil (-2..2).
        values = np.array([self.transform(complex(k * h, 0.0)).real
                           for k in range(-2, 3)])
        weights = _CENTRAL_WEIGHTS[order]
        derivative = float(weights @ values) / h ** order
        return ((-1.0) ** order) * derivative

    def mean(self) -> float:
        return self.moment(1)

    def variance(self) -> float:
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    def quantile(self, probability: float, *, upper_bound_factor: float = 200.0
                 ) -> float:
        """Smallest t with P(W <= t) >= probability (bisection on the CDF)."""
        if not 0.0 < probability < 1.0:
            raise ValueError("probability must be in (0, 1)")
        if self.cdf(0.0) >= probability:
            return 0.0
        low = 0.0
        high = upper_bound_factor * max(self.service.mean, 1e-9)
        for _ in range(200):
            if self.cdf(high) >= probability:
                break
            high *= 2.0
        for _ in range(80):
            mid = 0.5 * (low + high)
            if self.cdf(mid) >= probability:
                high = mid
            else:
                low = mid
        return high


# Classical central finite-difference weights for the n-th derivative on
# the symmetric 5-point stencil (-2h .. 2h).
_CENTRAL_WEIGHTS = {
    1: np.array([1.0, -8.0, 0.0, 8.0, -1.0]) / 12.0,
    2: np.array([-1.0, 16.0, -30.0, 16.0, -1.0]) / 12.0,
    3: np.array([-1.0, 2.0, 0.0, -2.0, 1.0]) / 2.0,
    4: np.array([1.0, -4.0, 6.0, -4.0, 1.0]),
}


def waiting_time_distribution(mmpp: MMPP2, service: ServiceTimeModel
                              ) -> WaitingTimeDistribution:
    """Build the per-packet waiting-time distribution object."""
    rho = mmpp.mean_rate * service.mean
    if rho >= 1.0:
        raise ValueError(f"unstable queue (rho = {rho:.3f})")
    g = compute_g_matrix(mmpp, service)
    y = idle_phase_vector(mmpp, service, g)
    return WaitingTimeDistribution(mmpp=mmpp, service=service, idle_vector=y)
