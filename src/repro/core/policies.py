"""Encryption policies: which packets of a video flow get encrypted.

Section 3 defines a selection policy P as (i) the symmetric-key algorithm
and (ii) the set of packets to encrypt.  The paper evaluates twelve
policies — {AES128, AES256, 3DES} x {none, I-frames, P-frames, all} — plus
the finer-grained "all I-frame packets + a fraction alpha of P-frame
packets" mixture of Section 6.2 (Table 2 / Fig. 9) and the half-I policy
it dismisses at the end of Section 6.2.

A policy exposes two complementary views:

- a *per-packet rule* (:meth:`EncryptionPolicy.encrypts`) used by the
  testbed sender, deterministic per packet so repeated runs agree;
- the *selection probabilities* ``q_I``/``q_P`` the analytical model
  consumes (the ``q^(P)`` of eqs. 4 and Section 4.3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..video.gop import FrameType
from ..video.packetizer import Packet

__all__ = ["EncryptionPolicy", "POLICY_MODES", "standard_policies"]

POLICY_MODES = ("none", "i_frames", "p_frames", "all", "i_plus_p_fraction",
                "partial_i")


def _stable_unit_interval(key: str) -> float:
    """Deterministic pseudo-uniform in [0, 1) from a string key.

    Used to pick "a fraction alpha of the P-frame packets" reproducibly:
    the same packet is selected in every run and on both sender and model.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class EncryptionPolicy:
    """An encryption policy P = (algorithm, packet-selection rule).

    ``fraction`` parameterises the partial modes: for
    ``i_plus_p_fraction`` it is the alpha of Section 6.2 (fraction of
    P-frame packets encrypted on top of all I-frame packets); for
    ``partial_i`` it is the fraction of I-frame packets encrypted (the
    paper tried 0.5 and found it inadequate).
    """

    mode: str
    algorithm: Optional[str] = "AES256"
    fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise ValueError(
                f"unknown policy mode {self.mode!r}; expected one of"
                f" {POLICY_MODES}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.mode != "none" and self.algorithm is None:
            raise ValueError(f"mode {self.mode!r} requires an algorithm")
        if self.mode in ("i_plus_p_fraction", "partial_i") and self.fraction == 0.0:
            raise ValueError(f"mode {self.mode!r} requires a positive fraction")

    # -- model view ----------------------------------------------------------

    @property
    def q_i(self) -> float:
        """Probability an I-frame packet is selected for encryption."""
        return {
            "none": 0.0,
            "i_frames": 1.0,
            "p_frames": 0.0,
            "all": 1.0,
            "i_plus_p_fraction": 1.0,
            "partial_i": self.fraction,
        }[self.mode]

    @property
    def q_p(self) -> float:
        """Probability a P-frame packet is selected for encryption."""
        return {
            "none": 0.0,
            "i_frames": 0.0,
            "p_frames": 1.0,
            "all": 1.0,
            "i_plus_p_fraction": self.fraction,
            "partial_i": 0.0,
        }[self.mode]

    def encrypted_fraction(self, p_i: float) -> float:
        """Overall q^(P): fraction of packets encrypted when a packet is an
        I-frame packet with probability ``p_i`` (Section 4.3)."""
        if not 0.0 <= p_i <= 1.0:
            raise ValueError("p_i must be in [0, 1]")
        return self.q_i * p_i + self.q_p * (1.0 - p_i)

    # -- sender view ---------------------------------------------------------

    def encrypts(self, packet: Packet) -> bool:
        """Deterministic per-packet selection rule (the sender's check in
        Fig. 3: "encryption policy satisfied?")."""
        if self.mode == "none":
            return False
        if self.mode == "all":
            return True
        if self.mode == "i_frames":
            return packet.frame_type is FrameType.I
        if self.mode == "p_frames":
            return packet.frame_type is FrameType.P
        if self.mode == "i_plus_p_fraction":
            if packet.frame_type is FrameType.I:
                return True
            key = f"p-select:{packet.frame_index}:{packet.fragment_index}"
            return _stable_unit_interval(key) < self.fraction
        # partial_i
        if packet.frame_type is not FrameType.I:
            return False
        key = f"i-select:{packet.frame_index}:{packet.fragment_index}"
        return _stable_unit_interval(key) < self.fraction

    @property
    def label(self) -> str:
        """Short name matching the paper's x-axis labels."""
        base = {
            "none": "none",
            "i_frames": "I",
            "p_frames": "P",
            "all": "all",
            "i_plus_p_fraction": f"I+{self.fraction:.0%}P",
            "partial_i": f"{self.fraction:.0%}I",
        }[self.mode]
        if self.mode == "none" or self.algorithm is None:
            return base
        return f"{base}({self.algorithm})"


def standard_policies(algorithm: str = "AES256") -> dict:
    """The paper's four packet-selection modes under one algorithm."""
    return {
        "none": EncryptionPolicy("none", None),
        "I": EncryptionPolicy("i_frames", algorithm),
        "P": EncryptionPolicy("p_frames", algorithm),
        "all": EncryptionPolicy("all", algorithm),
    }
