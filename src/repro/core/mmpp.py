"""The two-state Markov-modulated Poisson process of Section 4.2.1.

Packet arrivals at the sender's queue alternate between two phases: a
burst phase while an I-frame's MTU fragments are read from disk (state 1,
high rate lambda_1) and a trickle phase while single-packet P-frames
arrive at the frame rate (state 2, lower rate lambda_2).  The 2-MMPP is
parameterised by the infinitesimal generator R and rate matrix Lambda of
eq. (1); its equilibrium vector is eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["MMPP2", "MmppSample"]


@dataclass(frozen=True)
class MmppSample:
    """A sampled arrival trace: absolute times and the phase of each arrival."""

    arrival_times: np.ndarray
    phases: np.ndarray  # 0 for state 1 (I-burst), 1 for state 2 (P-trickle)

    def interarrival_times(self) -> np.ndarray:
        return np.diff(self.arrival_times, prepend=0.0)

    def __len__(self) -> int:
        return len(self.arrival_times)


@dataclass(frozen=True)
class MMPP2:
    """2-state MMPP with transition rates ``p1`` (1->2) and ``p2`` (2->1)
    and Poisson rates ``lambda1``/``lambda2`` in the two states."""

    p1: float
    p2: float
    lambda1: float
    lambda2: float

    def __post_init__(self) -> None:
        for name in ("p1", "p2", "lambda1", "lambda2"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")

    # -- matrix views (eq. 1) -------------------------------------------------

    @property
    def generator(self) -> np.ndarray:
        """Infinitesimal generator R of the modulating chain."""
        return np.array([[-self.p1, self.p1],
                         [self.p2, -self.p2]], dtype=float)

    @property
    def rate_matrix(self) -> np.ndarray:
        """Diagonal rate matrix Lambda."""
        return np.diag([self.lambda1, self.lambda2])

    @property
    def rate_vector(self) -> np.ndarray:
        return np.array([self.lambda1, self.lambda2], dtype=float)

    # -- stationary behaviour (eq. 2) -----------------------------------------

    @property
    def stationary_distribution(self) -> np.ndarray:
        """pi = (p2, p1) / (p1 + p2)."""
        total = self.p1 + self.p2
        return np.array([self.p2 / total, self.p1 / total])

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate pi . lambda."""
        return float(self.stationary_distribution @ self.rate_vector)

    def index_of_dispersion(self) -> float:
        """Limiting index of dispersion of counts (burstiness measure).

        For a 2-MMPP, IDC(inf) = 1 + 2 p1 p2 (l1-l2)^2 /
        ((p1+p2)^2 (p2 l1 + p1 l2)); equals 1 for a Poisson process.
        """
        l1, l2 = self.lambda1, self.lambda2
        p1, p2 = self.p1, self.p2
        numerator = 2.0 * p1 * p2 * (l1 - l2) ** 2
        denominator = (p1 + p2) ** 2 * (p2 * l1 + p1 * l2)
        return 1.0 + numerator / denominator

    # -- sampling --------------------------------------------------------------

    def sample(self, n_arrivals: int, *,
               rng: Optional[np.random.Generator] = None,
               initial_phase: Optional[int] = None) -> MmppSample:
        """Draw a trace of ``n_arrivals`` arrivals.

        Competing-exponentials simulation: in phase ``j`` the next event is
        an arrival with rate ``lambda_j`` or a phase flip with the chain's
        exit rate, whichever fires first.
        """
        if n_arrivals < 1:
            raise ValueError("need at least one arrival")
        rng = rng or np.random.default_rng()
        pi = self.stationary_distribution
        phase = (int(rng.random() < pi[1]) if initial_phase is None
                 else int(initial_phase))
        if phase not in (0, 1):
            raise ValueError("phase must be 0 or 1")

        rates = (self.lambda1, self.lambda2)
        exits = (self.p1, self.p2)
        times = np.empty(n_arrivals)
        phases = np.empty(n_arrivals, dtype=np.int8)
        now = 0.0
        count = 0
        while count < n_arrivals:
            arrival_rate = rates[phase]
            exit_rate = exits[phase]
            total = arrival_rate + exit_rate
            now += rng.exponential(1.0 / total)
            if rng.random() < arrival_rate / total:
                times[count] = now
                phases[count] = phase
                count += 1
            else:
                phase = 1 - phase
        return MmppSample(arrival_times=times, phases=phases)

    # -- convenience constructors ----------------------------------------------

    @classmethod
    def from_video_structure(
        cls,
        *,
        fps: float,
        gop_size: int,
        i_frame_packets: float,
        burst_rate: float,
    ) -> "MMPP2":
        """Build the arrival process implied by a GOP structure.

        While an I-frame is read from disk its ``i_frame_packets`` MTU
        fragments arrive back-to-back at ``burst_rate`` packets/s (state 1);
        for the rest of the GOP, one P-frame packet arrives per frame
        period (state 2, rate = fps).  The phase-change rates are the
        inverses of the mean time spent in each phase.
        """
        if fps <= 0 or gop_size < 2 or i_frame_packets < 1 or burst_rate <= 0:
            raise ValueError("invalid video structure parameters")
        burst_duration = i_frame_packets / burst_rate
        trickle_duration = (gop_size - 1) / fps
        return cls(
            p1=1.0 / burst_duration,
            p2=1.0 / trickle_duration,
            lambda1=burst_rate,
            lambda2=fps,
        )
