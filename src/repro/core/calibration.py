"""Trace-based parameter estimation (Section 6.1, "Applying the
mathematical framework").

The paper tunes the model from an initial sequence of events: segment
insertion times and types give the 2-MMPP parameters; encryption timings
of an initial packet set give the mean/variance of ``T_e``; observed
transmissions give ``T_t`` and the backoff rate.  These estimators do
exactly that from the traces the testbed (or a real sender) produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .mmpp import MMPP2
from .service import GaussianAtom

__all__ = [
    "fit_mmpp_from_trace",
    "fit_gaussian_atom",
    "estimate_success_rate",
]


def fit_mmpp_from_trace(arrival_times: Sequence[float],
                        phases: Sequence[int]) -> MMPP2:
    """Moment-match a 2-MMPP to a phased arrival trace.

    ``phases[i]`` is 0 when arrival ``i`` belongs to an I-frame burst and
    1 when it belongs to the P-frame trickle.

    Per-phase rates are estimated from *same-phase* interarrival gaps only
    (a gap whose endpoints sit in different phases straddles a phase
    switch and would bias the estimate); phase-switch rates come from the
    observed number of flips over the estimated time spent in each phase.
    """
    times = np.asarray(arrival_times, dtype=float)
    phase_array = np.asarray(phases, dtype=int)
    if times.ndim != 1 or times.shape != phase_array.shape:
        raise ValueError("arrival_times and phases must be equal-length 1-D")
    if len(times) < 4:
        raise ValueError("need at least 4 arrivals to fit an MMPP")
    if not np.all(np.diff(times) >= 0):
        raise ValueError("arrival times must be non-decreasing")
    if set(np.unique(phase_array)) - {0, 1}:
        raise ValueError("phases must be 0 (I-burst) or 1 (P-trickle)")
    if len(np.unique(phase_array)) < 2:
        raise ValueError("trace never changes phase; cannot fit a 2-MMPP")

    gaps = np.diff(times)
    from_phase = phase_array[:-1]
    to_phase = phase_array[1:]
    same_phase = from_phase == to_phase

    rates = np.zeros(2)
    counts = np.zeros(2)
    for phase in (0, 1):
        mask = same_phase & (to_phase == phase)
        total = float(gaps[mask].sum())
        counts[phase] = int(mask.sum())
        if counts[phase] == 0 or total <= 0.0:
            raise ValueError(
                f"phase {phase} has no same-phase gaps; trace too short"
            )
        rates[phase] = counts[phase] / total

    # Time spent in each phase ~ arrivals in that phase over its rate.
    arrivals_in = np.array([np.sum(phase_array == 0),
                            np.sum(phase_array == 1)], dtype=float)
    time_in = arrivals_in / rates
    flips = np.zeros(2)
    flips[0] = int(np.sum((from_phase == 0) & (to_phase == 1)))
    flips[1] = int(np.sum((from_phase == 1) & (to_phase == 0)))
    p1 = max(flips[0], 0.5) / time_in[0]
    p2 = max(flips[1], 0.5) / time_in[1]
    return MMPP2(p1=p1, p2=p2, lambda1=rates[0], lambda2=rates[1])


def fit_gaussian_atom(samples: Sequence[float]) -> GaussianAtom:
    """Mean/std estimate of a timing component (eq. 15's mu and sigma)."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit an atom to an empty sample")
    if np.any(data < 0):
        raise ValueError("durations must be non-negative")
    mu = float(np.mean(data))
    sigma = float(np.std(data, ddof=1)) if data.size > 1 else 0.0
    return GaussianAtom(mu=mu, sigma=sigma)


def estimate_success_rate(outcomes: Sequence[bool]) -> float:
    """Empirical packet success rate from transmission outcomes."""
    data = np.asarray(outcomes, dtype=bool)
    if data.size == 0:
        raise ValueError("cannot estimate from an empty sample")
    return float(np.mean(data))
