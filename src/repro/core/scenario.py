"""The calibrated scenario: everything the analytical framework needs.

Fig. 1's workflow calibrates the model with "minimal measurements
(arrival rates, packet lengths, PDR)" plus device capabilities.  A
:class:`Scenario` bundles those calibrated quantities; from it the model
builds, for any policy, the service-time model (delay side) and the frame
success/distortion models (confidentiality side).

:func:`calibrate_scenario` derives a scenario from a concrete encoded
clip, a set of cipher cost models and a WiFi link description — the same
information the Android client has locally (Section 6.1: "the client has
access locally to all the necessary information to compute these
estimates").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from ..crypto.timing import CipherCost
from ..video.gop import Bitstream, FrameType
from ..video.packetizer import (
    DEFAULT_MTU,
    RTP_HEADER_BYTES,
    UDP_IP_HEADER_BYTES,
    packetize,
)
from ..wifi.dcf import DcfParameters, DcfSolution, solve_dcf
from ..wifi.phy import Phy80211g
from .distortion import DistortionModel, DistortionPolynomial
from .frame_success import FrameSuccessModel
from .mmpp import MMPP2
from .policies import EncryptionPolicy
from .service import (
    BackoffComponent,
    EncryptionComponent,
    GaussianAtom,
    ServiceTimeModel,
    TransmissionComponent,
)

__all__ = ["Scenario", "calibrate_scenario"]

# Relative timing jitter applied when deriving Gaussian atoms from affine
# cost models (matches the small variations eq. 15 models).
_TX_JITTER_FRACTION = 0.03


@dataclass(frozen=True)
class Scenario:
    """Calibrated inputs of the analytical framework for one clip/link/device."""

    # Arrival side (Section 4.2.1)
    mmpp: MMPP2
    p_i: float                      # P(a packet belongs to an I-frame)
    # Frame structure (Sections 4.2.2 / 4.3.1)
    n_i_packets: int                # packets per I-frame (mean, >= 1)
    n_p_packets: int                # packets per P-frame (>= 1)
    i_packet_payload_bytes: int     # typical I-fragment payload (~MTU)
    p_packet_payload_bytes: int     # typical P-packet payload
    # Device (encryption costs per algorithm)
    cipher_costs: Dict[str, CipherCost]
    # Link (Sections 4.1 / 4.2.2)
    p_s: float                      # per-attempt MAC success rate (backoff)
    p_delivery: float               # end-to-end delivery rate after retries
    lambda_b: float                 # backoff rate of eq. (7)
    tx_atom_i: GaussianAtom
    tx_atom_p: GaussianAtom
    # Content (Section 4.3)
    sensitivity_fraction: float
    gop_size: int
    n_gops: int
    polynomial: DistortionPolynomial
    recovery_fraction: Optional[float] = None
    baseline_distortion: float = 0.0

    # -- delay side ------------------------------------------------------------

    def encryption_atoms(self, algorithm: str
                         ) -> "tuple[GaussianAtom, GaussianAtom]":
        """Per-packet encryption-time atoms (I-fragment, P-packet)."""
        try:
            cost = self.cipher_costs[algorithm]
        except KeyError:
            raise ValueError(
                f"no cipher cost calibrated for {algorithm!r}; have"
                f" {sorted(self.cipher_costs)}"
            ) from None
        atom_i = GaussianAtom(
            mu=cost.time_for(self.i_packet_payload_bytes),
            sigma=cost.sigma_for(self.i_packet_payload_bytes),
        )
        atom_p = GaussianAtom(
            mu=cost.time_for(self.p_packet_payload_bytes),
            sigma=cost.sigma_for(self.p_packet_payload_bytes),
        )
        return atom_i, atom_p

    def service_model(self, policy: EncryptionPolicy) -> ServiceTimeModel:
        """Assemble eq. (3)'s service time for a policy."""
        if policy.mode == "none" or policy.algorithm is None:
            zero = GaussianAtom(0.0, 0.0)
            encryption = EncryptionComponent(0.0, 0.0, zero, zero)
        else:
            atom_i, atom_p = self.encryption_atoms(policy.algorithm)
            encryption = EncryptionComponent.from_policy(
                policy, self.p_i, atom_i, atom_p
            )
        backoff = BackoffComponent(p_s=self.p_s, lambda_b=self.lambda_b)
        transmission = TransmissionComponent(
            p_i=self.p_i, atom_i=self.tx_atom_i, atom_p=self.tx_atom_p
        )
        return ServiceTimeModel(encryption, backoff, transmission)

    # -- distortion side ---------------------------------------------------------

    def frame_success_model(self) -> FrameSuccessModel:
        # Distortion depends on what ultimately arrives, i.e. the delivery
        # rate after MAC retries; the per-attempt rate only shapes backoff.
        return FrameSuccessModel(
            n_i=self.n_i_packets,
            n_p=self.n_p_packets,
            sensitivity_fraction=self.sensitivity_fraction,
            p_s=self.p_delivery,
        )

    def distortion_model(self) -> DistortionModel:
        return DistortionModel(
            gop_size=self.gop_size,
            n_gops=self.n_gops,
            polynomial=self.polynomial,
            recovery_fraction=self.recovery_fraction,
        )

    def with_delivery_rate(self, p_delivery: float) -> "Scenario":
        """A copy under different end-to-end channel conditions."""
        return replace(self, p_delivery=p_delivery)


def calibrate_scenario(
    bitstream: Bitstream,
    *,
    cipher_costs: Dict[str, CipherCost],
    polynomial: DistortionPolynomial,
    sensitivity_fraction: float,
    dcf: Optional[DcfSolution] = None,
    dcf_params: Optional[DcfParameters] = None,
    phy: Optional[Phy80211g] = None,
    mtu: int = DEFAULT_MTU,
    disk_read_rate_pkts_per_s: float = 600.0,
    recovery_fraction: Optional[float] = None,
    baseline_distortion: float = 0.0,
    retry_limit: int = 7,
) -> Scenario:
    """Calibrate a :class:`Scenario` from an encoded clip and a link.

    ``disk_read_rate_pkts_per_s`` is the I-burst arrival rate lambda_1:
    how fast MTU fragments of an I-frame are produced while the producer
    thread reads it from flash (Section 5's producer/consumer queue).

    The per-attempt success rate from the DCF fixed point shapes the
    backoff component of the service time; end-to-end *delivery* after up
    to ``retry_limit`` MAC retransmissions is what the distortion side
    sees: ``p_delivery = 1 - (1 - p_s)^(retry_limit + 1)``.
    """
    dcf_params = dcf_params or DcfParameters()
    phy = phy or dcf_params.phy
    if dcf is None:
        dcf = solve_dcf(dcf_params)

    packets = packetize(bitstream, mtu=mtu, carry_payload=False)
    i_packets = [p for p in packets if p.frame_type is FrameType.I]
    p_packets = [p for p in packets if p.frame_type is FrameType.P]
    if not i_packets or not p_packets:
        raise ValueError("clip must contain both I- and P-frame packets")
    p_i = len(i_packets) / len(packets)

    n_i_frames = sum(1 for f in bitstream if f.is_intra)
    n_p_frames = len(bitstream) - n_i_frames
    n_i_packets = max(1, round(len(i_packets) / n_i_frames))
    n_p_packets = max(1, round(len(p_packets) / n_p_frames))

    i_payload = int(np.mean([p.payload_size for p in i_packets]))
    p_payload = int(np.mean([p.payload_size for p in p_packets]))

    wire_i = i_payload + RTP_HEADER_BYTES + UDP_IP_HEADER_BYTES
    wire_p = p_payload + RTP_HEADER_BYTES + UDP_IP_HEADER_BYTES
    tx_i = phy.packet_transmission_time_s(wire_i)
    tx_p = phy.packet_transmission_time_s(wire_p)

    mmpp = MMPP2.from_video_structure(
        fps=bitstream.fps,
        gop_size=bitstream.gop_layout.gop_size,
        i_frame_packets=n_i_packets,
        burst_rate=disk_read_rate_pkts_per_s,
    )

    p_delivery = 1.0 - (1.0 - dcf.packet_success_rate) ** (retry_limit + 1)

    return Scenario(
        mmpp=mmpp,
        p_i=p_i,
        n_i_packets=n_i_packets,
        n_p_packets=n_p_packets,
        i_packet_payload_bytes=i_payload,
        p_packet_payload_bytes=p_payload,
        cipher_costs=dict(cipher_costs),
        p_s=dcf.packet_success_rate,
        p_delivery=p_delivery,
        lambda_b=dcf.backoff_rate_per_s,
        tx_atom_i=GaussianAtom(tx_i, _TX_JITTER_FRACTION * tx_i),
        tx_atom_p=GaussianAtom(tx_p, _TX_JITTER_FRACTION * tx_p),
        sensitivity_fraction=sensitivity_fraction,
        gop_size=bitstream.gop_layout.gop_size,
        n_gops=bitstream.gop_layout.n_gops(len(bitstream)),
        polynomial=polynomial,
        recovery_fraction=recovery_fraction,
        baseline_distortion=baseline_distortion,
    )
