"""Distortion-vs-reference-distance measurement and polynomial fit (Fig. 2).

Section 4.3.2, Case 2: "we artificially create video frame losses in
order to achieve reference frame substitutions from various distances ...
we approximate the observed curves with polynomials of degree 5 using a
multinomial regression".

The reproduction does the same against the synthetic reference clips: for
each distance ``d`` it measures the mean square error of displaying frame
``i - d`` in place of frame ``i`` across the clip, then least-squares fits
a degree-5 polynomial.  The resulting :class:`DistortionPolynomial` feeds
the distortion model's Case 1 and Case 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.distortion import DistortionPolynomial
from ..video.quality import mse
from ..video.yuv import Frame, Sequence420

__all__ = [
    "ReferenceDistanceCurve",
    "measure_reference_distance_distortion",
    "fit_distortion_polynomial",
    "blank_frame_distortion",
    "measure_recovery_fraction",
]


@dataclass(frozen=True)
class ReferenceDistanceCurve:
    """Measured mean distortion at each substitution distance."""

    distances: Tuple[int, ...]
    mean_distortion: Tuple[float, ...]

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return (np.asarray(self.distances, dtype=float),
                np.asarray(self.mean_distortion, dtype=float))


def measure_reference_distance_distortion(
    sequence: Sequence420,
    *,
    max_distance: int = 30,
    frame_stride: int = 1,
) -> ReferenceDistanceCurve:
    """Average MSE of substituting each frame by the one ``d`` frames back.

    This is the paper's artificial-loss experiment: a loss at distance
    ``d`` means the viewer sees a ``d``-frames-old picture.
    """
    if max_distance < 1:
        raise ValueError("max_distance must be >= 1")
    if len(sequence) <= max_distance:
        raise ValueError(
            f"clip too short ({len(sequence)} frames) for distance"
            f" {max_distance}"
        )
    lumas = sequence.luma_stack().astype(np.float64)
    distances = []
    means = []
    for distance in range(1, max_distance + 1):
        # Compare frame i with frame i - distance.
        current = lumas[distance:]
        reference = lumas[:-distance]
        step_mse = np.mean((current[::frame_stride] - reference[::frame_stride]) ** 2,
                           axis=(1, 2))
        distances.append(distance)
        means.append(float(np.mean(step_mse)))
    return ReferenceDistanceCurve(tuple(distances), tuple(means))


def blank_frame_distortion(sequence: Sequence420) -> float:
    """Mean MSE of showing a blank frame instead of the content (Case 3's
    ceiling, and the polynomial's saturation cap)."""
    blank = Frame.blank(sequence.width, sequence.height)
    blank_luma = blank.y.astype(np.float64)
    lumas = sequence.luma_stack().astype(np.float64)
    return float(np.mean((lumas - blank_luma) ** 2))


def measure_recovery_fraction(
    sequence: Sequence420,
    *,
    gop_size: int = 30,
    quantizer: int = 8,
    sensitivity_fraction: float = 0.75,
) -> float:
    """Calibrate the best-effort recovery fraction of the motion class.

    Offline experiment (same spirit as the paper's Fig. 2 calibration):
    encode the clip, make every I-frame packet unusable, best-effort
    decode, and measure how much of the worst-case (blank-reference)
    distortion survives in the frames the decoder still reconstructs.
    Slow-motion P-frames carry almost no standalone information, so nearly
    all of the error survives (fraction ~1); fast-motion P-frames are
    largely intra-coded and recover the picture (fraction ~0).
    """
    # Imported here to keep the module importable without the codec stack
    # when only the polynomial fit is needed.
    from ..video.codec import CodecConfig, encode_sequence
    from ..video.concealment import conceal_decode
    from ..video.gop import FrameType
    from ..video.packetizer import frames_decodable, packetize

    config = CodecConfig(gop_size=gop_size, quantizer=quantizer)
    bitstream = encode_sequence(sequence, config)
    packets = packetize(bitstream)
    usable = [packet.frame_type is not FrameType.I for packet in packets]
    decodable = frames_decodable(packets, usable, sensitivity_fraction)
    result = conceal_decode(bitstream, decodable, config, mode="best_effort")

    lumas = sequence.luma_stack().astype(np.float64)
    errors = []
    for record, frame in zip(result.frames, result.sequence):
        if record.decoded:
            diff = lumas[record.index] - frame.y.astype(np.float64)
            errors.append(float(np.mean(diff * diff)))
    if not errors:
        return 1.0
    worst_case = blank_frame_distortion(sequence)
    if worst_case <= 0.0:
        return 0.0
    return float(min(max(np.mean(errors) / worst_case, 0.0), 1.0))


def fit_distortion_polynomial(
    curve: ReferenceDistanceCurve,
    *,
    degree: int = 5,
    cap: Optional[float] = None,
) -> DistortionPolynomial:
    """Least-squares polynomial fit of the measured curve (paper's choice:
    degree 5; "use of higher degree polynomials does not increase
    accuracy").

    The fit is anchored at D(0) = 0 by including the origin as a data
    point.  ``cap`` defaults to 1.5x the largest measured distortion.
    """
    xs, ys = curve.as_arrays()
    xs = np.concatenate([[0.0], xs])
    ys = np.concatenate([[0.0], ys])
    coefficients = np.polynomial.polynomial.polyfit(xs, ys, degree)
    if cap is None:
        cap = 1.5 * float(np.max(ys))
    return DistortionPolynomial(coefficients=tuple(coefficients), cap=cap)
