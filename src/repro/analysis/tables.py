"""Plain-text table/figure rendering for the benchmark harness.

Every bench regenerates one of the paper's tables or figures; since the
output medium is a terminal, figures become aligned tables whose rows are
the bar groups / series points of the original plot.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_series"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: Optional[str] = None) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object],
                  ys: Sequence[float], *, unit: str = "") -> str:
    """Render one figure series as 'name: x=y' pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = ", ".join(f"{x}={y:.4g}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
