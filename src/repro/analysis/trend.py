"""Benchmark regression trend gate: current BENCH numbers vs a baseline.

``benchmarks/crypto_microbench.py`` emits ``BENCH_crypto.json`` every
run; this module compares such a report against a committed baseline
(``benchmarks/results/bench_baseline.json``) and fails when a throughput
metric regressed by more than the threshold, so crypto/cache performance
regressions are caught the moment they land rather than archaeologically.

Gating policy: only *throughput* metrics — leaves whose key ends in
``_per_s`` (this covers ``scalar_bytes_per_s`` / ``vector_bytes_per_s``
and the cache's ``cold_put_per_s`` / ``warm_get_per_s``) — participate in
the gate.  Latency leaves (``*_s``), ratios (``speedup``) and workload
descriptors are reported for context but never fail the run: they are
either derived from the gated numbers or too noisy at bench scale to gate
on.  Metrics present on only one side are reported as ``new``/``missing``
and do not fail the gate (a PR that *adds* a bench section must be able
to land before its baseline exists).

The baseline is refreshed deliberately, never automatically::

    PYTHONPATH=src python benchmarks/crypto_microbench.py
    cp BENCH_crypto.json benchmarks/results/bench_baseline.json

after an intentional perf change (and only from the machine class the
committed numbers were measured on — cross-host comparisons tell you
about the hosts, not the code).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .tables import render_table

__all__ = [
    "DEFAULT_THRESHOLD",
    "TrendRow",
    "compare_reports",
    "flatten_metrics",
    "load_report",
    "render_trend",
    "trend_gate",
]

DEFAULT_THRESHOLD = 0.30

# Statuses that fail the gate.
_FAILING = ("regression",)


@dataclass(frozen=True)
class TrendRow:
    """One metric's baseline-vs-current comparison."""

    metric: str
    baseline: Union[float, None]
    current: Union[float, None]
    delta_fraction: Union[float, None]
    status: str  # ok | regression | improved | new | missing | info

    @property
    def failed(self) -> bool:
        return self.status in _FAILING


def load_report(path) -> Dict:
    """Load a BENCH json report from ``path``."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(
            f"bench report not found at {path}; run"
            " `PYTHONPATH=src python benchmarks/crypto_microbench.py` first"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"bench report {path} is not valid JSON: {exc}") \
            from None
    if not isinstance(payload, dict):
        raise ValueError(
            f"bench report {path} must be a JSON object, got"
            f" {type(payload).__name__}"
        )
    return payload


def flatten_metrics(report: Dict, prefix: str = "") -> Dict[str, float]:
    """Flatten a nested report into ``section.metric -> numeric value``.

    Non-numeric leaves (workload descriptors, backend names) are skipped;
    bools are not numbers for this purpose.
    """
    flat: Dict[str, float] = {}
    for key, value in report.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{name}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = float(value)
    return flat


def _is_gated(metric: str) -> bool:
    """Throughput metrics (higher is better) participate in the gate."""
    return metric.endswith("_per_s")


def compare_reports(current: Dict, baseline: Dict,
                    threshold: float = DEFAULT_THRESHOLD) -> List[TrendRow]:
    """Per-metric delta table between two BENCH reports.

    ``threshold`` is the fractional throughput drop that fails the gate
    (0.30 means a metric below 70% of its baseline is a regression).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(
            f"threshold must be a fraction in (0, 1), got {threshold}"
        )
    flat_current = flatten_metrics(current)
    flat_baseline = flatten_metrics(baseline)
    rows: List[TrendRow] = []
    for metric in sorted(set(flat_current) | set(flat_baseline)):
        base = flat_baseline.get(metric)
        cur = flat_current.get(metric)
        if base is None:
            rows.append(TrendRow(metric, None, cur, None, "new"))
            continue
        if cur is None:
            rows.append(TrendRow(metric, base, None, None, "missing"))
            continue
        # Saturated-queue markers (p99 = inf) and other non-finite
        # leaves carry no meaningful delta; they ride as context rows.
        if base and math.isfinite(base) and math.isfinite(cur):
            delta = (cur - base) / base
        else:
            delta = None
        if not _is_gated(metric):
            rows.append(TrendRow(metric, base, cur, delta, "info"))
            continue
        if delta is not None and delta < -threshold:
            status = "regression"
        elif delta is not None and delta > threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(TrendRow(metric, base, cur, delta, status))
    return rows


def _fmt_value(value: Union[float, None]) -> str:
    if value is None:
        return "-"
    if not math.isfinite(value):
        return str(value)  # "inf": a saturated-queue marker, not a number
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_trend(rows: List[TrendRow], *, threshold: float,
                 title: str = "bench trend") -> str:
    """Aligned delta table; gated metrics first, context rows after."""
    ordered = sorted(rows, key=lambda r: (r.status == "info", r.metric))
    table_rows = []
    for row in ordered:
        delta = ("-" if row.delta_fraction is None
                 else f"{row.delta_fraction * 100:+.1f}%")
        table_rows.append([
            row.metric, _fmt_value(row.baseline), _fmt_value(row.current),
            delta, row.status,
        ])
    return render_table(
        ["metric", "baseline", "current", "delta", "status"],
        table_rows,
        title=f"{title} (gate: throughput -{threshold * 100:.0f}%)",
    )


def trend_gate(current: Dict, baseline: Dict,
               threshold: float = DEFAULT_THRESHOLD,
               ) -> Tuple[List[TrendRow], bool]:
    """Compare and decide: returns ``(rows, failed)``."""
    rows = compare_reports(current, baseline, threshold)
    return rows, any(row.failed for row in rows)
