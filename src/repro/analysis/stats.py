"""Summary statistics: means and 95% confidence intervals.

The paper repeats every experiment 20 times and reports averages with 95%
confidence intervals (Section 6.1); the benches do the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["Summary", "summarize", "relative_error"]


@dataclass(frozen=True)
class Summary:
    """Mean with a symmetric confidence half-width."""

    mean: float
    ci_halfwidth: float
    n: int
    std: float

    @property
    def low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def high(self) -> float:
        return self.mean + self.ci_halfwidth

    def __str__(self) -> str:
        return f"{self.mean:.4g} +/- {self.ci_halfwidth:.2g} (n={self.n})"


def summarize(values: Sequence[float], *, confidence: float = 0.95) -> Summary:
    """Student-t confidence interval around the sample mean."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(np.mean(data))
    if data.size == 1:
        return Summary(mean=mean, ci_halfwidth=0.0, n=1, std=0.0)
    std = float(np.std(data, ddof=1))
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, data.size - 1))
    halfwidth = t_value * std / math.sqrt(data.size)
    return Summary(mean=mean, ci_halfwidth=halfwidth, n=data.size, std=std)


def relative_error(model: float, measured: float) -> float:
    """|model - measured| / |measured| (model-validation metric)."""
    if measured == 0.0:
        return math.inf if model != 0.0 else 0.0
    return abs(model - measured) / abs(measured)
