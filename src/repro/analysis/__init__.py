"""Analysis helpers: the Fig. 2 distortion-distance regression, summary
statistics with confidence intervals, and table rendering for benches."""

from .regression import (
    ReferenceDistanceCurve,
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_recovery_fraction,
    measure_reference_distance_distortion,
)
from .history import (
    DEFAULT_HISTORY_DIR,
    current_git_sha,
    load_history,
    record_run,
    render_history,
)
from .stats import Summary, relative_error, summarize
from .tables import render_series, render_table
from .trend import (
    DEFAULT_THRESHOLD,
    TrendRow,
    compare_reports,
    flatten_metrics,
    load_report,
    render_trend,
    trend_gate,
)

__all__ = [
    "ReferenceDistanceCurve",
    "blank_frame_distortion",
    "fit_distortion_polynomial",
    "measure_recovery_fraction",
    "measure_reference_distance_distortion",
    "Summary",
    "relative_error",
    "summarize",
    "render_series",
    "render_table",
    "DEFAULT_THRESHOLD",
    "TrendRow",
    "compare_reports",
    "flatten_metrics",
    "load_report",
    "render_trend",
    "trend_gate",
    "DEFAULT_HISTORY_DIR",
    "current_git_sha",
    "load_history",
    "record_run",
    "render_history",
]
