"""Benchmark history: one JSON snapshot per git revision.

The trend gate (:mod:`repro.analysis.trend`) answers "did this run
regress against the committed baseline?"; this module keeps the longer
story.  ``repro bench trend`` appends each checked run into
``benchmarks/results/history/<git-sha>.json`` and ``repro bench
history`` renders the per-revision throughput table, so a slow drift
that never trips the 30% gate in any single step is still visible.

Snapshots are keyed by the short git SHA (``nogit`` outside a work
tree); re-running on the same revision overwrites its snapshot, keeping
one entry per revision rather than one per run.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from .tables import render_table
from .trend import flatten_metrics

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "current_git_sha",
    "load_history",
    "record_run",
    "render_history",
]

DEFAULT_HISTORY_DIR = "benchmarks/results/history"


def current_git_sha(cwd: Optional[Union[str, Path]] = None) -> str:
    """Short SHA of HEAD, or ``"nogit"`` when git is unavailable."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "nogit"
    if proc.returncode != 0:
        return "nogit"
    return proc.stdout.strip() or "nogit"


def record_run(report: Dict, history_dir: Union[str, Path], *,
               sha: Optional[str] = None,
               source: str = "") -> Path:
    """Snapshot a bench report's numeric metrics under its revision.

    Returns the snapshot path.  Idempotent per revision: a re-run on the
    same SHA replaces the previous snapshot.
    """
    history_dir = Path(history_dir)
    history_dir.mkdir(parents=True, exist_ok=True)
    sha = sha or current_git_sha()
    snapshot = {
        "sha": sha,
        "recorded_unix": time.time(),
        "source": source,
        "metrics": flatten_metrics(report),
    }
    path = history_dir / f"{sha}.json"
    tmp = path.with_name(f".tmp-{path.name}")
    tmp.write_text(json.dumps(snapshot, sort_keys=True, indent=2) + "\n")
    tmp.replace(path)
    return path


def load_history(history_dir: Union[str, Path]) -> List[Dict]:
    """All snapshots, oldest first (by recording time, then SHA)."""
    history_dir = Path(history_dir)
    if not history_dir.is_dir():
        return []
    snapshots: List[Dict] = []
    for path in sorted(history_dir.glob("*.json")):
        try:
            snapshot = json.loads(path.read_text())
        except (OSError, ValueError):
            continue  # a torn write is not worth failing the report over
        if isinstance(snapshot, dict) and "metrics" in snapshot:
            snapshots.append(snapshot)
    snapshots.sort(key=lambda s: (s.get("recorded_unix", 0.0),
                                  s.get("sha", "")))
    return snapshots


def render_history(snapshots: List[Dict], *,
                   metric_suffix: str = "_per_s",
                   title: str = "bench history") -> str:
    """Per-revision table of throughput metrics (``*_per_s`` by default).

    Columns are the union of matching metrics across snapshots; gaps
    (metrics added later) render as ``-``.
    """
    if not snapshots:
        return f"{title}: no snapshots recorded yet"
    metrics = sorted({
        name
        for snapshot in snapshots
        for name in snapshot.get("metrics", {})
        if name.endswith(metric_suffix)
    })
    rows = []
    for snapshot in snapshots:
        recorded = snapshot.get("recorded_unix")
        stamp = (time.strftime("%Y-%m-%d", time.gmtime(recorded))
                 if isinstance(recorded, (int, float)) else "-")
        row = [snapshot.get("sha", "?"), stamp]
        for name in metrics:
            value = snapshot.get("metrics", {}).get(name)
            row.append("-" if value is None else f"{value:.3g}")
        rows.append(row)
    short = [name.rsplit(".", 1)[-1] for name in metrics]
    if len(set(short)) != len(short):  # e.g. 3des.x_per_s vs x_per_s
        short = metrics
    return render_table(["sha", "date"] + short, rows, title=title)
