"""Project-specific static checks: ``repro lint``.

Generic linters cannot know this codebase's reproducibility contract,
so this module enforces the three rules that protect it:

- ``np.random.seed(...)`` is banned everywhere: global seeding makes a
  run's results depend on call order.  Use ``np.random.default_rng`` /
  ``SeedSequence`` plumbed through explicitly.
- Calls through the *module-level* ``random.*`` API are banned for the
  same reason (the hidden global Mersenne Twister); constructing a
  seeded ``random.Random(...)`` instance is fine.
- ``time.time()`` is banned inside the event kernel (``events.py``):
  simulated time must come from the kernel's clock, never the wall.
- per-packet Python ``for`` loops are banned inside the vectorized
  scheduler (``vector_flows.py``): its whole reason to exist is that
  per-flow state stays in arrays; looping over packets there silently
  reintroduces the coroutine kernel's costs.  Per-packet work belongs
  in ``flow_sampling.py``.
- per-policy Python ``for`` loops are banned inside the batched model
  solver (``vector_models.py``) for the same reason: candidate lanes
  stay on numpy's leading axis; looping over them reintroduces the
  scalar stack's per-policy cost.  Object assembly (policies in, lane
  results out) belongs in ``delay.py`` / ``advisor.py``.
- blocking calls (``socket.*``, ``time.sleep(...)``) are banned inside
  the asyncio cache/queue server (``server.py``): one stalled handler
  would freeze every connected worker's RPCs.  Connection I/O must go
  through asyncio streams; delays through the event loop.
- per-timestep/per-segment/per-packet Python ``for`` loops are banned
  inside the mobile vector path (``mobility/vector.py``): the arrival
  latch is one ``searchsorted`` and every parameter a fancy index, so
  any loop walking trace time there silently reintroduces the
  coroutine kernel's costs.  Per-packet/per-segment Python work
  belongs in ``mobility/sampling.py``.
- wall-clock and global-seed calls (``time.time()``,
  ``np.random.seed(...)``) are banned anywhere under ``mobility/``:
  traces are simulated time seeded through ``SeedSequence``; a wall
  clock or global seed would break the byte-identical warm-cache
  replay the mobility bench asserts.

A line may opt out with a trailing ``# lint: allow`` comment (used by
code that mentions the patterns in strings, e.g. this linter's tests).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

__all__ = ["LintError", "lint_file", "lint_paths", "DEFAULT_ROOTS"]

DEFAULT_ROOTS = ("src", "tests", "benchmarks")

ALLOW_MARKER = "# lint: allow"

# Files that legitimately contain the banned patterns as data.
_SELF_NAMES = {"lint.py", "lint_checks.py"}

_GLOBAL_NP_SEED = re.compile(r"np\.random\.seed\s*\(")
# module-level random.* calls; random.Random(...) instances are fine and
# np.random.* / rng.random(...) never match thanks to the lookbehind.
_GLOBAL_RANDOM = re.compile(r"(?<![\w.])random\.(?!Random\b)\w+")
_WALL_CLOCK = re.compile(r"time\.time\s*\(\s*\)")
# A ``for`` loop whose target or iterable is packet-named (packet,
# packets, pkt, pkts...) — the loop shape the vector module must never
# contain.
_PACKET_LOOP = re.compile(
    r"\bfor\b(?=[^#]*\bin\b)[^#]*(\bpacket\w*|\bpkts?\b)")
# A ``for`` loop whose target or iterable is policy/candidate/lane-named
# — the loop shape the batched model solver must never contain: lanes
# live on numpy's leading axis, and a Python loop over them silently
# reintroduces the scalar stack's per-policy cost.
_POLICY_LOOP = re.compile(
    r"\bfor\b(?=[^#]*\bin\b)[^#]*(\bpolic\w*|\bcandidate\w*|\blanes?\b)")
# Blocking primitives inside the asyncio server module: raw socket use
# or time.sleep() would stall the single event loop that serializes
# every client's RPCs.
_BLOCKING_NET = re.compile(
    r"(?<![\w.])socket\.\w+|(?<![\w.])time\.sleep\s*\(")
# A ``for`` loop whose target or iterable walks trace time — steps,
# timesteps, segments, waypoints, samples, or packets — the loop shapes
# the mobile vector path must never contain (flow-indexed assembly
# loops are fine; per-segment/per-packet work lives in sampling.py).
_TIMESTEP_LOOP = re.compile(
    r"\bfor\b(?=[^#]*\bin\b)[^#]*(\bpacket\w*|\bpkts?\b|\bsteps?\b"
    r"|\btimestep\w*|\bsegment\w*|\bsegs?\b|\bwaypoint\w*|\bsamples?\b)")
# Wall-clock or global-seed calls anywhere in the mobility layer: both
# would break deterministic trace replay.
_MOBILITY_CLOCK_SEED = re.compile(
    r"time\.time\s*\(\s*\)|np\.random\.seed\s*\(")


@dataclass(frozen=True)
class LintError:
    path: str
    line: int
    rule: str
    message: str
    source: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _strip_comment(line: str) -> str:
    """Best-effort removal of a trailing ``#`` comment (string-safe
    enough for these patterns, which never span strings with '#')."""
    in_string: Optional[str] = None
    for position, char in enumerate(line):
        if in_string:
            if char == in_string and line[position - 1] != "\\":
                in_string = None
        elif char in ("'", '"'):
            in_string = char
        elif char == "#":
            return line[:position]
    return line


def lint_file(path: Path) -> List[LintError]:
    """All rule violations in one Python file."""
    errors: List[LintError] = []
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [LintError(str(path), 0, "unreadable", str(exc), "")]
    is_events = path.name == "events.py"
    is_vector = path.name == "vector_flows.py"
    is_models = path.name == "vector_models.py"
    is_server = path.name == "server.py"
    in_mobility = "mobility" in path.parts
    is_mobile_vector = in_mobility and path.name == "vector.py"
    for number, raw in enumerate(text.splitlines(), start=1):
        if ALLOW_MARKER in raw:
            continue
        line = _strip_comment(raw)
        if _GLOBAL_NP_SEED.search(line):
            errors.append(LintError(
                str(path), number, "global-np-seed",
                "np.random.seed() seeds the global state; pass a"
                " default_rng/SeedSequence instead", raw.strip()))
        match = _GLOBAL_RANDOM.search(line)
        if match:
            errors.append(LintError(
                str(path), number, "global-random",
                f"module-level {match.group(0)}() uses the hidden global"
                " RNG; construct a seeded random.Random instead",
                raw.strip()))
        if is_events and _WALL_CLOCK.search(line):
            errors.append(LintError(
                str(path), number, "wall-clock-in-kernel",
                "time.time() in the event kernel: simulated time must"
                " come from the kernel clock", raw.strip()))
        if is_vector and _PACKET_LOOP.search(line):
            errors.append(LintError(
                str(path), number, "packet-loop-in-vector",
                "per-packet Python loop in the vectorized scheduler:"
                " keep per-flow state in arrays (per-packet work lives"
                " in flow_sampling.py)", raw.strip()))
        if is_models and _POLICY_LOOP.search(line):
            errors.append(LintError(
                str(path), number, "policy-loop-in-vector-models",
                "per-policy Python loop in the batched model solver:"
                " keep policy lanes on numpy's leading axis (object"
                " assembly belongs in delay.py/advisor.py)", raw.strip()))
        if is_server and _BLOCKING_NET.search(line):
            errors.append(LintError(
                str(path), number, "blocking-call-in-server",
                "blocking socket/sleep call in the asyncio server: use"
                " asyncio streams and loop-scheduled delays so one"
                " handler cannot stall every client", raw.strip()))
        if is_mobile_vector and _TIMESTEP_LOOP.search(line):
            errors.append(LintError(
                str(path), number, "timestep-loop-in-mobility-vector",
                "per-timestep/per-segment Python loop in the mobile"
                " vector path: latch segments with searchsorted and"
                " gather parameters with fancy indexing (per-packet/"
                "per-segment work lives in mobility/sampling.py)",
                raw.strip()))
        if in_mobility and _MOBILITY_CLOCK_SEED.search(line):
            errors.append(LintError(
                str(path), number, "wall-clock-in-mobility",
                "time.time()/np.random.seed() in the mobility layer:"
                " traces run on simulated time and SeedSequence streams,"
                " or warm-cache replay stops being byte-identical",
                raw.strip()))
    return errors


def _python_files(roots: Sequence[Path]) -> Iterable[Path]:
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            yield root
            continue
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))


def lint_paths(roots: Sequence = DEFAULT_ROOTS, *,
               base: Optional[Path] = None) -> List[LintError]:
    """Lint every ``.py`` under the given roots (relative to ``base``)."""
    base = Path(base) if base is not None else Path.cwd()
    resolved = [base / root for root in roots]
    errors: List[LintError] = []
    for path in _python_files(resolved):
        if path.name in _SELF_NAMES:
            continue
        errors.extend(lint_file(path))
    return errors
