"""Output-Feedback (OFB) mode on top of any block cipher.

Section 5 of the paper: "it uses the GPAC API to encrypt the segment
according to the encryption algorithm (AES128, AES256, 3DES) using the
Output Feedback Mode (OFB).  The OFB encryption mode is applied to each
segment separately, and therefore a possible error at the receiver does
not propagate to the following segments during the decryption process."

OFB turns a block cipher into a synchronous stream cipher: the keystream
is ``O_1 = E_K(IV), O_i = E_K(O_{i-1})`` and the ciphertext is the plain
XOR of the keystream, so ciphertext length equals plaintext length (no
padding — important because RTP payloads are odd-sized) and encryption
and decryption are the same operation.
"""

from __future__ import annotations

import hashlib
from typing import Protocol

__all__ = ["BlockCipher", "OFBMode", "derive_iv"]


class BlockCipher(Protocol):
    """Structural interface shared by :class:`~repro.crypto.aes.AES`,
    :class:`~repro.crypto.des.DES` and :class:`~repro.crypto.des.TripleDES`."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...


def derive_iv(session_salt: bytes, segment_index: int, block_size: int) -> bytes:
    """Deterministically derive a per-segment IV.

    The paper encrypts each video segment independently under OFB.  Reusing
    an IV under OFB leaks the XOR of plaintexts, so each segment must get a
    distinct IV; deriving it from the (shared) session salt and the segment
    sequence number means the receiver can regenerate it without extra
    header bytes.
    """
    digest = hashlib.sha256(
        session_salt + segment_index.to_bytes(8, "big")
    ).digest()
    return digest[:block_size]


class OFBMode:
    """Stateless OFB encryptor/decryptor over a block cipher instance."""

    def __init__(self, cipher: BlockCipher) -> None:
        self._cipher = cipher
        self._block_size = cipher.block_size

    @property
    def block_size(self) -> int:
        return self._block_size

    def keystream(self, iv: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes from ``iv``."""
        if len(iv) != self._block_size:
            raise ValueError(
                f"IV must be {self._block_size} bytes, got {len(iv)}"
            )
        stream = bytearray()
        feedback = iv
        while len(stream) < length:
            feedback = self._cipher.encrypt_block(feedback)
            stream.extend(feedback)
        return bytes(stream[:length])

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        """Encrypt (or, identically, decrypt) ``plaintext`` under ``iv``."""
        stream = self.keystream(iv, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    # OFB is an involution given the same IV.
    decrypt = encrypt
