"""Output-Feedback (OFB) mode on top of any block cipher.

Section 5 of the paper: "it uses the GPAC API to encrypt the segment
according to the encryption algorithm (AES128, AES256, 3DES) using the
Output Feedback Mode (OFB).  The OFB encryption mode is applied to each
segment separately, and therefore a possible error at the receiver does
not propagate to the following segments during the decryption process."

OFB turns a block cipher into a synchronous stream cipher: the keystream
is ``O_1 = E_K(IV), O_i = E_K(O_{i-1})`` and the ciphertext is the plain
XOR of the keystream, so ciphertext length equals plaintext length (no
padding — important because RTP payloads are odd-sized) and encryption
and decryption are the same operation.

Two performance tiers coexist here:

- the scalar path XORs via ``int.from_bytes`` (stdlib-only, so receiver
  paths without numpy still avoid per-byte Python work), upgraded to a
  ``np.frombuffer`` vectorized XOR when numpy is importable;
- :meth:`OFBMode.keystream_batch` / :meth:`OFBMode.encrypt_segments`
  advance many per-segment keystream chains in lockstep, so a cipher
  exposing ``encrypt_blocks`` (:class:`repro.crypto.vector.VectorAES`,
  :class:`repro.crypto.vector_des.VectorTripleDES`)
  encrypts one *batch* of blocks per call instead of one block.  A chain
  is inherently sequential (each output block feeds the next), but the
  paper encrypts every segment under its own IV, so real payloads are
  many independent chains — exactly the shape numpy vectorizes.
"""

from __future__ import annotations

import hashlib
from typing import List, Protocol, Sequence

try:  # numpy accelerates XOR and enables the batched keystream path.
    import numpy as _np
except ImportError:  # pragma: no cover - the image always has numpy
    _np = None

__all__ = ["BlockCipher", "OFBMode", "derive_iv"]

# derive_iv truncates a SHA-256 digest, so block sizes beyond the digest
# length cannot be served.
_MAX_IV_BYTES = hashlib.sha256().digest_size


class BlockCipher(Protocol):
    """Structural interface shared by :class:`~repro.crypto.aes.AES`,
    :class:`~repro.crypto.des.DES` and :class:`~repro.crypto.des.TripleDES`.

    Ciphers may additionally expose ``encrypt_blocks(np.ndarray) ->
    np.ndarray`` over an ``(n, block_size)`` uint8 array (see
    :class:`repro.crypto.vector.VectorAES` and
    :class:`repro.crypto.vector_des.VectorTripleDES`); :class:`OFBMode`
    detects it and batches keystream generation across segments.
    """

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...


def _xor_bytes_stdlib(data: bytes, keystream: bytes) -> bytes:
    """Stdlib-only XOR: one big-int XOR instead of a per-byte Python loop."""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
    ).to_bytes(len(data), "big")


def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
    """XOR two equal-length byte strings, vectorized when numpy is present."""
    if _np is not None:
        return (
            _np.frombuffer(data, dtype=_np.uint8)
            ^ _np.frombuffer(keystream, dtype=_np.uint8)
        ).tobytes()
    return _xor_bytes_stdlib(data, keystream)


def derive_iv(session_salt: bytes, segment_index: int, block_size: int) -> bytes:
    """Deterministically derive a per-segment IV.

    The paper encrypts each video segment independently under OFB.  Reusing
    an IV under OFB leaks the XOR of plaintexts, so each segment must get a
    distinct IV; deriving it from the (shared) session salt and the segment
    sequence number means the receiver can regenerate it without extra
    header bytes.
    """
    if segment_index < 0:
        raise ValueError(
            f"segment index must be non-negative, got {segment_index}"
        )
    if not 1 <= block_size <= _MAX_IV_BYTES:
        raise ValueError(
            f"block size must be in [1, {_MAX_IV_BYTES}], got {block_size}"
        )
    digest = hashlib.sha256(
        session_salt + segment_index.to_bytes(8, "big")
    ).digest()
    return digest[:block_size]


class OFBMode:
    """Stateless OFB encryptor/decryptor over a block cipher instance."""

    def __init__(self, cipher: BlockCipher) -> None:
        self._cipher = cipher
        self._block_size = cipher.block_size

    @property
    def block_size(self) -> int:
        return self._block_size

    def _check_iv(self, iv: bytes) -> None:
        if len(iv) != self._block_size:
            raise ValueError(
                f"IV must be {self._block_size} bytes, got {len(iv)}"
            )

    def keystream(self, iv: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes from ``iv``."""
        self._check_iv(iv)
        if length < 0:
            raise ValueError(f"keystream length must be non-negative, got {length}")
        stream = bytearray()
        feedback = iv
        while len(stream) < length:
            feedback = self._cipher.encrypt_block(feedback)
            stream.extend(feedback)
        return bytes(stream[:length])

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        """Encrypt (or, identically, decrypt) ``plaintext`` under ``iv``."""
        stream = self.keystream(iv, len(plaintext))
        return _xor_bytes(plaintext, stream)

    # OFB is an involution given the same IV.
    decrypt = encrypt

    # -- batched (multi-segment) path ---------------------------------------

    def keystream_batch(self, ivs: Sequence[bytes],
                        lengths: Sequence[int]) -> List[bytes]:
        """Keystreams for many independent segments, advanced in lockstep.

        Chain ``i`` produces ``lengths[i]`` bytes from ``ivs[i]``.  With a
        vectorized cipher every lockstep iteration encrypts the feedback
        blocks of *all* still-active chains in a single ``encrypt_blocks``
        call; otherwise this degrades gracefully to the scalar path.  The
        output is byte-identical to ``[keystream(iv, n) for iv, n in ...]``
        either way.
        """
        if len(ivs) != len(lengths):
            raise ValueError(
                f"got {len(ivs)} IVs for {len(lengths)} lengths"
            )
        for iv in ivs:
            self._check_iv(iv)
        for length in lengths:
            if length < 0:
                raise ValueError(
                    f"keystream length must be non-negative, got {length}"
                )
        if not ivs:
            return []
        encrypt_blocks = getattr(self._cipher, "encrypt_blocks", None)
        if _np is None or encrypt_blocks is None:
            return [self.keystream(iv, length)
                    for iv, length in zip(ivs, lengths)]

        bs = self._block_size
        n_chains = len(ivs)
        n_blocks = _np.array([-(-length // bs) for length in lengths])
        max_blocks = int(n_blocks.max())
        if max_blocks == 0:
            # Every requested length is zero; skip the array path instead
            # of allocating a degenerate (n, 0, bs) buffer.
            return [b""] * n_chains
        # Duplicate IVs are fine here: each chain row advances
        # independently, so equal IVs simply produce equal streams (the
        # *security* obligation to keep IVs unique lives in derive_iv).
        feedback = (
            _np.frombuffer(b"".join(ivs), dtype=_np.uint8)
            .reshape(n_chains, bs)
            .copy()
        )
        out = _np.zeros((n_chains, max_blocks, bs), dtype=_np.uint8)
        for step in range(max_blocks):
            active = _np.nonzero(n_blocks > step)[0]
            encrypted = _np.asarray(encrypt_blocks(feedback[active]))
            if encrypted.shape != (len(active), bs):
                raise ValueError(
                    f"{type(self._cipher).__name__}.encrypt_blocks returned"
                    f" shape {encrypted.shape}, expected"
                    f" {(len(active), bs)}"
                )
            feedback[active] = encrypted
            out[active, step] = encrypted
        return [
            out[i].reshape(-1)[: lengths[i]].tobytes()
            for i in range(n_chains)
        ]

    def encrypt_segments(self, ivs: Sequence[bytes],
                         payloads: Sequence[bytes]) -> List[bytes]:
        """Encrypt (or decrypt) many segments, each under its own IV."""
        lengths = [len(payload) for payload in payloads]
        streams = self.keystream_batch(ivs, lengths)
        return [_xor_bytes(payload, stream)
                for payload, stream in zip(payloads, streams)]

    decrypt_segments = encrypt_segments
