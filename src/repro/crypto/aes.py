"""From-scratch AES (FIPS-197) block cipher.

The paper's Android app encrypts selected RTP payloads with AES-128 or
AES-256 in OFB mode (Section 5).  This module implements the raw block
cipher for all three standard key sizes.  The S-box is *derived* (GF(2^8)
inverse followed by the FIPS-197 affine map) rather than transcribed, and
the implementation is validated against the FIPS-197 appendix vectors in
the test suite.

The implementation is deliberately a plain, readable byte-oriented one: the
reproduction uses it both for actual payload protection in the examples and
as the ground truth that :mod:`repro.crypto.timing` micro-benchmarks to
build per-device encryption-time models.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16

_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Carry-less multiplication in GF(2^8) with the AES reduction."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> Tuple[bytes, bytes]:
    """Construct the AES S-box and its inverse from first principles.

    Each byte is mapped to its multiplicative inverse in GF(2^8) (0 maps to
    0) and then through the FIPS-197 affine transformation
    ``b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i`` with
    ``c = 0x63``.
    """
    # Build inverses via exhaustive search; 256^2 work once at import time.
    inverse = [0] * 256
    for a in range(1, 256):
        if inverse[a]:
            continue
        for b in range(1, 256):
            if _gf_mul(a, b) == 1:
                inverse[a] = b
                inverse[b] = a
                break

    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for value in range(256):
        b = inverse[value]
        transformed = 0
        for bit in range(8):
            parity = (
                (b >> bit)
                ^ (b >> ((bit + 4) % 8))
                ^ (b >> ((bit + 5) % 8))
                ^ (b >> ((bit + 6) % 8))
                ^ (b >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= parity << bit
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants: rcon[i] = x^(i-1) in GF(2^8).
_RCON = [0] * 15
_RCON[1] = 1
for _i in range(2, 15):
    _RCON[_i] = _xtime(_RCON[_i - 1])


class AES:
    """AES block cipher with a 128-, 192- or 256-bit key.

    Parameters
    ----------
    key:
        16, 24 or 32 raw key bytes.

    The public surface is :meth:`encrypt_block` / :meth:`decrypt_block` on
    exactly 16 bytes; use :class:`repro.crypto.ofb.OFBMode` for streams.
    """

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) not in _ROUNDS_BY_KEY_LEN:
            raise ValueError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self.key_size = len(key)
        self.rounds = _ROUNDS_BY_KEY_LEN[len(key)]
        self._round_keys = self._expand_key(key)

    # -- key schedule ------------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS-197 key expansion into (rounds + 1) 16-byte round keys."""
        nk = len(key) // 4
        total_words = 4 * (self.rounds + 1)
        words: List[List[int]] = [
            list(key[4 * i : 4 * i + 4]) for i in range(nk)
        ]
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(self.rounds + 1):
            rk: List[int] = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # -- round primitives (state is a flat 16-byte column-major list) -------

    @staticmethod
    def _add_round_key(state: List[int], rk: Sequence[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # state[col * 4 + row]; row r rotates left by r.
        for row in range(1, 4):
            rotated = [state[((col + row) % 4) * 4 + row] for col in range(4)]
            for col in range(4):
                state[col * 4 + row] = rotated[col]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for row in range(1, 4):
            rotated = [state[((col - row) % 4) * 4 + row] for col in range(4)]
            for col in range(4):
                state[col * 4 + row] = rotated[col]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
            state[4 * col + 1] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
            state[4 * col + 2] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
            state[4 * col + 3] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = (
                _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11)
                ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
            )
            state[4 * col + 1] = (
                _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14)
                ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
            )
            state[4 * col + 2] = (
                _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9)
                ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
            )
            state[4 * col + 3] = (
                _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13)
                ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
            )

    # -- public block operations --------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"AES block must be {BLOCK_SIZE} bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"AES block must be {BLOCK_SIZE} bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    @property
    def block_size(self) -> int:
        return BLOCK_SIZE
