"""Symmetric ciphers (AES, DES/3DES), OFB mode, and encryption-cost models.

This subpackage is the reproduction's stand-in for the GPAC crypto API the
paper's Android app used (Section 5): AES-128/256 and 3DES in OFB mode
applied per video segment, plus the micro-benchmark machinery that turns
cipher throughput into the per-packet encryption-time distributions the
analytical model consumes.
"""

from .aes import AES
from .des import DES, TripleDES
from .ofb import OFBMode, derive_iv
from .timing import (
    CIPHERS,
    CipherCost,
    make_cipher,
    make_fast_cipher,
    measure_cipher_cost,
    reference_cipher_cost,
)
from .vector import (
    VectorAES,
    VectorDES,
    VectorTripleDES,
    has_vector_support,
    make_vector_cipher,
)

__all__ = [
    "AES",
    "DES",
    "TripleDES",
    "OFBMode",
    "derive_iv",
    "CIPHERS",
    "CipherCost",
    "make_cipher",
    "make_fast_cipher",
    "measure_cipher_cost",
    "reference_cipher_cost",
    "VectorAES",
    "VectorDES",
    "VectorTripleDES",
    "has_vector_support",
    "make_vector_cipher",
]
