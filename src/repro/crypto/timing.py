"""Encryption-cost models: from cipher micro-benchmarks to per-packet time.

The analytical framework (Section 4.2.2) consumes the *distribution* of the
per-packet encryption time ``T_e``: a mean and a small Gaussian jitter for
MTU-sized I-frame packets and for small P-frame packets (paper eq. 15).
The Android app obtained those numbers by timing an initial set of packets
on the phone (Section 6.1).  We obtain them the same way: time the real
from-scratch ciphers on this host, then rescale by a device speed factor
from :mod:`repro.testbed.devices` to stand in for each phone's CPU.

The cost of a symmetric cipher is affine in the payload size —
``t(n) = setup + per_byte * n`` — and that affine model is what the rest
of the system consumes, so full-video simulations never have to push
megabytes through a pure-Python cipher.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .aes import AES
from .des import TripleDES
from .ofb import OFBMode, derive_iv

__all__ = [
    "CIPHERS",
    "CipherCost",
    "make_cipher",
    "make_fast_cipher",
    "measure_cipher_cost",
    "reference_cipher_cost",
]

# name -> (key size in bytes, factory)
CIPHERS: Dict[str, Tuple[int, Callable[[bytes], object]]] = {
    "AES128": (16, AES),
    "AES256": (32, AES),
    "3DES": (24, TripleDES),
}


def make_cipher(algorithm: str, key: bytes):
    """Instantiate the *scalar* block cipher by its paper name.

    This is the modelled device's cipher: :func:`measure_cipher_cost`
    times it to stand in for the phone's per-packet encryption cost
    ``T_e`` (paper eq. 15), so it must stay the byte-oriented reference
    implementation.  Simulator bulk paths that only need the ciphertext
    bytes — not the phone's timing — should use :func:`make_fast_cipher`.
    """
    try:
        key_size, factory = CIPHERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown cipher {algorithm!r}; expected one of {sorted(CIPHERS)}"
        ) from None
    if len(key) != key_size:
        raise ValueError(
            f"{algorithm} needs a {key_size}-byte key, got {len(key)}"
        )
    return factory(key)


def make_fast_cipher(algorithm: str, key: bytes):
    """Fastest available cipher for ``algorithm``: vectorized when one
    exists (every paper algorithm has one), scalar otherwise.

    Byte-identical output to :func:`make_cipher` — only the wall-clock
    cost differs — so bulk encryption paths (the OFB segment batcher,
    eavesdropper payload generation, benches) can call this without
    affecting the modelled ``T_e``.
    """
    from .vector import make_vector_cipher

    key_size, _ = CIPHERS.get(algorithm, (None, None))
    if key_size is not None and len(key) != key_size:
        raise ValueError(
            f"{algorithm} needs a {key_size}-byte key, got {len(key)}"
        )
    vector = make_vector_cipher(algorithm, key)
    if vector is not None:
        return vector
    return make_cipher(algorithm, key)


@dataclass(frozen=True)
class CipherCost:
    """Affine per-packet encryption-time model ``t(n) = setup_s + per_byte_s * n``.

    ``jitter_fraction`` is the relative standard deviation observed around
    the affine fit; the service-time model turns it into the Gaussian
    variation term of paper eq. (15).
    """

    algorithm: str
    setup_s: float
    per_byte_s: float
    jitter_fraction: float = 0.05

    def time_for(self, payload_bytes: int) -> float:
        """Expected seconds to encrypt a payload of ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        if payload_bytes == 0:
            return 0.0
        return self.setup_s + self.per_byte_s * payload_bytes

    def sigma_for(self, payload_bytes: int) -> float:
        """Std-dev of the encryption time for a payload of that size."""
        return self.jitter_fraction * self.time_for(payload_bytes)

    def scaled(self, speed_factor: float) -> "CipherCost":
        """Return the cost model on a CPU ``speed_factor``x faster than this one."""
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        return CipherCost(
            algorithm=self.algorithm,
            setup_s=self.setup_s / speed_factor,
            per_byte_s=self.per_byte_s / speed_factor,
            jitter_fraction=self.jitter_fraction,
        )


def measure_cipher_cost(
    algorithm: str,
    *,
    sizes: Tuple[int, ...] = (64, 512, 1460),
    repeats: int = 3,
) -> CipherCost:
    """Micro-benchmark a cipher on this host and fit the affine cost model.

    This is the reproduction's analogue of the paper's calibration phase
    where "the sequence of times that are necessary for the encryption of
    an initial set of packets ... are used to estimate the mean and
    variance of the encryption time" (Section 6.1).
    """
    key_size, _ = CIPHERS[algorithm]
    cipher = make_cipher(algorithm, bytes(range(key_size)))
    mode = OFBMode(cipher)
    salt = b"calibration-salt"

    xs = []
    ys = []
    for size in sizes:
        payload = bytes(i & 0xFF for i in range(size))
        best = float("inf")
        for attempt in range(repeats):
            iv = derive_iv(salt, attempt, mode.block_size)
            start = time.perf_counter()
            mode.encrypt(iv, payload)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        xs.append(float(size))
        ys.append(best)

    # Least-squares affine fit without pulling in numpy for two parameters.
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    cov_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    per_byte = cov_xy / var_x if var_x else 0.0
    setup = max(mean_y - per_byte * mean_x, 0.0)
    per_byte = max(per_byte, 1e-12)
    return CipherCost(algorithm=algorithm, setup_s=setup, per_byte_s=per_byte)


# Reference per-byte costs, in seconds, for a nominal 1 GHz mobile core.
# These are the documented defaults used when the caller does not want to
# run a live micro-benchmark (deterministic tests, model-only studies).
# The *ratios* are what matter for reproducing the paper's shape: 3DES is
# roughly 4-5x the per-byte cost of AES, and AES256 is ~1.4x AES128
# (14 rounds vs 10).
_REFERENCE_COSTS = {
    "AES128": CipherCost("AES128", setup_s=4.0e-6, per_byte_s=1.8e-8),
    "AES256": CipherCost("AES256", setup_s=5.0e-6, per_byte_s=2.5e-8),
    "3DES": CipherCost("3DES", setup_s=6.0e-6, per_byte_s=9.0e-8),
}


def reference_cipher_cost(algorithm: str, speed_factor: float = 1.0) -> CipherCost:
    """Deterministic cipher cost for a device ``speed_factor``x a 1 GHz core."""
    try:
        base = _REFERENCE_COSTS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown cipher {algorithm!r}; expected one of {sorted(_REFERENCE_COSTS)}"
        ) from None
    return base.scaled(speed_factor)
