"""Bit-parallel DES / Triple-DES: many blocks per call on packed numpy lanes.

:class:`~repro.crypto.des.DES` pays Python-level list work for every bit
of every round, which made 3DES — the paper's most expensive cipher
(Table 1) and therefore the one its "encrypt-everything" policies stress
hardest in Figs. 7-13 — the last cipher still running orders of magnitude
slower than the hardware allows.  This module is the classic software-DES
formulation lifted onto numpy lanes: the two 32-bit Feistel halves of
``n`` blocks are held as ``(n,)`` ``uint64`` arrays (DES bit 1 at bit 31),
so one round is a handful of whole-batch shift/mask/XOR ops plus eight
64-entry table gathers:

- the E expansion never materializes: each S-box input chunk is six
  consecutive bits of the circularly extended right half, extracted with
  one shift+mask from a 34-bit wrap-padded value;
- the round-key XOR collapses to eight 6-bit constants XORed into the
  chunk indices (XOR commutes with bit extraction);
- each S-box is a 64-entry ``uint64`` table with the P permutation
  pre-applied (the classic SP-table trick), so the Feistel function is
  the XOR of eight gathers.

IP and FP run once per batch via ``np.unpackbits`` fancy-index gathers.
Triple-DES chains three 16-round networks *without* leaving the packed
representation: FP is the inverse of IP, so the FP/IP pairs between the
EDE stages cancel and only the half-swap between stages remains.

Correctness is anchored to the scalar implementation: subkeys come from
the same FIPS 46-3 key schedule (the scalar cipher computes them), and
the test suite asserts bit-exact agreement with the SP 800-17 /
NBS-validation known-answer vectors and with the scalar ciphers on
hypothesis-generated batches.  The scalar :class:`~repro.crypto.des.DES`
remains the differential-test oracle and the model's notion of what the
*phone* pays (``CipherCost``); this module only accelerates the
simulator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .des import BLOCK_SIZE, DES, TripleDES, _FP, _IP, _P, _SBOXES

__all__ = ["VectorDES", "VectorTripleDES"]

# Permutation tables as 0-based gather indices over (n, 64) bit planes.
_IP_IDX = np.array(_IP, dtype=np.intp) - 1
_FP_IDX = np.array(_FP, dtype=np.intp) - 1


def _build_sp_tables() -> np.ndarray:
    """S-boxes pre-composed with P as packed words: ``(8, 64)`` uint64.

    Entry ``[box, v]`` is the 32-bit Feistel-function contribution
    (already P-permuted, f bit 1 at bit 31) of feeding 6-bit value ``v``
    into S-box ``box``; the boxes write disjoint bits, so the full
    f-function is the XOR of eight lookups.
    """
    p_idx = [p - 1 for p in _P]
    tables = np.zeros((8, 64), dtype=np.uint64)
    for box in range(8):
        for value in range(64):
            row = (((value >> 5) & 1) << 1) | (value & 1)
            col = (value >> 1) & 0xF
            s_out = _SBOXES[box][row][col]
            pre_p = [0] * 32
            for bit in range(4):
                pre_p[4 * box + bit] = (s_out >> (3 - bit)) & 1
            word = 0
            for position, bit in enumerate(pre_p[i] for i in p_idx):
                word |= bit << (31 - position)
            tables[box, value] = word
    return tables


_SP_TABLES = _build_sp_tables()

# Right shift extracting S-box k's 6-bit chunk from the 34-bit extended
# right half (bit 32 replicated above bit 1, bit 1 replicated below
# bit 32 — the E expansion's circular structure).
_CHUNK_SHIFTS = tuple(np.uint64(28 - 4 * k) for k in range(8))

_ONE = np.uint64(1)
_SHIFT31 = np.uint64(31)
_SHIFT33 = np.uint64(33)
_MASK6 = np.uint64(0x3F)


def _key_chunks(subkeys) -> np.ndarray:
    """Scalar-schedule subkeys as ``(rounds, 8)`` 6-bit chunk constants."""
    return np.array(
        [[sum(subkey[6 * k + j] << (5 - j) for j in range(6))
          for k in range(8)]
         for subkey in subkeys],
        dtype=np.uint64,
    )


def _check_blocks(blocks: np.ndarray) -> np.ndarray:
    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2 or blocks.shape[1] != BLOCK_SIZE:
        raise ValueError(
            f"blocks must have shape (n, {BLOCK_SIZE}), got {blocks.shape}"
        )
    return blocks


def _to_halves(blocks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """IP, then split into packed (L, R) uint64 lanes (DES bit 1 at 31)."""
    bits = np.unpackbits(blocks, axis=1)[:, _IP_IDX]
    packed = np.ascontiguousarray(np.packbits(bits, axis=1))
    words = packed.view(">u4").astype(np.uint64)
    return np.ascontiguousarray(words[:, 0]), np.ascontiguousarray(words[:, 1])


def _from_halves(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Final swap (R16, L16), then FP, back to ``(n, 8)`` uint8 blocks."""
    n = left.shape[0]
    words = np.empty((n, 2), dtype=">u4")
    words[:, 0] = right
    words[:, 1] = left
    bits = np.unpackbits(words.view(np.uint8).reshape(n, 8), axis=1)
    return np.packbits(bits[:, _FP_IDX], axis=1)


def _feistel16(left: np.ndarray, right: np.ndarray,
               key_chunks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Run one 16-round Feistel network over packed uint64 lanes."""
    for chunks in key_chunks:
        extended = ((right & _ONE) << _SHIFT33) | (right << _ONE) \
            | (right >> _SHIFT31)
        f_out = _SP_TABLES[0][((extended >> _CHUNK_SHIFTS[0]) & _MASK6)
                              ^ chunks[0]]
        for box in range(1, 8):
            f_out = f_out ^ _SP_TABLES[box][
                ((extended >> _CHUNK_SHIFTS[box]) & _MASK6) ^ chunks[box]]
        left, right = right, left ^ f_out
    return left, right


class VectorDES:
    """DES over batches of blocks, bit-exact with :class:`~repro.crypto.des.DES`.

    Satisfies the :class:`repro.crypto.ofb.BlockCipher` protocol (single
    blocks go through a batch of one) and additionally exposes
    :meth:`encrypt_blocks` for the vectorized OFB keystream path.
    """

    def __init__(self, key: bytes) -> None:
        # The scalar cipher owns key validation and the key schedule.
        self._scalar = DES(key)
        self._chunks = _key_chunks(self._scalar._subkeys)

    @property
    def block_size(self) -> int:
        return BLOCK_SIZE

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an ``(n, 8)`` uint8 array of blocks in one call."""
        left, right = _to_halves(_check_blocks(blocks))
        return _from_halves(*_feistel16(left, right, self._chunks))

    def decrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Decrypt an ``(n, 8)`` uint8 array of blocks in one call."""
        left, right = _to_halves(_check_blocks(blocks))
        return _from_halves(*_feistel16(left, right, self._chunks[::-1]))

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 8-byte block (batch of one)."""
        return self._one_block(block, self.encrypt_blocks)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 8-byte block (batch of one)."""
        return self._one_block(block, self.decrypt_blocks)

    @staticmethod
    def _one_block(block: bytes, crypt) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"DES block must be {BLOCK_SIZE} bytes")
        batch = np.frombuffer(block, dtype=np.uint8).reshape(1, BLOCK_SIZE)
        return crypt(batch).tobytes()


class VectorTripleDES:
    """EDE Triple-DES over batches, bit-exact with
    :class:`~repro.crypto.des.TripleDES` (16- or 24-byte keys).

    The three 16-round stages run back-to-back in the packed
    representation: FP is the inverse of IP, so the inter-stage FP/IP
    pairs cancel and only the half-swap between stages remains.
    """

    def __init__(self, key: bytes) -> None:
        # The scalar cipher owns key validation (16/24 bytes, 2-key
        # expansion) and the key schedule.
        self._scalar = TripleDES(key)
        self._k1 = _key_chunks(self._scalar._des1._subkeys)
        self._k2 = _key_chunks(self._scalar._des2._subkeys)
        self._k3 = _key_chunks(self._scalar._des3._subkeys)

    @property
    def block_size(self) -> int:
        return BLOCK_SIZE

    def _crypt_blocks(self, blocks: np.ndarray, stage_keys) -> np.ndarray:
        left, right = _to_halves(_check_blocks(blocks))
        left, right = _feistel16(left, right, stage_keys[0])
        # Each scalar stage ends with a half-swap before FP; FP and the
        # next stage's IP cancel, leaving just the swap between stages.
        left, right = _feistel16(right, left, stage_keys[1])
        left, right = _feistel16(right, left, stage_keys[2])
        return _from_halves(left, right)

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """EDE-encrypt an ``(n, 8)`` uint8 array of blocks in one call."""
        return self._crypt_blocks(
            blocks, (self._k1, self._k2[::-1], self._k3))

    def decrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """EDE-decrypt an ``(n, 8)`` uint8 array of blocks in one call."""
        return self._crypt_blocks(
            blocks, (self._k3[::-1], self._k2, self._k1[::-1]))

    def encrypt_block(self, block: bytes) -> bytes:
        """EDE encryption of one 8-byte block (batch of one)."""
        return self._one_block(block, self.encrypt_blocks)

    def decrypt_block(self, block: bytes) -> bytes:
        """EDE decryption of one 8-byte block (batch of one)."""
        return self._one_block(block, self.decrypt_blocks)

    @staticmethod
    def _one_block(block: bytes, crypt) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"3DES block must be {BLOCK_SIZE} bytes")
        batch = np.frombuffer(block, dtype=np.uint8).reshape(1, BLOCK_SIZE)
        return crypt(batch).tobytes()
