"""From-scratch DES and Triple-DES (FIPS 46-3) block ciphers.

3DES is the third cipher the paper evaluates (Table 1).  Its per-byte cost
is several times that of AES, which is exactly why the paper's delay and
power figures (Figs. 7-13) show the "all"/"P" policies being so much more
expensive under 3DES.  This implementation is a direct transcription of
the FIPS 46-3 permutation tables and S-boxes, validated against the
classic "DES illustrated" vector plus the SP 800-17 variable-plaintext /
variable-key and NBS-validation known-answer vectors in the test suite
(:mod:`repro.crypto.vector_des` holds the batched implementation that
must match it bit-for-bit).
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["DES", "TripleDES", "BLOCK_SIZE"]

BLOCK_SIZE = 8

_IP = (
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
)

_FP = (
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
)

_E = (
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
)

_P = (
    16, 7, 20, 21, 29, 12, 28, 17,
    1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9,
    19, 13, 30, 6, 22, 11, 4, 25,
)

_PC1 = (
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
)

_PC2 = (
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
)

_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)

_SBOXES = (
    (
        (14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7),
        (0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8),
        (4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0),
        (15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13),
    ),
    (
        (15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10),
        (3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5),
        (0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15),
        (13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9),
    ),
    (
        (10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8),
        (13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1),
        (13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7),
        (1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12),
    ),
    (
        (7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15),
        (13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9),
        (10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4),
        (3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14),
    ),
    (
        (2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9),
        (14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6),
        (4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14),
        (11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3),
    ),
    (
        (12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11),
        (10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8),
        (9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6),
        (4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13),
    ),
    (
        (4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1),
        (13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6),
        (1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2),
        (6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12),
    ),
    (
        (13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7),
        (1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2),
        (7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8),
        (2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11),
    ),
)


def _bytes_to_bits(data: bytes) -> List[int]:
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def _bits_to_bytes(bits: Sequence[int]) -> bytes:
    out = bytearray(len(bits) // 8)
    for i, bit in enumerate(bits):
        if bit:
            out[i // 8] |= 1 << (7 - (i % 8))
    return bytes(out)


def _permute(bits: Sequence[int], table: Sequence[int]) -> List[int]:
    return [bits[position - 1] for position in table]


class DES:
    """Single DES.  Weak by modern standards; used here as the building
    block of :class:`TripleDES`, the paper's third cipher."""

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) != 8:
            hint = ""
            if len(key) in (16, 24):
                hint = " (16/24-byte keys are TripleDES keys, not DES keys)"
            raise ValueError(
                f"DES key must be 8 bytes, got {len(key)}{hint}"
            )
        self._subkeys = self._key_schedule(key)

    @staticmethod
    def _key_schedule(key: bytes) -> List[List[int]]:
        bits = _permute(_bytes_to_bits(key), _PC1)
        c, d = bits[:28], bits[28:]
        subkeys: List[List[int]] = []
        for shift in _SHIFTS:
            c = c[shift:] + c[:shift]
            d = d[shift:] + d[:shift]
            subkeys.append(_permute(c + d, _PC2))
        return subkeys

    @staticmethod
    def _feistel(right: Sequence[int], subkey: Sequence[int]) -> List[int]:
        expanded = _permute(right, _E)
        mixed = [expanded[i] ^ subkey[i] for i in range(48)]
        out: List[int] = []
        for box in range(8):
            chunk = mixed[6 * box : 6 * box + 6]
            row = (chunk[0] << 1) | chunk[5]
            col = (chunk[1] << 3) | (chunk[2] << 2) | (chunk[3] << 1) | chunk[4]
            value = _SBOXES[box][row][col]
            out.extend(((value >> 3) & 1, (value >> 2) & 1,
                        (value >> 1) & 1, value & 1))
        return _permute(out, _P)

    def _crypt(self, block: bytes, subkeys: Sequence[Sequence[int]]) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"DES block must be {BLOCK_SIZE} bytes")
        bits = _permute(_bytes_to_bits(block), _IP)
        left, right = bits[:32], bits[32:]
        for subkey in subkeys:
            f_out = self._feistel(right, subkey)
            left, right = right, [left[i] ^ f_out[i] for i in range(32)]
        # Final swap: (R16, L16) through FP.
        return _bits_to_bytes(_permute(right + left, _FP))

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 8-byte block."""
        return self._crypt(block, self._subkeys)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 8-byte block."""
        return self._crypt(block, list(reversed(self._subkeys)))

    @property
    def block_size(self) -> int:
        return BLOCK_SIZE


class TripleDES:
    """EDE Triple-DES with a 24-byte (3-key) or 16-byte (2-key) key."""

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) == 16:
            key = key + key[:8]
        if len(key) != 24:
            # A multiple of 8 is still wrong unless it is exactly 16
            # (2-key) or 24 (3-key); say so explicitly — an 8-byte key is
            # a single-DES key and a 32-byte one is probably an AES-256
            # key that reached the wrong cipher.
            hint = ""
            if len(key) == 8:
                hint = " (an 8-byte key is a single-DES key; 3DES needs" \
                       " 2 or 3 distinct 8-byte subkeys)"
            elif len(key) % 8 == 0:
                hint = f" ({len(key) // 8} subkeys; only 2-key and 3-key" \
                       " keying options exist)"
            raise ValueError(
                f"3DES key must be 16 bytes (2-key) or 24 bytes (3-key),"
                f" got {len(key)}{hint}"
            )
        self._des1 = DES(key[0:8])
        self._des2 = DES(key[8:16])
        self._des3 = DES(key[16:24])

    def encrypt_block(self, block: bytes) -> bytes:
        """EDE encryption of one 8-byte block."""
        step1 = self._des1.encrypt_block(block)
        step2 = self._des2.decrypt_block(step1)
        return self._des3.encrypt_block(step2)

    def decrypt_block(self, block: bytes) -> bytes:
        """EDE decryption of one 8-byte block."""
        step1 = self._des3.decrypt_block(block)
        step2 = self._des2.encrypt_block(step1)
        return self._des1.decrypt_block(step2)

    @property
    def block_size(self) -> int:
        return BLOCK_SIZE
