"""Numpy-vectorized AES: many blocks per call via T-table lookups.

The scalar :class:`repro.crypto.aes.AES` pays Python-level cost for every
byte of every round, which makes full-clip encryption sweeps (the advisor
workflow of Fig. 1) orders of magnitude slower than the hardware allows.
This module implements the classic T-table formulation of the AES round
over numpy arrays: the state of ``n`` blocks is held as an ``(n, 4)``
``uint32`` array of big-endian column words, and one round is four table
lookups plus XORs per column — vectorized across all ``n`` blocks at once.

Correctness is anchored to the scalar implementation: the round keys come
from the same FIPS-197 key schedule, the tables are derived from the same
generated S-box, and the test suite asserts bit-exact agreement with the
FIPS-197 appendix vectors and with the scalar cipher on random batches.

DES/3DES take the same treatment in :mod:`repro.crypto.vector_des`
(packed uint64 Feistel lanes, SP-table lookups); this module's factory
functions route every paper algorithm to its vectorized implementation.
The batched OFB path in :mod:`repro.crypto.ofb` still transparently
falls back to the scalar cipher when ``encrypt_blocks`` is absent.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .aes import AES, BLOCK_SIZE, _gf_mul, _SBOX
from .vector_des import VectorDES, VectorTripleDES

__all__ = [
    "VectorAES",
    "VectorDES",
    "VectorTripleDES",
    "make_vector_cipher",
    "has_vector_support",
]

# Column rotation index vectors implementing ShiftRows on column words:
# the byte in row r of column c comes from column (c + r) mod 4.
_ROT1 = np.array([1, 2, 3, 0])
_ROT2 = np.array([2, 3, 0, 1])
_ROT3 = np.array([3, 0, 1, 2])

_SBOX_NP = np.frombuffer(_SBOX, dtype=np.uint8)


def _build_t_tables() -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fuse SubBytes and MixColumns into four 256-entry uint32 tables.

    With big-endian column words, the contribution of the byte in row r
    (after ShiftRows) to the new column is a fixed GF(2^8) multiple of
    ``S[x]`` in each output row, so the whole round becomes
    ``T0[s0] ^ T1[s1'] ^ T2[s2''] ^ T3[s3'''] ^ rk``.
    """
    t0 = np.empty(256, dtype=np.uint32)
    t1 = np.empty(256, dtype=np.uint32)
    t2 = np.empty(256, dtype=np.uint32)
    t3 = np.empty(256, dtype=np.uint32)
    for x in range(256):
        s = _SBOX[x]
        s2 = _gf_mul(s, 2)
        s3 = _gf_mul(s, 3)
        t0[x] = (s2 << 24) | (s << 16) | (s << 8) | s3
        t1[x] = (s3 << 24) | (s2 << 16) | (s << 8) | s
        t2[x] = (s << 24) | (s3 << 16) | (s2 << 8) | s
        t3[x] = (s << 24) | (s << 16) | (s3 << 8) | s2
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_t_tables()


class VectorAES:
    """AES over batches of blocks, bit-exact with :class:`~repro.crypto.aes.AES`.

    Satisfies the :class:`repro.crypto.ofb.BlockCipher` protocol (single
    blocks go through a batch of one) and additionally exposes
    :meth:`encrypt_blocks` for the vectorized OFB keystream path.
    """

    def __init__(self, key: bytes) -> None:
        self._scalar = AES(key)
        self.key_size = self._scalar.key_size
        self.rounds = self._scalar.rounds
        # Round keys as (rounds + 1, 4) big-endian column words.
        flat = np.array(self._scalar._round_keys, dtype=np.uint8)
        self._rk = (
            np.ascontiguousarray(flat.reshape(self.rounds + 1, 4, 4))
            .view(">u4")
            .astype(np.uint32)
            .reshape(self.rounds + 1, 4)
        )

    @property
    def block_size(self) -> int:
        return BLOCK_SIZE

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an ``(n, 16)`` uint8 array of blocks in one call."""
        blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
        if blocks.ndim != 2 or blocks.shape[1] != BLOCK_SIZE:
            raise ValueError(
                f"blocks must have shape (n, {BLOCK_SIZE}), got {blocks.shape}"
            )
        w = blocks.view(">u4").astype(np.uint32)
        w ^= self._rk[0]
        for r in range(1, self.rounds):
            b0 = w >> 24
            b1 = (w >> 16) & 0xFF
            b2 = (w >> 8) & 0xFF
            b3 = w & 0xFF
            w = (
                _T0[b0]
                ^ _T1[b1[:, _ROT1]]
                ^ _T2[b2[:, _ROT2]]
                ^ _T3[b3[:, _ROT3]]
                ^ self._rk[r]
            )
        # Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        b0 = w >> 24
        b1 = (w >> 16) & 0xFF
        b2 = (w >> 8) & 0xFF
        b3 = w & 0xFF
        w = (
            (_SBOX_NP[b0].astype(np.uint32) << 24)
            | (_SBOX_NP[b1[:, _ROT1]].astype(np.uint32) << 16)
            | (_SBOX_NP[b2[:, _ROT2]].astype(np.uint32) << 8)
            | _SBOX_NP[b3[:, _ROT3]].astype(np.uint32)
        )
        w ^= self._rk[self.rounds]
        return (
            np.ascontiguousarray(w)
            .astype(">u4")
            .view(np.uint8)
            .reshape(-1, BLOCK_SIZE)
        )

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block (batch of one)."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"AES block must be {BLOCK_SIZE} bytes")
        batch = np.frombuffer(block, dtype=np.uint8).reshape(1, BLOCK_SIZE)
        return self.encrypt_blocks(batch).tobytes()

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one block (delegates to the scalar inverse cipher; the
        OFB hot path never decrypts blocks)."""
        return self._scalar.decrypt_block(block)


# algorithm (paper name) -> vectorized cipher factory
_VECTOR_FACTORIES = {
    "AES128": VectorAES,
    "AES192": VectorAES,
    "AES256": VectorAES,
    "3DES": VectorTripleDES,
}


def has_vector_support(algorithm: str) -> bool:
    """Whether ``algorithm`` (paper name) has a vectorized implementation."""
    return algorithm in _VECTOR_FACTORIES


def make_vector_cipher(algorithm: str, key: bytes):
    """Vectorized cipher for a paper algorithm name, or ``None``.

    Unknown algorithms return ``None``; callers fall back to the scalar
    cipher, which the batched OFB path accepts transparently.
    """
    factory = _VECTOR_FACTORIES.get(algorithm)
    if factory is None:
        return None
    return factory(key)
